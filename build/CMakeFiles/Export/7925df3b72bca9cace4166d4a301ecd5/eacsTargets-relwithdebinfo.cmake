#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "eacs::eacs_util" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_util.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_util )
list(APPEND _cmake_import_check_files_for_eacs::eacs_util "${_IMPORT_PREFIX}/lib/libeacs_util.a" )

# Import target "eacs::eacs_media" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_media APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_media PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_media.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_media )
list(APPEND _cmake_import_check_files_for_eacs::eacs_media "${_IMPORT_PREFIX}/lib/libeacs_media.a" )

# Import target "eacs::eacs_sensors" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_sensors APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_sensors PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_sensors.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_sensors )
list(APPEND _cmake_import_check_files_for_eacs::eacs_sensors "${_IMPORT_PREFIX}/lib/libeacs_sensors.a" )

# Import target "eacs::eacs_trace" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_trace APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_trace PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_trace.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_trace )
list(APPEND _cmake_import_check_files_for_eacs::eacs_trace "${_IMPORT_PREFIX}/lib/libeacs_trace.a" )

# Import target "eacs::eacs_qoe" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_qoe APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_qoe PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_qoe.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_qoe )
list(APPEND _cmake_import_check_files_for_eacs::eacs_qoe "${_IMPORT_PREFIX}/lib/libeacs_qoe.a" )

# Import target "eacs::eacs_power" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_power APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_power PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_power.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_power )
list(APPEND _cmake_import_check_files_for_eacs::eacs_power "${_IMPORT_PREFIX}/lib/libeacs_power.a" )

# Import target "eacs::eacs_net" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_net APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_net PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_net.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_net )
list(APPEND _cmake_import_check_files_for_eacs::eacs_net "${_IMPORT_PREFIX}/lib/libeacs_net.a" )

# Import target "eacs::eacs_player" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_player APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_player PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_player.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_player )
list(APPEND _cmake_import_check_files_for_eacs::eacs_player "${_IMPORT_PREFIX}/lib/libeacs_player.a" )

# Import target "eacs::eacs_abr" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_abr APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_abr PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_abr.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_abr )
list(APPEND _cmake_import_check_files_for_eacs::eacs_abr "${_IMPORT_PREFIX}/lib/libeacs_abr.a" )

# Import target "eacs::eacs_core" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_core.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_core )
list(APPEND _cmake_import_check_files_for_eacs::eacs_core "${_IMPORT_PREFIX}/lib/libeacs_core.a" )

# Import target "eacs::eacs_sim" for configuration "RelWithDebInfo"
set_property(TARGET eacs::eacs_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(eacs::eacs_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libeacs_sim.a"
  )

list(APPEND _cmake_import_check_targets eacs::eacs_sim )
list(APPEND _cmake_import_check_files_for_eacs::eacs_sim "${_IMPORT_PREFIX}/lib/libeacs_sim.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
