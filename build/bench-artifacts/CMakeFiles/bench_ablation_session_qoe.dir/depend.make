# Empty dependencies file for bench_ablation_session_qoe.
# This may be replaced when dependencies are built.
