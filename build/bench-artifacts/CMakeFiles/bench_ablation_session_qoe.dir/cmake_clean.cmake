file(REMOVE_RECURSE
  "../bench/bench_ablation_session_qoe"
  "../bench/bench_ablation_session_qoe.pdb"
  "CMakeFiles/bench_ablation_session_qoe.dir/bench_ablation_session_qoe.cpp.o"
  "CMakeFiles/bench_ablation_session_qoe.dir/bench_ablation_session_qoe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_session_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
