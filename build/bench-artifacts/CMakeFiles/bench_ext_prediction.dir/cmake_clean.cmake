file(REMOVE_RECURSE
  "../bench/bench_ext_prediction"
  "../bench/bench_ext_prediction.pdb"
  "CMakeFiles/bench_ext_prediction.dir/bench_ext_prediction.cpp.o"
  "CMakeFiles/bench_ext_prediction.dir/bench_ext_prediction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
