file(REMOVE_RECURSE
  "../bench/bench_ext_learned"
  "../bench/bench_ext_learned.pdb"
  "CMakeFiles/bench_ext_learned.dir/bench_ext_learned.cpp.o"
  "CMakeFiles/bench_ext_learned.dir/bench_ext_learned.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_learned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
