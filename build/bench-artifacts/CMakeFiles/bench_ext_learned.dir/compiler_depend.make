# Empty compiler generated dependencies file for bench_ext_learned.
# This may be replaced when dependencies are built.
