file(REMOVE_RECURSE
  "../bench/bench_fig2c_impairment_surface"
  "../bench/bench_fig2c_impairment_surface.pdb"
  "CMakeFiles/bench_fig2c_impairment_surface.dir/bench_fig2c_impairment_surface.cpp.o"
  "CMakeFiles/bench_fig2c_impairment_surface.dir/bench_fig2c_impairment_surface.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_impairment_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
