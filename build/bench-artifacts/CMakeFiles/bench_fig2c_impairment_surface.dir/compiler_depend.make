# Empty compiler generated dependencies file for bench_fig2c_impairment_surface.
# This may be replaced when dependencies are built.
