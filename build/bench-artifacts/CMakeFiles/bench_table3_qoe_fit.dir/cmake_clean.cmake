file(REMOVE_RECURSE
  "../bench/bench_table3_qoe_fit"
  "../bench/bench_table3_qoe_fit.pdb"
  "CMakeFiles/bench_table3_qoe_fit.dir/bench_table3_qoe_fit.cpp.o"
  "CMakeFiles/bench_table3_qoe_fit.dir/bench_table3_qoe_fit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_qoe_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
