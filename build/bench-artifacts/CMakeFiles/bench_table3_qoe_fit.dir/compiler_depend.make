# Empty compiler generated dependencies file for bench_table3_qoe_fit.
# This may be replaced when dependencies are built.
