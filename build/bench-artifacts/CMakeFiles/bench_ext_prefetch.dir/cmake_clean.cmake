file(REMOVE_RECURSE
  "../bench/bench_ext_prefetch"
  "../bench/bench_ext_prefetch.pdb"
  "CMakeFiles/bench_ext_prefetch.dir/bench_ext_prefetch.cpp.o"
  "CMakeFiles/bench_ext_prefetch.dir/bench_ext_prefetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
