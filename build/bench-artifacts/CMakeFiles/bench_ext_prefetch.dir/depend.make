# Empty dependencies file for bench_ext_prefetch.
# This may be replaced when dependencies are built.
