file(REMOVE_RECURSE
  "../bench/bench_ablation_ramp"
  "../bench/bench_ablation_ramp.pdb"
  "CMakeFiles/bench_ablation_ramp.dir/bench_ablation_ramp.cpp.o"
  "CMakeFiles/bench_ablation_ramp.dir/bench_ablation_ramp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ramp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
