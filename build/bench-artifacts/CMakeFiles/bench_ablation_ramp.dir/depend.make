# Empty dependencies file for bench_ablation_ramp.
# This may be replaced when dependencies are built.
