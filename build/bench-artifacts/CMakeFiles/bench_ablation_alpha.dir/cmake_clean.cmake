file(REMOVE_RECURSE
  "../bench/bench_ablation_alpha"
  "../bench/bench_ablation_alpha.pdb"
  "CMakeFiles/bench_ablation_alpha.dir/bench_ablation_alpha.cpp.o"
  "CMakeFiles/bench_ablation_alpha.dir/bench_ablation_alpha.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
