
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_alpha.cpp" "bench-artifacts/CMakeFiles/bench_ablation_alpha.dir/bench_ablation_alpha.cpp.o" "gcc" "bench-artifacts/CMakeFiles/bench_ablation_alpha.dir/bench_ablation_alpha.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eacs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eacs_media.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/eacs_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eacs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/qoe/CMakeFiles/eacs_qoe.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eacs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eacs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/player/CMakeFiles/eacs_player.dir/DependInfo.cmake"
  "/root/repo/build/src/abr/CMakeFiles/eacs_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eacs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eacs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
