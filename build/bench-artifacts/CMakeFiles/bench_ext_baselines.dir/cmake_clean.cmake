file(REMOVE_RECURSE
  "../bench/bench_ext_baselines"
  "../bench/bench_ext_baselines.pdb"
  "CMakeFiles/bench_ext_baselines.dir/bench_ext_baselines.cpp.o"
  "CMakeFiles/bench_ext_baselines.dir/bench_ext_baselines.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
