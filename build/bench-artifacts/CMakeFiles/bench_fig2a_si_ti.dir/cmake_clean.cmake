file(REMOVE_RECURSE
  "../bench/bench_fig2a_si_ti"
  "../bench/bench_fig2a_si_ti.pdb"
  "CMakeFiles/bench_fig2a_si_ti.dir/bench_fig2a_si_ti.cpp.o"
  "CMakeFiles/bench_fig2a_si_ti.dir/bench_fig2a_si_ti.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_si_ti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
