# Empty dependencies file for bench_fig2a_si_ti.
# This may be replaced when dependencies are built.
