# Empty dependencies file for bench_fig2b_original_quality.
# This may be replaced when dependencies are built.
