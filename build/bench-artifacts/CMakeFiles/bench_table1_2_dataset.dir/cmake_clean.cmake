file(REMOVE_RECURSE
  "../bench/bench_table1_2_dataset"
  "../bench/bench_table1_2_dataset.pdb"
  "CMakeFiles/bench_table1_2_dataset.dir/bench_table1_2_dataset.cpp.o"
  "CMakeFiles/bench_table1_2_dataset.dir/bench_table1_2_dataset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_2_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
