# Empty dependencies file for bench_algo_scaling.
# This may be replaced when dependencies are built.
