file(REMOVE_RECURSE
  "../bench/bench_algo_scaling"
  "../bench/bench_algo_scaling.pdb"
  "CMakeFiles/bench_algo_scaling.dir/bench_algo_scaling.cpp.o"
  "CMakeFiles/bench_algo_scaling.dir/bench_algo_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algo_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
