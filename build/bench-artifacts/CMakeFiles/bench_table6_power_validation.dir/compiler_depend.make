# Empty compiler generated dependencies file for bench_table6_power_validation.
# This may be replaced when dependencies are built.
