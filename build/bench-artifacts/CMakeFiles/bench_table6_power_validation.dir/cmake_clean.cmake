file(REMOVE_RECURSE
  "../bench/bench_table6_power_validation"
  "../bench/bench_table6_power_validation.pdb"
  "CMakeFiles/bench_table6_power_validation.dir/bench_table6_power_validation.cpp.o"
  "CMakeFiles/bench_table6_power_validation.dir/bench_table6_power_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_power_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
