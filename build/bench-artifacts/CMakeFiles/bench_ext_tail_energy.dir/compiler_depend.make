# Empty compiler generated dependencies file for bench_ext_tail_energy.
# This may be replaced when dependencies are built.
