# Empty compiler generated dependencies file for bench_fig7_ratio.
# This may be replaced when dependencies are built.
