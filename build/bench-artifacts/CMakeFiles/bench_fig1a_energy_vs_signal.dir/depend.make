# Empty dependencies file for bench_fig1a_energy_vs_signal.
# This may be replaced when dependencies are built.
