file(REMOVE_RECURSE
  "../bench/bench_fig1a_energy_vs_signal"
  "../bench/bench_fig1a_energy_vs_signal.pdb"
  "CMakeFiles/bench_fig1a_energy_vs_signal.dir/bench_fig1a_energy_vs_signal.cpp.o"
  "CMakeFiles/bench_fig1a_energy_vs_signal.dir/bench_fig1a_energy_vs_signal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1a_energy_vs_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
