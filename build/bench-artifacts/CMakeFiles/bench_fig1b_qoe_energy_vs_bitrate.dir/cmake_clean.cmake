file(REMOVE_RECURSE
  "../bench/bench_fig1b_qoe_energy_vs_bitrate"
  "../bench/bench_fig1b_qoe_energy_vs_bitrate.pdb"
  "CMakeFiles/bench_fig1b_qoe_energy_vs_bitrate.dir/bench_fig1b_qoe_energy_vs_bitrate.cpp.o"
  "CMakeFiles/bench_fig1b_qoe_energy_vs_bitrate.dir/bench_fig1b_qoe_energy_vs_bitrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1b_qoe_energy_vs_bitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
