# Empty compiler generated dependencies file for bench_fig1b_qoe_energy_vs_bitrate.
# This may be replaced when dependencies are built.
