file(REMOVE_RECURSE
  "../bench/bench_ext_fairness"
  "../bench/bench_ext_fairness.pdb"
  "CMakeFiles/bench_ext_fairness.dir/bench_ext_fairness.cpp.o"
  "CMakeFiles/bench_ext_fairness.dir/bench_ext_fairness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
