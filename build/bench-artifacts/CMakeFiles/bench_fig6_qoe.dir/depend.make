# Empty dependencies file for bench_fig6_qoe.
# This may be replaced when dependencies are built.
