file(REMOVE_RECURSE
  "../bench/bench_ext_pareto"
  "../bench/bench_ext_pareto.pdb"
  "CMakeFiles/bench_ext_pareto.dir/bench_ext_pareto.cpp.o"
  "CMakeFiles/bench_ext_pareto.dir/bench_ext_pareto.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
