file(REMOVE_RECURSE
  "../bench/bench_ext_robustness"
  "../bench/bench_ext_robustness.pdb"
  "CMakeFiles/bench_ext_robustness.dir/bench_ext_robustness.cpp.o"
  "CMakeFiles/bench_ext_robustness.dir/bench_ext_robustness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
