file(REMOVE_RECURSE
  "../bench/bench_ext_codec"
  "../bench/bench_ext_codec.pdb"
  "CMakeFiles/bench_ext_codec.dir/bench_ext_codec.cpp.o"
  "CMakeFiles/bench_ext_codec.dir/bench_ext_codec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
