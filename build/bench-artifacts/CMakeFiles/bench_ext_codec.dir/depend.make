# Empty dependencies file for bench_ext_codec.
# This may be replaced when dependencies are built.
