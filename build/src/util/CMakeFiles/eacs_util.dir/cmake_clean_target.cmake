file(REMOVE_RECURSE
  "libeacs_util.a"
)
