# Empty compiler generated dependencies file for eacs_util.
# This may be replaced when dependencies are built.
