file(REMOVE_RECURSE
  "CMakeFiles/eacs_util.dir/src/csv.cpp.o"
  "CMakeFiles/eacs_util.dir/src/csv.cpp.o.d"
  "CMakeFiles/eacs_util.dir/src/filters.cpp.o"
  "CMakeFiles/eacs_util.dir/src/filters.cpp.o.d"
  "CMakeFiles/eacs_util.dir/src/least_squares.cpp.o"
  "CMakeFiles/eacs_util.dir/src/least_squares.cpp.o.d"
  "CMakeFiles/eacs_util.dir/src/logging.cpp.o"
  "CMakeFiles/eacs_util.dir/src/logging.cpp.o.d"
  "CMakeFiles/eacs_util.dir/src/rng.cpp.o"
  "CMakeFiles/eacs_util.dir/src/rng.cpp.o.d"
  "CMakeFiles/eacs_util.dir/src/stats.cpp.o"
  "CMakeFiles/eacs_util.dir/src/stats.cpp.o.d"
  "CMakeFiles/eacs_util.dir/src/table.cpp.o"
  "CMakeFiles/eacs_util.dir/src/table.cpp.o.d"
  "CMakeFiles/eacs_util.dir/src/xml.cpp.o"
  "CMakeFiles/eacs_util.dir/src/xml.cpp.o.d"
  "libeacs_util.a"
  "libeacs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
