file(REMOVE_RECURSE
  "CMakeFiles/eacs_sensors.dir/src/context_classifier.cpp.o"
  "CMakeFiles/eacs_sensors.dir/src/context_classifier.cpp.o.d"
  "CMakeFiles/eacs_sensors.dir/src/vibration.cpp.o"
  "CMakeFiles/eacs_sensors.dir/src/vibration.cpp.o.d"
  "libeacs_sensors.a"
  "libeacs_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
