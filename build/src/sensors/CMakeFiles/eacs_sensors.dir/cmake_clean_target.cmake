file(REMOVE_RECURSE
  "libeacs_sensors.a"
)
