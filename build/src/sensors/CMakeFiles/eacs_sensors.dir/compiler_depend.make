# Empty compiler generated dependencies file for eacs_sensors.
# This may be replaced when dependencies are built.
