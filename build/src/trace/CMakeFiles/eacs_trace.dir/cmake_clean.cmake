file(REMOVE_RECURSE
  "CMakeFiles/eacs_trace.dir/src/accel_gen.cpp.o"
  "CMakeFiles/eacs_trace.dir/src/accel_gen.cpp.o.d"
  "CMakeFiles/eacs_trace.dir/src/markov_bandwidth.cpp.o"
  "CMakeFiles/eacs_trace.dir/src/markov_bandwidth.cpp.o.d"
  "CMakeFiles/eacs_trace.dir/src/scenario.cpp.o"
  "CMakeFiles/eacs_trace.dir/src/scenario.cpp.o.d"
  "CMakeFiles/eacs_trace.dir/src/session.cpp.o"
  "CMakeFiles/eacs_trace.dir/src/session.cpp.o.d"
  "CMakeFiles/eacs_trace.dir/src/signal_gen.cpp.o"
  "CMakeFiles/eacs_trace.dir/src/signal_gen.cpp.o.d"
  "CMakeFiles/eacs_trace.dir/src/throughput_gen.cpp.o"
  "CMakeFiles/eacs_trace.dir/src/throughput_gen.cpp.o.d"
  "CMakeFiles/eacs_trace.dir/src/time_series.cpp.o"
  "CMakeFiles/eacs_trace.dir/src/time_series.cpp.o.d"
  "CMakeFiles/eacs_trace.dir/src/trace_io.cpp.o"
  "CMakeFiles/eacs_trace.dir/src/trace_io.cpp.o.d"
  "libeacs_trace.a"
  "libeacs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
