file(REMOVE_RECURSE
  "libeacs_trace.a"
)
