# Empty compiler generated dependencies file for eacs_trace.
# This may be replaced when dependencies are built.
