
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/src/accel_gen.cpp" "src/trace/CMakeFiles/eacs_trace.dir/src/accel_gen.cpp.o" "gcc" "src/trace/CMakeFiles/eacs_trace.dir/src/accel_gen.cpp.o.d"
  "/root/repo/src/trace/src/markov_bandwidth.cpp" "src/trace/CMakeFiles/eacs_trace.dir/src/markov_bandwidth.cpp.o" "gcc" "src/trace/CMakeFiles/eacs_trace.dir/src/markov_bandwidth.cpp.o.d"
  "/root/repo/src/trace/src/scenario.cpp" "src/trace/CMakeFiles/eacs_trace.dir/src/scenario.cpp.o" "gcc" "src/trace/CMakeFiles/eacs_trace.dir/src/scenario.cpp.o.d"
  "/root/repo/src/trace/src/session.cpp" "src/trace/CMakeFiles/eacs_trace.dir/src/session.cpp.o" "gcc" "src/trace/CMakeFiles/eacs_trace.dir/src/session.cpp.o.d"
  "/root/repo/src/trace/src/signal_gen.cpp" "src/trace/CMakeFiles/eacs_trace.dir/src/signal_gen.cpp.o" "gcc" "src/trace/CMakeFiles/eacs_trace.dir/src/signal_gen.cpp.o.d"
  "/root/repo/src/trace/src/throughput_gen.cpp" "src/trace/CMakeFiles/eacs_trace.dir/src/throughput_gen.cpp.o" "gcc" "src/trace/CMakeFiles/eacs_trace.dir/src/throughput_gen.cpp.o.d"
  "/root/repo/src/trace/src/time_series.cpp" "src/trace/CMakeFiles/eacs_trace.dir/src/time_series.cpp.o" "gcc" "src/trace/CMakeFiles/eacs_trace.dir/src/time_series.cpp.o.d"
  "/root/repo/src/trace/src/trace_io.cpp" "src/trace/CMakeFiles/eacs_trace.dir/src/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/eacs_trace.dir/src/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eacs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/eacs_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eacs_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
