
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/src/bitrate_ladder.cpp" "src/media/CMakeFiles/eacs_media.dir/src/bitrate_ladder.cpp.o" "gcc" "src/media/CMakeFiles/eacs_media.dir/src/bitrate_ladder.cpp.o.d"
  "/root/repo/src/media/src/catalogue.cpp" "src/media/CMakeFiles/eacs_media.dir/src/catalogue.cpp.o" "gcc" "src/media/CMakeFiles/eacs_media.dir/src/catalogue.cpp.o.d"
  "/root/repo/src/media/src/codec.cpp" "src/media/CMakeFiles/eacs_media.dir/src/codec.cpp.o" "gcc" "src/media/CMakeFiles/eacs_media.dir/src/codec.cpp.o.d"
  "/root/repo/src/media/src/frames.cpp" "src/media/CMakeFiles/eacs_media.dir/src/frames.cpp.o" "gcc" "src/media/CMakeFiles/eacs_media.dir/src/frames.cpp.o.d"
  "/root/repo/src/media/src/manifest.cpp" "src/media/CMakeFiles/eacs_media.dir/src/manifest.cpp.o" "gcc" "src/media/CMakeFiles/eacs_media.dir/src/manifest.cpp.o.d"
  "/root/repo/src/media/src/mpd.cpp" "src/media/CMakeFiles/eacs_media.dir/src/mpd.cpp.o" "gcc" "src/media/CMakeFiles/eacs_media.dir/src/mpd.cpp.o.d"
  "/root/repo/src/media/src/si_ti.cpp" "src/media/CMakeFiles/eacs_media.dir/src/si_ti.cpp.o" "gcc" "src/media/CMakeFiles/eacs_media.dir/src/si_ti.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eacs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
