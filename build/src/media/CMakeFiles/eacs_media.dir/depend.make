# Empty dependencies file for eacs_media.
# This may be replaced when dependencies are built.
