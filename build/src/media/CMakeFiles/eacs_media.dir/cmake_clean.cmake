file(REMOVE_RECURSE
  "CMakeFiles/eacs_media.dir/src/bitrate_ladder.cpp.o"
  "CMakeFiles/eacs_media.dir/src/bitrate_ladder.cpp.o.d"
  "CMakeFiles/eacs_media.dir/src/catalogue.cpp.o"
  "CMakeFiles/eacs_media.dir/src/catalogue.cpp.o.d"
  "CMakeFiles/eacs_media.dir/src/codec.cpp.o"
  "CMakeFiles/eacs_media.dir/src/codec.cpp.o.d"
  "CMakeFiles/eacs_media.dir/src/frames.cpp.o"
  "CMakeFiles/eacs_media.dir/src/frames.cpp.o.d"
  "CMakeFiles/eacs_media.dir/src/manifest.cpp.o"
  "CMakeFiles/eacs_media.dir/src/manifest.cpp.o.d"
  "CMakeFiles/eacs_media.dir/src/mpd.cpp.o"
  "CMakeFiles/eacs_media.dir/src/mpd.cpp.o.d"
  "CMakeFiles/eacs_media.dir/src/si_ti.cpp.o"
  "CMakeFiles/eacs_media.dir/src/si_ti.cpp.o.d"
  "libeacs_media.a"
  "libeacs_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
