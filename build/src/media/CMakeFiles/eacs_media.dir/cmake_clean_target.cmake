file(REMOVE_RECURSE
  "libeacs_media.a"
)
