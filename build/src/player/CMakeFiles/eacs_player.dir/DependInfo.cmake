
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/player/src/multi_client.cpp" "src/player/CMakeFiles/eacs_player.dir/src/multi_client.cpp.o" "gcc" "src/player/CMakeFiles/eacs_player.dir/src/multi_client.cpp.o.d"
  "/root/repo/src/player/src/player.cpp" "src/player/CMakeFiles/eacs_player.dir/src/player.cpp.o" "gcc" "src/player/CMakeFiles/eacs_player.dir/src/player.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eacs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eacs_media.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eacs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eacs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/eacs_sensors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
