# Empty dependencies file for eacs_player.
# This may be replaced when dependencies are built.
