file(REMOVE_RECURSE
  "libeacs_player.a"
)
