file(REMOVE_RECURSE
  "CMakeFiles/eacs_player.dir/src/multi_client.cpp.o"
  "CMakeFiles/eacs_player.dir/src/multi_client.cpp.o.d"
  "CMakeFiles/eacs_player.dir/src/player.cpp.o"
  "CMakeFiles/eacs_player.dir/src/player.cpp.o.d"
  "libeacs_player.a"
  "libeacs_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
