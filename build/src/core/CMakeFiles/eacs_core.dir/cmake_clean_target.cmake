file(REMOVE_RECURSE
  "libeacs_core.a"
)
