
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/src/context_monitor.cpp" "src/core/CMakeFiles/eacs_core.dir/src/context_monitor.cpp.o" "gcc" "src/core/CMakeFiles/eacs_core.dir/src/context_monitor.cpp.o.d"
  "/root/repo/src/core/src/graph.cpp" "src/core/CMakeFiles/eacs_core.dir/src/graph.cpp.o" "gcc" "src/core/CMakeFiles/eacs_core.dir/src/graph.cpp.o.d"
  "/root/repo/src/core/src/horizon.cpp" "src/core/CMakeFiles/eacs_core.dir/src/horizon.cpp.o" "gcc" "src/core/CMakeFiles/eacs_core.dir/src/horizon.cpp.o.d"
  "/root/repo/src/core/src/objective.cpp" "src/core/CMakeFiles/eacs_core.dir/src/objective.cpp.o" "gcc" "src/core/CMakeFiles/eacs_core.dir/src/objective.cpp.o.d"
  "/root/repo/src/core/src/online.cpp" "src/core/CMakeFiles/eacs_core.dir/src/online.cpp.o" "gcc" "src/core/CMakeFiles/eacs_core.dir/src/online.cpp.o.d"
  "/root/repo/src/core/src/optimal.cpp" "src/core/CMakeFiles/eacs_core.dir/src/optimal.cpp.o" "gcc" "src/core/CMakeFiles/eacs_core.dir/src/optimal.cpp.o.d"
  "/root/repo/src/core/src/pareto.cpp" "src/core/CMakeFiles/eacs_core.dir/src/pareto.cpp.o" "gcc" "src/core/CMakeFiles/eacs_core.dir/src/pareto.cpp.o.d"
  "/root/repo/src/core/src/prefetch.cpp" "src/core/CMakeFiles/eacs_core.dir/src/prefetch.cpp.o" "gcc" "src/core/CMakeFiles/eacs_core.dir/src/prefetch.cpp.o.d"
  "/root/repo/src/core/src/task_builder.cpp" "src/core/CMakeFiles/eacs_core.dir/src/task_builder.cpp.o" "gcc" "src/core/CMakeFiles/eacs_core.dir/src/task_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qoe/CMakeFiles/eacs_qoe.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/eacs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/player/CMakeFiles/eacs_player.dir/DependInfo.cmake"
  "/root/repo/build/src/abr/CMakeFiles/eacs_abr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eacs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eacs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eacs_media.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/eacs_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eacs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
