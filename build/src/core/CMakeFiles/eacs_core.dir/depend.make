# Empty dependencies file for eacs_core.
# This may be replaced when dependencies are built.
