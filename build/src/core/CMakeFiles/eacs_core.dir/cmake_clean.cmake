file(REMOVE_RECURSE
  "CMakeFiles/eacs_core.dir/src/context_monitor.cpp.o"
  "CMakeFiles/eacs_core.dir/src/context_monitor.cpp.o.d"
  "CMakeFiles/eacs_core.dir/src/graph.cpp.o"
  "CMakeFiles/eacs_core.dir/src/graph.cpp.o.d"
  "CMakeFiles/eacs_core.dir/src/horizon.cpp.o"
  "CMakeFiles/eacs_core.dir/src/horizon.cpp.o.d"
  "CMakeFiles/eacs_core.dir/src/objective.cpp.o"
  "CMakeFiles/eacs_core.dir/src/objective.cpp.o.d"
  "CMakeFiles/eacs_core.dir/src/online.cpp.o"
  "CMakeFiles/eacs_core.dir/src/online.cpp.o.d"
  "CMakeFiles/eacs_core.dir/src/optimal.cpp.o"
  "CMakeFiles/eacs_core.dir/src/optimal.cpp.o.d"
  "CMakeFiles/eacs_core.dir/src/pareto.cpp.o"
  "CMakeFiles/eacs_core.dir/src/pareto.cpp.o.d"
  "CMakeFiles/eacs_core.dir/src/prefetch.cpp.o"
  "CMakeFiles/eacs_core.dir/src/prefetch.cpp.o.d"
  "CMakeFiles/eacs_core.dir/src/task_builder.cpp.o"
  "CMakeFiles/eacs_core.dir/src/task_builder.cpp.o.d"
  "libeacs_core.a"
  "libeacs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
