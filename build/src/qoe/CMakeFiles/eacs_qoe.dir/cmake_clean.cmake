file(REMOVE_RECURSE
  "CMakeFiles/eacs_qoe.dir/src/model.cpp.o"
  "CMakeFiles/eacs_qoe.dir/src/model.cpp.o.d"
  "CMakeFiles/eacs_qoe.dir/src/session_qoe.cpp.o"
  "CMakeFiles/eacs_qoe.dir/src/session_qoe.cpp.o.d"
  "CMakeFiles/eacs_qoe.dir/src/subjective_study.cpp.o"
  "CMakeFiles/eacs_qoe.dir/src/subjective_study.cpp.o.d"
  "libeacs_qoe.a"
  "libeacs_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
