file(REMOVE_RECURSE
  "libeacs_qoe.a"
)
