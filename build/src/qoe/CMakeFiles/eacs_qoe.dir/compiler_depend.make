# Empty compiler generated dependencies file for eacs_qoe.
# This may be replaced when dependencies are built.
