
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qoe/src/model.cpp" "src/qoe/CMakeFiles/eacs_qoe.dir/src/model.cpp.o" "gcc" "src/qoe/CMakeFiles/eacs_qoe.dir/src/model.cpp.o.d"
  "/root/repo/src/qoe/src/session_qoe.cpp" "src/qoe/CMakeFiles/eacs_qoe.dir/src/session_qoe.cpp.o" "gcc" "src/qoe/CMakeFiles/eacs_qoe.dir/src/session_qoe.cpp.o.d"
  "/root/repo/src/qoe/src/subjective_study.cpp" "src/qoe/CMakeFiles/eacs_qoe.dir/src/subjective_study.cpp.o" "gcc" "src/qoe/CMakeFiles/eacs_qoe.dir/src/subjective_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eacs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eacs_media.dir/DependInfo.cmake"
  "/root/repo/build/src/player/CMakeFiles/eacs_player.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eacs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eacs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/eacs_sensors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
