# Empty compiler generated dependencies file for eacs_sim.
# This may be replaced when dependencies are built.
