file(REMOVE_RECURSE
  "CMakeFiles/eacs_sim.dir/src/evaluation.cpp.o"
  "CMakeFiles/eacs_sim.dir/src/evaluation.cpp.o.d"
  "CMakeFiles/eacs_sim.dir/src/metrics.cpp.o"
  "CMakeFiles/eacs_sim.dir/src/metrics.cpp.o.d"
  "CMakeFiles/eacs_sim.dir/src/report.cpp.o"
  "CMakeFiles/eacs_sim.dir/src/report.cpp.o.d"
  "CMakeFiles/eacs_sim.dir/src/robustness.cpp.o"
  "CMakeFiles/eacs_sim.dir/src/robustness.cpp.o.d"
  "CMakeFiles/eacs_sim.dir/src/training.cpp.o"
  "CMakeFiles/eacs_sim.dir/src/training.cpp.o.d"
  "libeacs_sim.a"
  "libeacs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
