file(REMOVE_RECURSE
  "libeacs_sim.a"
)
