file(REMOVE_RECURSE
  "libeacs_net.a"
)
