file(REMOVE_RECURSE
  "CMakeFiles/eacs_net.dir/src/bandwidth_estimator.cpp.o"
  "CMakeFiles/eacs_net.dir/src/bandwidth_estimator.cpp.o.d"
  "CMakeFiles/eacs_net.dir/src/downloader.cpp.o"
  "CMakeFiles/eacs_net.dir/src/downloader.cpp.o.d"
  "CMakeFiles/eacs_net.dir/src/prediction.cpp.o"
  "CMakeFiles/eacs_net.dir/src/prediction.cpp.o.d"
  "libeacs_net.a"
  "libeacs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
