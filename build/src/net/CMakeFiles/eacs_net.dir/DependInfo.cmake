
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/src/bandwidth_estimator.cpp" "src/net/CMakeFiles/eacs_net.dir/src/bandwidth_estimator.cpp.o" "gcc" "src/net/CMakeFiles/eacs_net.dir/src/bandwidth_estimator.cpp.o.d"
  "/root/repo/src/net/src/downloader.cpp" "src/net/CMakeFiles/eacs_net.dir/src/downloader.cpp.o" "gcc" "src/net/CMakeFiles/eacs_net.dir/src/downloader.cpp.o.d"
  "/root/repo/src/net/src/prediction.cpp" "src/net/CMakeFiles/eacs_net.dir/src/prediction.cpp.o" "gcc" "src/net/CMakeFiles/eacs_net.dir/src/prediction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eacs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eacs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/eacs_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eacs_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
