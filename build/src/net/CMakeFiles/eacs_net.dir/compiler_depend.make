# Empty compiler generated dependencies file for eacs_net.
# This may be replaced when dependencies are built.
