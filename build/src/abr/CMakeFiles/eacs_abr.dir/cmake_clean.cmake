file(REMOVE_RECURSE
  "CMakeFiles/eacs_abr.dir/src/bba.cpp.o"
  "CMakeFiles/eacs_abr.dir/src/bba.cpp.o.d"
  "CMakeFiles/eacs_abr.dir/src/bola.cpp.o"
  "CMakeFiles/eacs_abr.dir/src/bola.cpp.o.d"
  "CMakeFiles/eacs_abr.dir/src/festive.cpp.o"
  "CMakeFiles/eacs_abr.dir/src/festive.cpp.o.d"
  "CMakeFiles/eacs_abr.dir/src/fixed.cpp.o"
  "CMakeFiles/eacs_abr.dir/src/fixed.cpp.o.d"
  "CMakeFiles/eacs_abr.dir/src/learned.cpp.o"
  "CMakeFiles/eacs_abr.dir/src/learned.cpp.o.d"
  "CMakeFiles/eacs_abr.dir/src/mpc.cpp.o"
  "CMakeFiles/eacs_abr.dir/src/mpc.cpp.o.d"
  "CMakeFiles/eacs_abr.dir/src/pid.cpp.o"
  "CMakeFiles/eacs_abr.dir/src/pid.cpp.o.d"
  "libeacs_abr.a"
  "libeacs_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
