# Empty compiler generated dependencies file for eacs_abr.
# This may be replaced when dependencies are built.
