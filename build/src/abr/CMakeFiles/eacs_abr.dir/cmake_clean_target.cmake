file(REMOVE_RECURSE
  "libeacs_abr.a"
)
