
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/abr/src/bba.cpp" "src/abr/CMakeFiles/eacs_abr.dir/src/bba.cpp.o" "gcc" "src/abr/CMakeFiles/eacs_abr.dir/src/bba.cpp.o.d"
  "/root/repo/src/abr/src/bola.cpp" "src/abr/CMakeFiles/eacs_abr.dir/src/bola.cpp.o" "gcc" "src/abr/CMakeFiles/eacs_abr.dir/src/bola.cpp.o.d"
  "/root/repo/src/abr/src/festive.cpp" "src/abr/CMakeFiles/eacs_abr.dir/src/festive.cpp.o" "gcc" "src/abr/CMakeFiles/eacs_abr.dir/src/festive.cpp.o.d"
  "/root/repo/src/abr/src/fixed.cpp" "src/abr/CMakeFiles/eacs_abr.dir/src/fixed.cpp.o" "gcc" "src/abr/CMakeFiles/eacs_abr.dir/src/fixed.cpp.o.d"
  "/root/repo/src/abr/src/learned.cpp" "src/abr/CMakeFiles/eacs_abr.dir/src/learned.cpp.o" "gcc" "src/abr/CMakeFiles/eacs_abr.dir/src/learned.cpp.o.d"
  "/root/repo/src/abr/src/mpc.cpp" "src/abr/CMakeFiles/eacs_abr.dir/src/mpc.cpp.o" "gcc" "src/abr/CMakeFiles/eacs_abr.dir/src/mpc.cpp.o.d"
  "/root/repo/src/abr/src/pid.cpp" "src/abr/CMakeFiles/eacs_abr.dir/src/pid.cpp.o" "gcc" "src/abr/CMakeFiles/eacs_abr.dir/src/pid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/player/CMakeFiles/eacs_player.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eacs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eacs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eacs_media.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/eacs_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eacs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
