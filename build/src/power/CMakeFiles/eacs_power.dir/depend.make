# Empty dependencies file for eacs_power.
# This may be replaced when dependencies are built.
