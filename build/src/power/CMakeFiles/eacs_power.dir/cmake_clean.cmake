file(REMOVE_RECURSE
  "CMakeFiles/eacs_power.dir/src/battery.cpp.o"
  "CMakeFiles/eacs_power.dir/src/battery.cpp.o.d"
  "CMakeFiles/eacs_power.dir/src/model.cpp.o"
  "CMakeFiles/eacs_power.dir/src/model.cpp.o.d"
  "CMakeFiles/eacs_power.dir/src/monsoon.cpp.o"
  "CMakeFiles/eacs_power.dir/src/monsoon.cpp.o.d"
  "CMakeFiles/eacs_power.dir/src/rrc.cpp.o"
  "CMakeFiles/eacs_power.dir/src/rrc.cpp.o.d"
  "CMakeFiles/eacs_power.dir/src/validation.cpp.o"
  "CMakeFiles/eacs_power.dir/src/validation.cpp.o.d"
  "libeacs_power.a"
  "libeacs_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eacs_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
