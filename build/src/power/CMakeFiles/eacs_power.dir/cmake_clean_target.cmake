file(REMOVE_RECURSE
  "libeacs_power.a"
)
