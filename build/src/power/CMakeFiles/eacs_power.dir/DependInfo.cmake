
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/src/battery.cpp" "src/power/CMakeFiles/eacs_power.dir/src/battery.cpp.o" "gcc" "src/power/CMakeFiles/eacs_power.dir/src/battery.cpp.o.d"
  "/root/repo/src/power/src/model.cpp" "src/power/CMakeFiles/eacs_power.dir/src/model.cpp.o" "gcc" "src/power/CMakeFiles/eacs_power.dir/src/model.cpp.o.d"
  "/root/repo/src/power/src/monsoon.cpp" "src/power/CMakeFiles/eacs_power.dir/src/monsoon.cpp.o" "gcc" "src/power/CMakeFiles/eacs_power.dir/src/monsoon.cpp.o.d"
  "/root/repo/src/power/src/rrc.cpp" "src/power/CMakeFiles/eacs_power.dir/src/rrc.cpp.o" "gcc" "src/power/CMakeFiles/eacs_power.dir/src/rrc.cpp.o.d"
  "/root/repo/src/power/src/validation.cpp" "src/power/CMakeFiles/eacs_power.dir/src/validation.cpp.o" "gcc" "src/power/CMakeFiles/eacs_power.dir/src/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/eacs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/eacs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/eacs_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/eacs_media.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
