file(REMOVE_RECURSE
  "CMakeFiles/subjective_study.dir/subjective_study.cpp.o"
  "CMakeFiles/subjective_study.dir/subjective_study.cpp.o.d"
  "subjective_study"
  "subjective_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subjective_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
