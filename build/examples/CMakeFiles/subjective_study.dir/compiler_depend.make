# Empty compiler generated dependencies file for subjective_study.
# This may be replaced when dependencies are built.
