# Empty dependencies file for power_validation.
# This may be replaced when dependencies are built.
