file(REMOVE_RECURSE
  "CMakeFiles/power_validation.dir/power_validation.cpp.o"
  "CMakeFiles/power_validation.dir/power_validation.cpp.o.d"
  "power_validation"
  "power_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
