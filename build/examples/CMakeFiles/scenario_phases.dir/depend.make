# Empty dependencies file for scenario_phases.
# This may be replaced when dependencies are built.
