file(REMOVE_RECURSE
  "CMakeFiles/scenario_phases.dir/scenario_phases.cpp.o"
  "CMakeFiles/scenario_phases.dir/scenario_phases.cpp.o.d"
  "scenario_phases"
  "scenario_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
