# Empty compiler generated dependencies file for bus_commute.
# This may be replaced when dependencies are built.
