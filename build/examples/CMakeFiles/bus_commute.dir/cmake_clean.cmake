file(REMOVE_RECURSE
  "CMakeFiles/bus_commute.dir/bus_commute.cpp.o"
  "CMakeFiles/bus_commute.dir/bus_commute.cpp.o.d"
  "bus_commute"
  "bus_commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
