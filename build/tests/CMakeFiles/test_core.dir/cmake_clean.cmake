file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/graph_test.cpp.o"
  "CMakeFiles/test_core.dir/core/graph_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/horizon_test.cpp.o"
  "CMakeFiles/test_core.dir/core/horizon_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/objective_test.cpp.o"
  "CMakeFiles/test_core.dir/core/objective_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/online_test.cpp.o"
  "CMakeFiles/test_core.dir/core/online_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/optimal_test.cpp.o"
  "CMakeFiles/test_core.dir/core/optimal_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/pareto_test.cpp.o"
  "CMakeFiles/test_core.dir/core/pareto_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/prefetch_test.cpp.o"
  "CMakeFiles/test_core.dir/core/prefetch_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
