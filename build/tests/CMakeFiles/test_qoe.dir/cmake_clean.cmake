file(REMOVE_RECURSE
  "CMakeFiles/test_qoe.dir/qoe/model_test.cpp.o"
  "CMakeFiles/test_qoe.dir/qoe/model_test.cpp.o.d"
  "CMakeFiles/test_qoe.dir/qoe/session_qoe_test.cpp.o"
  "CMakeFiles/test_qoe.dir/qoe/session_qoe_test.cpp.o.d"
  "CMakeFiles/test_qoe.dir/qoe/subjective_study_test.cpp.o"
  "CMakeFiles/test_qoe.dir/qoe/subjective_study_test.cpp.o.d"
  "test_qoe"
  "test_qoe.pdb"
  "test_qoe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
