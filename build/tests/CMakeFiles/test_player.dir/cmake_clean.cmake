file(REMOVE_RECURSE
  "CMakeFiles/test_player.dir/player/multi_client_test.cpp.o"
  "CMakeFiles/test_player.dir/player/multi_client_test.cpp.o.d"
  "CMakeFiles/test_player.dir/player/player_test.cpp.o"
  "CMakeFiles/test_player.dir/player/player_test.cpp.o.d"
  "test_player"
  "test_player.pdb"
  "test_player[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
