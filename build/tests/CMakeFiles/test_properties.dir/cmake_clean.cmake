file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/property/downloader_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/property/downloader_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/property/model_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/property/model_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/property/multi_client_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/property/multi_client_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/property/parser_fuzz_test.cpp.o"
  "CMakeFiles/test_properties.dir/property/parser_fuzz_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/property/planner_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/property/planner_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/property/player_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/property/player_properties_test.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
  "test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
