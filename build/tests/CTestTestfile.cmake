# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_media[1]_include.cmake")
include("/root/repo/build/tests/test_sensors[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_qoe[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_player[1]_include.cmake")
include("/root/repo/build/tests/test_abr[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
