// Quickstart: the library in ~60 lines.
//
// Builds one synthetic "bus commute" session, streams a video with the
// paper's online context-aware algorithm, and compares energy/QoE against
// a fixed-1080p (YouTube-style) player.
//
//   ./examples/quickstart

#include <cstdio>

#include "eacs/abr/fixed.h"
#include "eacs/core/online.h"
#include "eacs/media/catalogue.h"
#include "eacs/player/player.h"
#include "eacs/sim/evaluation.h"
#include "eacs/sim/metrics.h"
#include "eacs/trace/session.h"
#include "eacs/util/table.h"

int main() {
  using namespace eacs;

  // 1. A streaming session: video metadata plus network/sensor traces.
  //    (Replace build_session with CSV-loaded real traces if you have them.)
  const media::SessionSpec spec = media::evaluation_sessions()[0];  // bus ride
  const trace::SessionTraces session = trace::build_session(spec);

  // 2. A DASH manifest: 2 s segments over the paper's 14-rate ladder.
  const media::VideoManifest manifest("quickstart", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());

  // 3. The models: QoE (bitrate + vibration) and power (bitrate + signal).
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;

  // 4. The paper's online algorithm, weighting energy and QoE equally.
  core::ObjectiveConfig objective_config;
  objective_config.alpha = 0.5;
  core::Objective objective(qoe_model, power_model, objective_config);
  core::OnlineBitrateSelector ours(objective, {.startup_level = 3});

  // 5. A YouTube-style baseline: everything at 5.8 Mbps.
  abr::FixedBitrate youtube;

  // 6. Replay the session with both policies and account the results.
  const player::PlayerSimulator simulator(manifest);
  const auto ours_run = simulator.run(ours, session);
  const auto youtube_run = simulator.run(youtube, session);

  const auto ours_metrics = sim::compute_metrics("Ours", spec.id, ours_run, manifest,
                                                 qoe_model, power_model);
  const auto youtube_metrics = sim::compute_metrics("Youtube", spec.id, youtube_run,
                                                    manifest, qoe_model, power_model);

  AsciiTable table("Quickstart: one bus-commute session (Table V trace 1)");
  table.set_header({"algorithm", "energy (J)", "mean QoE", "mean bitrate (Mbps)",
                    "rebuffer (s)"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight});
  for (const auto& m : {youtube_metrics, ours_metrics}) {
    table.add_row({m.algorithm, AsciiTable::num(m.total_energy_j, 1),
                   AsciiTable::num(m.mean_qoe, 2),
                   AsciiTable::num(m.mean_bitrate_mbps, 2),
                   AsciiTable::num(m.rebuffer_s, 1)});
  }
  table.print();

  const double saving = 1.0 - ours_metrics.total_energy_j / youtube_metrics.total_energy_j;
  const double degradation = 1.0 - ours_metrics.mean_qoe / youtube_metrics.mean_qoe;
  std::printf("\nEnergy saving vs Youtube: %.1f%%  |  QoE degradation: %.1f%%\n",
              saving * 100.0, degradation * 100.0);
  return 0;
}
