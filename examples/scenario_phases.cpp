// Scenario phases: a whole commute in one session — home → walk → bus →
// cafe — demonstrating the scenario builder, the context classifier, and
// how the context-aware algorithm adapts across context *transitions*.
//
//   ./examples/scenario_phases

#include <cstdio>

#include "eacs/core/online.h"
#include "eacs/player/player.h"
#include "eacs/sensors/context_classifier.h"
#include "eacs/sim/metrics.h"
#include "eacs/trace/scenario.h"
#include "eacs/util/table.h"

int main() {
  using namespace eacs;

  trace::ScenarioBuilder builder(20260705);
  builder.add_phase(trace::ScenarioPhase::home(90.0))
      .add_phase(trace::ScenarioPhase::walking(60.0))
      .add_phase(trace::ScenarioPhase::bus(240.0))
      .add_phase(trace::ScenarioPhase::cafe(90.0));

  std::printf("Building a %.0f s commute scenario...\n\n", builder.total_duration_s());
  const trace::SessionTraces session = builder.build();

  // Classify each phase from the raw accelerometer stream.
  AsciiTable phases("Phase classification (accelerometer features)");
  phases.set_header({"phase", "span (s)", "classified as", "vibration (m/s^2)",
                     "mean signal (dBm)"});
  phases.set_alignment({Align::kLeft, Align::kRight, Align::kLeft, Align::kRight,
                        Align::kRight});
  for (const auto& boundary : builder.boundaries()) {
    sensors::AccelTrace window;
    for (const auto& sample : session.accel) {
      // Skip the first 10 s of each phase: the classifier window should see
      // settled, single-context data.
      if (sample.t_s >= boundary.start_s + 10.0 && sample.t_s < boundary.end_s) {
        window.push_back(sample);
      }
    }
    const auto context = sensors::classify_window(window);
    const double vibration = sensors::mean_vibration_level(window);
    phases.add_row({boundary.label,
                    AsciiTable::num(boundary.start_s, 0) + "-" +
                        AsciiTable::num(boundary.end_s, 0),
                    sensors::to_string(context), AsciiTable::num(vibration, 2),
                    AsciiTable::num(session.signal_dbm.mean_over(
                                        boundary.start_s, boundary.end_s),
                                    1)});
  }
  phases.print();

  // Stream a video across the whole commute with the context-aware policy.
  const media::VideoManifest manifest("commute", builder.total_duration_s(), 2.0,
                                      media::BitrateLadder::evaluation14());
  core::Objective objective(qoe::QoeModel{}, power::PowerModel{},
                            core::ObjectiveConfig{});
  core::OnlineBitrateSelector policy(objective, {.startup_level = 3});
  const player::PlayerSimulator simulator(manifest);
  const auto playback = simulator.run(policy, session);

  // Mean chosen bitrate per phase: it should rise at home/cafe and fall on
  // the bus.
  AsciiTable adaptation("\nMean chosen bitrate per phase (Ours)");
  adaptation.set_header({"phase", "mean bitrate (Mbps)", "mean vibration seen"});
  adaptation.set_alignment({Align::kLeft, Align::kRight, Align::kRight});
  for (const auto& boundary : builder.boundaries()) {
    double bitrate = 0.0;
    double vibration = 0.0;
    std::size_t count = 0;
    for (const auto& task : playback.tasks) {
      if (task.download_start_s >= boundary.start_s &&
          task.download_start_s < boundary.end_s) {
        bitrate += task.bitrate_mbps;
        vibration += task.vibration;
        ++count;
      }
    }
    if (count == 0) continue;
    adaptation.add_row({boundary.label,
                        AsciiTable::num(bitrate / double(count), 2),
                        AsciiTable::num(vibration / double(count), 2)});
  }
  adaptation.print();

  const auto metrics = sim::compute_metrics("Ours", 0, playback, manifest,
                                            qoe::QoeModel{}, power::PowerModel{});
  std::printf("\nWhole commute: %.0f J, mean QoE %.2f, %zu switches, %.1f s stalled\n",
              metrics.total_energy_j, metrics.mean_qoe, metrics.switch_count,
              metrics.rebuffer_s);
  return 0;
}
