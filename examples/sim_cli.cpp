// sim_cli: command-line front end for the trace-driven simulator.
//
//   ./examples/sim_cli [--trace N] [--algo NAME] [--alpha X]
//                      [--segment S] [--buffer B] [--no-context]
//                      [--mpd out.mpd] [--all] [--sweep] [--jobs N]
//
//   --trace N      Table V session id (1..5; default 1)
//   --algo NAME    youtube | festive | bba | bola | mpc | ours | ours-rh |
//                  optimal (default: ours)
//   --alpha X      Eq. 11 energy weight (default 0.5)
//   --segment S    segment duration seconds (default 2)
//   --buffer B     buffer threshold seconds (default 30)
//   --no-context   disable the vibration term (energy-aware only)
//   --mpd FILE     also write the session's DASH MPD manifest to FILE
//   --csv FILE     also write the per-run metrics as CSV
//   --all          run every algorithm on --trace and print the comparison
//   --sweep        run the full Section V evaluation (all traces, all
//                  algorithms) and print the headline summary
//   --sensor-faults  run the sensor-fault study: degraded-context Ours vs.
//                  clean context and a context-blind baseline, per fault
//                  scenario x intensity
//   --cdn-faults   run the CDN fault study: server-fault family x intensity
//                  x source count, with the single-source column as the
//                  retry-only baseline failover is judged against
//   --fleet        run the fleet-scale simulation (DESIGN §12): event-driven
//                  sessions over the sharded cell network, streaming
//                  distribution aggregates instead of per-session rows
//   --sessions N   fleet size for --fleet (default 10000)
//   --cells N      cell count for --fleet (default 16)
//   --regions N    mobility regions for --fleet (default 8; model parameter,
//                  not an execution knob)
//   --policy NAME  fleet client policy: "throughput" (default) or "planner"
//                  (the Eq. 11 rolling-horizon planner on every client,
//                  memoized through the context-quantized decision cache;
//                  prints cache hit/miss/plan counters)
//   --fleet-faults overlay the seeded infrastructure-fault model (DESIGN §14)
//                  on the --fleet run: correlated cell outages, capacity
//                  brownouts, signal collapses and flash crowds drawn over a
//                  horizon covering the whole run. Fixed CLI fault shape, so
//                  the run is reproducible bit-for-bit
//   --checkpoint FILE     with --fleet: cut the run at --checkpoint-at T,
//                  write the bit-exact sidecar to FILE, and exit. A later
//                  --resume FILE (any process, any --jobs) continues to the
//                  identical final metrics
//   --checkpoint-at T     sim-time cut point in seconds for --checkpoint
//   --resume FILE  with --fleet: load the sidecar written by --checkpoint and
//                  run the remainder. The config fingerprint must match the
//                  checkpointing run's (same flags except --jobs)
//   --jobs N       worker threads for --sweep / --all / --sensor-faults /
//                  --cdn-faults / --fleet (0 = all hardware threads; results
//                  are bit-identical at any value)
//
// Fleet runs end with a one-line degradation banner (degraded time, escape
// handoffs, retries, abandonments, planner sheds, wasted energy) and a
// machine-parsable "fleet-counters:" line the CI resume smoke pins exactly.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>

#include "eacs/abr/bba.h"
#include "eacs/abr/bola.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/abr/mpc.h"
#include "eacs/core/horizon.h"
#include "eacs/core/online.h"
#include "eacs/core/optimal.h"
#include "eacs/media/mpd.h"
#include "eacs/sim/cdn_fault_study.h"
#include "eacs/sim/evaluation.h"
#include "eacs/sim/fleet.h"
#include "eacs/sim/fleet_checkpoint.h"
#include "eacs/sim/fleet_faults.h"
#include "eacs/sim/report.h"
#include "eacs/sim/sensor_fault_study.h"
#include "eacs/util/table.h"
#include "eacs/util/thread_pool.h"

namespace {

using namespace eacs;

struct CliOptions {
  int trace_id = 1;
  std::string algo = "ours";
  double alpha = 0.5;
  double segment_s = 2.0;
  double buffer_s = 30.0;
  bool context_aware = true;
  bool run_all = false;
  bool sweep = false;
  bool sensor_faults = false;
  bool cdn_faults = false;
  bool fleet = false;
  bool fleet_faults = false;
  std::size_t fleet_sessions = 10000;
  std::size_t fleet_cells = 16;
  std::size_t fleet_regions = 8;
  std::string fleet_policy = "throughput";
  std::string checkpoint_path;
  double checkpoint_at_s = 0.0;
  std::string resume_path;
  std::size_t jobs = 1;
  std::string mpd_path;
  std::string csv_path;
};

[[noreturn]] void usage_error(const char* message) {
  std::fprintf(stderr, "sim_cli: %s\n", message);
  std::fprintf(stderr,
               "usage: sim_cli [--trace N] [--algo NAME] [--alpha X] [--segment S]\n"
               "               [--buffer B] [--no-context] [--mpd FILE] [--all]\n"
               "               [--sweep] [--sensor-faults] [--cdn-faults] [--jobs N]\n"
               "               [--fleet] [--sessions N] [--cells N] [--regions N]\n"
               "               [--policy throughput|planner] [--fleet-faults]\n"
               "               [--checkpoint FILE --checkpoint-at T] [--resume FILE]\n");
  std::exit(2);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) usage_error(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--trace") options.trace_id = std::atoi(next_value());
    else if (arg == "--algo") options.algo = next_value();
    else if (arg == "--alpha") options.alpha = std::atof(next_value());
    else if (arg == "--segment") options.segment_s = std::atof(next_value());
    else if (arg == "--buffer") options.buffer_s = std::atof(next_value());
    else if (arg == "--no-context") options.context_aware = false;
    else if (arg == "--mpd") options.mpd_path = next_value();
    else if (arg == "--csv") options.csv_path = next_value();
    else if (arg == "--all") options.run_all = true;
    else if (arg == "--sweep") options.sweep = true;
    else if (arg == "--sensor-faults") options.sensor_faults = true;
    else if (arg == "--cdn-faults") options.cdn_faults = true;
    else if (arg == "--fleet") options.fleet = true;
    else if (arg == "--fleet-faults") options.fleet_faults = true;
    else if (arg == "--checkpoint") options.checkpoint_path = next_value();
    else if (arg == "--checkpoint-at") options.checkpoint_at_s = std::atof(next_value());
    else if (arg == "--resume") options.resume_path = next_value();
    else if (arg == "--policy") {
      options.fleet_policy = next_value();
      if (options.fleet_policy != "throughput" &&
          options.fleet_policy != "planner") {
        usage_error("--policy must be \"throughput\" or \"planner\"");
      }
    }
    else if (arg == "--sessions" || arg == "--cells" || arg == "--regions") {
      const int value = std::atoi(next_value());
      if (value < 1) usage_error((arg + " must be >= 1").c_str());
      (arg == "--sessions"  ? options.fleet_sessions
       : arg == "--cells"   ? options.fleet_cells
                            : options.fleet_regions) =
          static_cast<std::size_t>(value);
    }
    else if (arg == "--jobs") {
      const int jobs = std::atoi(next_value());
      if (jobs < 0) usage_error("--jobs must be >= 0");
      options.jobs = static_cast<std::size_t>(jobs);
    }
    else usage_error(("unknown argument " + arg).c_str());
  }
  if (options.trace_id < 1 || options.trace_id > 5) {
    usage_error("--trace must be 1..5");
  }
  if (options.alpha < 0.0 || options.alpha > 1.0) usage_error("--alpha must be in [0,1]");
  const bool fleet_only = options.fleet_faults || !options.checkpoint_path.empty() ||
                          !options.resume_path.empty();
  if (fleet_only && !options.fleet) {
    usage_error("--fleet-faults / --checkpoint / --resume require --fleet");
  }
  if (!options.checkpoint_path.empty() && !options.resume_path.empty()) {
    usage_error("--checkpoint and --resume are mutually exclusive");
  }
  if (!options.checkpoint_path.empty() && !(options.checkpoint_at_s > 0.0)) {
    usage_error("--checkpoint requires --checkpoint-at T with T > 0");
  }
  return options;
}

std::unique_ptr<player::AbrPolicy> make_policy(const std::string& name,
                                               const core::Objective& objective,
                                               const media::VideoManifest& manifest,
                                               const trace::SessionTraces& session) {
  if (name == "youtube") return std::make_unique<abr::FixedBitrate>();
  if (name == "festive") return std::make_unique<abr::Festive>();
  if (name == "bba") return std::make_unique<abr::Bba>(5.0, 30.0);
  if (name == "bola") return std::make_unique<abr::Bola>(5.0, 30.0);
  if (name == "mpc") return std::make_unique<abr::Mpc>();
  if (name == "ours") {
    return std::make_unique<core::OnlineBitrateSelector>(
        objective, core::OnlineOptions{.startup_level = 3});
  }
  if (name == "ours-rh") {
    return std::make_unique<core::RollingHorizonSelector>(
        objective, core::HorizonOptions{.horizon = 5, .startup_level = 3});
  }
  if (name == "optimal") {
    const auto tasks = core::build_task_environments(manifest, session);
    core::OptimalPlanner planner(objective);
    return std::make_unique<core::PlannedPolicy>(planner.plan(tasks));
  }
  usage_error(("unknown algorithm '" + name + "'").c_str());
}

}  // namespace

/// --sweep: the full Section V evaluation over all Table V sessions, fanned
/// out over options.jobs workers.
int run_sweep(const CliOptions& options) {
  sim::EvaluationConfig config;
  config.alpha = options.alpha;
  config.segment_duration_s = options.segment_s;
  config.player.buffer_threshold_s = options.buffer_s;
  config.context_aware = options.context_aware;
  config.exec.jobs = options.jobs;
  std::printf("Section V evaluation: 5 sessions x 5 algorithms, jobs=%zu\n",
              config.exec.resolved_jobs());

  const sim::Evaluation evaluation(config);
  const auto result = evaluation.run();

  eacs::AsciiTable table("Headline summary vs. Youtube");
  table.set_header({"algorithm", "mean QoE", "energy saving", "extra saving",
                    "QoE degradation", "ratio"});
  table.set_alignment({eacs::Align::kLeft, eacs::Align::kRight, eacs::Align::kRight,
                       eacs::Align::kRight, eacs::Align::kRight, eacs::Align::kRight});
  for (const auto& algo : result.algorithms()) {
    table.add_row({algo, eacs::AsciiTable::num(result.mean_qoe(algo), 2),
                   eacs::AsciiTable::percent(result.mean_energy_saving(algo), 1),
                   eacs::AsciiTable::percent(result.mean_extra_energy_saving(algo), 1),
                   eacs::AsciiTable::percent(result.mean_qoe_degradation(algo), 1),
                   eacs::AsciiTable::num(result.saving_degradation_ratio(algo), 1)});
  }
  table.print();
  if (!options.csv_path.empty()) {
    sim::write_evaluation_csv(options.csv_path, result);
    std::printf("Metrics CSV written to %s\n", options.csv_path.c_str());
  }
  return 0;
}

/// --sensor-faults: the sensor-fault study — degraded-context Ours across the
/// fault scenario x intensity grid, against clean-context Ours and a
/// context-blind BBA baseline.
int run_sensor_faults(const CliOptions& options) {
  sim::SensorFaultStudyConfig config;
  config.evaluation.alpha = options.alpha;
  config.evaluation.segment_duration_s = options.segment_s;
  config.evaluation.player.buffer_threshold_s = options.buffer_s;
  config.evaluation.context_aware = options.context_aware;
  config.evaluation.exec.jobs = options.jobs;
  std::printf("Sensor-fault study: %zu scenarios x %zu intensities x 5 sessions, "
              "jobs=%zu\n",
              sim::all_sensor_fault_scenarios().size(), config.intensities.size(),
              config.evaluation.exec.resolved_jobs());

  const auto result = sim::run_sensor_fault_study(config);
  std::printf("Clean-context Ours: QoE %.3f, energy %.1f J | context-blind %s: "
              "QoE %.3f, energy %.1f J\n",
              result.clean_ours.mean_qoe, result.clean_ours.total_energy_j,
              result.context_blind.algorithm.c_str(),
              result.context_blind.mean_qoe, result.context_blind.total_energy_j);

  eacs::AsciiTable table("Degraded-context Ours vs. clean context and context-blind");
  table.set_header({"fault", "intensity", "QoE", "QoE d clean", "QoE d blind",
                    "energy d J", "rebuffer d s", "ctx err"});
  table.set_alignment({eacs::Align::kLeft, eacs::Align::kRight, eacs::Align::kRight,
                       eacs::Align::kRight, eacs::Align::kRight, eacs::Align::kRight,
                       eacs::Align::kRight, eacs::Align::kRight});
  for (const auto& cell : result.cells) {
    table.add_row({sim::to_string(cell.scenario),
                   eacs::AsciiTable::num(cell.intensity, 2),
                   eacs::AsciiTable::num(cell.mean_qoe, 3),
                   eacs::AsciiTable::num(cell.qoe_delta_vs_clean, 3),
                   eacs::AsciiTable::num(cell.qoe_delta_vs_blind, 3),
                   eacs::AsciiTable::num(cell.energy_delta_vs_clean_j, 1),
                   eacs::AsciiTable::num(cell.rebuffer_delta_vs_clean_s, 1),
                   eacs::AsciiTable::num(cell.mean_context_error, 2)});
  }
  table.print();
  return 0;
}

/// --cdn-faults: the CDN fault study — server-fault family x intensity x
/// source count, judged against the single-source retry-only column.
int run_cdn_faults(const CliOptions& options) {
  sim::CdnFaultStudyConfig config;
  config.evaluation.alpha = options.alpha;
  config.evaluation.segment_duration_s = options.segment_s;
  config.evaluation.player.buffer_threshold_s = options.buffer_s;
  config.evaluation.context_aware = options.context_aware;
  config.evaluation.exec.jobs = options.jobs;
  std::printf("CDN fault study: %zu families x %zu intensities x %zu source "
              "counts x 5 sessions, jobs=%zu\n",
              sim::all_cdn_fault_families().size(), config.intensities.size(),
              config.source_counts.size(), config.evaluation.exec.resolved_jobs());

  const auto result = sim::run_cdn_fault_study(config);
  std::printf("Fault-free single source (%s): QoE %.3f, energy %.1f J, "
              "rebuffer %.1f s\n",
              result.clean.algorithm.c_str(), result.clean.mean_qoe,
              result.clean.total_energy_j, result.clean.rebuffer_s);

  eacs::AsciiTable table("Delivery robustness vs. the single-source retry-only baseline");
  table.set_header({"fault", "intensity", "srcs", "QoE", "rebuffer s",
                    "QoE d single", "rebuf d single", "waste J", "failovers",
                    "hedges", "breaker"});
  table.set_alignment({eacs::Align::kLeft, eacs::Align::kRight, eacs::Align::kRight,
                       eacs::Align::kRight, eacs::Align::kRight, eacs::Align::kRight,
                       eacs::Align::kRight, eacs::Align::kRight, eacs::Align::kRight,
                       eacs::Align::kRight, eacs::Align::kRight});
  for (const auto& cell : result.cells) {
    table.add_row({sim::to_string(cell.family),
                   eacs::AsciiTable::num(cell.intensity, 2),
                   std::to_string(cell.sources),
                   eacs::AsciiTable::num(cell.mean_qoe, 3),
                   eacs::AsciiTable::num(cell.rebuffer_s, 1),
                   eacs::AsciiTable::num(cell.qoe_delta_vs_single, 3),
                   eacs::AsciiTable::num(cell.rebuffer_delta_vs_single_s, 1),
                   eacs::AsciiTable::num(cell.wasted_energy_j, 1),
                   std::to_string(cell.failovers), std::to_string(cell.hedges),
                   std::to_string(cell.breaker_transitions)});
  }
  table.print();
  return 0;
}

/// --fleet: the fleet-scale simulation — event-driven sessions over the
/// sharded cell network, reported as streaming distribution aggregates.
int run_fleet_mode(const CliOptions& options) {
  sim::FleetConfig config;
  config.network.num_cells = options.fleet_cells;
  config.num_sessions = options.fleet_sessions;
  config.regions = options.fleet_regions;
  config.segment_duration_s = options.segment_s;
  config.buffer_threshold_s = options.buffer_s;
  if (!options.context_aware) config.vibration_cap_threshold = 1e9;
  if (options.fleet_policy == "planner") {
    config.policy = sim::FleetPolicy::kPlanner;
    config.planner_alpha = options.alpha;
  }
  config.exec.jobs = options.jobs;
  if (options.fleet_faults) {
    // The fixed CLI fault shape: a seeded overlay whose horizon covers the
    // whole run (arrival span plus a generous drain margin), so every run
    // with the same fleet flags reproduces the identical episode set.
    sim::SeededFaultConfig& seeded = config.faults.seeded;
    seeded.horizon_s = static_cast<double>(config.num_sessions) /
                           config.arrival_rate_per_s +
                       300.0;
    seeded.epoch_s = 60.0;
    // Half-region fault domains: outages usually leave a live cell in the
    // region, so the escape-handoff rung of the ladder gets exercised, not
    // just whole-region backoff.
    seeded.domain_cells =
        std::max<std::size_t>(config.network.num_cells / (2 * config.regions), 1);
    seeded.outage_prob = 0.25;
    seeded.outage_duration_s = 45.0;
    seeded.brownout_prob = 0.35;
    seeded.brownout_factor = 0.4;
    seeded.collapse_prob = 0.35;
    seeded.collapse_db = -18.0;
    seeded.surge_prob = 0.3;
    seeded.surge_multiplier = 3.0;
  }
  std::printf("Fleet: %zu sessions over %zu cells in %zu regions, "
              "policy=%s, faults=%s, jobs=%zu\n",
              config.num_sessions, config.network.num_cells, config.regions,
              options.fleet_policy.c_str(),
              config.faults.empty() ? "off" : "on",
              config.exec.resolved_jobs());

  if (!options.checkpoint_path.empty()) {
    const sim::FleetCheckpoint checkpoint =
        sim::run_fleet_until(config, options.checkpoint_at_s);
    sim::save_fleet_checkpoint(checkpoint, options.checkpoint_path);
    std::size_t pending = 0, live = 0;
    for (const auto& region : checkpoint.regions) {
      pending += region.events.size();
      live += region.live;
    }
    std::printf("checkpoint cut at t=%.1f s: %zu pending events, %zu live "
                "sessions across %zu regions -> %s\n",
                checkpoint.checkpoint_t_s, pending, live,
                checkpoint.regions.size(), options.checkpoint_path.c_str());
    std::printf("resume with: sim_cli --fleet ... --resume %s (identical "
                "flags; --jobs may differ)\n",
                options.checkpoint_path.c_str());
    return 0;
  }

  sim::FleetMetrics metrics;
  if (!options.resume_path.empty()) {
    const sim::FleetCheckpoint checkpoint =
        sim::load_fleet_checkpoint(options.resume_path);
    std::printf("resuming from %s (cut at t=%.1f s)\n",
                options.resume_path.c_str(), checkpoint.checkpoint_t_s);
    metrics = sim::resume_fleet(config, checkpoint);
  } else {
    metrics = sim::run_fleet(config);
  }
  std::printf("events %zu, requests %zu, handoffs %zu, stalls %zu, "
              "peak live %zu\n",
              metrics.events, metrics.requests, metrics.handoffs,
              metrics.stall_events, metrics.peak_live_sessions);
  // The degradation ladder in one line (DESIGN §14), plus the exact-counter
  // line the CI kill-and-resume smoke pins.
  std::printf("degraded: %.1f s in backoff, %zu escape handoffs, %zu retries, "
              "%zu abandoned, %zu sheds / %zu recoveries, %.1f J wasted\n",
              metrics.degraded_time_s, metrics.escape_handoffs,
              metrics.backoff_retries, metrics.abandoned_sessions,
              metrics.policy_sheds, metrics.policy_recoveries,
              metrics.wasted_energy_j);
  std::printf("fleet-counters: events=%zu requests=%zu handoffs=%zu "
              "stalls=%zu sessions=%zu abandoned=%zu escapes=%zu retries=%zu "
              "sheds=%zu recoveries=%zu shed_decisions=%zu\n",
              metrics.events, metrics.requests, metrics.handoffs,
              metrics.stall_events, metrics.sessions,
              metrics.abandoned_sessions, metrics.escape_handoffs,
              metrics.backoff_retries, metrics.policy_sheds,
              metrics.policy_recoveries, metrics.shed_decisions);
  if (config.policy == sim::FleetPolicy::kPlanner) {
    const auto& planner = metrics.planner;
    const auto lookups = planner.cache_hits + planner.cache_misses;
    std::printf("planner: %llu plans, cache %llu/%llu hits (%.1f%%), "
                "%llu evictions, %llu model evals\n",
                static_cast<unsigned long long>(planner.plans),
                static_cast<unsigned long long>(planner.cache_hits),
                static_cast<unsigned long long>(lookups),
                lookups > 0 ? 100.0 * static_cast<double>(planner.cache_hits) /
                                  static_cast<double>(lookups)
                            : 0.0,
                static_cast<unsigned long long>(planner.cache_evictions),
                static_cast<unsigned long long>(planner.model_evals()));
  }
  std::printf("\n");

  eacs::AsciiTable table("Fleet distributions (streaming aggregates)");
  table.set_header({"metric", "mean", "p50", "p90"});
  table.set_alignment({eacs::Align::kLeft, eacs::Align::kRight,
                       eacs::Align::kRight, eacs::Align::kRight});
  table.add_row({"QoE", eacs::AsciiTable::num(metrics.qoe.mean(), 3),
                 eacs::AsciiTable::num(metrics.qoe_quantile(0.5), 3),
                 eacs::AsciiTable::num(metrics.qoe_quantile(0.9), 3)});
  table.add_row({"energy (J)", eacs::AsciiTable::num(metrics.energy_j.mean(), 1),
                 eacs::AsciiTable::num(metrics.energy_quantile(0.5), 1),
                 eacs::AsciiTable::num(metrics.energy_quantile(0.9), 1)});
  table.add_row({"rebuffer (s)", eacs::AsciiTable::num(metrics.rebuffer_s.mean(), 2),
                 eacs::AsciiTable::num(metrics.rebuffer_quantile(0.5), 2),
                 eacs::AsciiTable::num(metrics.rebuffer_quantile(0.9), 2)});
  table.add_row({"bitrate (Mbps)",
                 eacs::AsciiTable::num(metrics.bitrate_mbps.mean(), 2), "-", "-"});
  table.add_row({"startup (s)", eacs::AsciiTable::num(metrics.startup_s.mean(), 2),
                 "-", "-"});
  table.print();

  eacs::AsciiTable regions("Per-region shard view (P^2 streaming medians)");
  regions.set_header({"region", "cells", "sessions", "handoffs", "peak live",
                      "median QoE", "median J"});
  regions.set_alignment({eacs::Align::kRight, eacs::Align::kRight,
                         eacs::Align::kRight, eacs::Align::kRight,
                         eacs::Align::kRight, eacs::Align::kRight,
                         eacs::Align::kRight});
  for (const auto& region : metrics.regions) {
    regions.add_row({std::to_string(region.region),
                     std::to_string(region.num_cells),
                     std::to_string(region.sessions),
                     std::to_string(region.handoffs),
                     std::to_string(region.peak_live_sessions),
                     eacs::AsciiTable::num(region.median_qoe, 3),
                     eacs::AsciiTable::num(region.median_energy_j, 1)});
  }
  regions.print();
  return 0;
}

int main(int argc, char** argv) {
  const CliOptions options = parse_cli(argc, argv);
  if (options.sweep) return run_sweep(options);
  if (options.sensor_faults) return run_sensor_faults(options);
  if (options.cdn_faults) return run_cdn_faults(options);
  if (options.fleet) {
    // Surface checkpoint-layer failures (foreign fingerprint, truncated
    // sidecar, malformed fault spec) as a clean diagnostic, not a terminate.
    try {
      return run_fleet_mode(options);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "sim_cli: %s\n", error.what());
      return 1;
    }
  }

  const auto& spec = media::evaluation_sessions()[options.trace_id - 1];
  std::printf("Trace %d: %.0f s video, avg vibration %.2f m/s^2\n", spec.id,
              spec.length_s, spec.avg_vibration);
  const auto session = trace::build_session(spec);

  const media::VideoManifest manifest("trace" + std::to_string(spec.id),
                                      spec.length_s, options.segment_s,
                                      media::BitrateLadder::evaluation14());
  if (!options.mpd_path.empty()) {
    std::ofstream out(options.mpd_path);
    out << media::to_mpd_xml(manifest);
    std::printf("MPD manifest written to %s\n", options.mpd_path.c_str());
  }

  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  core::ObjectiveConfig objective_config;
  objective_config.alpha = options.alpha;
  objective_config.buffer_threshold_s = options.buffer_s;
  objective_config.context_aware = options.context_aware;
  const core::Objective objective(qoe_model, power_model, objective_config);

  player::PlayerConfig player_config;
  player_config.buffer_threshold_s = options.buffer_s;
  const player::PlayerSimulator simulator(manifest, player_config);

  const std::vector<std::string> names =
      options.run_all
          ? std::vector<std::string>{"youtube", "festive", "bba", "bola", "mpc",
                                     "ours", "ours-rh", "optimal"}
          : std::vector<std::string>{options.algo};

  eacs::AsciiTable table("Results");
  table.set_header({"algorithm", "energy (J)", "extra (J)", "QoE", "bitrate (Mbps)",
                    "rebuffer (s)", "switches", "startup (s)"});
  table.set_alignment({eacs::Align::kLeft, eacs::Align::kRight, eacs::Align::kRight,
                       eacs::Align::kRight, eacs::Align::kRight, eacs::Align::kRight,
                       eacs::Align::kRight, eacs::Align::kRight});
  // Each policy run is a pure unit of work (fresh policy instance, const
  // simulator), so --jobs fans them out without changing any number.
  sim::EvaluationResult collected;
  collected.rows = eacs::util::parallel_map(
      sim::ExecutionPolicy{options.jobs}.resolved_jobs(),
      names.size(), [&](std::size_t i) {
        auto policy = make_policy(names[i], objective, manifest, session);
        const auto playback = simulator.run(*policy, session);
        return sim::compute_metrics(policy->name(), spec.id, playback, manifest,
                                    qoe_model, power_model);
      });
  for (const auto& metrics : collected.rows) {
    table.add_row({metrics.algorithm, eacs::AsciiTable::num(metrics.total_energy_j, 1),
                   eacs::AsciiTable::num(metrics.extra_energy_j, 1),
                   eacs::AsciiTable::num(metrics.mean_qoe, 2),
                   eacs::AsciiTable::num(metrics.mean_bitrate_mbps, 2),
                   eacs::AsciiTable::num(metrics.rebuffer_s, 1),
                   std::to_string(metrics.switch_count),
                   eacs::AsciiTable::num(metrics.startup_delay_s, 2)});
  }
  table.print();
  if (!options.csv_path.empty()) {
    sim::write_evaluation_csv(options.csv_path, collected);
    std::printf("Metrics CSV written to %s\n", options.csv_path.c_str());
  }
  return 0;
}
