// Trace explorer: synthesises the five Table V evaluation sessions, prints
// their measured statistics next to the paper's reported values, and saves
// every trace as CSV so it can be inspected or replaced with real recordings.
//
//   ./examples/trace_explorer [output-dir] [--timeline <path>]
//
// With --timeline, one playback session (FESTIVE over Table V session 1) is
// replayed through the SessionEngine with a SessionTimeline observer attached
// and the full per-event log is written to <path> as CSV.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "eacs/abr/festive.h"
#include "eacs/media/manifest.h"
#include "eacs/player/player.h"
#include "eacs/player/session_engine.h"
#include "eacs/sensors/vibration.h"
#include "eacs/trace/session.h"
#include "eacs/trace/trace_io.h"
#include "eacs/util/stats.h"
#include "eacs/util/table.h"

namespace {

// Replays FESTIVE over `session` with a SessionTimeline attached and dumps
// the per-event CSV log to `path`.
void dump_timeline(const eacs::trace::SessionTraces& session,
                   const std::string& path) {
  using namespace eacs;
  const media::VideoManifest manifest("trace-explorer", session.spec.length_s,
                                      2.0, media::BitrateLadder::evaluation14());
  const player::PlayerSimulator simulator(manifest);
  abr::Festive policy;
  player::SessionTimeline timeline;
  const auto result = simulator.run(policy, session, &timeline);
  timeline.write_csv(path);
  std::printf(
      "\nTimeline: FESTIVE on session %d -> %zu events "
      "(%zu requests, %zu stalls) written to %s\n",
      session.spec.id, timeline.events().size(),
      timeline.count(player::SessionEventType::kRequestIssued),
      timeline.count(player::SessionEventType::kStall), path.c_str());
  std::printf("          mean bitrate %.2f Mbps, rebuffer %.1f s over %zu tasks\n",
              result.mean_bitrate_mbps(), result.total_rebuffer_s,
              result.tasks.size());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eacs;

  std::string timeline_path;
  std::filesystem::path out_dir =
      std::filesystem::temp_directory_path() / "eacs_traces";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timeline") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--timeline requires a path argument\n");
        return 1;
      }
      timeline_path = argv[++i];
    } else {
      out_dir = argv[i];
    }
  }
  std::filesystem::create_directories(out_dir);

  std::printf("Synthesising the five Table V sessions (deterministic seeds)...\n\n");
  const auto sessions = trace::build_all_sessions();

  AsciiTable table("Evaluation sessions (paper Table V vs measured synthetic)");
  table.set_header({"id", "length (s)", "paper vib.", "measured vib.",
                    "mean signal (dBm)", "mean bw (Mbps)", "accel samples"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});
  for (const auto& session : sessions) {
    const double measured_vibration = sensors::mean_vibration_level(session.accel);
    const auto signal_values = session.signal_dbm.values();
    const auto throughput_values = session.throughput_mbps.values();
    table.add_row({std::to_string(session.spec.id),
                   AsciiTable::num(session.spec.length_s, 0),
                   AsciiTable::num(session.spec.avg_vibration, 2),
                   AsciiTable::num(measured_vibration, 2),
                   AsciiTable::num(mean(signal_values), 1),
                   AsciiTable::num(mean(throughput_values), 1),
                   std::to_string(session.accel.size())});

    const auto prefix = out_dir / ("trace" + std::to_string(session.spec.id));
    trace::save_time_series(prefix.string() + "_signal_dbm.csv", session.signal_dbm);
    trace::save_time_series(prefix.string() + "_throughput_mbps.csv",
                            session.throughput_mbps);
    trace::save_accel(prefix.string() + "_accel.csv", session.accel);
  }
  table.print();

  std::printf("\nCSV traces written to %s\n", out_dir.c_str());
  std::printf("Round-trip check: reloading trace1 signal... ");
  const auto reloaded =
      trace::load_time_series(out_dir / "trace1_signal_dbm.csv");
  std::printf("%zu samples, mean %.1f dBm. OK.\n", reloaded.size(),
              mean(reloaded.values()));

  if (!timeline_path.empty()) dump_timeline(sessions.front(), timeline_path);
  return 0;
}
