// Subjective study: reproduces the paper's Section III-B model-building
// pipeline against a simulated 20-subject ITU-T P.910 rater panel.
//
// Prints the per-condition MOS table, then the least-squares fits for the
// original-quality curve and the vibration-impairment surface, next to the
// ground-truth coefficients the panel was generated from.
//
//   ./examples/subjective_study

#include <cstdio>

#include "eacs/qoe/subjective_study.h"
#include "eacs/util/table.h"

int main() {
  using namespace eacs;
  using namespace eacs::qoe;

  const QoeModelParams truth;  // the paper's Table III reconstruction
  StudyConfig config;          // 20 subjects, realistic rating noise

  std::printf("Simulating a %zu-subject quality-assessment study "
              "(10 videos x 6 bitrates x 2 contexts)...\n\n",
              config.num_subjects);
  SubjectiveStudy study(config, QoeModel{truth});
  const auto ratings = study.run();
  const auto mos = SubjectiveStudy::aggregate(ratings, config.vibration_bin);
  std::printf("Collected %zu individual ratings -> %zu MOS conditions\n\n",
              ratings.size(), mos.size());

  // Quiet-room MOS per bitrate (the Fig. 2(b) data points).
  AsciiTable room_table("Quiet-room MOS by bitrate (Fig. 2(b) input)");
  room_table.set_header({"bitrate (Mbps)", "MOS", "ratings"});
  room_table.set_alignment({Align::kRight, Align::kRight, Align::kRight});
  for (const auto& point : mos) {
    if (point.vibration < 1.0) {
      room_table.add_row({AsciiTable::num(point.bitrate_mbps, 3),
                          AsciiTable::num(point.mos, 2), std::to_string(point.n)});
    }
  }
  room_table.print();

  const QoeFit fit = fit_qoe_model_from_ratings(ratings);

  AsciiTable fit_table("\nLeast-squares fit vs ground truth (Table III pipeline)");
  fit_table.set_header({"coefficient", "ground truth", "fitted"});
  fit_table.set_alignment({Align::kLeft, Align::kRight, Align::kRight});
  fit_table.add_row({"a (q0 scale)", AsciiTable::num(truth.a, 3),
                     AsciiTable::num(fit.params.a, 3)});
  fit_table.add_row({"b (q0 exponent)", AsciiTable::num(truth.b, 3),
                     AsciiTable::num(fit.params.b, 3)});
  fit_table.add_row({"kappa (impairment scale)", AsciiTable::num(truth.kappa, 4),
                     AsciiTable::num(fit.params.kappa, 4)});
  fit_table.add_row({"alpha_v (vibration exponent)", AsciiTable::num(truth.alpha_v, 3),
                     AsciiTable::num(fit.params.alpha_v, 3)});
  fit_table.add_row({"beta_r (bitrate exponent)", AsciiTable::num(truth.beta_r, 3),
                     AsciiTable::num(fit.params.beta_r, 3)});
  fit_table.print();

  std::printf("\nq0 curve fit: R^2 = %.4f (%zu Gauss-Newton iterations)\n",
              fit.curve_fit.r_squared, fit.curve_fit.iterations);
  std::printf("impairment surface fit: R^2 = %.4f\n", fit.surface_fit.r_squared);

  // The surface exponents are weakly identified from a single 20-subject
  // study (rating noise rivals the impairment signal); what the fit pins
  // down is the surface *values* in the region that drives decisions:
  const QoeModel truth_model{truth};
  const QoeModel fitted_model{fit.params};
  AsciiTable surface("\nFitted impairment surface at the paper's spot checks");
  surface.set_header({"(v, r)", "truth I(v,r)", "fitted I(v,r)"});
  surface.set_alignment({Align::kLeft, Align::kRight, Align::kRight});
  for (const auto& [v, r] : {std::pair{2.0, 1.5}, std::pair{6.0, 1.5},
                             std::pair{2.0, 5.8}, std::pair{6.0, 5.8}}) {
    surface.add_row({"(" + AsciiTable::num(v, 0) + ", " + AsciiTable::num(r, 1) + ")",
                     AsciiTable::num(truth_model.vibration_impairment(v, r), 3),
                     AsciiTable::num(fitted_model.vibration_impairment(v, r), 3)});
  }
  surface.print();
  return 0;
}
