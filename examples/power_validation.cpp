// Power-model validation: the paper's Table VI methodology against the
// simulated Monsoon power monitor.
//
// Streams a 300 s test clip at each Table II bitrate under a -90 dBm signal,
// integrates the (simulated) measured power trace, and compares it with the
// analytic model's prediction.
//
//   ./examples/power_validation

#include <cstdio>

#include "eacs/power/validation.h"
#include "eacs/util/table.h"

int main() {
  using namespace eacs;
  using namespace eacs::power;

  const PowerModel model;
  ValidationConfig config;  // 300 s clip, -90 dBm, 2 s segments

  std::printf("Validating the power model against the simulated Monsoon monitor\n"
              "(%.0f s clip at %.0f dBm, %.0f kHz sampling)...\n\n",
              config.video_duration_s, config.signal_dbm,
              config.monsoon.sample_rate_hz / 1000.0);

  const auto rows = validate_power_model(model, media::BitrateLadder::table2(), config);

  AsciiTable table("Power model validation (paper Table VI)");
  table.set_header({"bitrate (Mbps)", "measured (J)", "calculated (J)", "error"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {  // paper lists high->low
    table.add_row({AsciiTable::num(it->bitrate_mbps, 3),
                   AsciiTable::num(it->measured_j, 2),
                   AsciiTable::num(it->calculated_j, 2),
                   AsciiTable::percent(it->error_ratio, 2)});
  }
  table.print();

  std::printf("\nMean error ratio: %.2f%% (paper reports 1.43%%, always < 3%%)\n",
              mean_error_ratio(rows) * 100.0);
  return 0;
}
