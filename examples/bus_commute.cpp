// Bus commute: the paper's motivating scenario end to end.
//
// Generates a weak-signal, high-vibration commute session, replays it with
// all five algorithms (plus BOLA), and prints the per-algorithm outcome
// table together with a decision timeline excerpt for the context-aware
// algorithm, showing vibration/signal/bandwidth feeding each choice.
//
//   ./examples/bus_commute

#include <cstdio>

#include "eacs/core/context_monitor.h"
#include "eacs/core/online.h"
#include "eacs/sim/evaluation.h"
#include "eacs/util/table.h"

int main() {
  using namespace eacs;

  // A rough ride: Table V's trace 3 (449 s, average vibration 6.61 m/s^2).
  const media::SessionSpec spec = media::evaluation_sessions()[2];
  std::printf("Synthesising commute session %d: %.0f s video, target vibration "
              "%.2f m/s^2...\n\n",
              spec.id, spec.length_s, spec.avg_vibration);
  const trace::SessionTraces session = trace::build_session(spec);

  // Demonstrate the app-facing sensing API on the raw session streams.
  core::ContextMonitor monitor;
  for (const auto& sample : session.accel) {
    if (sample.t_s > 60.0) break;  // first minute of the ride
    monitor.update_accel(sample);
  }
  monitor.observe_signal(session.signal_dbm.linear_at(60.0));
  const auto snapshot = monitor.snapshot();
  std::printf("ContextMonitor after 60 s of riding: vibration %.2f m/s^2, "
              "signal %.1f dBm, vibrating=%s\n\n",
              snapshot.vibration, snapshot.signal_dbm,
              snapshot.vibrating_environment ? "yes" : "no");

  // Full algorithm comparison on this one session.
  sim::EvaluationConfig config;
  config.include_bola = true;
  const sim::Evaluation evaluation(config);
  const auto result = evaluation.run({session});

  AsciiTable table("Bus commute: all algorithms on one session");
  table.set_header({"algorithm", "energy (J)", "extra energy (J)", "mean QoE",
                    "bitrate (Mbps)", "rebuffer (s)", "switches"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});
  for (const auto& row : result.rows) {
    table.add_row({row.algorithm, AsciiTable::num(row.total_energy_j, 1),
                   AsciiTable::num(row.extra_energy_j, 1),
                   AsciiTable::num(row.mean_qoe, 2),
                   AsciiTable::num(row.mean_bitrate_mbps, 2),
                   AsciiTable::num(row.rebuffer_s, 1),
                   std::to_string(row.switch_count)});
  }
  table.print();

  // Decision timeline for "Ours": rebuild and replay to capture task records.
  const auto manifest = evaluation.manifest_for(spec);
  core::ObjectiveConfig objective_config;
  objective_config.alpha = config.alpha;
  core::Objective objective(qoe::QoeModel{config.qoe}, power::PowerModel{config.power},
                            objective_config);
  core::OnlineBitrateSelector ours(objective, {.startup_level = 3});
  player::PlayerSimulator simulator(manifest, config.player);
  const auto playback = simulator.run(ours, session);

  AsciiTable timeline("\nDecision timeline (every 20th segment, Ours)");
  timeline.set_header({"segment", "t (s)", "vibration", "signal (dBm)",
                       "throughput (Mbps)", "chosen (Mbps)", "buffer (s)"});
  timeline.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                          Align::kRight, Align::kRight, Align::kRight});
  for (std::size_t i = 0; i < playback.tasks.size(); i += 20) {
    const auto& task = playback.tasks[i];
    timeline.add_row({std::to_string(task.segment_index),
                      AsciiTable::num(task.download_start_s, 1),
                      AsciiTable::num(task.vibration, 2),
                      AsciiTable::num(task.signal_dbm, 1),
                      AsciiTable::num(task.throughput_mbps, 1),
                      AsciiTable::num(task.bitrate_mbps, 2),
                      AsciiTable::num(task.buffer_before_s, 1)});
  }
  timeline.print();
  return 0;
}
