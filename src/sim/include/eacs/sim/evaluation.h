#pragma once
// The paper's Section V evaluation, end to end: build the five Table V
// sessions, replay each with every algorithm (YouTube / FESTIVE / BBA / Ours
// / Optimal, optionally BOLA), account energy and QoE, and aggregate the
// comparisons behind Figs. 5-7.

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "eacs/core/decision_cache.h"
#include "eacs/core/objective.h"
#include "eacs/player/player.h"
#include "eacs/sim/execution.h"
#include "eacs/sim/metrics.h"
#include "eacs/trace/session.h"

namespace eacs::sim {

/// Evaluation configuration (paper defaults: 2 s segments, 14-rate ladder,
/// 30 s buffer threshold, alpha = 0.5).
struct EvaluationConfig {
  double alpha = 0.5;
  double segment_duration_s = 2.0;
  double vbr_amplitude = 0.0;        ///< >0 enables VBR segment sizes
  bool include_bola = false;         ///< extension baseline
  bool context_aware = true;         ///< false = energy-aware-only ablation
  player::PlayerConfig player;
  qoe::QoeModelParams qoe;
  power::PowerModelParams power;
  trace::SessionBuildOptions session_options;
  std::size_t online_startup_level = 3;  ///< "Ours" startup rung
  /// Optional decision memoization for "Ours": each session work item gets a
  /// fresh cache built from this config (per-instance — never shared across
  /// workers), keeping units pure in their index. The exact-key default
  /// leaves decisions bit-identical to uncached runs; a quantized config is
  /// the EXPERIMENTS.md quantization-error study.
  std::optional<core::DecisionCacheConfig> online_cache;
  /// Worker threads for the session fan-out; bit-identical at any value.
  ExecutionPolicy exec;
};

/// One complete evaluation outcome.
struct EvaluationResult {
  std::vector<SessionMetrics> rows;  ///< one row per (algorithm, session)

  /// Rows for one algorithm, in session order.
  std::vector<SessionMetrics> rows_for(const std::string& algorithm) const;
  /// The row for (algorithm, session). Throws std::out_of_range if absent.
  const SessionMetrics& row(const std::string& algorithm, int session_id) const;
  /// Distinct algorithm names, in first-appearance order.
  std::vector<std::string> algorithms() const;

  /// Mean across sessions of per-session whole-phone energy saving vs. the
  /// reference algorithm (paper: vs. YouTube; Fig. 5(b) left group).
  double mean_energy_saving(const std::string& algorithm,
                            const std::string& reference = "Youtube") const;
  /// Same on the extra-energy basis (Fig. 5(b) right group).
  double mean_extra_energy_saving(const std::string& algorithm,
                                  const std::string& reference = "Youtube") const;
  /// Mean QoE across sessions (Fig. 6(b)).
  double mean_qoe(const std::string& algorithm) const;
  /// Mean across sessions of per-session QoE degradation vs. reference
  /// (Fig. 6(c)).
  double mean_qoe_degradation(const std::string& algorithm,
                              const std::string& reference = "Youtube") const;
  /// Energy-saving / QoE-degradation ratio (Fig. 7).
  double saving_degradation_ratio(const std::string& algorithm,
                                  const std::string& reference = "Youtube") const;
};

/// Runs the evaluation.
class Evaluation {
 public:
  explicit Evaluation(EvaluationConfig config = {});

  const EvaluationConfig& config() const noexcept { return config_; }

  /// Full run over all Table V sessions (sessions are built once and shared
  /// across algorithms).
  EvaluationResult run() const;

  /// Run over caller-provided sessions (e.g. a single trace, or synthetic
  /// what-if sessions for ablations).
  EvaluationResult run(const std::vector<trace::SessionTraces>& sessions) const;

  /// The manifest used for a given session spec.
  media::VideoManifest manifest_for(const media::SessionSpec& spec) const;

 private:
  EvaluationConfig config_;
};

}  // namespace eacs::sim
