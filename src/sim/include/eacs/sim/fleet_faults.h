#pragma once
// Fleet-scale fault domains over the CellNetwork (DESIGN §14).
//
// The fleet simulator's world model (cell_network.h) is a healthy one: cells
// never die, capacity never collapses, arrivals never spike. A
// FleetFaultSpec overlays that world with the failure modes an operator
// actually plans for:
//
//   * cell outages       — a contiguous cell group is dead for an interval;
//                          sessions there must escape or back off
//   * capacity brownouts — a cell group's capacity is scaled down (< 1)
//   * signal collapses   — a cell group's signal floor drops by a dB offset
//   * arrival surges     — the fleet arrival rate is multiplied up for an
//                          interval (flash crowd), warping the arrival
//                          schedule
//
// Episodes come from two sources: a scripted list (explicit intervals) and a
// seeded generator that draws correlated episodes per (fault domain, epoch)
// from sim::seed_mix — no RNG state, so every query is a pure function of
// (spec, cell, time). That purity is what keeps the fleet bit-identical at
// any jobs count (DESIGN §6) and is what makes checkpoint/resume trivial for
// the fault layer: the model is reconstructed from config, never serialized.
//
// Combination rule when episodes overlap: most severe wins — dead is dead,
// the smallest capacity factor applies, the most negative signal offset
// applies, the largest surge multiplier applies.
//
// The empty spec is a certified no-op: run_fleet never calls into this layer
// when `spec.empty()`, so clean-run results are bitwise unchanged.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace eacs::sim {

/// Scripted outage: every cell in [first_cell, first_cell + num_cells) is
/// dead during [t0_s, t1_s).
struct CellOutage {
  double t0_s = 0.0;
  double t1_s = 0.0;
  std::size_t first_cell = 0;
  std::size_t num_cells = 1;
};

/// Scripted brownout: the cell group's capacity is multiplied by
/// `capacity_factor` (in (0, 1]) during [t0_s, t1_s).
struct CapacityBrownout {
  double t0_s = 0.0;
  double t1_s = 0.0;
  std::size_t first_cell = 0;
  std::size_t num_cells = 1;
  double capacity_factor = 0.5;
};

/// Scripted signal-floor collapse: every signal the cell group radiates is
/// offset by `offset_db` (<= 0) during [t0_s, t1_s).
struct SignalCollapse {
  double t0_s = 0.0;
  double t1_s = 0.0;
  std::size_t first_cell = 0;
  std::size_t num_cells = 1;
  double offset_db = -18.0;
};

/// Scripted flash crowd: the fleet arrival rate is multiplied by
/// `rate_multiplier` (> 0) during [t0_s, t1_s).
struct ArrivalSurge {
  double t0_s = 0.0;
  double t1_s = 0.0;
  double rate_multiplier = 3.0;
};

/// Seeded correlated-episode generator. Cells are grouped into fault domains
/// of `domain_cells` contiguous cells; time into epochs of `epoch_s`. Each
/// (domain, epoch) pair draws one Bernoulli per fault kind via
/// seed_mix(seed ^ lane, domain, epoch) — stateless, so the episode set is a
/// pure function of this struct. Episodes start at their epoch boundary and
/// run for the configured duration (surge durations are clamped to the epoch
/// so seeded surges never overlap each other).
struct SeededFaultConfig {
  double horizon_s = 0.0;  ///< generate epochs in [0, horizon); 0 disables
  double epoch_s = 60.0;
  std::size_t domain_cells = 4;

  double outage_prob = 0.0;  ///< per (domain, epoch)
  double outage_duration_s = 30.0;

  double brownout_prob = 0.0;
  double brownout_factor = 0.5;
  double brownout_duration_s = 45.0;

  double collapse_prob = 0.0;
  double collapse_db = -18.0;
  double collapse_duration_s = 30.0;

  double surge_prob = 0.0;  ///< per epoch (fleet-wide, not per domain)
  double surge_multiplier = 3.0;
  double surge_duration_s = 20.0;

  std::uint64_t seed = 0xFA17'D0D0ULL;

  bool enabled() const noexcept {
    return horizon_s > 0.0 && (outage_prob > 0.0 || brownout_prob > 0.0 ||
                               collapse_prob > 0.0 || surge_prob > 0.0);
  }
};

/// The full fault overlay: scripted episodes plus the seeded generator.
struct FleetFaultSpec {
  std::vector<CellOutage> outages;
  std::vector<CapacityBrownout> brownouts;
  std::vector<SignalCollapse> collapses;
  std::vector<ArrivalSurge> surges;
  SeededFaultConfig seeded;

  /// True when no fault can ever fire — the certified-no-op configuration.
  bool empty() const noexcept {
    return outages.empty() && brownouts.empty() && collapses.empty() &&
           surges.empty() && !seeded.enabled();
  }
};

/// Materialized fault overlay: scripted and seeded episodes merged into one
/// queryable timeline. Construction validates the spec (throws
/// std::invalid_argument on an empty/reversed interval, a cell range outside
/// the network, a capacity factor outside (0, 1], a positive signal offset,
/// a non-positive surge multiplier, or a malformed seeded config) and
/// precomputes the surge-warped arrival profile. All queries are pure and
/// O(episodes).
class FleetFaultModel {
 public:
  FleetFaultModel(const FleetFaultSpec& spec, std::size_t num_cells);

  /// True when no episode exists: every query returns its neutral value.
  bool empty() const noexcept {
    return outages_.empty() && brownouts_.empty() && collapses_.empty() &&
           profile_.empty();
  }

  /// Is `cell` inside an active outage at `t_s`?
  bool cell_dead(std::size_t cell, double t_s) const noexcept;

  /// Brownout capacity multiplier for `cell` at `t_s`: 1 when healthy, the
  /// most severe (smallest) active factor otherwise. Outages are not folded
  /// in — a dead cell is gated by cell_dead, not by zero capacity.
  double capacity_factor(std::size_t cell, double t_s) const noexcept;

  /// Signal offset for `cell` at `t_s` [dB]: 0 when healthy, the most
  /// negative active collapse offset otherwise.
  double signal_offset_db(std::size_t cell, double t_s) const noexcept;

  /// True when any arrival surge exists (scripted or seeded).
  bool has_surges() const noexcept { return !profile_.empty(); }

  /// Arrival time of fleet session `session` under the surge-warped
  /// schedule: the t with integral_0^t multiplier(u) du == session /
  /// base_rate. Reduces to session / base_rate exactly when no surge covers
  /// the interval. Strictly increasing in `session`.
  double arrival_time(std::size_t session, double base_rate_per_s) const noexcept;

  // Materialized episode lists (scripted + seeded, in timeline order) —
  // exposed for the fault study's reporting.
  const std::vector<CellOutage>& outages() const noexcept { return outages_; }
  const std::vector<CapacityBrownout>& brownouts() const noexcept {
    return brownouts_;
  }
  const std::vector<SignalCollapse>& collapses() const noexcept {
    return collapses_;
  }

 private:
  // Piecewise-constant arrival-rate multiplier: segment i covers
  // [t0_s, next.t0_s) with multiplier rate_mult and cumulative
  // multiplier-seconds cum_units at its left edge. The last segment has
  // multiplier 1 and extends to infinity.
  struct SurgeSegment {
    double t0_s = 0.0;
    double rate_mult = 1.0;
    double cum_units = 0.0;
  };

  std::vector<CellOutage> outages_;
  std::vector<CapacityBrownout> brownouts_;
  std::vector<SignalCollapse> collapses_;
  std::vector<SurgeSegment> profile_;  // empty when no surges
};

}  // namespace eacs::sim
