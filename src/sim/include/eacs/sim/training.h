#pragma once
// Cross-entropy-method trainer for the learned ABR policy (extension).
//
// Trains abr::LinearPolicy weights against the trace-driven simulator.
// CEM is derivative-free and deterministic given a seed: sample a
// population of weight vectors from a diagonal Gaussian, replay every
// training episode with each candidate, refit the Gaussian on the elites,
// repeat. The reward mirrors the paper's Eq. 11 trade-off with the
// YouTube run of the same session as the normaliser:
//
//   reward = (1 - alpha) * QoE/QoE_youtube - alpha * E/E_youtube
//
// so a trained policy is directly comparable with the analytic algorithms.

#include <cstdint>
#include <vector>

#include "eacs/abr/learned.h"
#include "eacs/media/manifest.h"
#include "eacs/player/player.h"
#include "eacs/sim/execution.h"
#include "eacs/trace/session.h"

namespace eacs::sim {

/// One training episode: a session, its manifest, and reward normalisers.
struct TrainingEpisode {
  trace::SessionTraces session;
  media::VideoManifest manifest;
  double youtube_energy_j = 0.0;
  double youtube_qoe = 0.0;
};

/// CEM hyperparameters.
struct CemConfig {
  std::size_t population = 32;
  std::size_t elites = 8;
  std::size_t iterations = 12;
  double initial_sigma = 1.5;
  double min_sigma = 0.05;
  std::uint64_t seed = 0x7EA4ULL;
  /// Worker threads for the population rollouts; bit-identical at any value
  /// (candidates are sampled serially, scored in parallel, refit serially).
  ExecutionPolicy exec;
};

/// Outcome of a training run.
struct TrainingResult {
  std::vector<double> weights;         ///< final elite mean
  std::vector<double> reward_history;  ///< best population reward per iteration
  double final_reward = 0.0;
};

/// Trains abr::LinearPolicy weights.
class CemTrainer {
 public:
  /// `alpha` weights energy vs. QoE in the reward (the paper uses 0.5).
  explicit CemTrainer(std::vector<TrainingEpisode> episodes,
                      player::PlayerConfig player_config = {}, double alpha = 0.5);

  /// Builds episodes from sessions: constructs the manifests and runs the
  /// YouTube baseline once per session for the reward normalisers.
  static std::vector<TrainingEpisode> make_episodes(
      std::vector<trace::SessionTraces> sessions, double segment_duration_s = 2.0,
      const player::PlayerConfig& player_config = {});

  /// Mean reward of a weight vector across the training episodes.
  double evaluate(const std::vector<double>& weights) const;

  /// Runs CEM; deterministic in config.seed.
  TrainingResult train(const CemConfig& config = {}) const;

 private:
  std::vector<TrainingEpisode> episodes_;
  player::PlayerConfig player_config_;
  double alpha_;
};

}  // namespace eacs::sim
