#pragma once
// Sensor-fault study (extension; sibling of fault_study.h).
//
// The fault-tolerance study stresses the *link*; this study stresses the
// *sensing*. It replays every Table V session with the context-aware
// algorithm while a sensors::SensorFaultInjector corrupts what the policy
// perceives (the link and the true context that prices energy/QoE stay
// clean), sweeping fault scenario x intensity, and reports the QoE/energy
// deviation of degraded-context Ours against clean-context Ours and against
// a context-blind baseline (BBA) — i.e. how much of the paper's
// context-awareness benefit survives each failure mode, and whether graceful
// degradation keeps the damage bounded by what ignoring context entirely
// would cost. Deterministic in (config, seed).

#include <cstdint>
#include <string>
#include <vector>

#include "eacs/sim/evaluation.h"

namespace eacs::sim {

/// Failure modes swept by the study. The accel scenarios map onto
/// sensors::SensorFaultType; the last two add signal loss and a mixed
/// seeded-random storm over both streams.
enum class SensorFaultScenario {
  kDropout,
  kStuckAt,
  kNoiseBurst,
  kSaturation,
  kNanCorruption,
  kRateCollapse,
  kSignalDropout,  ///< telephony readings suppressed; accel untouched
  kCombined,       ///< random episodes across both streams, all fault types
};

/// Stable lower-case identifier (tables, CSV, logs).
const char* to_string(SensorFaultScenario scenario) noexcept;

/// All scenarios, in sweep order.
std::vector<SensorFaultScenario> all_sensor_fault_scenarios();

/// Sweep configuration.
struct SensorFaultStudyConfig {
  EvaluationConfig evaluation;

  /// Scenarios to sweep; empty = all_sensor_fault_scenarios().
  std::vector<SensorFaultScenario> scenarios;

  /// Fraction of the session spent inside fault episodes, per scenario.
  /// 1.0 = the whole session (e.g. total accelerometer loss).
  std::vector<double> intensities = {0.25, 1.0};

  /// Scripted episode length used to lay out periodic episodes at
  /// intensities below 1.
  double episode_length_s = 20.0;

  /// kCombined: random-episode densities at intensity 1 (scaled linearly).
  double combined_accel_rate_per_min = 3.0;
  double combined_signal_rate_per_min = 1.5;

  std::uint64_t seed = 0x5E50'FA17'57D1ULL;
};

/// One (scenario, intensity) grid point: degraded-context Ours aggregated
/// across the Table V sessions.
struct SensorFaultCell {
  SensorFaultScenario scenario = SensorFaultScenario::kDropout;
  double intensity = 0.0;

  double mean_qoe = 0.0;        ///< mean across sessions
  double total_energy_j = 0.0;  ///< summed across sessions
  double rebuffer_s = 0.0;      ///< summed across sessions
  double mean_bitrate_mbps = 0.0;

  /// Mean |perceived - true| vibration over all tasks (m/s^2): how wrong the
  /// policy's picture of the world was.
  double mean_context_error = 0.0;

  /// Deltas vs. clean-context Ours over the same sessions.
  double qoe_delta_vs_clean = 0.0;
  double energy_delta_vs_clean_j = 0.0;
  double rebuffer_delta_vs_clean_s = 0.0;

  /// Deltas vs. the context-blind baseline (positive qoe delta = degraded
  /// Ours still beats ignoring context entirely).
  double qoe_delta_vs_blind = 0.0;
  double energy_delta_vs_blind_j = 0.0;
};

/// Aggregate of one reference algorithm across the sessions.
struct SensorFaultBaseline {
  std::string algorithm;
  double mean_qoe = 0.0;
  double total_energy_j = 0.0;
  double rebuffer_s = 0.0;
  double mean_bitrate_mbps = 0.0;
};

/// Full sweep outcome.
struct SensorFaultStudyResult {
  SensorFaultBaseline clean_ours;      ///< clean-context Ours
  SensorFaultBaseline context_blind;   ///< clean BBA (reads no context)
  std::vector<SensorFaultCell> cells;  ///< scenario-major, intensity-minor

  /// Throws std::out_of_range when the cell is absent.
  const SensorFaultCell& cell(SensorFaultScenario scenario,
                              double intensity) const;
};

/// Runs the sweep. Sessions are built once and shared; each (grid point,
/// session) fault seed derives from config.seed, so the whole table is
/// reproducible bit-for-bit at any job count.
SensorFaultStudyResult run_sensor_fault_study(
    const SensorFaultStudyConfig& config = {});

}  // namespace eacs::sim
