#pragma once
// CDN fault study (extension; sibling of fault_study.h / sensor_fault_study.h).
//
// The fault-tolerance study stresses the *link*, the sensor-fault study the
// *sensing*; this study stresses the *servers*. It replays every Table V
// session against N CDN sources (net::SegmentSource) whose origin misbehaves
// — scripted/seeded outages, HTTP error episodes, truncated/corrupted
// payloads, slow-start degradation — sweeping fault family x intensity x
// source count, and reports QoE / energy / rebuffering / wasted-download
// energy plus failover, hedge and circuit-breaker activity. The
// source-count-1 column is the single-source retry-only baseline: the same
// faulty origin with no failover target, so every cell's deltas quantify
// what multi-source delivery (circuit breakers + health-scored failover +
// hedged requests) buys over pure retry. Deterministic in (config, seed) at
// any job count.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "eacs/sim/evaluation.h"

namespace eacs::sim {

/// Server-side failure families swept by the study; each maps onto the
/// corresponding net::CdnFaultSpec knobs applied to the origin source.
enum class CdnFaultFamily {
  kOriginOutage,       ///< long seeded outages (tens of seconds of dead origin)
  kErrorBursts,        ///< HTTP 4xx/5xx error episodes
  kPayloadCorruption,  ///< truncated and corrupted segment payloads
  kSlowStart,          ///< per-request throughput collapse (overloaded origin)
  kCombined,           ///< all of the above at half strength
};

/// Stable lower-case identifier (tables, CSV, logs).
const char* to_string(CdnFaultFamily family) noexcept;

/// All families, in sweep order.
std::vector<CdnFaultFamily> all_cdn_fault_families();

/// Sweep configuration. Intensity linearly scales the family's fault knobs;
/// the defaults give a (family x {0.5, 1} x {1, 2, 3}) grid whose
/// source-count-1 column is the retry-only baseline.
struct CdnFaultStudyConfig {
  EvaluationConfig evaluation;

  /// Families to sweep; empty = all_cdn_fault_families().
  std::vector<CdnFaultFamily> families;

  /// Scales the faulty origin's knobs below (1.0 = the listed values).
  std::vector<double> intensities = {0.5, 1.0};

  /// Sources per cell: the origin plus (count - 1) clean but lower-capacity
  /// edges. Include 1 to get the retry-only baseline the deltas refer to.
  std::vector<std::size_t> source_counts = {1, 2, 3};

  // Origin fault knobs at intensity 1 -------------------------------------
  double outage_rate_per_min = 0.8;  ///< kOriginOutage: outage density
  double outage_mean_s = 40.0;       ///< kOriginOutage: long origin outages
  double error_rate_per_min = 2.0;   ///< kErrorBursts: episode density
  double error_episode_mean_s = 10.0;
  double truncate_prob = 0.15;       ///< kPayloadCorruption
  double corrupt_prob = 0.10;        ///< kPayloadCorruption
  double slow_start_prob = 0.5;      ///< kSlowStart
  double slow_scale = 0.25;          ///< kSlowStart: residual throughput

  // Edge-source shape: edge k (1-based) serves at capacity
  // max(edge_scale_floor, 1 - k * edge_scale_step) with k * edge_rtt_step_s
  // of extra per-request latency — a farther, smaller cache.
  double edge_scale_step = 0.15;
  double edge_scale_floor = 0.4;
  double edge_rtt_step_s = 0.03;

  /// Hedged requests on multi-source cells (ResilienceConfig::hedge_enabled).
  bool hedge_enabled = true;

  std::uint64_t seed = 0xCD4F'A170'57D1ULL;
};

/// One (family, intensity, source count) grid point: the delivery-robust
/// player aggregated across the Table V sessions.
struct CdnFaultCell {
  CdnFaultFamily family = CdnFaultFamily::kOriginOutage;
  double intensity = 0.0;
  std::size_t sources = 1;

  double mean_qoe = 0.0;         ///< mean across sessions
  double total_energy_j = 0.0;   ///< summed across sessions (incl. waste)
  double wasted_energy_j = 0.0;  ///< summed across sessions
  double rebuffer_s = 0.0;       ///< summed across sessions
  double mean_bitrate_mbps = 0.0;
  std::size_t retries = 0;
  std::size_t hedges = 0;
  std::size_t failovers = 0;
  std::size_t breaker_transitions = 0;

  /// Deltas vs. the source-count-1 (retry-only) cell of the same family and
  /// intensity. Zero when the sweep omits source count 1.
  double qoe_delta_vs_single = 0.0;
  double energy_delta_vs_single_j = 0.0;
  double rebuffer_delta_vs_single_s = 0.0;

  /// Deltas vs. the fault-free single-source run over the same sessions.
  double qoe_delta_vs_clean = 0.0;
  double rebuffer_delta_vs_clean_s = 0.0;
};

/// Aggregate of the fault-free reference run.
struct CdnFaultBaseline {
  std::string algorithm;
  double mean_qoe = 0.0;
  double total_energy_j = 0.0;
  double rebuffer_s = 0.0;
  double mean_bitrate_mbps = 0.0;
};

/// Full sweep outcome.
struct CdnFaultStudyResult {
  CdnFaultBaseline clean;             ///< fault-free single-source reference
  std::vector<CdnFaultCell> cells;    ///< family-major, then intensity, then
                                      ///< source count

  /// Throws std::out_of_range when the cell is absent.
  const CdnFaultCell& cell(CdnFaultFamily family, double intensity,
                           std::size_t sources) const;
};

/// Runs the sweep. Sessions are built once and shared; each (grid point,
/// session) fault seed derives from config.seed and per-source draws are
/// decorrelated by source id inside net::SegmentSource, so the whole table
/// is reproducible bit-for-bit at any job count.
CdnFaultStudyResult run_cdn_fault_study(const CdnFaultStudyConfig& config = {});

}  // namespace eacs::sim
