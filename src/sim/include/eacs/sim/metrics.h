#pragma once
// Post-run accounting: turns a PlaybackResult (what the player did) into the
// energy/QoE metrics the paper reports.
//
// Energy decomposition (Fig. 5(c)): the *base* energy is what the session
// would have cost had every segment been fetched at the lowest bitrate —
// screen + decode + minimum radio traffic; it is the floor no ABR algorithm
// can undercut. The *extra* energy is everything above that floor, i.e. what
// bitrate adaptation actually controls. The paper's headline numbers (77% /
// 80% savings for Ours/Optimal) are on the extra-energy basis.

#include <string>
#include <vector>

#include "eacs/player/player.h"
#include "eacs/power/model.h"
#include "eacs/power/rrc.h"
#include "eacs/qoe/model.h"

namespace eacs::sim {

/// Metrics of one (algorithm, session) run.
struct SessionMetrics {
  std::string algorithm;
  int session_id = 0;

  double total_energy_j = 0.0;    ///< includes wasted_energy_j on fault runs
  double base_energy_j = 0.0;
  double extra_energy_j = 0.0;

  double mean_qoe = 0.0;           ///< duration-weighted per-task QoE
  double mean_bitrate_mbps = 0.0;
  double downloaded_mb = 0.0;

  double rebuffer_s = 0.0;
  std::size_t rebuffer_events = 0;
  std::size_t switch_count = 0;
  double startup_delay_s = 0.0;

  // Resilience accounting (all zero on fault-free runs).
  double wasted_energy_j = 0.0;   ///< radio energy of aborted transfers
  double wasted_mb = 0.0;
  std::size_t retries = 0;
  std::size_t abandoned_segments = 0;
};

/// Computes all metrics for one run.
SessionMetrics compute_metrics(const std::string& algorithm, int session_id,
                               const player::PlaybackResult& result,
                               const media::VideoManifest& manifest,
                               const qoe::QoeModel& qoe_model,
                               const power::PowerModel& power_model);

/// Whole-session energy from the task records (sum of per-task energies,
/// plus the wasted radio energy of aborted transfers on fault runs).
double session_energy_j(const player::PlaybackResult& result,
                        const power::PowerModel& power_model);

/// Radio energy spent on aborted download attempts — bytes that moved but
/// were thrown away (the paper's per-byte e(signal) pricing applied to the
/// wasted bytes). Zero on fault-free runs.
double session_wasted_energy_j(const player::PlaybackResult& result,
                               const power::PowerModel& power_model);

/// Base energy: the same session with every segment at the lowest rung and
/// no stalls, priced under each task's recorded signal conditions.
double session_base_energy_j(const player::PlaybackResult& result,
                             const media::VideoManifest& manifest,
                             const power::PowerModel& power_model);

/// Duration-weighted mean per-task QoE (vibration, switch and rebuffer
/// impairments included).
double session_mean_qoe(const player::PlaybackResult& result,
                        const qoe::QoeModel& qoe_model);

/// RRC-aware whole-session energy decomposition (extension).
///
/// The paper's per-byte radio model prices only the bytes moved; the RRC
/// machine adds what pacing costs: tail energy after each download burst,
/// DRX/idle floors between bursts, and promotion energy when the radio has
/// dropped to IDLE. Radio-active energy keeps the signal-dependent per-byte
/// pricing (e(s) * bytes); RRC supplies the tail/idle/promotion components
/// on top, and playback energy is accounted as in the base model.
struct RrcSessionEnergy {
  double data_j = 0.0;        ///< per-byte e(signal) radio energy
  double tail_j = 0.0;        ///< post-burst tail states
  double idle_j = 0.0;        ///< radio idle floor
  double promotion_j = 0.0;   ///< IDLE -> CONNECTED promotions
  double playback_j = 0.0;    ///< screen + decode (+ stalls)
  std::size_t promotions = 0;
  double tail_time_s = 0.0;

  double radio_j() const noexcept {
    return data_j + tail_j + idle_j + promotion_j;
  }
  double total_j() const noexcept { return radio_j() + playback_j; }
};

/// Computes the RRC-aware decomposition from a playback run. The download
/// burst timeline is taken from the task records; playback covers each
/// task's media duration plus its stalls.
RrcSessionEnergy session_energy_rrc(const player::PlaybackResult& result,
                                    const power::PowerModel& power_model,
                                    const power::RrcSimulator& rrc);

}  // namespace eacs::sim
