#pragma once
// Seed-robustness study (extension).
//
// Trace-driven results can be an artifact of one lucky trace draw. This
// harness re-runs the whole Section V evaluation across independently
// seeded synthetic trace sets (same Table V targets — lengths, vibration
// levels, context coupling — different random realisations) and reports the
// distribution of every headline metric, demonstrating that the paper-shape
// conclusions hold across the trace ensemble and not just the default seed.

#include <map>
#include <string>
#include <vector>

#include "eacs/sim/evaluation.h"
#include "eacs/util/stats.h"

namespace eacs::sim {

/// Distribution of the headline metrics for one algorithm.
struct AlgorithmDistribution {
  eacs::RunningStats energy_saving;        ///< vs. YouTube, whole-phone
  eacs::RunningStats extra_energy_saving;  ///< vs. YouTube, extra-energy basis
  eacs::RunningStats qoe_degradation;      ///< vs. YouTube
  eacs::RunningStats mean_qoe;
};

/// Outcome of the robustness study.
struct RobustnessResult {
  std::size_t runs = 0;
  /// Keyed by algorithm name ("FESTIVE", "BBA", "Ours", "Optimal").
  std::map<std::string, AlgorithmDistribution> per_algorithm;
};

/// Runs `runs` independent evaluations, each over freshly seeded Table V
/// sessions (seed = spec.seed XOR mix(run)), and aggregates the headline
/// metrics. Deterministic in (config, base_seed) at any `exec.jobs`: the
/// per-run salts are pre-drawn serially and the distributions are reduced
/// in run order. When `exec` allows more than one job the runs themselves
/// are the parallel unit and each run's inner evaluation is forced serial
/// (no nested fan-out).
RobustnessResult run_robustness_study(const EvaluationConfig& config = {},
                                      std::size_t runs = 10,
                                      std::uint64_t base_seed = 0xB0B5'7D1EULL,
                                      ExecutionPolicy exec = {});

}  // namespace eacs::sim
