#pragma once
// Result export: evaluation outcomes as CSV tables for external plotting
// (gnuplot/matplotlib/spreadsheets). Every figure bench prints ASCII; this
// module provides the same data machine-readably.

#include <filesystem>

#include "eacs/sim/evaluation.h"
#include "eacs/sim/robustness.h"
#include "eacs/util/csv.h"

namespace eacs::sim {

/// Per-(algorithm, session) rows: one line per SessionMetrics with every
/// field as a column.
eacs::CsvTable evaluation_to_csv(const EvaluationResult& result);

/// Headline summary per algorithm vs. a reference (default "Youtube"):
/// whole-phone/extra-energy savings, QoE, QoE degradation, ratio.
eacs::CsvTable summary_to_csv(const EvaluationResult& result,
                              const std::string& reference = "Youtube");

/// Robustness distributions: one row per (algorithm, metric) with
/// mean/stddev/min/max/runs columns.
eacs::CsvTable robustness_to_csv(const RobustnessResult& result);

/// Convenience file writers (throw std::runtime_error on I/O failure).
void write_evaluation_csv(const std::filesystem::path& path,
                          const EvaluationResult& result);
void write_summary_csv(const std::filesystem::path& path,
                       const EvaluationResult& result,
                       const std::string& reference = "Youtube");

}  // namespace eacs::sim
