#pragma once
// Fleet fault study (DESIGN §14; sibling of fault_study.h and
// cdn_fault_study.h, lifted to the population layer).
//
// The session-level studies stress one client's link, sensors, or CDN; this
// study stresses the *infrastructure under a whole fleet*: seeded correlated
// cell outages, regional capacity brownouts, signal-floor collapses, and
// flash-crowd arrival surges (fleet_faults.h), swept over scenario x
// intensity x client policy. Each cell runs the full fleet simulator with
// graceful degradation enabled (escape handoffs, bounded backoff,
// planner-shed) and reports the population QoE / energy / rebuffer
// aggregates next to the degradation-ladder counters — how much service
// survives, what the recovery machinery did, and what it cost. Clean
// per-policy baselines anchor the deltas. Deterministic in (config) at any
// job count, like every §6 study.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eacs/sim/fleet.h"

namespace eacs::sim {

/// Infrastructure failure scenarios swept by the study.
enum class FleetFaultScenario {
  kCellOutages,     ///< seeded correlated cell-group outages
  kBrownout,        ///< regional capacity brownouts
  kSignalCollapse,  ///< signal-floor collapses
  kFlashCrowd,      ///< arrival-rate surges
  kCombined,        ///< all of the above at half strength
};

/// Stable lower-case identifier (tables, CSV, logs).
const char* to_string(FleetFaultScenario scenario) noexcept;

/// All scenarios, in sweep order.
std::vector<FleetFaultScenario> all_fleet_fault_scenarios();

/// Sweep configuration. Intensity scales episode probabilities linearly and
/// interpolates severities between "healthy" and the listed full-strength
/// values; the defaults give a (scenario x {0.5, 1} x {throughput, planner})
/// grid over the base fleet.
struct FleetFaultStudyConfig {
  /// Base fleet (faults and policy are overridden per cell). The resilience
  /// block is used as-is — set shed thresholds here to exercise the
  /// planner-shed ladder.
  FleetConfig fleet;

  /// Scenarios to sweep; empty = all_fleet_fault_scenarios().
  std::vector<FleetFaultScenario> scenarios;
  std::vector<double> intensities = {0.5, 1.0};
  std::vector<FleetPolicy> policies = {FleetPolicy::kThroughput,
                                       FleetPolicy::kPlanner};

  // Seeded-episode shape at intensity 1 ------------------------------------
  double epoch_s = 60.0;
  std::size_t domain_cells = 4;
  double outage_prob = 0.35;
  double outage_duration_s = 45.0;
  double brownout_prob = 0.5;
  double brownout_factor = 0.35;  ///< capacity multiplier at full strength
  double brownout_duration_s = 60.0;
  double collapse_prob = 0.5;
  double collapse_db = -24.0;  ///< signal offset at full strength
  double collapse_duration_s = 45.0;
  double surge_prob = 0.4;
  double surge_multiplier = 4.0;  ///< arrival-rate multiplier at full strength
  double surge_duration_s = 30.0;

  std::uint64_t seed = 0xF1EE'FA17ULL;
};

/// One (scenario, intensity, policy) grid point.
struct FleetFaultStudyCell {
  FleetFaultScenario scenario = FleetFaultScenario::kCellOutages;
  double intensity = 0.0;
  FleetPolicy policy = FleetPolicy::kThroughput;

  FleetMetrics metrics;  ///< the full fleet outcome, counters included

  /// Deltas vs. the clean baseline of the same policy.
  double qoe_delta_vs_clean = 0.0;
  double energy_delta_vs_clean_j = 0.0;  ///< mean per-session energy delta
  double rebuffer_delta_vs_clean_s = 0.0;  ///< mean per-session stall delta
};

/// Full sweep outcome: one clean baseline per policy, then the fault grid.
struct FleetFaultStudyResult {
  std::vector<FleetPolicy> policies;
  std::vector<FleetMetrics> baselines;  ///< parallel to `policies`
  std::vector<FleetFaultStudyCell> cells;  ///< scenario-major, then
                                           ///< intensity, then policy

  /// Throws std::out_of_range when the cell is absent.
  const FleetFaultStudyCell& cell(FleetFaultScenario scenario,
                                  double intensity, FleetPolicy policy) const;
};

/// Runs the sweep. Every cell is one run_fleet call; fault episodes derive
/// from config.seed through the stateless seed_mix draws, so the whole
/// table is reproducible bit-for-bit at any job count.
FleetFaultStudyResult run_fleet_fault_study(
    const FleetFaultStudyConfig& config = {});

}  // namespace eacs::sim
