#pragma once
// Deterministic fleet checkpoint/resume (DESIGN §14).
//
// A FleetCheckpoint is a full bit-exact snapshot of a fleet run cut at sim
// time T: every region's pending event set, SoA session arena, per-cell
// in-flight counts, streaming aggregator internals (Welford moments, P^2
// markers, reservoir contents *and* Rng engine state), overload-shed state,
// and DecisionCache shard contents. Because every event (t, session, kind)
// is unique — each live session has exactly one pending event — the heap pop
// order is a strict total order, so re-pushing the captured event multiset
// reproduces the remaining pop sequence exactly. The certification is
// EXPECT_EQ: run_fleet_until(T) + resume_fleet == run_fleet, bitwise, at any
// jobs count, with or without faults (tests/differential/).
//
// The fault overlay itself is never serialized: it is a pure function of the
// config (fleet_faults.h), so resume just rebuilds it. A config fingerprint
// (FNV-1a over every result-shaping field, exec.jobs excluded) guards
// against resuming under a different config — resume_fleet throws rather
// than silently diverging.
//
// The sidecar format is a versioned whitespace-separated token stream with
// doubles written as u64 bit patterns (std::bit_cast): exact, portable, and
// diffable. save/load round-trips bit-identically by construction.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "eacs/sim/fleet.h"

namespace eacs::sim {

/// One pending event (the heap element of fleet.cpp, flattened).
struct FleetEventState {
  double t_s = 0.0;
  int session = 0;
  std::uint8_t kind = 0;  // 0 = arrive, 1 = request, 2 = complete
  std::uint32_t slot = 0;

  bool operator==(const FleetEventState&) const = default;
};

/// The SoA session arena, field for field (fleet.cpp's SessionArena). All
/// vectors are indexed by slot; `throughputs` is slots x window.
struct FleetArenaState {
  std::size_t window = 1;
  std::vector<int> session;
  std::vector<std::size_t> cell;
  std::vector<std::size_t> next_segment;
  std::vector<double> arrival_s;
  std::vector<double> last_event_s;
  std::vector<double> buffer_s;
  std::vector<std::uint8_t> playing;
  std::vector<double> startup_s;
  std::vector<double> rebuffer_s;
  std::vector<double> seg_rebuffer_s;
  std::vector<double> qoe_sum;
  std::vector<double> energy_j;
  std::vector<double> bitrate_sum;
  std::vector<double> prev_bitrate;
  std::vector<int> prev_level;
  std::vector<double> request_s;
  std::vector<double> size_mb;
  std::vector<double> level_bitrate;
  std::vector<std::uint32_t> level;
  std::vector<core::DecisionKey> last_key;
  std::vector<std::uint32_t> last_level;
  std::vector<std::uint8_t> has_last;
  std::vector<std::uint32_t> retries;
  std::vector<double> throughputs;
  std::vector<std::size_t> seen;
  std::vector<std::uint32_t> free_slots;

  bool operator==(const FleetArenaState&) const = default;
};

/// Overload-shed detector state (the degradation ladder's planner->
/// throughput triggers).
struct FleetShedState {
  std::uint8_t live_shed = 0;
  std::uint8_t miss_shed = 0;
  double shed_until_s = 0.0;
  std::uint64_t window_consults = 0;
  std::uint64_t window_misses = 0;

  bool operator==(const FleetShedState&) const = default;
};

/// Everything one region needs to continue exactly where the cut stopped.
struct FleetRegionCheckpoint {
  std::size_t region = 0;
  std::size_t live = 0;
  std::vector<FleetEventState> events;  ///< pending events, in pop order
  FleetArenaState arena;
  std::vector<std::size_t> cell_active;  ///< in-flight downloads per cell
  FleetRegionMetrics metrics;  ///< counters so far (medians still zero)
  RunningStatsState qoe, energy_j, bitrate_mbps, rebuffer_s, startup_s;
  ReservoirSamplerState qoe_sample, energy_sample, rebuffer_sample;
  P2QuantileState median_qoe, median_energy;
  FleetShedState shed;
  core::DecisionCacheState cache;  ///< empty under the throughput policy
};

/// A fleet run cut at time T.
struct FleetCheckpoint {
  std::uint64_t config_fingerprint = 0;
  double checkpoint_t_s = 0.0;
  std::vector<FleetRegionCheckpoint> regions;
};

/// FNV-1a over every FleetConfig field that shapes results (network, content,
/// player, policy, cache, faults, resilience, qoe/power params, seed —
/// everything except exec.jobs, which never changes results under the §6
/// contract).
std::uint64_t fleet_config_fingerprint(const FleetConfig& config);

/// Runs the fleet up to (exclusive) sim time `t_s` and captures the full
/// state. Same validation as run_fleet; additionally throws
/// std::invalid_argument on a non-finite or non-positive `t_s`.
FleetCheckpoint run_fleet_until(const FleetConfig& config, double t_s);

/// Continues a checkpointed run to completion. Bit-identical to the
/// uninterrupted run_fleet(config) at any exec.jobs. Throws
/// std::invalid_argument when the checkpoint's fingerprint does not match
/// `config` or its region count is inconsistent.
FleetMetrics resume_fleet(const FleetConfig& config,
                          const FleetCheckpoint& checkpoint);

/// Writes / reads the sidecar file. save throws std::runtime_error when the
/// file cannot be written; load throws std::runtime_error on a missing file,
/// a bad magic/version, or a truncated or malformed token stream.
void save_fleet_checkpoint(const FleetCheckpoint& checkpoint,
                           const std::string& path);
FleetCheckpoint load_fleet_checkpoint(const std::string& path);

}  // namespace eacs::sim
