#pragma once
// Fault-tolerance study (extension; sibling of robustness.h).
//
// The seed-robustness study shows the headline results are not an artifact
// of one trace draw; this study shows what happens when the *link itself*
// misbehaves. It sweeps outage density x per-request failure rate over the
// Section V algorithms, replaying every Table V session through a seeded
// net::FaultInjector and the player's retry machinery, and reports QoE /
// energy / rebuffering / wasted-download-energy alongside deltas against
// each algorithm's fault-free baseline. Deterministic in (config, seed).

#include <cstdint>
#include <string>
#include <vector>

#include "eacs/sim/evaluation.h"

namespace eacs::sim {

/// Sweep configuration. The defaults give a 3x3 grid whose (0, 0) corner is
/// the fault-free baseline.
struct FaultStudyConfig {
  EvaluationConfig evaluation;

  /// Random-outage densities to sweep (outages per minute).
  std::vector<double> outage_rates_per_min = {0.0, 0.5, 1.5};
  /// Baseline per-request failure probabilities to sweep.
  std::vector<double> failure_probs = {0.0, 0.05, 0.2};

  double outage_mean_s = 6.0;
  /// Signal coupling fed into every FaultSpec: extra failure probability per
  /// dB below the threshold (weak LTE fails more, as in the paper's power
  /// and signal models).
  double signal_failure_per_db = 0.002;
  double signal_threshold_dbm = -100.0;

  std::uint64_t seed = 0xFA17'57D1ULL;
};

/// One (algorithm, grid point): sums/means across the Table V sessions.
struct FaultCell {
  std::string algorithm;
  double outage_rate_per_min = 0.0;
  double failure_prob = 0.0;

  double mean_qoe = 0.0;          ///< mean across sessions
  double total_energy_j = 0.0;    ///< summed across sessions (incl. waste)
  double wasted_energy_j = 0.0;   ///< summed across sessions
  double rebuffer_s = 0.0;        ///< summed across sessions
  std::size_t retries = 0;
  std::size_t abandoned_segments = 0;

  /// Deltas vs. the same algorithm's fault-free run over the same sessions.
  double qoe_delta = 0.0;         ///< mean_qoe - baseline mean_qoe
  double energy_delta_j = 0.0;    ///< total_energy_j - baseline
  double rebuffer_delta_s = 0.0;
};

/// Full sweep outcome, one cell per (algorithm, outage rate, failure prob).
struct FaultStudyResult {
  std::vector<FaultCell> cells;

  /// Throws std::out_of_range when the cell is absent.
  const FaultCell& cell(const std::string& algorithm, double outage_rate_per_min,
                        double failure_prob) const;
};

/// Runs the sweep. Sessions are built once and shared across the grid; the
/// fault seed for (grid point, session) is derived from config.seed so the
/// whole table is reproducible bit-for-bit.
FaultStudyResult run_fault_study(const FaultStudyConfig& config = {});

}  // namespace eacs::sim
