#pragma once
// Fleet-scale simulation: O(live sessions) event-driven streaming over a
// sharded CellNetwork (DESIGN §12).
//
// Where Evaluation replays a handful of trace-backed sessions through the
// full player::SessionEngine, run_fleet answers population questions — what
// do the QoE / energy / rebuffer *distributions* look like across 100k
// sessions on a city of cells? — with three structural changes:
//
//   * Event queue, not stepping. Each region runs one binary min-heap of
//     (time, session, kind) events; a session costs O(log live) per segment
//     instead of O(steps), and idle time costs nothing.
//   * SoA arena state. Per-session state lives in parallel arrays indexed by
//     slot, with a free list recycling slots as sessions finish — memory is
//     O(cells + peak live sessions), not O(total sessions).
//   * Streaming aggregation. Per-session scalars fold into RunningStats,
//     P^2 quantile markers, and seeded reservoir samples (util/stats.h) the
//     moment a session ends; nothing per-session is retained.
//
// Sharding: cells are split into `regions` contiguous blocks; sessions are
// assigned round-robin (id % regions) and are mobile within their region
// only. Each region is a pure function of (config, region index) — seeds
// come from sim::seed_mix, never from shared state — so regions run on
// util::parallel_map and merge serially in region order: bit-identical
// results at any job count (DESIGN §6).
//
// Link model: quasi-stationary processor sharing. A request entering cell c
// at time t is granted share = capacity_c(t) / (downloads in c + 1), frozen
// for the transfer. This is the documented fleet-scale approximation of the
// engine's exact per-step re-sharing; the rich path remains the reference
// for within-session fidelity, the fleet path for population statistics.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eacs/power/model.h"
#include "eacs/qoe/model.h"
#include "eacs/sim/cell_network.h"
#include "eacs/sim/execution.h"
#include "eacs/util/stats.h"

namespace eacs::sim {

/// Fleet run parameters. Defaults give a quick smoke-sized run; benchmarks
/// scale num_sessions to 100k+.
struct FleetConfig {
  CellNetworkConfig network;

  std::size_t num_sessions = 1000;
  /// Constant arrival rate [sessions/s]. With finite session length this
  /// bounds the live set (Little's law), which is what keeps peak memory
  /// flat as num_sessions grows.
  double arrival_rate_per_s = 4.0;

  // Content: fixed-duration segments over the paper-style bitrate ladder.
  double segment_duration_s = 2.0;
  std::size_t segments_per_session = 30;
  std::vector<double> ladder_mbps = {0.35, 0.75, 1.2, 2.4, 4.8};

  // Player knobs (mirroring player::PlayerConfig's semantics).
  double buffer_threshold_s = 30.0;  ///< pause requesting above this level
  double startup_buffer_s = 4.0;     ///< playback begins once buffered
  double abr_safety = 0.8;           ///< request <= safety * estimated rate
  std::size_t bandwidth_window = 5;  ///< harmonic-mean window (SoA inline)

  // Context-aware rung cap (paper §IV): under strong vibration the fleet
  // client caps its rung, trading bitrate for energy exactly like the rich
  // path's context-aware policy. Vibration is procedural per session.
  double vibration_cap_threshold = 1.2;  ///< m/s^2; above this, cap the rung
  std::size_t vibration_rung_cap = 2;    ///< max rung index while vibrating

  // Mobility: serving cell re-evaluated at every request boundary.
  double handoff_hysteresis_db = 3.0;

  /// Cells are split into this many contiguous shards; sessions are pinned
  /// to region (id % regions). Clamped to num_cells. The region count is
  /// part of the *model* (mobility range), not an execution knob: changing
  /// it changes results; changing exec.jobs never does.
  std::size_t regions = 8;

  std::size_t reservoir_capacity = 1024;  ///< per-metric sample reservoir

  qoe::QoeModelParams qoe;
  power::PowerModelParams power;

  std::uint64_t seed = 0xF1EE'7CA5ULL;
  ExecutionPolicy exec;
};

/// Per-region streaming aggregates (the shard-local view, kept in the
/// result for locality analysis; P^2 medians are per-region because P^2
/// markers cannot be merged across shards).
struct FleetRegionMetrics {
  std::size_t region = 0;
  std::size_t first_cell = 0;
  std::size_t num_cells = 0;
  std::size_t sessions = 0;
  std::size_t events = 0;
  std::size_t requests = 0;
  std::size_t handoffs = 0;
  std::size_t stall_events = 0;
  std::size_t peak_live_sessions = 0;
  double median_qoe = 0.0;        ///< P^2 streaming estimate
  double median_energy_j = 0.0;   ///< P^2 streaming estimate
};

/// Fleet-wide outcome: streaming moments + reservoir percentiles, no
/// per-session storage.
struct FleetMetrics {
  std::size_t sessions = 0;
  std::size_t events = 0;    ///< total events processed across regions
  std::size_t requests = 0;  ///< segment requests issued
  std::size_t handoffs = 0;  ///< serving-cell changes
  std::size_t stall_events = 0;
  /// Sum of per-region peak live counts: a conservative bound on the global
  /// peak, and the quantity the O(live) memory claim is about.
  std::size_t peak_live_sessions = 0;

  RunningStats qoe;
  RunningStats energy_j;
  RunningStats bitrate_mbps;
  RunningStats rebuffer_s;
  RunningStats startup_s;

  /// Seeded reservoir samples for fleet-wide percentiles (mergeable across
  /// shards, unlike P^2 — see util/stats.h).
  ReservoirSampler qoe_sample{1};       // re-seeded by run_fleet
  ReservoirSampler energy_sample{1};    // re-seeded by run_fleet
  ReservoirSampler rebuffer_sample{1};  // re-seeded by run_fleet

  std::vector<FleetRegionMetrics> regions;

  /// Reservoir-estimated fleet-wide quantiles, p in [0, 1].
  double qoe_quantile(double p) const { return qoe_sample.quantile(p); }
  double energy_quantile(double p) const { return energy_sample.quantile(p); }
  double rebuffer_quantile(double p) const {
    return rebuffer_sample.quantile(p);
  }
};

/// Runs the fleet. Deterministic in (config): bit-identical at any
/// exec.jobs. Throws std::invalid_argument on an empty ladder, zero
/// sessions, zero segments, or a non-positive arrival rate.
FleetMetrics run_fleet(const FleetConfig& config);

}  // namespace eacs::sim
