#pragma once
// Fleet-scale simulation: O(live sessions) event-driven streaming over a
// sharded CellNetwork (DESIGN §12).
//
// Where Evaluation replays a handful of trace-backed sessions through the
// full player::SessionEngine, run_fleet answers population questions — what
// do the QoE / energy / rebuffer *distributions* look like across 100k
// sessions on a city of cells? — with three structural changes:
//
//   * Event queue, not stepping. Each region runs one binary min-heap of
//     (time, session, kind) events; a session costs O(log live) per segment
//     instead of O(steps), and idle time costs nothing.
//   * SoA arena state. Per-session state lives in parallel arrays indexed by
//     slot, with a free list recycling slots as sessions finish — memory is
//     O(cells + peak live sessions), not O(total sessions).
//   * Streaming aggregation. Per-session scalars fold into RunningStats,
//     P^2 quantile markers, and seeded reservoir samples (util/stats.h) the
//     moment a session ends; nothing per-session is retained.
//
// Sharding: cells are split into `regions` contiguous blocks; sessions are
// assigned round-robin (id % regions) and are mobile within their region
// only. Each region is a pure function of (config, region index) — seeds
// come from sim::seed_mix, never from shared state — so regions run on
// util::parallel_map and merge serially in region order: bit-identical
// results at any job count (DESIGN §6).
//
// Link model: quasi-stationary processor sharing. A request entering cell c
// at time t is granted share = capacity_c(t) / (downloads in c + 1), frozen
// for the transfer. This is the documented fleet-scale approximation of the
// engine's exact per-step re-sharing; the rich path remains the reference
// for within-session fidelity, the fleet path for population statistics.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eacs/core/cost_stats.h"
#include "eacs/core/decision_cache.h"
#include "eacs/power/model.h"
#include "eacs/qoe/model.h"
#include "eacs/sim/cell_network.h"
#include "eacs/sim/execution.h"
#include "eacs/sim/fleet_faults.h"
#include "eacs/util/stats.h"

namespace eacs::sim {

/// Client policy the fleet's sessions run.
enum class FleetPolicy {
  /// Throughput-based ABR with the context-aware rung cap (PR 8 baseline).
  kThroughput,
  /// The paper's planner: every request solves the Eq. 11 rolling-horizon DP
  /// on its (quantized) context snapshot, memoized through one DecisionCache
  /// shard per region. See DESIGN "Decision cache & quantization".
  kPlanner,
};

/// Graceful-degradation knobs: the retry/backoff ladder sessions enter when
/// no live cell is reachable, and the overload triggers that shed the
/// planner policy to the throughput policy (DESIGN §14). Defaults disable
/// both shed triggers and give a 2 s -> 30 s exponential backoff ladder;
/// the backoff path only ever runs when faults kill cells, so the defaults
/// are inert on a clean run.
struct FleetResilienceConfig {
  /// Backoff ladder for a session whose whole region is dead: sleep
  /// base * factor^(attempt-1) seconds, capped, burning pause power the
  /// whole time (wasted-energy accounting mirrors the rich player's stall
  /// pricing). After `max_retries` consecutive failures the session is
  /// abandoned (counted, never folded into the QoE aggregates).
  double backoff_base_s = 2.0;
  double backoff_factor = 2.0;
  double backoff_max_s = 30.0;
  std::size_t max_retries = 6;

  /// Live-session overload trigger: when a region's live count reaches this,
  /// planner decisions shed to the throughput policy until the live count
  /// falls back to `shed_live_recover` (0 = half the threshold). 0 disables.
  std::size_t shed_live_threshold = 0;
  std::size_t shed_live_recover = 0;

  /// Cache-thrash trigger: over each trailing window of
  /// `shed_miss_window` planner consultations, a miss rate at or above
  /// `shed_miss_rate_threshold` sheds planner decisions for `shed_hold_s`
  /// seconds. A threshold > 1 disables the trigger.
  double shed_miss_rate_threshold = 2.0;
  std::size_t shed_miss_window = 256;
  double shed_hold_s = 30.0;
};

/// Fleet run parameters. Defaults give a quick smoke-sized run; benchmarks
/// scale num_sessions to 100k+.
struct FleetConfig {
  CellNetworkConfig network;

  std::size_t num_sessions = 1000;
  /// Constant arrival rate [sessions/s]. With finite session length this
  /// bounds the live set (Little's law), which is what keeps peak memory
  /// flat as num_sessions grows.
  double arrival_rate_per_s = 4.0;

  // Content: fixed-duration segments over the paper-style bitrate ladder.
  double segment_duration_s = 2.0;
  std::size_t segments_per_session = 30;
  std::vector<double> ladder_mbps = {0.35, 0.75, 1.2, 2.4, 4.8};

  // Player knobs (mirroring player::PlayerConfig's semantics).
  double buffer_threshold_s = 30.0;  ///< pause requesting above this level
  double startup_buffer_s = 4.0;     ///< playback begins once buffered
  double abr_safety = 0.8;           ///< request <= safety * estimated rate
  std::size_t bandwidth_window = 5;  ///< harmonic-mean window (SoA inline)

  // Context-aware rung cap (paper §IV): under strong vibration the fleet
  // client caps its rung, trading bitrate for energy exactly like the rich
  // path's context-aware policy. Vibration is procedural per session.
  double vibration_cap_threshold = 1.2;  ///< m/s^2; above this, cap the rung
  std::size_t vibration_rung_cap = 2;    ///< max rung index while vibrating

  // Mobility: serving cell re-evaluated at every request boundary.
  double handoff_hysteresis_db = 3.0;

  /// Which client policy the sessions run.
  FleetPolicy policy = FleetPolicy::kThroughput;
  // Planner-policy knobs (ignored under kThroughput).
  std::size_t planner_horizon = 5;        ///< rolling-horizon window (tasks)
  std::size_t planner_startup_level = 0;  ///< rung before any throughput sample
  double planner_alpha = 0.5;             ///< Eq. 11 energy weight
  /// Per-region decision-cache shard configuration. The fleet default is the
  /// quantized mode: population hit rates need bucket coalescing, and the
  /// quantization error is bounded + studied in EXPERIMENTS.md. capacity=0
  /// gives the uncached ("naive per-session solving") reference with
  /// identical decisions. The capacity is raised well above the observed
  /// distinct-key population (~2-3k per region shard at 10k sessions):
  /// direct-mapped tables thrash hard once revisited keys alternate in a
  /// slot, so head-room is cheap insurance (~10 MB per region).
  /// prev_level_bucket = 2 pairs neighbouring rungs in the key: on the dense
  /// evaluation ladder the switch-penalty term barely distinguishes them,
  /// and it roughly halves the compulsory-miss floor (EXPERIMENTS.md).
  core::DecisionCacheConfig planner_cache{.exact = false,
                                          .prev_level_bucket = 2,
                                          .capacity = 131072};

  /// Cells are split into this many contiguous shards; sessions are pinned
  /// to region (id % regions). Clamped to num_cells. The region count is
  /// part of the *model* (mobility range), not an execution knob: changing
  /// it changes results; changing exec.jobs never does.
  std::size_t regions = 8;

  std::size_t reservoir_capacity = 1024;  ///< per-metric sample reservoir

  /// Fault overlay (outages / brownouts / collapses / surges). The default
  /// (empty) spec is a certified no-op: run_fleet takes the exact clean code
  /// path and results are bitwise unchanged.
  FleetFaultSpec faults;
  /// Degradation ladder + overload-shed triggers (see above).
  FleetResilienceConfig resilience;

  qoe::QoeModelParams qoe;
  power::PowerModelParams power;

  std::uint64_t seed = 0xF1EE'7CA5ULL;
  ExecutionPolicy exec;
};

/// Per-region streaming aggregates (the shard-local view, kept in the
/// result for locality analysis; P^2 medians are per-region because P^2
/// markers cannot be merged across shards).
struct FleetRegionMetrics {
  std::size_t region = 0;
  std::size_t first_cell = 0;
  std::size_t num_cells = 0;
  std::size_t sessions = 0;  ///< sessions that completed all their segments
  std::size_t events = 0;
  std::size_t requests = 0;
  std::size_t handoffs = 0;
  std::size_t stall_events = 0;
  std::size_t peak_live_sessions = 0;
  // Degradation ladder counters (DESIGN §14); all zero on a clean run.
  std::size_t escape_handoffs = 0;     ///< forced moves off a dead cell
  std::size_t backoff_retries = 0;     ///< backoff sleeps scheduled
  std::size_t abandoned_sessions = 0;  ///< gave up after max_retries
  std::size_t policy_sheds = 0;        ///< planner -> throughput transitions
  std::size_t policy_recoveries = 0;   ///< throughput -> planner transitions
  std::size_t shed_decisions = 0;      ///< decisions taken while shed
  double degraded_time_s = 0.0;        ///< total session-time in backoff
  double wasted_energy_j = 0.0;        ///< pause power burned in backoff
  double median_qoe = 0.0;        ///< P^2 streaming estimate
  double median_energy_j = 0.0;   ///< P^2 streaming estimate
  /// Planner-policy instrumentation for this region's cache shard (all zero
  /// under kThroughput): cache hits/misses/evictions, plans, model evals.
  /// Deterministic in (config, region index), merged serially by run_fleet.
  core::CostStats planner;
};

/// Fleet-wide outcome: streaming moments + reservoir percentiles, no
/// per-session storage.
struct FleetMetrics {
  std::size_t sessions = 0;  ///< completed sessions; with faults,
                             ///< sessions + abandoned_sessions == num_sessions
  std::size_t events = 0;    ///< total events processed across regions
  std::size_t requests = 0;  ///< segment requests issued
  std::size_t handoffs = 0;  ///< serving-cell changes (hysteresis rule)
  std::size_t stall_events = 0;
  /// Sum of per-region peak live counts: a conservative bound on the global
  /// peak, and the quantity the O(live) memory claim is about.
  std::size_t peak_live_sessions = 0;

  // Degradation ladder totals (serial merge of the region counters; see
  // FleetRegionMetrics). All zero on a clean run — pinned by the no-op
  // certification tests.
  std::size_t escape_handoffs = 0;
  std::size_t backoff_retries = 0;
  std::size_t abandoned_sessions = 0;
  std::size_t policy_sheds = 0;
  std::size_t policy_recoveries = 0;
  std::size_t shed_decisions = 0;
  double degraded_time_s = 0.0;
  double wasted_energy_j = 0.0;

  /// Fleet-wide planner instrumentation (serial merge of the per-region
  /// CostStats; all zero under kThroughput). cache_hits + cache_misses is
  /// the number of planner consultations, plans the number of cold DP
  /// solves — the memoization headline is their ratio.
  core::CostStats planner;

  RunningStats qoe;
  RunningStats energy_j;
  RunningStats bitrate_mbps;
  RunningStats rebuffer_s;
  RunningStats startup_s;

  /// Seeded reservoir samples for fleet-wide percentiles (mergeable across
  /// shards, unlike P^2 — see util/stats.h).
  ReservoirSampler qoe_sample{1};       // re-seeded by run_fleet
  ReservoirSampler energy_sample{1};    // re-seeded by run_fleet
  ReservoirSampler rebuffer_sample{1};  // re-seeded by run_fleet

  std::vector<FleetRegionMetrics> regions;

  /// Reservoir-estimated fleet-wide quantiles, p in [0, 1].
  double qoe_quantile(double p) const { return qoe_sample.quantile(p); }
  double energy_quantile(double p) const { return energy_sample.quantile(p); }
  double rebuffer_quantile(double p) const {
    return rebuffer_sample.quantile(p);
  }
};

/// Runs the fleet. Deterministic in (config): bit-identical at any
/// exec.jobs. Throws std::invalid_argument on an empty ladder, zero
/// sessions, zero cells, zero segments, a non-finite or non-positive
/// segment duration / arrival rate, more regions than cells (or zero
/// regions), a malformed fault spec, or malformed resilience knobs.
FleetMetrics run_fleet(const FleetConfig& config);

}  // namespace eacs::sim
