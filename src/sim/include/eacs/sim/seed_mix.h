#pragma once
// One seed-derivation rule for every sharded study (DESIGN §6): a sweep cell's
// RNG seed must be a pure function of (base seed, grid index, session id) so
// results are bit-identical at any job count and any evaluation order.
//
// The fault, sensor-fault, and CDN-fault studies all derive their per-cell
// seeds here; the fleet simulator derives per-session and per-(client, cell)
// signal seeds the same way. robustness.cpp intentionally keeps its serial
// Rng salt stream (changing it would shift that study's committed outputs).
//
// The arithmetic is frozen: it is the exact `cell_seed` formula the studies
// shipped with, so routing them through this header changes no outputs.

#include <cstddef>
#include <cstdint>

namespace eacs::sim {

/// Mixes (base, grid_index, session_id) into one 64-bit seed using the two
/// SplitMix64 multiplicative constants. The +1 offsets keep index 0 and
/// session 0 from degenerating into `base` itself.
inline std::uint64_t seed_mix(std::uint64_t base, std::size_t grid_index,
                              int session_id) noexcept {
  std::uint64_t x = base ^ (0x9E3779B97F4A7C15ULL * (grid_index + 1));
  x ^= 0x94D049BB133111EBULL * (static_cast<std::uint64_t>(session_id) + 1);
  return x;
}

/// Maps a seed_mix value to a uniform double in [0, 1) via the standard
/// 53-bit mantissa construction — exact, platform-independent, and pure, so
/// procedural models (cell capacities, signal trajectories, per-session
/// context) can sample without any RNG state.
inline double seed_unit(std::uint64_t x) noexcept {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace eacs::sim
