#pragma once
// Sharded multi-cell radio network for the fleet simulator (DESIGN §12).
//
// A CellNetwork is a procedural model of many base stations: each cell has
// its own capacity trajectory (per-cell scale and phase over a shared
// sinusoidal profile) and every (session, cell) pair has its own signal
// trajectory, both derived statelessly from sim::seed_mix — no traces are
// stored, so memory is O(cells) however long the run and however many
// sessions attach. Sessions pick a serving cell by signal with a hysteresis
// margin (a handoff happens only when a neighbour beats the serving cell by
// `hysteresis_db`), the classic guard against ping-pong handoffs.
//
// Every query is a pure function of (config, ids, time): two shards asking
// about the same cell see identical answers, which is what lets the fleet
// path shard by region under the DESIGN §6 determinism contract.

#include <cstddef>
#include <cstdint>

namespace eacs::sim {

/// Procedural network parameters. Defaults give a city-ish 16-cell layout
/// with 25-55 Mbps cells swinging ±30% over a 90 s period.
struct CellNetworkConfig {
  std::size_t num_cells = 16;

  double mean_capacity_mbps = 40.0;  ///< fleet-wide mean cell capacity
  double capacity_spread = 0.4;      ///< per-cell scale in [1-spread, 1+spread]
  double capacity_sway = 0.3;        ///< sinusoidal swing as a fraction of mean
  double capacity_period_s = 90.0;   ///< period of the capacity sinusoid

  double signal_best_dbm = -65.0;    ///< strongest per-(session, cell) base
  double signal_worst_dbm = -110.0;  ///< weakest per-(session, cell) base
  double signal_swing_db = 12.0;     ///< mobility swing amplitude
  double signal_period_s = 60.0;     ///< mean mobility period (per-pair jitter)

  std::uint64_t seed = 0xCE11'F1EEULL;
};

/// The procedural network. Cheap to copy; all state is the config.
class CellNetwork {
 public:
  /// Throws std::invalid_argument when `num_cells` is zero.
  explicit CellNetwork(CellNetworkConfig config);

  const CellNetworkConfig& config() const noexcept { return config_; }
  std::size_t num_cells() const noexcept { return config_.num_cells; }

  /// Cell capacity at time `t_s` [Mbps], always >= 0. Pure in (config,
  /// cell, t_s).
  double capacity_mbps(std::size_t cell, double t_s) const noexcept;

  /// Signal strength session `session_id` sees from `cell` at `t_s` [dBm].
  /// Each pair gets a stable base level plus a sinusoidal mobility swing
  /// with pair-specific phase and period. Pure in (config, ids, t_s).
  double signal_dbm(int session_id, std::size_t cell, double t_s) const noexcept;

  /// Strongest cell for the session at `t_s` (lowest index wins ties).
  std::size_t best_cell(int session_id, double t_s) const noexcept;

  /// Best cell restricted to [first_cell, first_cell + count) — the region
  /// variant the sharded fleet path uses so mobility never crosses a shard.
  std::size_t best_cell_in(int session_id, double t_s, std::size_t first_cell,
                           std::size_t count) const noexcept;

  /// Hysteresis handoff rule: returns the cell the session should be served
  /// by, given it is currently on `current`. Switches to the best in-range
  /// cell only when that cell's signal beats `current` by more than
  /// `hysteresis_db`; otherwise sticks (anti-ping-pong).
  std::size_t serving_cell(int session_id, std::size_t current, double t_s,
                           double hysteresis_db, std::size_t first_cell,
                           std::size_t count) const noexcept;

 private:
  CellNetworkConfig config_;
};

}  // namespace eacs::sim
