#pragma once
// Execution policy for the sim sweeps.
//
// Every sweep in eacs::sim (Section V evaluation, fault study, robustness
// ensemble, CEM training) is a fan-out over pure units of work — each unit's
// inputs (traces, seeds, configs) are a function of its index only. The
// ExecutionPolicy says how many worker threads may run those units; it never
// changes what they compute. Results are bit-identical at any `jobs` value,
// and jobs == 1 is exactly the historical serial loop (no pool is created).
// See DESIGN.md, "Parallel execution model", for the seeding contract.

#include <cstddef>
#include <thread>

namespace eacs::sim {

/// Worker-thread budget for a sweep. jobs == 1 (default) is the serial
/// path; jobs == 0 means "all hardware threads".
struct ExecutionPolicy {
  std::size_t jobs = 1;

  /// Policy using every hardware thread.
  static ExecutionPolicy hardware() noexcept { return {0}; }

  /// `jobs`, with 0 resolved to std::thread::hardware_concurrency().
  std::size_t resolved_jobs() const noexcept {
    if (jobs != 0) return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }
};

}  // namespace eacs::sim
