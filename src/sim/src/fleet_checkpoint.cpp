#include "eacs/sim/fleet_checkpoint.h"

#include <bit>
#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>

namespace eacs::sim {
namespace {

constexpr char kMagic[] = "EACS_FLEET_CKPT";
constexpr std::uint64_t kVersion = 1;

// ---------------------------------------------------------------------------
// Config fingerprint: FNV-1a over every result-shaping field's bit pattern.

struct Fnv {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFULL;
      h *= 0x00000100000001b3ULL;
    }
  }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
  void sz(std::size_t v) noexcept { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) noexcept { u64(v ? 1 : 0); }
};

}  // namespace

std::uint64_t fleet_config_fingerprint(const FleetConfig& config) {
  Fnv f;
  const CellNetworkConfig& n = config.network;
  f.sz(n.num_cells);
  f.f64(n.mean_capacity_mbps);
  f.f64(n.capacity_spread);
  f.f64(n.capacity_sway);
  f.f64(n.capacity_period_s);
  f.f64(n.signal_best_dbm);
  f.f64(n.signal_worst_dbm);
  f.f64(n.signal_swing_db);
  f.f64(n.signal_period_s);
  f.u64(n.seed);

  f.sz(config.num_sessions);
  f.f64(config.arrival_rate_per_s);
  f.f64(config.segment_duration_s);
  f.sz(config.segments_per_session);
  f.sz(config.ladder_mbps.size());
  for (const double mbps : config.ladder_mbps) f.f64(mbps);
  f.f64(config.buffer_threshold_s);
  f.f64(config.startup_buffer_s);
  f.f64(config.abr_safety);
  f.sz(config.bandwidth_window);
  f.f64(config.vibration_cap_threshold);
  f.sz(config.vibration_rung_cap);
  f.f64(config.handoff_hysteresis_db);
  f.u64(static_cast<std::uint64_t>(config.policy));
  f.sz(config.planner_horizon);
  f.sz(config.planner_startup_level);
  f.f64(config.planner_alpha);
  const core::DecisionCacheConfig& c = config.planner_cache;
  f.b(c.exact);
  f.f64(c.buffer_bucket_s);
  f.f64(c.bandwidth_buckets_per_octave);
  f.f64(c.vibration_bucket);
  f.f64(c.confidence_bucket);
  f.f64(c.signal_bucket_dbm);
  f.sz(c.prev_level_bucket);
  f.sz(c.capacity);
  f.sz(config.regions);
  f.sz(config.reservoir_capacity);

  const FleetFaultSpec& spec = config.faults;
  f.sz(spec.outages.size());
  for (const CellOutage& o : spec.outages) {
    f.f64(o.t0_s);
    f.f64(o.t1_s);
    f.sz(o.first_cell);
    f.sz(o.num_cells);
  }
  f.sz(spec.brownouts.size());
  for (const CapacityBrownout& b : spec.brownouts) {
    f.f64(b.t0_s);
    f.f64(b.t1_s);
    f.sz(b.first_cell);
    f.sz(b.num_cells);
    f.f64(b.capacity_factor);
  }
  f.sz(spec.collapses.size());
  for (const SignalCollapse& s : spec.collapses) {
    f.f64(s.t0_s);
    f.f64(s.t1_s);
    f.sz(s.first_cell);
    f.sz(s.num_cells);
    f.f64(s.offset_db);
  }
  f.sz(spec.surges.size());
  for (const ArrivalSurge& s : spec.surges) {
    f.f64(s.t0_s);
    f.f64(s.t1_s);
    f.f64(s.rate_multiplier);
  }
  const SeededFaultConfig& g = spec.seeded;
  f.f64(g.horizon_s);
  f.f64(g.epoch_s);
  f.sz(g.domain_cells);
  f.f64(g.outage_prob);
  f.f64(g.outage_duration_s);
  f.f64(g.brownout_prob);
  f.f64(g.brownout_factor);
  f.f64(g.brownout_duration_s);
  f.f64(g.collapse_prob);
  f.f64(g.collapse_db);
  f.f64(g.collapse_duration_s);
  f.f64(g.surge_prob);
  f.f64(g.surge_multiplier);
  f.f64(g.surge_duration_s);
  f.u64(g.seed);

  const FleetResilienceConfig& r = config.resilience;
  f.f64(r.backoff_base_s);
  f.f64(r.backoff_factor);
  f.f64(r.backoff_max_s);
  f.sz(r.max_retries);
  f.sz(r.shed_live_threshold);
  f.sz(r.shed_live_recover);
  f.f64(r.shed_miss_rate_threshold);
  f.sz(r.shed_miss_window);
  f.f64(r.shed_hold_s);

  const qoe::QoeModelParams& q = config.qoe;
  f.f64(q.a);
  f.f64(q.b);
  f.f64(q.kappa);
  f.f64(q.alpha_v);
  f.f64(q.beta_r);
  f.f64(q.switch_penalty);
  f.f64(q.rebuffer_penalty_per_s);
  f.f64(q.mos_min);
  f.f64(q.mos_max);

  const power::PowerModelParams& p = config.power;
  f.f64(p.e_ref_j_per_mb);
  f.f64(p.s_ref_dbm);
  f.f64(p.k_per_db);
  f.f64(p.e_min_j_per_mb);
  f.f64(p.e_max_j_per_mb);
  f.f64(p.p_base_w);
  f.f64(p.c0_w);
  f.f64(p.c1_w_per_mbps);
  f.f64(p.p_pause_w);
  f.f64(p.tail_energy_j);

  f.u64(config.seed);
  return f.h;
}

namespace {

// ---------------------------------------------------------------------------
// Sidecar token stream. Every value is one decimal u64 token; doubles are
// written as their IEEE-754 bit patterns (std::bit_cast), signed integers in
// two's complement — exact, portable, diffable.

struct Writer {
  std::ostream& out;

  void u64(std::uint64_t v) { out << v << '\n'; }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void sz(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64s(const std::vector<double>& xs) {
    sz(xs.size());
    for (const double x : xs) f64(x);
  }
  void u8s(const std::vector<std::uint8_t>& xs) {
    sz(xs.size());
    for (const std::uint8_t x : xs) u64(x);
  }
  void u32s(const std::vector<std::uint32_t>& xs) {
    sz(xs.size());
    for (const std::uint32_t x : xs) u64(x);
  }
  void ints(const std::vector<int>& xs) {
    sz(xs.size());
    for (const int x : xs) i64(x);
  }
  void szs(const std::vector<std::size_t>& xs) {
    sz(xs.size());
    for (const std::size_t x : xs) sz(x);
  }

  void running(const RunningStatsState& s) {
    sz(s.count);
    f64(s.mean);
    f64(s.m2);
    f64(s.sum);
    f64(s.min);
    f64(s.max);
  }
  void rng(const RngState& s) {
    for (const std::uint64_t w : s.words) u64(w);
    f64(s.cached_normal);
    u64(s.has_cached_normal ? 1 : 0);
  }
  void reservoir(const ReservoirSamplerState& s) {
    sz(s.capacity);
    sz(s.count);
    rng(s.rng);
    f64s(s.items);
  }
  void p2(const P2QuantileState& s) {
    f64(s.p);
    sz(s.count);
    for (const double v : s.heights) f64(v);
    for (const double v : s.positions) f64(v);
    for (const double v : s.desired) f64(v);
    for (const double v : s.increments) f64(v);
  }
  void key(const core::DecisionKey& k) {
    u64(k.ladder_id);
    u64(k.alpha_bits);
    i64(k.buffer);
    i64(k.bandwidth);
    i64(k.vibration);
    i64(k.confidence);
    i64(k.signal);
    i64(k.remaining);
    i64(k.prev_level);
  }
  void cost(const core::CostStats& s) {
    u64(s.qoe_model_evals);
    u64(s.power_model_evals);
    u64(s.edge_evals);
    u64(s.tables_built);
    u64(s.plans);
    u64(s.cache_hits);
    u64(s.cache_misses);
    u64(s.cache_evictions);
  }
  void metrics(const FleetRegionMetrics& m) {
    sz(m.region);
    sz(m.first_cell);
    sz(m.num_cells);
    sz(m.sessions);
    sz(m.events);
    sz(m.requests);
    sz(m.handoffs);
    sz(m.stall_events);
    sz(m.peak_live_sessions);
    sz(m.escape_handoffs);
    sz(m.backoff_retries);
    sz(m.abandoned_sessions);
    sz(m.policy_sheds);
    sz(m.policy_recoveries);
    sz(m.shed_decisions);
    f64(m.degraded_time_s);
    f64(m.wasted_energy_j);
    f64(m.median_qoe);
    f64(m.median_energy_j);
    cost(m.planner);
  }
};

struct Reader {
  std::istream& in;

  std::uint64_t u64() {
    std::uint64_t v = 0;
    if (!(in >> v)) {
      throw std::runtime_error(
          "load_fleet_checkpoint: truncated or malformed checkpoint");
    }
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::size_t sz() { return static_cast<std::size_t>(u64()); }

  std::vector<double> f64s() {
    std::vector<double> xs(sz());
    for (double& x : xs) x = f64();
    return xs;
  }
  std::vector<std::uint8_t> u8s() {
    std::vector<std::uint8_t> xs(sz());
    for (std::uint8_t& x : xs) x = static_cast<std::uint8_t>(u64());
    return xs;
  }
  std::vector<std::uint32_t> u32s() {
    std::vector<std::uint32_t> xs(sz());
    for (std::uint32_t& x : xs) x = static_cast<std::uint32_t>(u64());
    return xs;
  }
  std::vector<int> ints() {
    std::vector<int> xs(sz());
    for (int& x : xs) x = static_cast<int>(i64());
    return xs;
  }
  std::vector<std::size_t> szs() {
    std::vector<std::size_t> xs(sz());
    for (std::size_t& x : xs) x = sz();
    return xs;
  }

  RunningStatsState running() {
    RunningStatsState s;
    s.count = sz();
    s.mean = f64();
    s.m2 = f64();
    s.sum = f64();
    s.min = f64();
    s.max = f64();
    return s;
  }
  RngState rng() {
    RngState s;
    for (std::uint64_t& w : s.words) w = u64();
    s.cached_normal = f64();
    s.has_cached_normal = u64() != 0;
    return s;
  }
  ReservoirSamplerState reservoir() {
    ReservoirSamplerState s;
    s.capacity = sz();
    s.count = sz();
    s.rng = rng();
    s.items = f64s();
    return s;
  }
  P2QuantileState p2() {
    P2QuantileState s;
    s.p = f64();
    s.count = sz();
    for (double& v : s.heights) v = f64();
    for (double& v : s.positions) v = f64();
    for (double& v : s.desired) v = f64();
    for (double& v : s.increments) v = f64();
    return s;
  }
  core::DecisionKey key() {
    core::DecisionKey k;
    k.ladder_id = u64();
    k.alpha_bits = u64();
    k.buffer = i64();
    k.bandwidth = i64();
    k.vibration = i64();
    k.confidence = i64();
    k.signal = i64();
    k.remaining = i64();
    k.prev_level = i64();
    return k;
  }
  core::CostStats cost() {
    core::CostStats s;
    s.qoe_model_evals = u64();
    s.power_model_evals = u64();
    s.edge_evals = u64();
    s.tables_built = u64();
    s.plans = u64();
    s.cache_hits = u64();
    s.cache_misses = u64();
    s.cache_evictions = u64();
    return s;
  }
  FleetRegionMetrics metrics() {
    FleetRegionMetrics m;
    m.region = sz();
    m.first_cell = sz();
    m.num_cells = sz();
    m.sessions = sz();
    m.events = sz();
    m.requests = sz();
    m.handoffs = sz();
    m.stall_events = sz();
    m.peak_live_sessions = sz();
    m.escape_handoffs = sz();
    m.backoff_retries = sz();
    m.abandoned_sessions = sz();
    m.policy_sheds = sz();
    m.policy_recoveries = sz();
    m.shed_decisions = sz();
    m.degraded_time_s = f64();
    m.wasted_energy_j = f64();
    m.median_qoe = f64();
    m.median_energy_j = f64();
    m.planner = cost();
    return m;
  }
};

}  // namespace

void save_fleet_checkpoint(const FleetCheckpoint& checkpoint,
                           const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_fleet_checkpoint: cannot open " + path);
  }
  out << kMagic << ' ' << kVersion << '\n';
  Writer w{out};
  w.u64(checkpoint.config_fingerprint);
  w.f64(checkpoint.checkpoint_t_s);
  w.sz(checkpoint.regions.size());
  for (const FleetRegionCheckpoint& r : checkpoint.regions) {
    w.sz(r.region);
    w.sz(r.live);
    w.sz(r.events.size());
    for (const FleetEventState& e : r.events) {
      w.f64(e.t_s);
      w.i64(e.session);
      w.u64(e.kind);
      w.u64(e.slot);
    }
    const FleetArenaState& a = r.arena;
    w.sz(a.window);
    w.ints(a.session);
    w.szs(a.cell);
    w.szs(a.next_segment);
    w.f64s(a.arrival_s);
    w.f64s(a.last_event_s);
    w.f64s(a.buffer_s);
    w.u8s(a.playing);
    w.f64s(a.startup_s);
    w.f64s(a.rebuffer_s);
    w.f64s(a.seg_rebuffer_s);
    w.f64s(a.qoe_sum);
    w.f64s(a.energy_j);
    w.f64s(a.bitrate_sum);
    w.f64s(a.prev_bitrate);
    w.ints(a.prev_level);
    w.f64s(a.request_s);
    w.f64s(a.size_mb);
    w.f64s(a.level_bitrate);
    w.u32s(a.level);
    w.sz(a.last_key.size());
    for (const core::DecisionKey& k : a.last_key) w.key(k);
    w.u32s(a.last_level);
    w.u8s(a.has_last);
    w.u32s(a.retries);
    w.f64s(a.throughputs);
    w.szs(a.seen);
    w.u32s(a.free_slots);
    w.szs(r.cell_active);
    w.metrics(r.metrics);
    w.running(r.qoe);
    w.running(r.energy_j);
    w.running(r.bitrate_mbps);
    w.running(r.rebuffer_s);
    w.running(r.startup_s);
    w.reservoir(r.qoe_sample);
    w.reservoir(r.energy_sample);
    w.reservoir(r.rebuffer_sample);
    w.p2(r.median_qoe);
    w.p2(r.median_energy);
    w.u64(r.shed.live_shed);
    w.u64(r.shed.miss_shed);
    w.f64(r.shed.shed_until_s);
    w.u64(r.shed.window_consults);
    w.u64(r.shed.window_misses);
    w.u64(r.cache.stats.hits);
    w.u64(r.cache.stats.misses);
    w.u64(r.cache.stats.evictions);
    w.sz(r.cache.entries.size());
    for (const core::DecisionCacheState::Entry& e : r.cache.entries) {
      w.sz(e.slot);
      w.key(e.key);
      w.u64(e.level);
    }
  }
  out.flush();
  if (!out.good()) {
    throw std::runtime_error("save_fleet_checkpoint: write failed on " + path);
  }
}

FleetCheckpoint load_fleet_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_fleet_checkpoint: cannot open " + path);
  }
  std::string magic;
  std::uint64_t version = 0;
  if (!(in >> magic >> version) || magic != kMagic || version != kVersion) {
    throw std::runtime_error(
        "load_fleet_checkpoint: bad magic or unsupported version in " + path);
  }
  Reader rd{in};
  FleetCheckpoint checkpoint;
  checkpoint.config_fingerprint = rd.u64();
  checkpoint.checkpoint_t_s = rd.f64();
  checkpoint.regions.resize(rd.sz());
  for (FleetRegionCheckpoint& r : checkpoint.regions) {
    r.region = rd.sz();
    r.live = rd.sz();
    r.events.resize(rd.sz());
    for (FleetEventState& e : r.events) {
      e.t_s = rd.f64();
      e.session = static_cast<int>(rd.i64());
      e.kind = static_cast<std::uint8_t>(rd.u64());
      e.slot = static_cast<std::uint32_t>(rd.u64());
    }
    FleetArenaState& a = r.arena;
    a.window = rd.sz();
    a.session = rd.ints();
    a.cell = rd.szs();
    a.next_segment = rd.szs();
    a.arrival_s = rd.f64s();
    a.last_event_s = rd.f64s();
    a.buffer_s = rd.f64s();
    a.playing = rd.u8s();
    a.startup_s = rd.f64s();
    a.rebuffer_s = rd.f64s();
    a.seg_rebuffer_s = rd.f64s();
    a.qoe_sum = rd.f64s();
    a.energy_j = rd.f64s();
    a.bitrate_sum = rd.f64s();
    a.prev_bitrate = rd.f64s();
    a.prev_level = rd.ints();
    a.request_s = rd.f64s();
    a.size_mb = rd.f64s();
    a.level_bitrate = rd.f64s();
    a.level = rd.u32s();
    a.last_key.resize(rd.sz());
    for (core::DecisionKey& k : a.last_key) k = rd.key();
    a.last_level = rd.u32s();
    a.has_last = rd.u8s();
    a.retries = rd.u32s();
    a.throughputs = rd.f64s();
    a.seen = rd.szs();
    a.free_slots = rd.u32s();
    r.cell_active = rd.szs();
    r.metrics = rd.metrics();
    r.qoe = rd.running();
    r.energy_j = rd.running();
    r.bitrate_mbps = rd.running();
    r.rebuffer_s = rd.running();
    r.startup_s = rd.running();
    r.qoe_sample = rd.reservoir();
    r.energy_sample = rd.reservoir();
    r.rebuffer_sample = rd.reservoir();
    r.median_qoe = rd.p2();
    r.median_energy = rd.p2();
    r.shed.live_shed = static_cast<std::uint8_t>(rd.u64());
    r.shed.miss_shed = static_cast<std::uint8_t>(rd.u64());
    r.shed.shed_until_s = rd.f64();
    r.shed.window_consults = rd.u64();
    r.shed.window_misses = rd.u64();
    r.cache.stats.hits = rd.u64();
    r.cache.stats.misses = rd.u64();
    r.cache.stats.evictions = rd.u64();
    r.cache.entries.resize(rd.sz());
    for (core::DecisionCacheState::Entry& e : r.cache.entries) {
      e.slot = rd.sz();
      e.key = rd.key();
      e.level = static_cast<std::uint32_t>(rd.u64());
    }
  }
  return checkpoint;
}

}  // namespace eacs::sim
