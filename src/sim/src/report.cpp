#include "eacs/sim/report.h"

namespace eacs::sim {

eacs::CsvTable evaluation_to_csv(const EvaluationResult& result) {
  eacs::CsvTable table({"algorithm", "session_id", "total_energy_j", "base_energy_j",
                        "extra_energy_j", "mean_qoe", "mean_bitrate_mbps",
                        "downloaded_mb", "rebuffer_s", "rebuffer_events",
                        "switch_count", "startup_delay_s"});
  for (const auto& row : result.rows) {
    table.add_row({row.algorithm, std::to_string(row.session_id),
                   eacs::format_double(row.total_energy_j),
                   eacs::format_double(row.base_energy_j),
                   eacs::format_double(row.extra_energy_j),
                   eacs::format_double(row.mean_qoe),
                   eacs::format_double(row.mean_bitrate_mbps),
                   eacs::format_double(row.downloaded_mb),
                   eacs::format_double(row.rebuffer_s),
                   std::to_string(row.rebuffer_events),
                   std::to_string(row.switch_count),
                   eacs::format_double(row.startup_delay_s)});
  }
  return table;
}

eacs::CsvTable summary_to_csv(const EvaluationResult& result,
                              const std::string& reference) {
  eacs::CsvTable table({"algorithm", "energy_saving", "extra_energy_saving",
                        "mean_qoe", "qoe_degradation", "saving_degradation_ratio"});
  for (const auto& algorithm : result.algorithms()) {
    table.add_row({algorithm,
                   eacs::format_double(result.mean_energy_saving(algorithm, reference)),
                   eacs::format_double(
                       result.mean_extra_energy_saving(algorithm, reference)),
                   eacs::format_double(result.mean_qoe(algorithm)),
                   eacs::format_double(result.mean_qoe_degradation(algorithm, reference)),
                   eacs::format_double(
                       result.saving_degradation_ratio(algorithm, reference))});
  }
  return table;
}

eacs::CsvTable robustness_to_csv(const RobustnessResult& result) {
  eacs::CsvTable table({"algorithm", "metric", "mean", "stddev", "min", "max", "runs"});
  const auto add = [&](const std::string& algorithm, const std::string& metric,
                       const eacs::RunningStats& stats) {
    table.add_row({algorithm, metric, eacs::format_double(stats.mean()),
                   eacs::format_double(stats.stddev()),
                   eacs::format_double(stats.min()), eacs::format_double(stats.max()),
                   std::to_string(stats.count())});
  };
  for (const auto& [algorithm, dist] : result.per_algorithm) {
    add(algorithm, "energy_saving", dist.energy_saving);
    add(algorithm, "extra_energy_saving", dist.extra_energy_saving);
    add(algorithm, "qoe_degradation", dist.qoe_degradation);
    add(algorithm, "mean_qoe", dist.mean_qoe);
  }
  return table;
}

void write_evaluation_csv(const std::filesystem::path& path,
                          const EvaluationResult& result) {
  eacs::write_csv_file(path, evaluation_to_csv(result));
}

void write_summary_csv(const std::filesystem::path& path,
                       const EvaluationResult& result, const std::string& reference) {
  eacs::write_csv_file(path, summary_to_csv(result, reference));
}

}  // namespace eacs::sim
