#include "eacs/sim/cdn_fault_study.h"

#include <cmath>
#include <span>
#include <stdexcept>

#include "eacs/abr/bba.h"
#include "eacs/net/segment_source.h"
#include "eacs/sim/seed_mix.h"
#include "eacs/util/thread_pool.h"

namespace eacs::sim {
namespace {

/// Origin fault spec for one grid point: the family's knobs scaled linearly
/// by intensity. Per-source draws are decorrelated by source id inside
/// SegmentSource, so one seed per (grid point, session) suffices.
net::CdnFaultSpec origin_spec(const CdnFaultStudyConfig& config,
                              CdnFaultFamily family, double intensity,
                              std::uint64_t seed) {
  net::CdnFaultSpec spec;
  spec.seed = seed;
  const auto outage = [&](double scale) {
    spec.outage_rate_per_min = config.outage_rate_per_min * intensity * scale;
    spec.outage_mean_s = config.outage_mean_s;
  };
  const auto errors = [&](double scale) {
    spec.error_rate_per_min = config.error_rate_per_min * intensity * scale;
    spec.error_episode_mean_s = config.error_episode_mean_s;
  };
  const auto payload = [&](double scale) {
    spec.truncate_prob = config.truncate_prob * intensity * scale;
    spec.corrupt_prob = config.corrupt_prob * intensity * scale;
  };
  const auto slow = [&](double scale) {
    spec.slow_start_prob = config.slow_start_prob * intensity * scale;
    spec.slow_scale = config.slow_scale;
  };
  switch (family) {
    case CdnFaultFamily::kOriginOutage: outage(1.0); break;
    case CdnFaultFamily::kErrorBursts: errors(1.0); break;
    case CdnFaultFamily::kPayloadCorruption: payload(1.0); break;
    case CdnFaultFamily::kSlowStart: slow(1.0); break;
    case CdnFaultFamily::kCombined:
      outage(0.5);
      errors(0.5);
      payload(0.5);
      slow(0.5);
      break;
  }
  return spec;
}

}  // namespace

const char* to_string(CdnFaultFamily family) noexcept {
  switch (family) {
    case CdnFaultFamily::kOriginOutage: return "origin_outage";
    case CdnFaultFamily::kErrorBursts: return "error_bursts";
    case CdnFaultFamily::kPayloadCorruption: return "payload_corruption";
    case CdnFaultFamily::kSlowStart: return "slow_start";
    case CdnFaultFamily::kCombined: return "combined";
  }
  return "unknown";
}

std::vector<CdnFaultFamily> all_cdn_fault_families() {
  return {CdnFaultFamily::kOriginOutage, CdnFaultFamily::kErrorBursts,
          CdnFaultFamily::kPayloadCorruption, CdnFaultFamily::kSlowStart,
          CdnFaultFamily::kCombined};
}

const CdnFaultCell& CdnFaultStudyResult::cell(CdnFaultFamily family,
                                              double intensity,
                                              std::size_t sources) const {
  for (const auto& c : cells) {
    if (c.family == family && std::fabs(c.intensity - intensity) < 1e-12 &&
        c.sources == sources) {
      return c;
    }
  }
  throw std::out_of_range(std::string("CdnFaultStudyResult: no cell for ") +
                          to_string(family));
}

CdnFaultStudyResult run_cdn_fault_study(const CdnFaultStudyConfig& config) {
  if (config.intensities.empty() || config.source_counts.empty()) {
    throw std::invalid_argument("run_cdn_fault_study: empty sweep axes");
  }
  for (const std::size_t count : config.source_counts) {
    if (count == 0) {
      throw std::invalid_argument("run_cdn_fault_study: zero source count");
    }
  }
  const auto families =
      config.families.empty() ? all_cdn_fault_families() : config.families;

  const Evaluation evaluation(config.evaluation);
  const qoe::QoeModel qoe_model(config.evaluation.qoe);
  const power::PowerModel power_model(config.evaluation.power);

  player::PlayerConfig player_config = config.evaluation.player;
  player_config.resilience.hedge_enabled = config.hedge_enabled;

  const auto sessions = trace::build_all_sessions(config.evaluation.session_options);
  std::vector<media::VideoManifest> manifests;
  std::vector<player::PlayerSimulator> simulators;
  manifests.reserve(sessions.size());
  simulators.reserve(sessions.size());
  for (const auto& session : sessions) {
    manifests.push_back(evaluation.manifest_for(session.spec));
    simulators.emplace_back(manifests.back(), player_config);
  }

  struct UnitResult {
    SessionMetrics metrics;
    std::size_t hedges = 0;
    std::size_t failovers = 0;
    std::size_t breaker_transitions = 0;
  };

  // One unit: the delivery policy (BBA — the study isolates delivery
  // robustness, not ABR choice) over one session through `count` sources.
  // A zero count runs the fault-free single-source reference.
  const auto run_unit = [&](std::size_t s, CdnFaultFamily family,
                            double intensity, std::size_t count,
                            std::uint64_t seed) {
    const auto& session = sessions[s];
    abr::Bba bba(5.0, config.evaluation.player.buffer_threshold_s);
    UnitResult unit;
    player::PlaybackResult playback;
    if (count == 0) {
      playback = simulators[s].run(bba, session);
    } else {
      std::vector<net::SegmentSource> sources;
      sources.reserve(count);
      net::CdnSourceConfig origin;
      origin.name = "origin";
      origin.id = 0;
      origin.faults = origin_spec(config, family, intensity, seed);
      sources.emplace_back(session.throughput_mbps, origin, &session.signal_dbm);
      for (std::size_t k = 1; k < count; ++k) {
        net::CdnSourceConfig edge;
        edge.name = "edge-" + std::to_string(k);
        edge.id = k;
        edge.throughput_scale =
            std::max(config.edge_scale_floor,
                     1.0 - static_cast<double>(k) * config.edge_scale_step);
        edge.base_rtt_s = static_cast<double>(k) * config.edge_rtt_step_s;
        sources.emplace_back(session.throughput_mbps, edge, &session.signal_dbm);
      }
      playback = simulators[s].run(
          bba, session, std::span<const net::SegmentSource>(sources));
    }
    unit.metrics = compute_metrics(bba.name(), session.spec.id, playback,
                                   manifests[s], qoe_model, power_model);
    unit.hedges = playback.total_hedges;
    unit.failovers = playback.total_failovers;
    unit.breaker_transitions = playback.breaker_transitions;
    return unit;
  };

  const std::size_t jobs = config.evaluation.exec.resolved_jobs();
  const std::size_t n_sessions = sessions.size();
  const std::size_t n_cells =
      families.size() * config.intensities.size() * config.source_counts.size();
  const std::size_t counts_per_family =
      config.intensities.size() * config.source_counts.size();

  // Fault-free single-source reference.
  const auto clean_units =
      util::parallel_map(jobs, n_sessions, [&](std::size_t s) {
        return run_unit(s, CdnFaultFamily::kOriginOutage, 0.0, 0, 0);
      });

  CdnFaultStudyResult result;
  for (const auto& unit : clean_units) {
    result.clean.algorithm = unit.metrics.algorithm;
    result.clean.mean_qoe +=
        unit.metrics.mean_qoe / static_cast<double>(n_sessions);
    result.clean.total_energy_j += unit.metrics.total_energy_j;
    result.clean.rebuffer_s += unit.metrics.rebuffer_s;
    result.clean.mean_bitrate_mbps +=
        unit.metrics.mean_bitrate_mbps / static_cast<double>(n_sessions);
  }

  // The grid, flattened to (grid point, session) units; each unit's fault
  // seed is pure in (config.seed, grid index, session id). The seed ignores
  // the source-count axis on purpose: a given (family, intensity, session)
  // draws the *same* origin fault realisation at every source count, so the
  // source-count axis isolates the failover machinery rather than re-rolling
  // the faults.
  const auto cell_units =
      util::parallel_map(jobs, n_cells * n_sessions, [&](std::size_t item) {
        const std::size_t grid_index = item / n_sessions;
        const std::size_t s = item % n_sessions;
        const auto family = families[grid_index / counts_per_family];
        const std::size_t within = grid_index % counts_per_family;
        const double intensity =
            config.intensities[within / config.source_counts.size()];
        const std::size_t count =
            config.source_counts[within % config.source_counts.size()];
        const std::size_t fault_point =
            grid_index / config.source_counts.size();
        return run_unit(s, family, intensity, count,
                        seed_mix(config.seed, fault_point, sessions[s].spec.id));
      });

  // Serial reduction in grid order: bit-identical at any job count.
  std::size_t grid_index = 0;
  for (const auto family : families) {
    for (const double intensity : config.intensities) {
      for (const std::size_t count : config.source_counts) {
        CdnFaultCell cell;
        cell.family = family;
        cell.intensity = intensity;
        cell.sources = count;
        for (std::size_t s = 0; s < n_sessions; ++s) {
          const auto& unit = cell_units[grid_index * n_sessions + s];
          cell.mean_qoe +=
              unit.metrics.mean_qoe / static_cast<double>(n_sessions);
          cell.total_energy_j += unit.metrics.total_energy_j;
          cell.wasted_energy_j += unit.metrics.wasted_energy_j;
          cell.rebuffer_s += unit.metrics.rebuffer_s;
          cell.mean_bitrate_mbps +=
              unit.metrics.mean_bitrate_mbps / static_cast<double>(n_sessions);
          cell.retries += unit.metrics.retries;
          cell.hedges += unit.hedges;
          cell.failovers += unit.failovers;
          cell.breaker_transitions += unit.breaker_transitions;
        }
        cell.qoe_delta_vs_clean = cell.mean_qoe - result.clean.mean_qoe;
        cell.rebuffer_delta_vs_clean_s = cell.rebuffer_s - result.clean.rebuffer_s;
        result.cells.push_back(cell);
        ++grid_index;
      }
    }
  }

  // Deltas vs. the retry-only (source-count-1) cell of the same family and
  // intensity, once all cells exist.
  for (auto& cell : result.cells) {
    bool found = false;
    for (const auto& single : result.cells) {
      if (single.sources == 1 && single.family == cell.family &&
          std::fabs(single.intensity - cell.intensity) < 1e-12) {
        cell.qoe_delta_vs_single = cell.mean_qoe - single.mean_qoe;
        cell.energy_delta_vs_single_j =
            cell.total_energy_j - single.total_energy_j;
        cell.rebuffer_delta_vs_single_s = cell.rebuffer_s - single.rebuffer_s;
        found = true;
        break;
      }
    }
    if (!found) {
      cell.qoe_delta_vs_single = 0.0;
      cell.energy_delta_vs_single_j = 0.0;
      cell.rebuffer_delta_vs_single_s = 0.0;
    }
  }
  return result;
}

}  // namespace eacs::sim
