#include "eacs/sim/robustness.h"

#include <stdexcept>

#include "eacs/util/rng.h"

namespace eacs::sim {

RobustnessResult run_robustness_study(const EvaluationConfig& config,
                                      std::size_t runs, std::uint64_t base_seed) {
  if (runs == 0) throw std::invalid_argument("run_robustness_study: runs must be > 0");

  RobustnessResult result;
  result.runs = runs;
  const Evaluation evaluation(config);
  eacs::Rng seed_stream(base_seed);

  for (std::size_t run = 0; run < runs; ++run) {
    const std::uint64_t run_salt = seed_stream.next_u64();
    // Fresh trace realisations with the same Table V targets.
    std::vector<trace::SessionTraces> sessions;
    for (media::SessionSpec spec : media::evaluation_sessions()) {
      spec.seed ^= run_salt;
      sessions.push_back(trace::build_session(spec, config.session_options));
    }
    const EvaluationResult eval = evaluation.run(sessions);
    for (const auto& algo : {"FESTIVE", "BBA", "Ours", "Optimal"}) {
      auto& dist = result.per_algorithm[algo];
      dist.energy_saving.add(eval.mean_energy_saving(algo));
      dist.extra_energy_saving.add(eval.mean_extra_energy_saving(algo));
      dist.qoe_degradation.add(eval.mean_qoe_degradation(algo));
      dist.mean_qoe.add(eval.mean_qoe(algo));
    }
  }
  return result;
}

}  // namespace eacs::sim
