#include "eacs/sim/robustness.h"

#include <stdexcept>

#include "eacs/util/rng.h"
#include "eacs/util/thread_pool.h"

namespace eacs::sim {

RobustnessResult run_robustness_study(const EvaluationConfig& config,
                                      std::size_t runs, std::uint64_t base_seed,
                                      ExecutionPolicy exec) {
  if (runs == 0) throw std::invalid_argument("run_robustness_study: runs must be > 0");

  // The salts are drawn serially up front so the seed stream is identical
  // to the historical per-iteration draws, whatever the job count. This is
  // deliberately NOT sim::seed_mix — the study's committed outputs are keyed
  // to this sequential Rng stream, not the stateless grid-index mix.
  eacs::Rng seed_stream(base_seed);
  std::vector<std::uint64_t> run_salts(runs);
  for (auto& salt : run_salts) salt = seed_stream.next_u64();

  // Runs are the parallel unit; force each run's inner evaluation serial so
  // the fan-out is single-level.
  const std::size_t jobs = exec.resolved_jobs();
  EvaluationConfig run_config = config;
  if (jobs > 1) run_config.exec = ExecutionPolicy{1};
  const Evaluation evaluation(run_config);

  const auto evals =
      util::parallel_map(jobs, runs, [&](std::size_t run) {
        // Fresh trace realisations with the same Table V targets.
        std::vector<trace::SessionTraces> sessions;
        for (media::SessionSpec spec : media::evaluation_sessions()) {
          spec.seed ^= run_salts[run];
          sessions.push_back(trace::build_session(spec, config.session_options));
        }
        return evaluation.run(sessions);
      });

  RobustnessResult result;
  result.runs = runs;
  for (const EvaluationResult& eval : evals) {
    for (const auto& algo : {"FESTIVE", "BBA", "Ours", "Optimal"}) {
      auto& dist = result.per_algorithm[algo];
      dist.energy_saving.add(eval.mean_energy_saving(algo));
      dist.extra_energy_saving.add(eval.mean_extra_energy_saving(algo));
      dist.qoe_degradation.add(eval.mean_qoe_degradation(algo));
      dist.mean_qoe.add(eval.mean_qoe(algo));
    }
  }
  return result;
}

}  // namespace eacs::sim
