#include "eacs/sim/fault_study.h"

#include <cmath>
#include <map>
#include <stdexcept>

#include "eacs/abr/bba.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/core/online.h"
#include "eacs/core/optimal.h"
#include "eacs/net/fault_injector.h"
#include "eacs/sim/seed_mix.h"
#include "eacs/util/thread_pool.h"

namespace eacs::sim {

const FaultCell& FaultStudyResult::cell(const std::string& algorithm,
                                        double outage_rate_per_min,
                                        double failure_prob) const {
  for (const auto& c : cells) {
    if (c.algorithm == algorithm &&
        std::fabs(c.outage_rate_per_min - outage_rate_per_min) < 1e-12 &&
        std::fabs(c.failure_prob - failure_prob) < 1e-12) {
      return c;
    }
  }
  throw std::out_of_range("FaultStudyResult: no cell for " + algorithm);
}

FaultStudyResult run_fault_study(const FaultStudyConfig& config) {
  if (config.outage_rates_per_min.empty() || config.failure_probs.empty()) {
    throw std::invalid_argument("run_fault_study: empty sweep axes");
  }

  const Evaluation evaluation(config.evaluation);
  const qoe::QoeModel qoe_model(config.evaluation.qoe);
  const power::PowerModel power_model(config.evaluation.power);

  core::ObjectiveConfig objective_config;
  objective_config.alpha = config.evaluation.alpha;
  objective_config.buffer_threshold_s = config.evaluation.player.buffer_threshold_s;
  objective_config.context_aware = config.evaluation.context_aware;
  const core::Objective objective(qoe_model, power_model, objective_config);

  // Sessions, manifests, simulators and optimal plans are built once and
  // shared across the whole grid.
  const auto sessions = trace::build_all_sessions(config.evaluation.session_options);
  std::vector<media::VideoManifest> manifests;
  std::vector<player::PlayerSimulator> simulators;
  std::vector<core::OptimalPlan> plans;
  manifests.reserve(sessions.size());
  simulators.reserve(sessions.size());
  plans.reserve(sessions.size());
  for (const auto& session : sessions) {
    manifests.push_back(evaluation.manifest_for(session.spec));
    simulators.emplace_back(manifests.back(), config.evaluation.player);
    core::OptimalPlanner planner(objective);
    plans.push_back(planner.plan(core::build_task_environments(manifests.back(), session)));
  }

  // One unit of work: replay every policy over one session (optionally
  // through a fault injector) and return the metrics in policy order. Fresh
  // policy instances per unit (the planner output is shared, read-only).
  const auto run_policies = [&](std::size_t s, const net::FaultInjector* faults) {
    const auto& session = sessions[s];
    abr::FixedBitrate youtube;
    abr::Festive festive;
    abr::Bba bba(5.0, config.evaluation.player.buffer_threshold_s);
    core::OnlineBitrateSelector ours(
        objective, {.startup_level = config.evaluation.online_startup_level});
    core::PlannedPolicy optimal(plans[s]);

    const std::vector<player::AbrPolicy*> policies = {&youtube, &festive, &bba,
                                                      &ours, &optimal};
    std::vector<SessionMetrics> metrics;
    metrics.reserve(policies.size());
    for (player::AbrPolicy* policy : policies) {
      const auto playback = faults != nullptr
                                ? simulators[s].run(*policy, session, *faults)
                                : simulators[s].run(*policy, session);
      metrics.push_back(compute_metrics(policy->name(), session.spec.id, playback,
                                        manifests[s], qoe_model, power_model));
    }
    return metrics;
  };

  // Serial reduction: the accumulation order (sessions outer, policies
  // inner) is fixed regardless of how the units above were scheduled, so
  // the floating-point sums are bit-identical at any job count.
  const auto accumulate = [&](std::map<std::string, FaultCell>& cells,
                              const std::vector<SessionMetrics>& metrics) {
    for (const auto& m : metrics) {
      FaultCell& cell = cells[m.algorithm];
      cell.algorithm = m.algorithm;
      cell.mean_qoe += m.mean_qoe / static_cast<double>(sessions.size());
      cell.total_energy_j += m.total_energy_j;
      cell.wasted_energy_j += m.wasted_energy_j;
      cell.rebuffer_s += m.rebuffer_s;
      cell.retries += m.retries;
      cell.abandoned_segments += m.abandoned_segments;
    }
  };

  const std::size_t jobs = config.evaluation.exec.resolved_jobs();
  const std::size_t n_sessions = sessions.size();
  const std::size_t n_cells =
      config.outage_rates_per_min.size() * config.failure_probs.size();

  // Fault-free baseline per algorithm: the reference every cell's deltas
  // are taken against.
  const auto baseline_metrics = util::parallel_map(
      jobs, n_sessions, [&](std::size_t s) { return run_policies(s, nullptr); });
  std::map<std::string, FaultCell> baseline;
  for (const auto& metrics : baseline_metrics) accumulate(baseline, metrics);

  // The grid, flattened to (grid cell, session) units. Each unit's fault
  // seed is a pure function of (config.seed, grid index, session id), so
  // the whole table is reproducible at any job count.
  const auto cell_metrics =
      util::parallel_map(jobs, n_cells * n_sessions, [&](std::size_t item) {
        const std::size_t grid_index = item / n_sessions;
        const std::size_t s = item % n_sessions;
        const double outage_rate =
            config.outage_rates_per_min[grid_index / config.failure_probs.size()];
        const double failure_prob =
            config.failure_probs[grid_index % config.failure_probs.size()];
        const auto& session = sessions[s];

        net::FaultSpec spec;
        spec.outage_rate_per_min = outage_rate;
        spec.outage_mean_s = config.outage_mean_s;
        spec.failure_prob = failure_prob;
        if (failure_prob > 0.0) {
          spec.signal_failure_per_db = config.signal_failure_per_db;
          spec.signal_threshold_dbm = config.signal_threshold_dbm;
        }
        spec.seed = seed_mix(config.seed, grid_index, session.spec.id);
        const net::FaultInjector faults(session.throughput_mbps, spec,
                                        &session.signal_dbm);
        return run_policies(s, &faults);
      });

  FaultStudyResult result;
  std::size_t grid_index = 0;
  for (const double outage_rate : config.outage_rates_per_min) {
    for (const double failure_prob : config.failure_probs) {
      std::map<std::string, FaultCell> per_algorithm;
      for (std::size_t s = 0; s < n_sessions; ++s) {
        accumulate(per_algorithm, cell_metrics[grid_index * n_sessions + s]);
      }

      for (auto& [name, cell] : per_algorithm) {
        cell.outage_rate_per_min = outage_rate;
        cell.failure_prob = failure_prob;
        const FaultCell& base = baseline.at(name);
        cell.qoe_delta = cell.mean_qoe - base.mean_qoe;
        cell.energy_delta_j = cell.total_energy_j - base.total_energy_j;
        cell.rebuffer_delta_s = cell.rebuffer_s - base.rebuffer_s;
        result.cells.push_back(cell);
      }
      ++grid_index;
    }
  }
  return result;
}

}  // namespace eacs::sim
