#include "eacs/sim/sensor_fault_study.h"

#include <cmath>
#include <stdexcept>

#include "eacs/abr/bba.h"
#include "eacs/core/online.h"
#include "eacs/sensors/sensor_faults.h"
#include "eacs/sim/seed_mix.h"
#include "eacs/util/thread_pool.h"

namespace eacs::sim {
namespace {

/// Periodic scripted episodes of `type` covering fraction `intensity` of
/// [0, horizon): episodes of `episode_s` every episode_s/intensity seconds.
/// Intensity >= 1 collapses to one contiguous episode over the whole stream.
std::vector<sensors::SensorFaultEpisode> periodic_episodes(
    sensors::SensorFaultType type, double intensity, double episode_s,
    double horizon_s) {
  std::vector<sensors::SensorFaultEpisode> episodes;
  if (horizon_s <= 0.0 || intensity <= 0.0) return episodes;
  if (intensity >= 1.0) {
    episodes.push_back({type, 0.0, horizon_s});
    return episodes;
  }
  const double period = episode_s / intensity;
  for (double t = 0.0; t < horizon_s; t += period) {
    episodes.push_back({type, t, std::min(t + episode_s, horizon_s)});
  }
  return episodes;
}

sensors::SensorFaultSpec build_spec(const SensorFaultStudyConfig& config,
                                    SensorFaultScenario scenario,
                                    double intensity, double accel_horizon_s,
                                    double signal_horizon_s,
                                    std::uint64_t seed) {
  sensors::SensorFaultSpec spec;
  spec.seed = seed;
  const auto accel_scenario = [&](sensors::SensorFaultType type) {
    spec.accel_episodes = periodic_episodes(type, intensity,
                                            config.episode_length_s,
                                            accel_horizon_s);
  };
  switch (scenario) {
    case SensorFaultScenario::kDropout:
      accel_scenario(sensors::SensorFaultType::kDropout);
      break;
    case SensorFaultScenario::kStuckAt:
      accel_scenario(sensors::SensorFaultType::kStuckAt);
      break;
    case SensorFaultScenario::kNoiseBurst:
      accel_scenario(sensors::SensorFaultType::kNoiseBurst);
      break;
    case SensorFaultScenario::kSaturation:
      accel_scenario(sensors::SensorFaultType::kSaturation);
      break;
    case SensorFaultScenario::kNanCorruption:
      accel_scenario(sensors::SensorFaultType::kNanCorruption);
      break;
    case SensorFaultScenario::kRateCollapse:
      accel_scenario(sensors::SensorFaultType::kRateCollapse);
      break;
    case SensorFaultScenario::kSignalDropout:
      spec.signal_episodes =
          periodic_episodes(sensors::SensorFaultType::kDropout, intensity,
                            config.episode_length_s, signal_horizon_s);
      break;
    case SensorFaultScenario::kCombined:
      spec.accel_episode_rate_per_min =
          config.combined_accel_rate_per_min * intensity;
      spec.signal_dropout_rate_per_min =
          config.combined_signal_rate_per_min * intensity;
      break;
  }
  return spec;
}

}  // namespace

const char* to_string(SensorFaultScenario scenario) noexcept {
  switch (scenario) {
    case SensorFaultScenario::kDropout: return "dropout";
    case SensorFaultScenario::kStuckAt: return "stuck_at";
    case SensorFaultScenario::kNoiseBurst: return "noise_burst";
    case SensorFaultScenario::kSaturation: return "saturation";
    case SensorFaultScenario::kNanCorruption: return "nan_corruption";
    case SensorFaultScenario::kRateCollapse: return "rate_collapse";
    case SensorFaultScenario::kSignalDropout: return "signal_dropout";
    case SensorFaultScenario::kCombined: return "combined";
  }
  return "unknown";
}

std::vector<SensorFaultScenario> all_sensor_fault_scenarios() {
  return {SensorFaultScenario::kDropout,       SensorFaultScenario::kStuckAt,
          SensorFaultScenario::kNoiseBurst,    SensorFaultScenario::kSaturation,
          SensorFaultScenario::kNanCorruption, SensorFaultScenario::kRateCollapse,
          SensorFaultScenario::kSignalDropout, SensorFaultScenario::kCombined};
}

const SensorFaultCell& SensorFaultStudyResult::cell(
    SensorFaultScenario scenario, double intensity) const {
  for (const auto& c : cells) {
    if (c.scenario == scenario && std::fabs(c.intensity - intensity) < 1e-12) {
      return c;
    }
  }
  throw std::out_of_range(std::string("SensorFaultStudyResult: no cell for ") +
                          to_string(scenario));
}

SensorFaultStudyResult run_sensor_fault_study(
    const SensorFaultStudyConfig& config) {
  if (config.intensities.empty()) {
    throw std::invalid_argument("run_sensor_fault_study: empty intensity axis");
  }
  const auto scenarios = config.scenarios.empty() ? all_sensor_fault_scenarios()
                                                  : config.scenarios;

  const Evaluation evaluation(config.evaluation);
  const qoe::QoeModel qoe_model(config.evaluation.qoe);
  const power::PowerModel power_model(config.evaluation.power);

  core::ObjectiveConfig objective_config;
  objective_config.alpha = config.evaluation.alpha;
  objective_config.buffer_threshold_s = config.evaluation.player.buffer_threshold_s;
  objective_config.context_aware = config.evaluation.context_aware;
  const core::Objective objective(qoe_model, power_model, objective_config);

  const auto sessions = trace::build_all_sessions(config.evaluation.session_options);
  std::vector<media::VideoManifest> manifests;
  std::vector<player::PlayerSimulator> simulators;
  std::vector<std::vector<sensors::SignalSample>> signal_streams;
  manifests.reserve(sessions.size());
  simulators.reserve(sessions.size());
  signal_streams.reserve(sessions.size());
  for (const auto& session : sessions) {
    manifests.push_back(evaluation.manifest_for(session.spec));
    simulators.emplace_back(manifests.back(), config.evaluation.player);
    signal_streams.push_back(trace::signal_samples(session.signal_dbm));
  }

  struct UnitResult {
    SessionMetrics metrics;
    double context_error_sum = 0.0;
    std::size_t tasks = 0;
  };

  // One unit: degraded-context Ours over one session. A null injector runs
  // the clean baseline instead.
  const auto run_ours = [&](std::size_t s,
                            const sensors::SensorFaultInjector* faults) {
    const auto& session = sessions[s];
    core::OnlineBitrateSelector ours(
        objective, {.startup_level = config.evaluation.online_startup_level});
    const auto playback = faults != nullptr
                              ? simulators[s].run(ours, session, *faults)
                              : simulators[s].run(ours, session);
    UnitResult unit;
    unit.metrics = compute_metrics(ours.name(), session.spec.id, playback,
                                   manifests[s], qoe_model, power_model);
    for (const auto& task : playback.tasks) {
      unit.context_error_sum += std::fabs(task.perceived_vibration - task.vibration);
    }
    unit.tasks = playback.tasks.size();
    return unit;
  };

  const auto accumulate_baseline = [&](SensorFaultBaseline& base,
                                       const SessionMetrics& m) {
    base.algorithm = m.algorithm;
    base.mean_qoe += m.mean_qoe / static_cast<double>(sessions.size());
    base.total_energy_j += m.total_energy_j;
    base.rebuffer_s += m.rebuffer_s;
    base.mean_bitrate_mbps +=
        m.mean_bitrate_mbps / static_cast<double>(sessions.size());
  };

  const std::size_t jobs = config.evaluation.exec.resolved_jobs();
  const std::size_t n_sessions = sessions.size();
  const std::size_t n_cells = scenarios.size() * config.intensities.size();

  // Baselines: clean-context Ours and the context-blind reference (BBA reads
  // no vibration/signal, so sensor faults cannot touch it).
  const auto clean_units = util::parallel_map(
      jobs, n_sessions, [&](std::size_t s) { return run_ours(s, nullptr); });
  const auto blind_metrics =
      util::parallel_map(jobs, n_sessions, [&](std::size_t s) {
        const auto& session = sessions[s];
        abr::Bba bba(5.0, config.evaluation.player.buffer_threshold_s);
        const auto playback = simulators[s].run(bba, session);
        return compute_metrics(bba.name(), session.spec.id, playback,
                               manifests[s], qoe_model, power_model);
      });

  SensorFaultStudyResult result;
  for (const auto& unit : clean_units) {
    accumulate_baseline(result.clean_ours, unit.metrics);
  }
  for (const auto& m : blind_metrics) accumulate_baseline(result.context_blind, m);

  // The grid, flattened to (grid point, session) units; each unit builds its
  // own injector from a seed pure in (config.seed, grid index, session id).
  const auto cell_units =
      util::parallel_map(jobs, n_cells * n_sessions, [&](std::size_t item) {
        const std::size_t grid_index = item / n_sessions;
        const std::size_t s = item % n_sessions;
        const auto scenario = scenarios[grid_index / config.intensities.size()];
        const double intensity =
            config.intensities[grid_index % config.intensities.size()];
        const auto& session = sessions[s];

        const double accel_horizon =
            session.accel.empty() ? 0.0 : session.accel.back().t_s;
        const auto spec = build_spec(
            config, scenario, intensity, accel_horizon,
            session.signal_dbm.empty() ? 0.0 : session.signal_dbm.end_time(),
            seed_mix(config.seed, grid_index, session.spec.id));
        const sensors::SensorFaultInjector faults(session.accel,
                                                  signal_streams[s], spec);
        return run_ours(s, &faults);
      });

  // Serial reduction in grid order: bit-identical at any job count.
  std::size_t grid_index = 0;
  for (const auto scenario : scenarios) {
    for (const double intensity : config.intensities) {
      SensorFaultCell cell;
      cell.scenario = scenario;
      cell.intensity = intensity;
      double error_sum = 0.0;
      std::size_t task_count = 0;
      for (std::size_t s = 0; s < n_sessions; ++s) {
        const auto& unit = cell_units[grid_index * n_sessions + s];
        cell.mean_qoe += unit.metrics.mean_qoe / static_cast<double>(n_sessions);
        cell.total_energy_j += unit.metrics.total_energy_j;
        cell.rebuffer_s += unit.metrics.rebuffer_s;
        cell.mean_bitrate_mbps +=
            unit.metrics.mean_bitrate_mbps / static_cast<double>(n_sessions);
        error_sum += unit.context_error_sum;
        task_count += unit.tasks;
      }
      cell.mean_context_error =
          task_count > 0 ? error_sum / static_cast<double>(task_count) : 0.0;
      cell.qoe_delta_vs_clean = cell.mean_qoe - result.clean_ours.mean_qoe;
      cell.energy_delta_vs_clean_j =
          cell.total_energy_j - result.clean_ours.total_energy_j;
      cell.rebuffer_delta_vs_clean_s =
          cell.rebuffer_s - result.clean_ours.rebuffer_s;
      cell.qoe_delta_vs_blind = cell.mean_qoe - result.context_blind.mean_qoe;
      cell.energy_delta_vs_blind_j =
          cell.total_energy_j - result.context_blind.total_energy_j;
      result.cells.push_back(cell);
      ++grid_index;
    }
  }
  return result;
}

}  // namespace eacs::sim
