#include "eacs/sim/fleet_faults.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "eacs/sim/seed_mix.h"

namespace eacs::sim {
namespace {

// seed_mix lanes for the seeded episode draws (XORed into the base seed so
// the per-kind streams are independent; see fleet.cpp's lane convention).
constexpr std::uint64_t kOutageLane = 0x00FA'0001;
constexpr std::uint64_t kBrownoutLane = 0x00FA'0002;
constexpr std::uint64_t kCollapseLane = 0x00FA'0003;
constexpr std::uint64_t kSurgeLane = 0x00FA'0004;

bool finite_interval(double t0, double t1) noexcept {
  return std::isfinite(t0) && std::isfinite(t1) && t1 > t0;
}

void check_interval(double t0, double t1, const char* what) {
  if (!finite_interval(t0, t1)) {
    throw std::invalid_argument(std::string("FleetFaultModel: ") + what +
                                " interval must be finite with t1 > t0");
  }
}

void check_cells(std::size_t first, std::size_t count, std::size_t total,
                 const char* what) {
  if (count == 0 || first >= total || total - first < count) {
    throw std::invalid_argument(std::string("FleetFaultModel: ") + what +
                                " cell range outside the network");
  }
}

bool covers(std::size_t first, std::size_t count, std::size_t cell) noexcept {
  return cell >= first && cell - first < count;
}

bool active(double t0, double t1, double t_s) noexcept {
  return t_s >= t0 && t_s < t1;
}

/// SplitMix64 finalizer. seed_mix alone has no avalanche (it is XOR of
/// multiplies), which is fine when the result seeds an Rng but not for a
/// direct Bernoulli threshold: lane bits below position 11 would be wiped by
/// seed_unit's mantissa shift, and a p = 0.5 draw would depend on bit 63
/// alone. Finalizing diffuses every input bit across the word first.
std::uint64_t avalanche(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Per-(domain, epoch) Bernoulli: pure in (seed, lane, domain, epoch).
bool episode_fires(std::uint64_t seed, std::uint64_t lane, std::size_t domain,
                   std::size_t epoch, double prob) noexcept {
  if (!(prob > 0.0)) return false;
  return seed_unit(avalanche(seed_mix(seed ^ lane, domain,
                                      static_cast<int>(epoch)))) < prob;
}

}  // namespace

FleetFaultModel::FleetFaultModel(const FleetFaultSpec& spec,
                                 std::size_t num_cells) {
  if (num_cells == 0) {
    throw std::invalid_argument("FleetFaultModel: zero cells");
  }

  for (const CellOutage& o : spec.outages) {
    check_interval(o.t0_s, o.t1_s, "outage");
    check_cells(o.first_cell, o.num_cells, num_cells, "outage");
    outages_.push_back(o);
  }
  for (const CapacityBrownout& b : spec.brownouts) {
    check_interval(b.t0_s, b.t1_s, "brownout");
    check_cells(b.first_cell, b.num_cells, num_cells, "brownout");
    if (!(b.capacity_factor > 0.0 && b.capacity_factor <= 1.0)) {
      throw std::invalid_argument(
          "FleetFaultModel: brownout factor must be in (0, 1]");
    }
    brownouts_.push_back(b);
  }
  for (const SignalCollapse& c : spec.collapses) {
    check_interval(c.t0_s, c.t1_s, "collapse");
    check_cells(c.first_cell, c.num_cells, num_cells, "collapse");
    if (!(std::isfinite(c.offset_db) && c.offset_db <= 0.0)) {
      throw std::invalid_argument(
          "FleetFaultModel: collapse offset must be finite and <= 0 dB");
    }
    collapses_.push_back(c);
  }
  std::vector<ArrivalSurge> surges;
  for (const ArrivalSurge& s : spec.surges) {
    check_interval(s.t0_s, s.t1_s, "surge");
    if (!(std::isfinite(s.rate_multiplier) && s.rate_multiplier > 0.0)) {
      throw std::invalid_argument(
          "FleetFaultModel: surge multiplier must be finite and > 0");
    }
    surges.push_back(s);
  }

  // Seeded episode generation: one Bernoulli per (domain, epoch) per kind,
  // materialized in (epoch, domain) order so the episode lists are
  // deterministic. Stateless draws — every run with this spec generates the
  // identical episode set.
  const SeededFaultConfig& gen = spec.seeded;
  if (gen.enabled()) {
    if (!(std::isfinite(gen.horizon_s) && gen.horizon_s > 0.0) ||
        !(std::isfinite(gen.epoch_s) && gen.epoch_s > 0.0)) {
      throw std::invalid_argument(
          "FleetFaultModel: seeded horizon and epoch must be finite and > 0");
    }
    if (gen.domain_cells == 0) {
      throw std::invalid_argument(
          "FleetFaultModel: seeded domain_cells must be >= 1");
    }
    for (const double p : {gen.outage_prob, gen.brownout_prob,
                           gen.collapse_prob, gen.surge_prob}) {
      if (!(p >= 0.0 && p <= 1.0)) {
        throw std::invalid_argument(
            "FleetFaultModel: seeded probabilities must be in [0, 1]");
      }
    }
    for (const double d :
         {gen.outage_duration_s, gen.brownout_duration_s,
          gen.collapse_duration_s, gen.surge_duration_s}) {
      if (!(std::isfinite(d) && d > 0.0)) {
        throw std::invalid_argument(
            "FleetFaultModel: seeded durations must be finite and > 0");
      }
    }
    if (!(gen.brownout_factor > 0.0 && gen.brownout_factor <= 1.0)) {
      throw std::invalid_argument(
          "FleetFaultModel: seeded brownout factor must be in (0, 1]");
    }
    if (!(std::isfinite(gen.collapse_db) && gen.collapse_db <= 0.0)) {
      throw std::invalid_argument(
          "FleetFaultModel: seeded collapse offset must be finite and <= 0");
    }
    if (!(std::isfinite(gen.surge_multiplier) && gen.surge_multiplier > 0.0)) {
      throw std::invalid_argument(
          "FleetFaultModel: seeded surge multiplier must be finite and > 0");
    }
    const auto num_epochs =
        static_cast<std::size_t>(std::ceil(gen.horizon_s / gen.epoch_s));
    const std::size_t num_domains =
        (num_cells + gen.domain_cells - 1) / gen.domain_cells;
    for (std::size_t epoch = 0; epoch < num_epochs; ++epoch) {
      const double t0 = static_cast<double>(epoch) * gen.epoch_s;
      for (std::size_t domain = 0; domain < num_domains; ++domain) {
        const std::size_t first = domain * gen.domain_cells;
        const std::size_t count = std::min(gen.domain_cells, num_cells - first);
        if (episode_fires(gen.seed, kOutageLane, domain, epoch,
                          gen.outage_prob)) {
          outages_.push_back({t0, t0 + gen.outage_duration_s, first, count});
        }
        if (episode_fires(gen.seed, kBrownoutLane, domain, epoch,
                          gen.brownout_prob)) {
          brownouts_.push_back({t0, t0 + gen.brownout_duration_s, first, count,
                                gen.brownout_factor});
        }
        if (episode_fires(gen.seed, kCollapseLane, domain, epoch,
                          gen.collapse_prob)) {
          collapses_.push_back({t0, t0 + gen.collapse_duration_s, first, count,
                                gen.collapse_db});
        }
      }
      if (episode_fires(gen.seed, kSurgeLane, 0, epoch, gen.surge_prob)) {
        // Clamped to the epoch so seeded surges never overlap each other.
        surges.push_back({t0, t0 + std::min(gen.surge_duration_s, gen.epoch_s),
                          gen.surge_multiplier});
      }
    }
  }

  // Surge profile: sweep all interval edges and take the most severe
  // (largest) multiplier over the active set in each span. The trailing
  // segment is multiplier 1 out to infinity, so the warp is the identity
  // after the last surge ends.
  if (!surges.empty()) {
    std::vector<double> edges;
    edges.push_back(0.0);
    for (const ArrivalSurge& s : surges) {
      if (s.t0_s > 0.0) edges.push_back(s.t0_s);
      if (s.t1_s > 0.0) edges.push_back(s.t1_s);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    for (const double t0 : edges) {
      double mult = 1.0;
      for (const ArrivalSurge& s : surges) {
        if (active(s.t0_s, s.t1_s, t0)) mult = std::max(mult, s.rate_multiplier);
      }
      if (!profile_.empty() && profile_.back().rate_mult == mult) continue;
      profile_.push_back({t0, mult, 0.0});
    }
    for (std::size_t i = 1; i < profile_.size(); ++i) {
      profile_[i].cum_units =
          profile_[i - 1].cum_units +
          profile_[i - 1].rate_mult * (profile_[i].t0_s - profile_[i - 1].t0_s);
    }
    if (profile_.size() == 1 && profile_[0].rate_mult == 1.0) {
      profile_.clear();  // all surges were neutral: identity warp
    }
  }
}

bool FleetFaultModel::cell_dead(std::size_t cell, double t_s) const noexcept {
  for (const CellOutage& o : outages_) {
    if (active(o.t0_s, o.t1_s, t_s) && covers(o.first_cell, o.num_cells, cell)) {
      return true;
    }
  }
  return false;
}

double FleetFaultModel::capacity_factor(std::size_t cell,
                                        double t_s) const noexcept {
  double factor = 1.0;
  for (const CapacityBrownout& b : brownouts_) {
    if (active(b.t0_s, b.t1_s, t_s) && covers(b.first_cell, b.num_cells, cell)) {
      factor = std::min(factor, b.capacity_factor);
    }
  }
  return factor;
}

double FleetFaultModel::signal_offset_db(std::size_t cell,
                                         double t_s) const noexcept {
  double offset = 0.0;
  for (const SignalCollapse& c : collapses_) {
    if (active(c.t0_s, c.t1_s, t_s) && covers(c.first_cell, c.num_cells, cell)) {
      offset = std::min(offset, c.offset_db);
    }
  }
  return offset;
}

double FleetFaultModel::arrival_time(std::size_t session,
                                     double base_rate_per_s) const noexcept {
  const double target = static_cast<double>(session) / base_rate_per_s;
  if (profile_.empty()) return target;
  // Find the last segment whose cumulative units do not exceed the target,
  // then invert the piecewise-linear integral inside it.
  std::size_t i = profile_.size() - 1;
  while (i > 0 && profile_[i].cum_units > target) --i;
  const SurgeSegment& seg = profile_[i];
  return seg.t0_s + (target - seg.cum_units) / seg.rate_mult;
}

}  // namespace eacs::sim
