#include "eacs/sim/cell_network.h"

#include <cmath>
#include <stdexcept>

#include "eacs/sim/seed_mix.h"

namespace eacs::sim {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;


}  // namespace

CellNetwork::CellNetwork(CellNetworkConfig config) : config_(config) {
  if (config_.num_cells == 0) {
    throw std::invalid_argument("CellNetwork: num_cells must be > 0");
  }
}

double CellNetwork::capacity_mbps(std::size_t cell, double t_s) const noexcept {
  // Session id -1 keys the cell's own (session-independent) draws.
  const std::uint64_t h = seed_mix(config_.seed, cell, -1);
  const double scale =
      1.0 + config_.capacity_spread * (2.0 * seed_unit(h) - 1.0);
  const double phase = kTwoPi * seed_unit(seed_mix(config_.seed, cell, -2));
  const double sway =
      config_.capacity_sway *
      std::sin(kTwoPi * t_s / config_.capacity_period_s + phase);
  const double capacity = config_.mean_capacity_mbps * scale * (1.0 + sway);
  return capacity > 0.0 ? capacity : 0.0;
}

double CellNetwork::signal_dbm(int session_id, std::size_t cell,
                               double t_s) const noexcept {
  const std::uint64_t h = seed_mix(config_.seed, cell, session_id);
  const double base =
      config_.signal_worst_dbm +
      (config_.signal_best_dbm - config_.signal_worst_dbm) * seed_unit(h);
  // Pair-specific phase and a period jittered in [0.75, 1.25] of the mean so
  // neighbouring pairs don't swing in lockstep.
  const std::uint64_t h2 = seed_mix(h, cell + 1, session_id);
  const double phase = kTwoPi * seed_unit(h2);
  const double period =
      config_.signal_period_s * (0.75 + 0.5 * seed_unit(seed_mix(h2, cell, session_id)));
  return base + config_.signal_swing_db * std::sin(kTwoPi * t_s / period + phase);
}

std::size_t CellNetwork::best_cell(int session_id, double t_s) const noexcept {
  return best_cell_in(session_id, t_s, 0, config_.num_cells);
}

std::size_t CellNetwork::best_cell_in(int session_id, double t_s,
                                      std::size_t first_cell,
                                      std::size_t count) const noexcept {
  std::size_t best = first_cell;
  double best_dbm = signal_dbm(session_id, first_cell, t_s);
  for (std::size_t c = first_cell + 1; c < first_cell + count; ++c) {
    const double dbm = signal_dbm(session_id, c, t_s);
    if (dbm > best_dbm) {  // strict: lowest index wins ties
      best_dbm = dbm;
      best = c;
    }
  }
  return best;
}

std::size_t CellNetwork::serving_cell(int session_id, std::size_t current,
                                      double t_s, double hysteresis_db,
                                      std::size_t first_cell,
                                      std::size_t count) const noexcept {
  const std::size_t best = best_cell_in(session_id, t_s, first_cell, count);
  if (best == current) return current;
  const double gain = signal_dbm(session_id, best, t_s) -
                      signal_dbm(session_id, current, t_s);
  return gain > hysteresis_db ? best : current;
}

}  // namespace eacs::sim
