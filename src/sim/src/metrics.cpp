#include "eacs/sim/metrics.h"

namespace eacs::sim {

double session_energy_j(const player::PlaybackResult& result,
                        const power::PowerModel& power_model) {
  double total = 0.0;
  for (const auto& task : result.tasks) {
    power::TaskEnergyInput input;
    input.size_mb = task.size_mb;
    input.bitrate_mbps = task.bitrate_mbps;
    input.signal_dbm = task.signal_dbm;
    input.play_s = task.duration_s;
    input.rebuffer_s = task.rebuffer_s;
    total += power_model.task_energy(input);
  }
  // Aborted transfers drain the battery too (zero on fault-free runs).
  return total + session_wasted_energy_j(result, power_model);
}

double session_wasted_energy_j(const player::PlaybackResult& result,
                               const power::PowerModel& power_model) {
  double total = 0.0;
  for (const auto& task : result.tasks) {
    if (task.wasted_mb > 0.0) {
      total += power_model.download_energy(task.wasted_mb, task.wasted_signal_dbm);
    }
  }
  return total;
}

double session_base_energy_j(const player::PlaybackResult& result,
                             const media::VideoManifest& manifest,
                             const power::PowerModel& power_model) {
  const std::size_t lowest = manifest.ladder().lowest_level();
  double total = 0.0;
  for (const auto& task : result.tasks) {
    power::TaskEnergyInput input;
    input.size_mb = manifest.segment_size_megabits(task.segment_index, lowest) / 8.0;
    input.bitrate_mbps = manifest.ladder().bitrate(lowest);
    input.signal_dbm = task.signal_dbm;
    input.play_s = task.duration_s;
    input.rebuffer_s = 0.0;
    total += power_model.task_energy(input);
  }
  return total;
}

double session_mean_qoe(const player::PlaybackResult& result,
                        const qoe::QoeModel& qoe_model) {
  double weighted = 0.0;
  double duration = 0.0;
  double prev_bitrate = 0.0;
  for (const auto& task : result.tasks) {
    qoe::SegmentContext context;
    context.bitrate_mbps = task.bitrate_mbps;
    context.vibration = task.vibration;
    context.prev_bitrate_mbps = prev_bitrate;
    context.rebuffer_s = task.rebuffer_s;
    weighted += qoe_model.segment_qoe(context) * task.duration_s;
    duration += task.duration_s;
    prev_bitrate = task.bitrate_mbps;
  }
  return duration > 0.0 ? weighted / duration : 0.0;
}

RrcSessionEnergy session_energy_rrc(const player::PlaybackResult& result,
                                    const power::PowerModel& power_model,
                                    const power::RrcSimulator& rrc) {
  RrcSessionEnergy out;
  std::vector<power::TransferBurst> bursts;
  bursts.reserve(result.tasks.size());
  for (const auto& task : result.tasks) {
    if (task.download_end_s > task.download_start_s) {
      bursts.push_back({task.download_start_s, task.download_end_s});
    }
    out.data_j += power_model.download_energy(task.size_mb, task.signal_dbm);
    out.playback_j += power_model.playback_power(task.bitrate_mbps) * task.duration_s;
    if (task.rebuffer_s > 0.0) {
      out.playback_j += power_model.pause_power() * task.rebuffer_s;
    }
  }
  const auto breakdown = rrc.analyze(std::move(bursts), result.session_end_s);
  out.tail_j = breakdown.tail_energy_j;
  out.idle_j = breakdown.idle_energy_j;
  out.promotion_j = breakdown.promotion_energy_j;
  out.promotions = breakdown.promotions;
  out.tail_time_s = breakdown.tail_time_s;
  return out;
}

SessionMetrics compute_metrics(const std::string& algorithm, int session_id,
                               const player::PlaybackResult& result,
                               const media::VideoManifest& manifest,
                               const qoe::QoeModel& qoe_model,
                               const power::PowerModel& power_model) {
  SessionMetrics metrics;
  metrics.algorithm = algorithm;
  metrics.session_id = session_id;
  metrics.total_energy_j = session_energy_j(result, power_model);
  metrics.base_energy_j = session_base_energy_j(result, manifest, power_model);
  metrics.extra_energy_j = metrics.total_energy_j - metrics.base_energy_j;
  metrics.mean_qoe = session_mean_qoe(result, qoe_model);
  metrics.mean_bitrate_mbps = result.mean_bitrate_mbps();
  metrics.downloaded_mb = result.total_downloaded_mb();
  metrics.rebuffer_s = result.total_rebuffer_s;
  metrics.rebuffer_events = result.rebuffer_events;
  metrics.switch_count = result.switch_count;
  metrics.startup_delay_s = result.startup_delay_s;
  metrics.wasted_energy_j = session_wasted_energy_j(result, power_model);
  metrics.wasted_mb = result.total_wasted_mb;
  metrics.retries = result.total_retries;
  metrics.abandoned_segments = result.abandoned_segments;
  return metrics;
}

}  // namespace eacs::sim
