#include "eacs/sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "eacs/core/horizon.h"
#include "eacs/core/objective.h"
#include "eacs/sim/seed_mix.h"
#include "eacs/util/thread_pool.h"

namespace eacs::sim {
namespace {

// seed_mix "grid index" lanes reserved by the fleet path (cell indices use
// the plain lane in CellNetwork; these stay clear of real cell counts).
constexpr std::size_t kVibrationLane = 0x00F1'0001;
constexpr std::size_t kReservoirLane = 0x00F1'0002;

/// Per-session procedural vibration level [m/s^2]: a stable draw skewed
/// toward stillness (squared uniform), so a minority of the fleet is
/// "walking" and hits the context-aware rung cap.
double session_vibration(std::uint64_t seed, int session_id) noexcept {
  const double u = seed_unit(seed_mix(seed, kVibrationLane, session_id));
  return 3.0 * u * u;
}

/// One scheduled event. Every live session has exactly one pending event
/// (arrive -> request -> complete -> request -> ...), so events can carry
/// their slot index and never go stale.
struct Event {
  double t_s = 0.0;
  int session = 0;
  std::uint8_t kind = 0;  // 0 = arrive, 1 = request, 2 = complete
  std::uint32_t slot = 0;
};
constexpr std::uint8_t kArrive = 0;
constexpr std::uint8_t kRequest = 1;
constexpr std::uint8_t kComplete = 2;

/// Min-heap order (t, session, kind): deterministic pops under duplicate
/// timestamps, independent of heap internals.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.t_s != b.t_s) return a.t_s > b.t_s;
    if (a.session != b.session) return a.session > b.session;
    return a.kind > b.kind;
  }
};

/// SoA arena for live-session state. All vectors are indexed by slot and
/// sized to the *live* high-water mark — finished sessions return their slot
/// to the free list, so a 100k-session run with a few hundred live at a time
/// allocates a few hundred slots. The bandwidth window is inlined as
/// slots x K doubles (no per-session allocations).
struct SessionArena {
  std::size_t window = 1;

  std::vector<int> session;
  std::vector<std::size_t> cell;
  std::vector<std::size_t> next_segment;
  std::vector<double> arrival_s;
  std::vector<double> last_event_s;  ///< playback drained up to here
  std::vector<double> buffer_s;
  std::vector<std::uint8_t> playing;
  std::vector<double> startup_s;       ///< set when playback starts
  std::vector<double> rebuffer_s;      ///< total stall so far
  std::vector<double> seg_rebuffer_s;  ///< stall since the current request
  std::vector<double> qoe_sum;
  std::vector<double> energy_j;
  std::vector<double> bitrate_sum;
  std::vector<double> prev_bitrate;
  std::vector<int> prev_level;  ///< last completed rung (-1 before any)
  // In-flight transfer (valid between request and complete).
  std::vector<double> request_s;
  std::vector<double> size_mb;
  std::vector<double> level_bitrate;
  std::vector<std::uint32_t> level;  ///< in-flight rung index
  // Planner L1: the slot's last canonical decision. Steady-state sessions
  // canonicalize consecutive requests to the same key, and decisions are a
  // pure function of the key, so an equal key reuses the level without
  // probing the shared shard table (a guaranteed cold-cache access at fleet
  // capacities). Counted as cache hits via count_external_hit().
  std::vector<core::DecisionKey> last_key;
  std::vector<std::uint32_t> last_level;
  std::vector<std::uint8_t> has_last;
  // Inline harmonic-mean bandwidth window: throughputs[slot*window + i].
  std::vector<double> throughputs;
  std::vector<std::size_t> seen;  ///< samples observed (ring write cursor)

  std::vector<std::uint32_t> free_slots;

  explicit SessionArena(std::size_t bandwidth_window)
      : window(std::max<std::size_t>(1, bandwidth_window)) {}

  std::size_t slots() const noexcept { return session.size(); }

  std::uint32_t acquire(int id, double now, std::size_t start_cell) {
    std::uint32_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots());
      session.push_back(0);
      cell.push_back(0);
      next_segment.push_back(0);
      arrival_s.push_back(0.0);
      last_event_s.push_back(0.0);
      buffer_s.push_back(0.0);
      playing.push_back(0);
      startup_s.push_back(0.0);
      rebuffer_s.push_back(0.0);
      seg_rebuffer_s.push_back(0.0);
      qoe_sum.push_back(0.0);
      energy_j.push_back(0.0);
      bitrate_sum.push_back(0.0);
      prev_bitrate.push_back(0.0);
      prev_level.push_back(-1);
      request_s.push_back(0.0);
      size_mb.push_back(0.0);
      level_bitrate.push_back(0.0);
      level.push_back(0);
      last_key.emplace_back();
      last_level.push_back(0);
      has_last.push_back(0);
      throughputs.resize(throughputs.size() + window, 0.0);
      seen.push_back(0);
    }
    session[slot] = id;
    cell[slot] = start_cell;
    next_segment[slot] = 0;
    arrival_s[slot] = now;
    last_event_s[slot] = now;
    buffer_s[slot] = 0.0;
    playing[slot] = 0;
    startup_s[slot] = 0.0;
    rebuffer_s[slot] = 0.0;
    seg_rebuffer_s[slot] = 0.0;
    qoe_sum[slot] = 0.0;
    energy_j[slot] = 0.0;
    bitrate_sum[slot] = 0.0;
    prev_bitrate[slot] = 0.0;
    prev_level[slot] = -1;
    request_s[slot] = 0.0;
    size_mb[slot] = 0.0;
    level_bitrate[slot] = 0.0;
    level[slot] = 0;
    has_last[slot] = 0;
    std::fill_n(throughputs.begin() + static_cast<std::ptrdiff_t>(slot * window),
                window, 0.0);
    seen[slot] = 0;
    return slot;
  }

  void release(std::uint32_t slot) { free_slots.push_back(slot); }

  void observe(std::uint32_t slot, double mbps) {
    throughputs[slot * window + seen[slot] % window] = mbps;
    ++seen[slot];
  }

  /// Harmonic mean over the window; 0 before any sample.
  double estimate(std::uint32_t slot) const {
    const std::size_t n = std::min(seen[slot], window);
    if (n == 0) return 0.0;
    double inv = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      inv += 1.0 / throughputs[slot * window + i];
    }
    return static_cast<double>(n) / inv;
  }
};

/// Shard-local aggregates. Default-constructible for parallel_map; the
/// reservoirs are re-seeded per region before use.
struct Shard {
  FleetRegionMetrics region;
  RunningStats qoe, energy_j, bitrate_mbps, rebuffer_s, startup_s;
  ReservoirSampler qoe_sample{1};
  ReservoirSampler energy_sample{1};
  ReservoirSampler rebuffer_sample{1};
  P2Quantile median_qoe{0.5};
  P2Quantile median_energy{0.5};
};

/// Runs one region: a pure function of (config, region index). Sessions are
/// pinned by id % regions; cells are the region's contiguous block.
Shard run_region(const FleetConfig& config, const CellNetwork& network,
                 const qoe::QoeModel& qoe_model,
                 const power::PowerModel& power_model, std::size_t region,
                 std::size_t num_regions) {
  const std::size_t base = network.num_cells() / num_regions;
  const std::size_t rem = network.num_cells() % num_regions;
  const std::size_t first_cell = region * base + std::min(region, rem);
  const std::size_t cell_count = base + (region < rem ? 1 : 0);

  Shard shard;
  shard.region.region = region;
  shard.region.first_cell = first_cell;
  shard.region.num_cells = cell_count;
  shard.qoe_sample = ReservoirSampler(
      config.reservoir_capacity,
      seed_mix(config.seed, kReservoirLane, static_cast<int>(region * 3)));
  shard.energy_sample = ReservoirSampler(
      config.reservoir_capacity,
      seed_mix(config.seed, kReservoirLane, static_cast<int>(region * 3 + 1)));
  shard.rebuffer_sample = ReservoirSampler(
      config.reservoir_capacity,
      seed_mix(config.seed, kReservoirLane, static_cast<int>(region * 3 + 2)));
  if (cell_count == 0) return shard;  // more regions than cells: empty shard

  SessionArena arena(config.bandwidth_window);
  std::vector<std::size_t> cell_active(cell_count, 0);  // in-flight downloads
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap;

  // Constant-rate arrival schedule, shared fleet-wide: session s arrives at
  // s / rate whatever region it lands in.
  for (int s = static_cast<int>(region); s < static_cast<int>(config.num_sessions);
       s += static_cast<int>(num_regions)) {
    heap.push({static_cast<double>(s) / config.arrival_rate_per_s, s, kArrive, 0});
  }

  const double seg_s = config.segment_duration_s;
  const std::size_t top_level = config.ladder_mbps.size() - 1;
  std::size_t live = 0;

  // Planner-policy machinery: one cache shard per region, one Objective per
  // region, and a reusable window of TaskEnvironments (sizes/durations are
  // fleet-constant — only the context fields change per solve, and only to
  // canonical representatives). All planner counters accumulate into this
  // region's CostStats shard via the scope; kThroughput leaves them zero.
  const bool planner = config.policy == FleetPolicy::kPlanner;
  core::CostStatsScope stats_scope(shard.region.planner);
  std::optional<core::Objective> objective;
  std::optional<core::DecisionCache> cache;
  std::vector<core::TaskEnvironment> window_tasks;
  std::vector<std::uint64_t> ladder_ids;  // ladder_ids[w-1]: window size w
  if (planner) {
    objective.emplace(qoe_model, power_model,
                      core::ObjectiveConfig{
                          .alpha = config.planner_alpha,
                          .buffer_threshold_s = config.buffer_threshold_s,
                          .context_aware = true});
    cache.emplace(config.planner_cache);
    window_tasks.resize(config.planner_horizon);
    ladder_ids.resize(config.planner_horizon);
    for (std::size_t k = 0; k < config.planner_horizon; ++k) {
      core::TaskEnvironment& env = window_tasks[k];
      env.index = k;
      env.duration_s = seg_s;
      env.size_megabits.reserve(config.ladder_mbps.size());
      for (const double mbps : config.ladder_mbps) {
        env.size_megabits.push_back(mbps * seg_s);
      }
      ladder_ids[k] = core::hash_task_ladder({window_tasks.data(), k + 1});
    }
  }

  // Advances playback to `now`: drains the buffer, accrues stalls.
  const auto drain = [&](std::uint32_t slot, double now) {
    double dt = now - arena.last_event_s[slot];
    arena.last_event_s[slot] = now;
    if (arena.playing[slot] == 0 || dt <= 0.0) return;
    if (arena.buffer_s[slot] >= dt) {
      arena.buffer_s[slot] -= dt;
      return;
    }
    const double stall = dt - arena.buffer_s[slot];
    arena.buffer_s[slot] = 0.0;
    arena.rebuffer_s[slot] += stall;
    arena.seg_rebuffer_s[slot] += stall;
    ++shard.region.stall_events;
  };

  while (!heap.empty()) {
    const Event event = heap.top();
    heap.pop();
    ++shard.region.events;
    const double now = event.t_s;

    if (event.kind == kArrive) {
      const std::size_t start =
          network.best_cell_in(event.session, now, first_cell, cell_count);
      const std::uint32_t slot = arena.acquire(event.session, now, start);
      ++live;
      shard.region.peak_live_sessions =
          std::max(shard.region.peak_live_sessions, live);
      heap.push({now, event.session, kRequest, slot});
      continue;
    }

    const std::uint32_t slot = event.slot;
    if (event.kind == kRequest) {
      drain(slot, now);
      // Throttle: above the buffer threshold, sleep until it drains back.
      // Only throttle when the wake time actually advances: after a wakeup
      // the buffer can sit one ulp above the threshold, and a sleep shorter
      // than ulp(now) would re-enqueue at the identical timestamp forever.
      if (arena.playing[slot] != 0 &&
          arena.buffer_s[slot] > config.buffer_threshold_s) {
        const double wake =
            now + (arena.buffer_s[slot] - config.buffer_threshold_s);
        if (wake > now) {
          heap.push({wake, event.session, kRequest, slot});
          continue;
        }
      }
      // Handoff check at every request boundary (hysteresis rule).
      const std::size_t serving = network.serving_cell(
          event.session, arena.cell[slot], now, config.handoff_hysteresis_db,
          first_cell, cell_count);
      if (serving != arena.cell[slot]) {
        arena.cell[slot] = serving;
        ++shard.region.handoffs;
      }
      std::size_t level = 0;
      if (planner) {
        // The paper's planner: rolling-horizon Eq. 11 DP on the session's
        // context snapshot, memoized through the region's cache shard. The
        // startup segment (no throughput sample yet) takes the fixed startup
        // rung, mirroring the selectors' startup path, and bypasses the
        // cache. No vibration rung cap here — the objective itself prices
        // vibration via the QoE impairment.
        if (arena.seen[slot] == 0) {
          level = std::min(config.planner_startup_level, top_level);
        } else {
          // Segments-remaining quantization (caller-side, since the horizon
          // is planner knowledge): in quantized mode every window is
          // canonicalized to the full horizon — the last few segments plan
          // over phantom successors, which only perturbs the receding
          // horizon's *lookahead*, never the committed first action's
          // context. Collapses the remaining-count key dimension to one
          // value. Exact mode keeps the true min(horizon, left) window.
          const std::size_t window =
              config.planner_cache.exact
                  ? std::min(config.planner_horizon,
                             config.segments_per_session -
                                 arena.next_segment[slot])
                  : config.planner_horizon;
          core::DecisionSnapshot snapshot;
          snapshot.buffer_s = arena.buffer_s[slot];
          snapshot.bandwidth_mbps = arena.estimate(slot);
          snapshot.vibration = session_vibration(config.seed, event.session);
          snapshot.signal_dbm =
              network.signal_dbm(event.session, arena.cell[slot], now);
          snapshot.segments_remaining = window;
          if (arena.prev_level[slot] >= 0) {
            snapshot.prev_level =
                static_cast<std::size_t>(arena.prev_level[slot]);
          }
          snapshot.ladder_id = ladder_ids[window - 1];
          snapshot.alpha = config.planner_alpha;
          const core::DecisionKey key = cache->key_for(snapshot);
          // capacity = 0 is the no-memoization reference: the arena L1 is
          // memoization too, so it is disabled there along with the table.
          const bool memoize = config.planner_cache.capacity > 0;
          if (memoize && arena.has_last[slot] && arena.last_key[slot] == key) {
            // Arena L1 (see SessionArena::last_key): same canonical key →
            // same decision, no shard probe needed.
            level = arena.last_level[slot];
            cache->count_external_hit();
          } else if (const auto hit = cache->find(key)) {
            level = *hit;
          } else {
            // Cold key: reconstruct the representatives and solve on them —
            // canonicalize-then-solve, so the stored decision is exactly
            // what any later hit on this key must return.
            const core::CanonicalDecision c = cache->canonicalize(snapshot);
            for (std::size_t k = 0; k < window; ++k) {
              window_tasks[k].signal_dbm = c.signal_dbm;
              window_tasks[k].vibration = c.vibration;
              window_tasks[k].bandwidth_mbps = c.bandwidth_mbps;
            }
            level = core::plan_horizon_first_action(
                *objective, {window_tasks.data(), window}, c.buffer_s,
                c.prev_level);
            cache->insert(key, level);
          }
          if (memoize) {
            arena.last_key[slot] = key;
            arena.last_level[slot] = static_cast<std::uint32_t>(level);
            arena.has_last[slot] = 1;
          }
        }
      } else {
        // Throughput-based ABR with the context-aware rung cap.
        const double est = arena.estimate(slot);
        for (std::size_t l = top_level; l > 0; --l) {
          if (config.ladder_mbps[l] <= config.abr_safety * est) {
            level = l;
            break;
          }
        }
        if (session_vibration(config.seed, event.session) >
            config.vibration_cap_threshold) {
          level = std::min(level, config.vibration_rung_cap);
        }
      }
      const double bitrate = config.ladder_mbps[level];
      // Quasi-stationary processor sharing: the share is frozen at request
      // time (fleet-scale approximation; the rich engine re-shares per step).
      const std::size_t local = arena.cell[slot] - first_cell;
      const double capacity = network.capacity_mbps(arena.cell[slot], now);
      const double share = std::max(
          capacity / static_cast<double>(cell_active[local] + 1), 1e-6);
      ++cell_active[local];
      arena.request_s[slot] = now;
      arena.level_bitrate[slot] = bitrate;
      arena.level[slot] = static_cast<std::uint32_t>(level);
      arena.size_mb[slot] = bitrate * seg_s / 8.0;
      arena.seg_rebuffer_s[slot] = 0.0;
      ++shard.region.requests;
      heap.push({now + (bitrate * seg_s) / share, event.session, kComplete, slot});
      continue;
    }

    // kComplete
    drain(slot, now);
    const std::size_t local = arena.cell[slot] - first_cell;
    --cell_active[local];
    const double elapsed = std::max(now - arena.request_s[slot], 1e-9);
    const double bitrate = arena.level_bitrate[slot];
    arena.observe(slot, arena.size_mb[slot] * 8.0 / elapsed);
    arena.buffer_s[slot] += seg_s;

    const double vibration = session_vibration(config.seed, event.session);
    qoe::SegmentContext segment;
    segment.bitrate_mbps = bitrate;
    segment.vibration = vibration;
    segment.prev_bitrate_mbps = arena.prev_bitrate[slot];
    segment.rebuffer_s = arena.seg_rebuffer_s[slot];
    arena.qoe_sum[slot] += qoe_model.segment_qoe(segment);

    power::TaskEnergyInput task;
    task.size_mb = arena.size_mb[slot];
    task.bitrate_mbps = bitrate;
    task.signal_dbm = network.signal_dbm(event.session, arena.cell[slot],
                                         0.5 * (arena.request_s[slot] + now));
    task.play_s = arena.playing[slot] != 0
                      ? std::max(0.0, elapsed - arena.seg_rebuffer_s[slot])
                      : 0.0;
    task.rebuffer_s = arena.seg_rebuffer_s[slot];
    arena.energy_j[slot] += power_model.task_energy(task);

    arena.bitrate_sum[slot] += bitrate;
    arena.prev_bitrate[slot] = bitrate;
    arena.prev_level[slot] = static_cast<int>(arena.level[slot]);
    if (arena.playing[slot] == 0 &&
        arena.buffer_s[slot] >= config.startup_buffer_s) {
      arena.playing[slot] = 1;
      arena.startup_s[slot] = now - arena.arrival_s[slot];
    }
    ++arena.next_segment[slot];
    if (arena.next_segment[slot] < config.segments_per_session) {
      heap.push({now, event.session, kRequest, slot});
      continue;
    }

    // Session end: drain the remaining buffer (priced as playback energy),
    // fold the per-session scalars into the streaming aggregates, free the
    // slot. Nothing per-session survives this point.
    if (arena.playing[slot] == 0) arena.startup_s[slot] = now - arena.arrival_s[slot];
    arena.energy_j[slot] +=
        power_model.playback_power(bitrate) * arena.buffer_s[slot];
    const double segments = static_cast<double>(config.segments_per_session);
    const double session_qoe = arena.qoe_sum[slot] / segments;
    const double session_energy = arena.energy_j[slot];
    const double session_bitrate = arena.bitrate_sum[slot] / segments;
    shard.qoe.add(session_qoe);
    shard.energy_j.add(session_energy);
    shard.bitrate_mbps.add(session_bitrate);
    shard.rebuffer_s.add(arena.rebuffer_s[slot]);
    shard.startup_s.add(arena.startup_s[slot]);
    shard.qoe_sample.add(session_qoe);
    shard.energy_sample.add(session_energy);
    shard.rebuffer_sample.add(arena.rebuffer_s[slot]);
    shard.median_qoe.add(session_qoe);
    shard.median_energy.add(session_energy);
    ++shard.region.sessions;
    --live;
    arena.release(slot);
  }

  shard.region.median_qoe = shard.median_qoe.value();
  shard.region.median_energy_j = shard.median_energy.value();
  return shard;
}

}  // namespace

FleetMetrics run_fleet(const FleetConfig& config) {
  if (config.ladder_mbps.empty()) {
    throw std::invalid_argument("run_fleet: empty bitrate ladder");
  }
  if (config.num_sessions == 0 || config.segments_per_session == 0) {
    throw std::invalid_argument("run_fleet: zero sessions or segments");
  }
  if (!(config.arrival_rate_per_s > 0.0)) {
    throw std::invalid_argument("run_fleet: arrival rate must be > 0");
  }
  for (const double mbps : config.ladder_mbps) {
    if (!(mbps > 0.0)) {
      throw std::invalid_argument("run_fleet: ladder bitrates must be > 0");
    }
  }
  if (config.policy == FleetPolicy::kPlanner) {
    if (config.planner_horizon == 0) {
      throw std::invalid_argument("run_fleet: planner horizon must be > 0");
    }
    // Validate the shard cache config up front (width checks live in the
    // DecisionCache ctor) so a bad config throws here, not inside a worker.
    core::DecisionCacheConfig probe = config.planner_cache;
    probe.capacity = 0;
    const core::DecisionCache probe_cache(probe);
    (void)probe_cache;
  }

  const CellNetwork network(config.network);
  const qoe::QoeModel qoe_model(config.qoe);
  const power::PowerModel power_model(config.power);
  const std::size_t regions =
      std::min(std::max<std::size_t>(1, config.regions), network.num_cells());

  // Regions are the parallel unit; each is pure in (config, region index).
  const auto shards = util::parallel_map(
      config.exec.resolved_jobs(), regions, [&](std::size_t region) {
        return run_region(config, network, qoe_model, power_model, region,
                          regions);
      });

  // Serial merge in region order: bit-identical at any job count.
  FleetMetrics metrics;
  metrics.qoe_sample = ReservoirSampler(
      config.reservoir_capacity, seed_mix(config.seed, kReservoirLane, -3));
  metrics.energy_sample = ReservoirSampler(
      config.reservoir_capacity, seed_mix(config.seed, kReservoirLane, -4));
  metrics.rebuffer_sample = ReservoirSampler(
      config.reservoir_capacity, seed_mix(config.seed, kReservoirLane, -5));
  metrics.regions.reserve(shards.size());
  for (const Shard& shard : shards) {
    metrics.sessions += shard.region.sessions;
    metrics.events += shard.region.events;
    metrics.requests += shard.region.requests;
    metrics.handoffs += shard.region.handoffs;
    metrics.stall_events += shard.region.stall_events;
    metrics.peak_live_sessions += shard.region.peak_live_sessions;
    metrics.planner.merge(shard.region.planner);
    metrics.qoe.merge(shard.qoe);
    metrics.energy_j.merge(shard.energy_j);
    metrics.bitrate_mbps.merge(shard.bitrate_mbps);
    metrics.rebuffer_s.merge(shard.rebuffer_s);
    metrics.startup_s.merge(shard.startup_s);
    metrics.qoe_sample.merge(shard.qoe_sample);
    metrics.energy_sample.merge(shard.energy_sample);
    metrics.rebuffer_sample.merge(shard.rebuffer_sample);
    metrics.regions.push_back(shard.region);
  }
  return metrics;
}

}  // namespace eacs::sim
