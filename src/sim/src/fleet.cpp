#include "eacs/sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <stdexcept>
#include <vector>

#include "eacs/core/horizon.h"
#include "eacs/core/objective.h"
#include "eacs/sim/fleet_checkpoint.h"
#include "eacs/sim/seed_mix.h"
#include "eacs/util/thread_pool.h"

namespace eacs::sim {
namespace {

// seed_mix "grid index" lanes reserved by the fleet path (cell indices use
// the plain lane in CellNetwork; these stay clear of real cell counts).
constexpr std::size_t kVibrationLane = 0x00F1'0001;
constexpr std::size_t kReservoirLane = 0x00F1'0002;

/// Per-session procedural vibration level [m/s^2]: a stable draw skewed
/// toward stillness (squared uniform), so a minority of the fleet is
/// "walking" and hits the context-aware rung cap.
double session_vibration(std::uint64_t seed, int session_id) noexcept {
  const double u = seed_unit(seed_mix(seed, kVibrationLane, session_id));
  return 3.0 * u * u;
}

/// One scheduled event. Every live session has exactly one pending event
/// (arrive -> request -> complete -> request -> ...), so events can carry
/// their slot index and never go stale.
struct Event {
  double t_s = 0.0;
  int session = 0;
  std::uint8_t kind = 0;  // 0 = arrive, 1 = request, 2 = complete
  std::uint32_t slot = 0;
};
constexpr std::uint8_t kArrive = 0;
constexpr std::uint8_t kRequest = 1;
constexpr std::uint8_t kComplete = 2;

/// Min-heap order (t, session, kind): deterministic pops under duplicate
/// timestamps, independent of heap internals. Because each session owns at
/// most one pending event, the order is a strict total order — which is what
/// lets a checkpoint re-push the captured event multiset and reproduce the
/// remaining pop sequence exactly.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.t_s != b.t_s) return a.t_s > b.t_s;
    if (a.session != b.session) return a.session > b.session;
    return a.kind > b.kind;
  }
};

/// SoA arena for live-session state. All vectors are indexed by slot and
/// sized to the *live* high-water mark — finished sessions return their slot
/// to the free list, so a 100k-session run with a few hundred live at a time
/// allocates a few hundred slots. The bandwidth window is inlined as
/// slots x K doubles (no per-session allocations).
struct SessionArena {
  std::size_t window = 1;

  std::vector<int> session;
  std::vector<std::size_t> cell;
  std::vector<std::size_t> next_segment;
  std::vector<double> arrival_s;
  std::vector<double> last_event_s;  ///< playback drained up to here
  std::vector<double> buffer_s;
  std::vector<std::uint8_t> playing;
  std::vector<double> startup_s;       ///< set when playback starts
  std::vector<double> rebuffer_s;      ///< total stall so far
  std::vector<double> seg_rebuffer_s;  ///< stall since the current request
  std::vector<double> qoe_sum;
  std::vector<double> energy_j;
  std::vector<double> bitrate_sum;
  std::vector<double> prev_bitrate;
  std::vector<int> prev_level;  ///< last completed rung (-1 before any)
  // In-flight transfer (valid between request and complete).
  std::vector<double> request_s;
  std::vector<double> size_mb;
  std::vector<double> level_bitrate;
  std::vector<std::uint32_t> level;  ///< in-flight rung index
  // Planner L1: the slot's last canonical decision. Steady-state sessions
  // canonicalize consecutive requests to the same key, and decisions are a
  // pure function of the key, so an equal key reuses the level without
  // probing the shared shard table (a guaranteed cold-cache access at fleet
  // capacities). Counted as cache hits via count_external_hit().
  std::vector<core::DecisionKey> last_key;
  std::vector<std::uint32_t> last_level;
  std::vector<std::uint8_t> has_last;
  /// Consecutive failed request attempts (dead region): drives the
  /// exponential backoff ladder; reset on every successful request.
  std::vector<std::uint32_t> retries;
  // Inline harmonic-mean bandwidth window: throughputs[slot*window + i].
  std::vector<double> throughputs;
  std::vector<std::size_t> seen;  ///< samples observed (ring write cursor)

  std::vector<std::uint32_t> free_slots;

  explicit SessionArena(std::size_t bandwidth_window)
      : window(std::max<std::size_t>(1, bandwidth_window)) {}

  std::size_t slots() const noexcept { return session.size(); }

  std::uint32_t acquire(int id, double now, std::size_t start_cell) {
    std::uint32_t slot;
    if (!free_slots.empty()) {
      slot = free_slots.back();
      free_slots.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots());
      session.push_back(0);
      cell.push_back(0);
      next_segment.push_back(0);
      arrival_s.push_back(0.0);
      last_event_s.push_back(0.0);
      buffer_s.push_back(0.0);
      playing.push_back(0);
      startup_s.push_back(0.0);
      rebuffer_s.push_back(0.0);
      seg_rebuffer_s.push_back(0.0);
      qoe_sum.push_back(0.0);
      energy_j.push_back(0.0);
      bitrate_sum.push_back(0.0);
      prev_bitrate.push_back(0.0);
      prev_level.push_back(-1);
      request_s.push_back(0.0);
      size_mb.push_back(0.0);
      level_bitrate.push_back(0.0);
      level.push_back(0);
      last_key.emplace_back();
      last_level.push_back(0);
      has_last.push_back(0);
      retries.push_back(0);
      throughputs.resize(throughputs.size() + window, 0.0);
      seen.push_back(0);
    }
    session[slot] = id;
    cell[slot] = start_cell;
    next_segment[slot] = 0;
    arrival_s[slot] = now;
    last_event_s[slot] = now;
    buffer_s[slot] = 0.0;
    playing[slot] = 0;
    startup_s[slot] = 0.0;
    rebuffer_s[slot] = 0.0;
    seg_rebuffer_s[slot] = 0.0;
    qoe_sum[slot] = 0.0;
    energy_j[slot] = 0.0;
    bitrate_sum[slot] = 0.0;
    prev_bitrate[slot] = 0.0;
    prev_level[slot] = -1;
    request_s[slot] = 0.0;
    size_mb[slot] = 0.0;
    level_bitrate[slot] = 0.0;
    level[slot] = 0;
    has_last[slot] = 0;
    retries[slot] = 0;
    std::fill_n(throughputs.begin() + static_cast<std::ptrdiff_t>(slot * window),
                window, 0.0);
    seen[slot] = 0;
    return slot;
  }

  void release(std::uint32_t slot) { free_slots.push_back(slot); }

  void observe(std::uint32_t slot, double mbps) {
    throughputs[slot * window + seen[slot] % window] = mbps;
    ++seen[slot];
  }

  /// Harmonic mean over the window; 0 before any sample.
  double estimate(std::uint32_t slot) const {
    const std::size_t n = std::min(seen[slot], window);
    if (n == 0) return 0.0;
    double inv = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      inv += 1.0 / throughputs[slot * window + i];
    }
    return static_cast<double>(n) / inv;
  }
};

/// Shard-local aggregates. Default-constructible for parallel_map; the
/// reservoirs are re-seeded per region before use.
struct Shard {
  FleetRegionMetrics region;
  RunningStats qoe, energy_j, bitrate_mbps, rebuffer_s, startup_s;
  ReservoirSampler qoe_sample{1};
  ReservoirSampler energy_sample{1};
  ReservoirSampler rebuffer_sample{1};
  P2Quantile median_qoe{0.5};
  P2Quantile median_energy{0.5};
};

/// One region's full simulation state: a pure function of (config, region
/// index, optional checkpoint). Extracted from the old run_region free
/// function so the same event loop can run to completion (run_fleet), stop
/// at a checkpoint cut (run_fleet_until + capture), or continue from one
/// (restore + resume_fleet). Sessions are pinned by id % regions; cells are
/// the region's contiguous block.
struct RegionSim {
  const FleetConfig& config;
  const CellNetwork& network;
  const qoe::QoeModel& qoe_model;
  const power::PowerModel& power_model;
  /// Non-null only when at least one fault episode exists. Every fault code
  /// path is gated on this pointer, so the empty spec never executes a
  /// single extra floating-point operation — the clean-run no-op guarantee.
  const FleetFaultModel* faults;
  std::size_t num_regions;
  std::size_t region;
  std::size_t first_cell = 0;
  std::size_t cell_count = 0;

  Shard shard;
  SessionArena arena;
  std::vector<std::size_t> cell_active;  // in-flight downloads per cell
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap;
  std::size_t live = 0;

  // Planner-policy machinery: one cache shard per region, one Objective per
  // region, and a reusable window of TaskEnvironments (sizes/durations are
  // fleet-constant — only the context fields change per solve, and only to
  // canonical representatives).
  bool planner = false;
  std::optional<core::Objective> objective;
  std::optional<core::DecisionCache> cache;
  std::vector<core::TaskEnvironment> window_tasks;
  std::vector<std::uint64_t> ladder_ids;  // ladder_ids[w-1]: window size w

  // Overload-shed detector state (DESIGN §14 degradation ladder).
  bool live_shed = false;
  bool miss_shed = false;
  double shed_until_s = 0.0;
  std::uint64_t window_consults = 0;
  std::uint64_t window_misses = 0;

  RegionSim(const FleetConfig& config_in, const CellNetwork& network_in,
            const qoe::QoeModel& qoe_model_in,
            const power::PowerModel& power_model_in,
            const FleetFaultModel* faults_in, std::size_t region_in,
            std::size_t num_regions_in)
      : config(config_in),
        network(network_in),
        qoe_model(qoe_model_in),
        power_model(power_model_in),
        faults(faults_in != nullptr && !faults_in->empty() ? faults_in
                                                           : nullptr),
        num_regions(num_regions_in),
        region(region_in),
        arena(config_in.bandwidth_window) {
    const std::size_t base = network.num_cells() / num_regions;
    const std::size_t rem = network.num_cells() % num_regions;
    first_cell = region * base + std::min(region, rem);
    cell_count = base + (region < rem ? 1 : 0);

    shard.region.region = region;
    shard.region.first_cell = first_cell;
    shard.region.num_cells = cell_count;
    shard.qoe_sample = ReservoirSampler(
        config.reservoir_capacity,
        seed_mix(config.seed, kReservoirLane, static_cast<int>(region * 3)));
    shard.energy_sample = ReservoirSampler(
        config.reservoir_capacity,
        seed_mix(config.seed, kReservoirLane, static_cast<int>(region * 3 + 1)));
    shard.rebuffer_sample = ReservoirSampler(
        config.reservoir_capacity,
        seed_mix(config.seed, kReservoirLane, static_cast<int>(region * 3 + 2)));
    cell_active.assign(cell_count, 0);

    planner = config.policy == FleetPolicy::kPlanner;
    if (planner) {
      objective.emplace(qoe_model, power_model,
                        core::ObjectiveConfig{
                            .alpha = config.planner_alpha,
                            .buffer_threshold_s = config.buffer_threshold_s,
                            .context_aware = true});
      cache.emplace(config.planner_cache);
      window_tasks.resize(config.planner_horizon);
      ladder_ids.resize(config.planner_horizon);
      for (std::size_t k = 0; k < config.planner_horizon; ++k) {
        core::TaskEnvironment& env = window_tasks[k];
        env.index = k;
        env.duration_s = config.segment_duration_s;
        env.size_megabits.reserve(config.ladder_mbps.size());
        for (const double mbps : config.ladder_mbps) {
          env.size_megabits.push_back(mbps * config.segment_duration_s);
        }
        ladder_ids[k] = core::hash_task_ladder({window_tasks.data(), k + 1});
      }
    }
  }

  /// Constant-rate arrival schedule, shared fleet-wide: session s arrives at
  /// s / rate whatever region it lands in — or at the surge-warped time when
  /// a flash crowd is configured.
  void seed_arrivals() {
    const bool surges = faults != nullptr && faults->has_surges();
    for (int s = static_cast<int>(region);
         s < static_cast<int>(config.num_sessions);
         s += static_cast<int>(num_regions)) {
      const double t =
          surges ? faults->arrival_time(static_cast<std::size_t>(s),
                                        config.arrival_rate_per_s)
                 : static_cast<double>(s) / config.arrival_rate_per_s;
      heap.push({t, s, kArrive, 0});
    }
  }

  /// Signal with the fault overlay applied; only called when faults != null.
  double fault_signal(int session_id, std::size_t cell, double t_s) const {
    return network.signal_dbm(session_id, cell, t_s) +
           faults->signal_offset_db(cell, t_s);
  }

  /// Advances playback to `now`: drains the buffer, accrues stalls.
  void drain(std::uint32_t slot, double now) {
    double dt = now - arena.last_event_s[slot];
    arena.last_event_s[slot] = now;
    if (arena.playing[slot] == 0 || dt <= 0.0) return;
    if (arena.buffer_s[slot] >= dt) {
      arena.buffer_s[slot] -= dt;
      return;
    }
    const double stall = dt - arena.buffer_s[slot];
    arena.buffer_s[slot] = 0.0;
    arena.rebuffer_s[slot] += stall;
    arena.seg_rebuffer_s[slot] += stall;
    ++shard.region.stall_events;
  }

  /// Strongest live (non-dead) cell in the region by faulted signal, lowest
  /// index winning ties; num_cells() sentinel when the whole region is dead.
  std::size_t best_live_cell(int session_id, double now) const {
    std::size_t best = network.num_cells();
    double best_dbm = -std::numeric_limits<double>::infinity();
    for (std::size_t c = first_cell; c < first_cell + cell_count; ++c) {
      if (faults->cell_dead(c, now)) continue;
      const double dbm = fault_signal(session_id, c, now);
      if (best == network.num_cells() || dbm > best_dbm) {
        best_dbm = dbm;
        best = c;
      }
    }
    return best;
  }

  /// Fault-aware serving-cell maintenance at a request boundary. Returns
  /// true when the request can proceed on a live cell; false when the
  /// session backed off (re-enqueued) or was abandoned.
  bool ensure_live_cell(const Event& event, double now) {
    const std::uint32_t slot = event.slot;
    const std::size_t current = arena.cell[slot];
    if (!faults->cell_dead(current, now)) {
      // Healthy serving cell: the hysteresis handoff rule, restricted to
      // live cells (mirrors CellNetwork::serving_cell).
      const std::size_t best = best_live_cell(event.session, now);
      if (best != current &&
          fault_signal(event.session, best, now) -
                  fault_signal(event.session, current, now) >
              config.handoff_hysteresis_db) {
        arena.cell[slot] = best;
        ++shard.region.handoffs;
      }
      arena.retries[slot] = 0;
      return true;
    }
    // Dead serving cell: escape to the strongest live cell in the region —
    // no hysteresis, any live cell beats a dead one.
    const std::size_t best = best_live_cell(event.session, now);
    if (best != network.num_cells()) {
      arena.cell[slot] = best;
      ++shard.region.escape_handoffs;
      arena.retries[slot] = 0;
      return true;
    }
    // Whole region dead: bounded exponential backoff, burning pause power
    // (the screen is on, the spinner spins — the rich player's stall
    // pricing), then abandonment once the retry budget is spent.
    ++arena.retries[slot];
    if (arena.retries[slot] > config.resilience.max_retries) {
      ++shard.region.abandoned_sessions;
      --live;
      arena.release(slot);
      return false;
    }
    double backoff = config.resilience.backoff_base_s;
    for (std::uint32_t i = 1; i < arena.retries[slot]; ++i) {
      backoff *= config.resilience.backoff_factor;
    }
    backoff = std::min(backoff, config.resilience.backoff_max_s);
    const double wasted = power_model.params().p_pause_w * backoff;
    arena.energy_j[slot] += wasted;
    shard.region.wasted_energy_j += wasted;
    shard.region.degraded_time_s += backoff;
    ++shard.region.backoff_retries;
    heap.push({now + backoff, event.session, kRequest, slot});
    return false;
  }

  /// Overload-shed decision for this request, updating the trigger state
  /// machines (transitions counted, never silent).
  bool shed_active(double now) {
    const FleetResilienceConfig& r = config.resilience;
    if (r.shed_live_threshold > 0) {
      const std::size_t recover =
          r.shed_live_recover > 0 ? r.shed_live_recover
                                  : r.shed_live_threshold / 2;
      if (live_shed) {
        if (live <= recover) {
          live_shed = false;
          ++shard.region.policy_recoveries;
        }
      } else if (live >= r.shed_live_threshold) {
        live_shed = true;
        ++shard.region.policy_sheds;
      }
    }
    if (miss_shed && now >= shed_until_s) {
      miss_shed = false;
      ++shard.region.policy_recoveries;
    }
    return live_shed || miss_shed;
  }

  /// Feeds the trailing-window miss-rate trigger after a planner
  /// consultation. Recovery is time-held (shed_until_s): no consultations
  /// happen while shed, so a rate-based recovery could never fire.
  void note_consultation(bool miss, double now) {
    const FleetResilienceConfig& r = config.resilience;
    if (r.shed_miss_rate_threshold > 1.0 || r.shed_miss_window == 0) return;
    ++window_consults;
    if (miss) ++window_misses;
    if (window_consults >= r.shed_miss_window) {
      const double rate = static_cast<double>(window_misses) /
                          static_cast<double>(window_consults);
      if (!miss_shed && rate >= r.shed_miss_rate_threshold) {
        miss_shed = true;
        shed_until_s = now + r.shed_hold_s;
        ++shard.region.policy_sheds;
      }
      window_consults = 0;
      window_misses = 0;
    }
  }

  /// Throughput-based ABR with the context-aware rung cap — the baseline
  /// policy, and the degraded mode planner regions shed into.
  std::size_t throughput_level(std::uint32_t slot, int session_id) const {
    const std::size_t top_level = config.ladder_mbps.size() - 1;
    std::size_t level = 0;
    const double est = arena.estimate(slot);
    for (std::size_t l = top_level; l > 0; --l) {
      if (config.ladder_mbps[l] <= config.abr_safety * est) {
        level = l;
        break;
      }
    }
    if (session_vibration(config.seed, session_id) >
        config.vibration_cap_threshold) {
      level = std::min(level, config.vibration_rung_cap);
    }
    return level;
  }

  /// Processes events strictly before `limit` (pass +inf to run dry). The
  /// cut convention: an event at exactly the checkpoint time belongs to the
  /// resumed run.
  void run(double limit) {
    core::CostStatsScope stats_scope(shard.region.planner);
    const double seg_s = config.segment_duration_s;
    const std::size_t top_level = config.ladder_mbps.size() - 1;

    while (!heap.empty() && heap.top().t_s < limit) {
      const Event event = heap.top();
      heap.pop();
      ++shard.region.events;
      const double now = event.t_s;

      if (event.kind == kArrive) {
        const std::size_t start =
            network.best_cell_in(event.session, now, first_cell, cell_count);
        const std::uint32_t slot = arena.acquire(event.session, now, start);
        ++live;
        shard.region.peak_live_sessions =
            std::max(shard.region.peak_live_sessions, live);
        heap.push({now, event.session, kRequest, slot});
        continue;
      }

      const std::uint32_t slot = event.slot;
      if (event.kind == kRequest) {
        drain(slot, now);
        // Throttle: above the buffer threshold, sleep until it drains back.
        // Only throttle when the wake time actually advances: after a wakeup
        // the buffer can sit one ulp above the threshold, and a sleep shorter
        // than ulp(now) would re-enqueue at the identical timestamp forever.
        if (arena.playing[slot] != 0 &&
            arena.buffer_s[slot] > config.buffer_threshold_s) {
          const double wake =
              now + (arena.buffer_s[slot] - config.buffer_threshold_s);
          if (wake > now) {
            heap.push({wake, event.session, kRequest, slot});
            continue;
          }
        }
        // Handoff check at every request boundary (hysteresis rule). With a
        // fault overlay this also escapes dead cells, backs off, or abandons.
        if (faults == nullptr) {
          const std::size_t serving = network.serving_cell(
              event.session, arena.cell[slot], now,
              config.handoff_hysteresis_db, first_cell, cell_count);
          if (serving != arena.cell[slot]) {
            arena.cell[slot] = serving;
            ++shard.region.handoffs;
          }
        } else if (!ensure_live_cell(event, now)) {
          continue;
        }
        std::size_t level = 0;
        if (planner) {
          // The paper's planner: rolling-horizon Eq. 11 DP on the session's
          // context snapshot, memoized through the region's cache shard. The
          // startup segment (no throughput sample yet) takes the fixed
          // startup rung, mirroring the selectors' startup path, and
          // bypasses the cache. No vibration rung cap here — the objective
          // itself prices vibration via the QoE impairment.
          if (arena.seen[slot] == 0) {
            level = std::min(config.planner_startup_level, top_level);
          } else if (shed_active(now)) {
            // Overload: degrade to the throughput policy for this decision.
            level = throughput_level(slot, event.session);
            ++shard.region.shed_decisions;
          } else {
            // Segments-remaining quantization (caller-side, since the
            // horizon is planner knowledge): in quantized mode every window
            // is canonicalized to the full horizon — the last few segments
            // plan over phantom successors, which only perturbs the receding
            // horizon's *lookahead*, never the committed first action's
            // context. Collapses the remaining-count key dimension to one
            // value. Exact mode keeps the true min(horizon, left) window.
            const std::size_t window =
                config.planner_cache.exact
                    ? std::min(config.planner_horizon,
                               config.segments_per_session -
                                   arena.next_segment[slot])
                    : config.planner_horizon;
            core::DecisionSnapshot snapshot;
            snapshot.buffer_s = arena.buffer_s[slot];
            snapshot.bandwidth_mbps = arena.estimate(slot);
            snapshot.vibration = session_vibration(config.seed, event.session);
            snapshot.signal_dbm =
                faults == nullptr
                    ? network.signal_dbm(event.session, arena.cell[slot], now)
                    : fault_signal(event.session, arena.cell[slot], now);
            snapshot.segments_remaining = window;
            if (arena.prev_level[slot] >= 0) {
              snapshot.prev_level =
                  static_cast<std::size_t>(arena.prev_level[slot]);
            }
            snapshot.ladder_id = ladder_ids[window - 1];
            snapshot.alpha = config.planner_alpha;
            const core::DecisionKey key = cache->key_for(snapshot);
            // capacity = 0 is the no-memoization reference: the arena L1 is
            // memoization too, so it is disabled there along with the table.
            const bool memoize = config.planner_cache.capacity > 0;
            bool miss = false;
            if (memoize && arena.has_last[slot] &&
                arena.last_key[slot] == key) {
              // Arena L1 (see SessionArena::last_key): same canonical key →
              // same decision, no shard probe needed.
              level = arena.last_level[slot];
              cache->count_external_hit();
            } else if (const auto hit = cache->find(key)) {
              level = *hit;
            } else {
              // Cold key: reconstruct the representatives and solve on them
              // — canonicalize-then-solve, so the stored decision is exactly
              // what any later hit on this key must return.
              miss = true;
              const core::CanonicalDecision c = cache->canonicalize(snapshot);
              for (std::size_t k = 0; k < window; ++k) {
                window_tasks[k].signal_dbm = c.signal_dbm;
                window_tasks[k].vibration = c.vibration;
                window_tasks[k].bandwidth_mbps = c.bandwidth_mbps;
              }
              level = core::plan_horizon_first_action(
                  *objective, {window_tasks.data(), window}, c.buffer_s,
                  c.prev_level);
              cache->insert(key, level);
            }
            if (memoize) {
              arena.last_key[slot] = key;
              arena.last_level[slot] = static_cast<std::uint32_t>(level);
              arena.has_last[slot] = 1;
            }
            note_consultation(miss, now);
          }
        } else {
          level = throughput_level(slot, event.session);
        }
        const double bitrate = config.ladder_mbps[level];
        // Quasi-stationary processor sharing: the share is frozen at request
        // time (fleet-scale approximation; the rich engine re-shares per
        // step). Brownouts scale the capacity; outages never reach here —
        // ensure_live_cell gates them.
        const std::size_t local = arena.cell[slot] - first_cell;
        double capacity = network.capacity_mbps(arena.cell[slot], now);
        if (faults != nullptr) {
          capacity *= faults->capacity_factor(arena.cell[slot], now);
        }
        const double share = std::max(
            capacity / static_cast<double>(cell_active[local] + 1), 1e-6);
        ++cell_active[local];
        arena.request_s[slot] = now;
        arena.level_bitrate[slot] = bitrate;
        arena.level[slot] = static_cast<std::uint32_t>(level);
        arena.size_mb[slot] = bitrate * seg_s / 8.0;
        arena.seg_rebuffer_s[slot] = 0.0;
        ++shard.region.requests;
        heap.push(
            {now + (bitrate * seg_s) / share, event.session, kComplete, slot});
        continue;
      }

      // kComplete
      drain(slot, now);
      const std::size_t local = arena.cell[slot] - first_cell;
      --cell_active[local];
      const double elapsed = std::max(now - arena.request_s[slot], 1e-9);
      const double bitrate = arena.level_bitrate[slot];
      arena.observe(slot, arena.size_mb[slot] * 8.0 / elapsed);
      arena.buffer_s[slot] += seg_s;

      const double vibration = session_vibration(config.seed, event.session);
      qoe::SegmentContext segment;
      segment.bitrate_mbps = bitrate;
      segment.vibration = vibration;
      segment.prev_bitrate_mbps = arena.prev_bitrate[slot];
      segment.rebuffer_s = arena.seg_rebuffer_s[slot];
      arena.qoe_sum[slot] += qoe_model.segment_qoe(segment);

      power::TaskEnergyInput task;
      task.size_mb = arena.size_mb[slot];
      task.bitrate_mbps = bitrate;
      task.signal_dbm =
          faults == nullptr
              ? network.signal_dbm(event.session, arena.cell[slot],
                                   0.5 * (arena.request_s[slot] + now))
              : fault_signal(event.session, arena.cell[slot],
                             0.5 * (arena.request_s[slot] + now));
      task.play_s = arena.playing[slot] != 0
                        ? std::max(0.0, elapsed - arena.seg_rebuffer_s[slot])
                        : 0.0;
      task.rebuffer_s = arena.seg_rebuffer_s[slot];
      arena.energy_j[slot] += power_model.task_energy(task);

      arena.bitrate_sum[slot] += bitrate;
      arena.prev_bitrate[slot] = bitrate;
      arena.prev_level[slot] = static_cast<int>(arena.level[slot]);
      if (arena.playing[slot] == 0 &&
          arena.buffer_s[slot] >= config.startup_buffer_s) {
        arena.playing[slot] = 1;
        arena.startup_s[slot] = now - arena.arrival_s[slot];
      }
      ++arena.next_segment[slot];
      if (arena.next_segment[slot] < config.segments_per_session) {
        heap.push({now, event.session, kRequest, slot});
        continue;
      }

      // Session end: drain the remaining buffer (priced as playback energy),
      // fold the per-session scalars into the streaming aggregates, free the
      // slot. Nothing per-session survives this point.
      if (arena.playing[slot] == 0) {
        arena.startup_s[slot] = now - arena.arrival_s[slot];
      }
      arena.energy_j[slot] +=
          power_model.playback_power(bitrate) * arena.buffer_s[slot];
      const double segments = static_cast<double>(config.segments_per_session);
      const double session_qoe = arena.qoe_sum[slot] / segments;
      const double session_energy = arena.energy_j[slot];
      const double session_bitrate = arena.bitrate_sum[slot] / segments;
      shard.qoe.add(session_qoe);
      shard.energy_j.add(session_energy);
      shard.bitrate_mbps.add(session_bitrate);
      shard.rebuffer_s.add(arena.rebuffer_s[slot]);
      shard.startup_s.add(arena.startup_s[slot]);
      shard.qoe_sample.add(session_qoe);
      shard.energy_sample.add(session_energy);
      shard.rebuffer_sample.add(arena.rebuffer_s[slot]);
      shard.median_qoe.add(session_qoe);
      shard.median_energy.add(session_energy);
      ++shard.region.sessions;
      --live;
      arena.release(slot);
    }
  }

  /// Drains the remaining event heap into a checkpoint (terminal: the sim
  /// cannot continue after capture).
  FleetRegionCheckpoint capture() {
    FleetRegionCheckpoint ckpt;
    ckpt.region = region;
    ckpt.live = live;
    while (!heap.empty()) {
      const Event e = heap.top();
      heap.pop();
      ckpt.events.push_back({e.t_s, e.session, e.kind, e.slot});
    }
    FleetArenaState& a = ckpt.arena;
    a.window = arena.window;
    a.session = arena.session;
    a.cell = arena.cell;
    a.next_segment = arena.next_segment;
    a.arrival_s = arena.arrival_s;
    a.last_event_s = arena.last_event_s;
    a.buffer_s = arena.buffer_s;
    a.playing = arena.playing;
    a.startup_s = arena.startup_s;
    a.rebuffer_s = arena.rebuffer_s;
    a.seg_rebuffer_s = arena.seg_rebuffer_s;
    a.qoe_sum = arena.qoe_sum;
    a.energy_j = arena.energy_j;
    a.bitrate_sum = arena.bitrate_sum;
    a.prev_bitrate = arena.prev_bitrate;
    a.prev_level = arena.prev_level;
    a.request_s = arena.request_s;
    a.size_mb = arena.size_mb;
    a.level_bitrate = arena.level_bitrate;
    a.level = arena.level;
    a.last_key = arena.last_key;
    a.last_level = arena.last_level;
    a.has_last = arena.has_last;
    a.retries = arena.retries;
    a.throughputs = arena.throughputs;
    a.seen = arena.seen;
    a.free_slots = arena.free_slots;
    ckpt.cell_active = cell_active;
    ckpt.metrics = shard.region;
    ckpt.qoe = shard.qoe.state();
    ckpt.energy_j = shard.energy_j.state();
    ckpt.bitrate_mbps = shard.bitrate_mbps.state();
    ckpt.rebuffer_s = shard.rebuffer_s.state();
    ckpt.startup_s = shard.startup_s.state();
    ckpt.qoe_sample = shard.qoe_sample.state();
    ckpt.energy_sample = shard.energy_sample.state();
    ckpt.rebuffer_sample = shard.rebuffer_sample.state();
    ckpt.median_qoe = shard.median_qoe.state();
    ckpt.median_energy = shard.median_energy.state();
    ckpt.shed = {static_cast<std::uint8_t>(live_shed ? 1 : 0),
                 static_cast<std::uint8_t>(miss_shed ? 1 : 0), shed_until_s,
                 window_consults, window_misses};
    if (cache) ckpt.cache = cache->export_state();
    return ckpt;
  }

  /// Reinstates a captured region state. Throws std::invalid_argument on an
  /// internally inconsistent checkpoint (wrong region, wrong cell count,
  /// ragged arena vectors).
  void restore(const FleetRegionCheckpoint& ckpt) {
    if (ckpt.region != region) {
      throw std::invalid_argument("resume_fleet: checkpoint region mismatch");
    }
    if (ckpt.cell_active.size() != cell_count) {
      throw std::invalid_argument(
          "resume_fleet: checkpoint cell count mismatch");
    }
    const FleetArenaState& a = ckpt.arena;
    if (a.window != arena.window) {
      throw std::invalid_argument(
          "resume_fleet: checkpoint bandwidth window mismatch");
    }
    const std::size_t slots = a.session.size();
    const bool ragged =
        a.cell.size() != slots || a.next_segment.size() != slots ||
        a.arrival_s.size() != slots || a.last_event_s.size() != slots ||
        a.buffer_s.size() != slots || a.playing.size() != slots ||
        a.startup_s.size() != slots || a.rebuffer_s.size() != slots ||
        a.seg_rebuffer_s.size() != slots || a.qoe_sum.size() != slots ||
        a.energy_j.size() != slots || a.bitrate_sum.size() != slots ||
        a.prev_bitrate.size() != slots || a.prev_level.size() != slots ||
        a.request_s.size() != slots || a.size_mb.size() != slots ||
        a.level_bitrate.size() != slots || a.level.size() != slots ||
        a.last_key.size() != slots || a.last_level.size() != slots ||
        a.has_last.size() != slots || a.retries.size() != slots ||
        a.throughputs.size() != slots * a.window || a.seen.size() != slots;
    if (ragged) {
      throw std::invalid_argument(
          "resume_fleet: ragged arena vectors in checkpoint");
    }
    arena.session = a.session;
    arena.cell = a.cell;
    arena.next_segment = a.next_segment;
    arena.arrival_s = a.arrival_s;
    arena.last_event_s = a.last_event_s;
    arena.buffer_s = a.buffer_s;
    arena.playing = a.playing;
    arena.startup_s = a.startup_s;
    arena.rebuffer_s = a.rebuffer_s;
    arena.seg_rebuffer_s = a.seg_rebuffer_s;
    arena.qoe_sum = a.qoe_sum;
    arena.energy_j = a.energy_j;
    arena.bitrate_sum = a.bitrate_sum;
    arena.prev_bitrate = a.prev_bitrate;
    arena.prev_level = a.prev_level;
    arena.request_s = a.request_s;
    arena.size_mb = a.size_mb;
    arena.level_bitrate = a.level_bitrate;
    arena.level = a.level;
    arena.last_key = a.last_key;
    arena.last_level = a.last_level;
    arena.has_last = a.has_last;
    arena.retries = a.retries;
    arena.throughputs = a.throughputs;
    arena.seen = a.seen;
    arena.free_slots = a.free_slots;
    for (const FleetEventState& e : ckpt.events) {
      heap.push({e.t_s, e.session, e.kind, e.slot});
    }
    cell_active = ckpt.cell_active;
    live = ckpt.live;
    shard.region = ckpt.metrics;
    shard.qoe.restore(ckpt.qoe);
    shard.energy_j.restore(ckpt.energy_j);
    shard.bitrate_mbps.restore(ckpt.bitrate_mbps);
    shard.rebuffer_s.restore(ckpt.rebuffer_s);
    shard.startup_s.restore(ckpt.startup_s);
    shard.qoe_sample.restore(ckpt.qoe_sample);
    shard.energy_sample.restore(ckpt.energy_sample);
    shard.rebuffer_sample.restore(ckpt.rebuffer_sample);
    shard.median_qoe.restore(ckpt.median_qoe);
    shard.median_energy.restore(ckpt.median_energy);
    live_shed = ckpt.shed.live_shed != 0;
    miss_shed = ckpt.shed.miss_shed != 0;
    shed_until_s = ckpt.shed.shed_until_s;
    window_consults = ckpt.shed.window_consults;
    window_misses = ckpt.shed.window_misses;
    if (cache) cache->restore_state(ckpt.cache);
  }

  Shard finish() {
    shard.region.median_qoe = shard.median_qoe.value();
    shard.region.median_energy_j = shard.median_energy.value();
    return std::move(shard);
  }
};

/// Shared entry validation (satellite of DESIGN §14: reject malformed
/// configs with std::invalid_argument instead of clamping silently).
/// Returns the region count.
std::size_t validate_fleet_config(const FleetConfig& config) {
  if (config.network.num_cells == 0) {
    throw std::invalid_argument("run_fleet: zero cells");
  }
  if (config.ladder_mbps.empty()) {
    throw std::invalid_argument("run_fleet: empty bitrate ladder");
  }
  if (config.num_sessions == 0 || config.segments_per_session == 0) {
    throw std::invalid_argument("run_fleet: zero sessions or segments");
  }
  if (!(std::isfinite(config.arrival_rate_per_s) &&
        config.arrival_rate_per_s > 0.0)) {
    throw std::invalid_argument(
        "run_fleet: arrival rate must be finite and > 0");
  }
  if (!(std::isfinite(config.segment_duration_s) &&
        config.segment_duration_s > 0.0)) {
    throw std::invalid_argument(
        "run_fleet: segment duration must be finite and > 0");
  }
  for (const double mbps : config.ladder_mbps) {
    if (!(std::isfinite(mbps) && mbps > 0.0)) {
      throw std::invalid_argument(
          "run_fleet: ladder bitrates must be finite and > 0");
    }
  }
  if (config.regions == 0 || config.regions > config.network.num_cells) {
    throw std::invalid_argument(
        "run_fleet: regions must be in [1, num_cells]");
  }
  const FleetResilienceConfig& r = config.resilience;
  if (!(std::isfinite(r.backoff_base_s) && r.backoff_base_s > 0.0) ||
      !(std::isfinite(r.backoff_factor) && r.backoff_factor >= 1.0) ||
      !(std::isfinite(r.backoff_max_s) &&
        r.backoff_max_s >= r.backoff_base_s)) {
    throw std::invalid_argument("run_fleet: malformed backoff ladder");
  }
  if (r.max_retries == 0) {
    throw std::invalid_argument("run_fleet: max_retries must be >= 1");
  }
  if (r.shed_miss_rate_threshold <= 1.0) {
    if (!(r.shed_miss_rate_threshold >= 0.0) || r.shed_miss_window == 0 ||
        !(std::isfinite(r.shed_hold_s) && r.shed_hold_s >= 0.0)) {
      throw std::invalid_argument("run_fleet: malformed miss-rate shed rule");
    }
  }
  if (config.policy == FleetPolicy::kPlanner) {
    if (config.planner_horizon == 0) {
      throw std::invalid_argument("run_fleet: planner horizon must be > 0");
    }
    // Validate the shard cache config up front (width checks live in the
    // DecisionCache ctor) so a bad config throws here, not inside a worker.
    core::DecisionCacheConfig probe = config.planner_cache;
    probe.capacity = 0;
    const core::DecisionCache probe_cache(probe);
    (void)probe_cache;
  }
  return config.regions;
}

/// The common driver: fresh start or checkpoint resume, then the serial
/// region-order merge (bit-identical at any job count).
FleetMetrics run_fleet_impl(const FleetConfig& config,
                            const FleetCheckpoint* checkpoint) {
  const std::size_t regions = validate_fleet_config(config);
  const CellNetwork network(config.network);
  const qoe::QoeModel qoe_model(config.qoe);
  const power::PowerModel power_model(config.power);
  const FleetFaultModel fault_model(config.faults, network.num_cells());
  const FleetFaultModel* faults = fault_model.empty() ? nullptr : &fault_model;

  if (checkpoint != nullptr) {
    if (checkpoint->config_fingerprint != fleet_config_fingerprint(config)) {
      throw std::invalid_argument(
          "resume_fleet: checkpoint fingerprint does not match the config");
    }
    if (checkpoint->regions.size() != regions) {
      throw std::invalid_argument(
          "resume_fleet: checkpoint region count mismatch");
    }
  }

  // Regions are the parallel unit; each is pure in (config, region index,
  // checkpoint region).
  const auto shards = util::parallel_map(
      config.exec.resolved_jobs(), regions, [&](std::size_t region) {
        RegionSim sim(config, network, qoe_model, power_model, faults, region,
                      regions);
        if (checkpoint != nullptr) {
          sim.restore(checkpoint->regions[region]);
        } else {
          sim.seed_arrivals();
        }
        sim.run(std::numeric_limits<double>::infinity());
        return sim.finish();
      });

  // Serial merge in region order: bit-identical at any job count.
  FleetMetrics metrics;
  metrics.qoe_sample = ReservoirSampler(
      config.reservoir_capacity, seed_mix(config.seed, kReservoirLane, -3));
  metrics.energy_sample = ReservoirSampler(
      config.reservoir_capacity, seed_mix(config.seed, kReservoirLane, -4));
  metrics.rebuffer_sample = ReservoirSampler(
      config.reservoir_capacity, seed_mix(config.seed, kReservoirLane, -5));
  metrics.regions.reserve(shards.size());
  for (const Shard& shard : shards) {
    metrics.sessions += shard.region.sessions;
    metrics.events += shard.region.events;
    metrics.requests += shard.region.requests;
    metrics.handoffs += shard.region.handoffs;
    metrics.stall_events += shard.region.stall_events;
    metrics.peak_live_sessions += shard.region.peak_live_sessions;
    metrics.escape_handoffs += shard.region.escape_handoffs;
    metrics.backoff_retries += shard.region.backoff_retries;
    metrics.abandoned_sessions += shard.region.abandoned_sessions;
    metrics.policy_sheds += shard.region.policy_sheds;
    metrics.policy_recoveries += shard.region.policy_recoveries;
    metrics.shed_decisions += shard.region.shed_decisions;
    metrics.degraded_time_s += shard.region.degraded_time_s;
    metrics.wasted_energy_j += shard.region.wasted_energy_j;
    metrics.planner.merge(shard.region.planner);
    metrics.qoe.merge(shard.qoe);
    metrics.energy_j.merge(shard.energy_j);
    metrics.bitrate_mbps.merge(shard.bitrate_mbps);
    metrics.rebuffer_s.merge(shard.rebuffer_s);
    metrics.startup_s.merge(shard.startup_s);
    metrics.qoe_sample.merge(shard.qoe_sample);
    metrics.energy_sample.merge(shard.energy_sample);
    metrics.rebuffer_sample.merge(shard.rebuffer_sample);
    metrics.regions.push_back(shard.region);
  }
  return metrics;
}

}  // namespace

FleetMetrics run_fleet(const FleetConfig& config) {
  return run_fleet_impl(config, nullptr);
}

FleetCheckpoint run_fleet_until(const FleetConfig& config, double t_s) {
  if (!(std::isfinite(t_s) && t_s > 0.0)) {
    throw std::invalid_argument(
        "run_fleet_until: checkpoint time must be finite and > 0");
  }
  const std::size_t regions = validate_fleet_config(config);
  const CellNetwork network(config.network);
  const qoe::QoeModel qoe_model(config.qoe);
  const power::PowerModel power_model(config.power);
  const FleetFaultModel fault_model(config.faults, network.num_cells());
  const FleetFaultModel* faults = fault_model.empty() ? nullptr : &fault_model;

  FleetCheckpoint checkpoint;
  checkpoint.config_fingerprint = fleet_config_fingerprint(config);
  checkpoint.checkpoint_t_s = t_s;
  checkpoint.regions = util::parallel_map(
      config.exec.resolved_jobs(), regions, [&](std::size_t region) {
        RegionSim sim(config, network, qoe_model, power_model, faults, region,
                      regions);
        sim.seed_arrivals();
        sim.run(t_s);
        return sim.capture();
      });
  return checkpoint;
}

FleetMetrics resume_fleet(const FleetConfig& config,
                          const FleetCheckpoint& checkpoint) {
  return run_fleet_impl(config, &checkpoint);
}

}  // namespace eacs::sim
