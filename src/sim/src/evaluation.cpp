#include "eacs/sim/evaluation.h"

#include <stdexcept>

#include "eacs/abr/bba.h"
#include "eacs/abr/bola.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/core/online.h"
#include "eacs/core/optimal.h"
#include "eacs/util/thread_pool.h"

namespace eacs::sim {

std::vector<SessionMetrics> EvaluationResult::rows_for(
    const std::string& algorithm) const {
  std::vector<SessionMetrics> out;
  for (const auto& r : rows) {
    if (r.algorithm == algorithm) out.push_back(r);
  }
  return out;
}

const SessionMetrics& EvaluationResult::row(const std::string& algorithm,
                                            int session_id) const {
  for (const auto& r : rows) {
    if (r.algorithm == algorithm && r.session_id == session_id) return r;
  }
  throw std::out_of_range("EvaluationResult: no row for " + algorithm + "/" +
                          std::to_string(session_id));
}

std::vector<std::string> EvaluationResult::algorithms() const {
  std::vector<std::string> names;
  for (const auto& r : rows) {
    bool seen = false;
    for (const auto& name : names) {
      if (name == r.algorithm) {
        seen = true;
        break;
      }
    }
    if (!seen) names.push_back(r.algorithm);
  }
  return names;
}

double EvaluationResult::mean_energy_saving(const std::string& algorithm,
                                            const std::string& reference) const {
  const auto algo_rows = rows_for(algorithm);
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& r : algo_rows) {
    const auto& ref = row(reference, r.session_id);
    if (ref.total_energy_j > 0.0) {
      total += 1.0 - r.total_energy_j / ref.total_energy_j;
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

double EvaluationResult::mean_extra_energy_saving(const std::string& algorithm,
                                                  const std::string& reference) const {
  const auto algo_rows = rows_for(algorithm);
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& r : algo_rows) {
    const auto& ref = row(reference, r.session_id);
    if (ref.extra_energy_j > 0.0) {
      total += 1.0 - r.extra_energy_j / ref.extra_energy_j;
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

double EvaluationResult::mean_qoe(const std::string& algorithm) const {
  const auto algo_rows = rows_for(algorithm);
  double total = 0.0;
  for (const auto& r : algo_rows) total += r.mean_qoe;
  return algo_rows.empty() ? 0.0 : total / static_cast<double>(algo_rows.size());
}

double EvaluationResult::mean_qoe_degradation(const std::string& algorithm,
                                              const std::string& reference) const {
  const auto algo_rows = rows_for(algorithm);
  double total = 0.0;
  std::size_t count = 0;
  for (const auto& r : algo_rows) {
    const auto& ref = row(reference, r.session_id);
    if (ref.mean_qoe > 0.0) {
      total += 1.0 - r.mean_qoe / ref.mean_qoe;
      ++count;
    }
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

double EvaluationResult::saving_degradation_ratio(const std::string& algorithm,
                                                  const std::string& reference) const {
  const double saving = mean_energy_saving(algorithm, reference);
  const double degradation = mean_qoe_degradation(algorithm, reference);
  if (degradation <= 0.0) return 0.0;
  return saving / degradation;
}

Evaluation::Evaluation(EvaluationConfig config) : config_(std::move(config)) {
  if (config_.segment_duration_s <= 0.0) {
    throw std::invalid_argument("Evaluation: segment duration must be > 0");
  }
}

media::VideoManifest Evaluation::manifest_for(const media::SessionSpec& spec) const {
  return media::VideoManifest("trace" + std::to_string(spec.id), spec.length_s,
                              config_.segment_duration_s,
                              media::BitrateLadder::evaluation14(),
                              media::VbrModel{config_.vbr_amplitude});
}

EvaluationResult Evaluation::run() const {
  return run(trace::build_all_sessions(config_.session_options));
}

EvaluationResult Evaluation::run(
    const std::vector<trace::SessionTraces>& sessions) const {
  EvaluationResult result;
  const qoe::QoeModel qoe_model(config_.qoe);
  const power::PowerModel power_model(config_.power);

  core::ObjectiveConfig objective_config;
  objective_config.alpha = config_.alpha;
  objective_config.buffer_threshold_s = config_.player.buffer_threshold_s;
  objective_config.context_aware = config_.context_aware;
  const core::Objective objective(qoe_model, power_model, objective_config);

  // One unit of work per session: everything a unit touches (manifest,
  // simulator, policies, optimal plan) is built inside it from the session
  // alone, so units are pure in their index and can run on any worker.
  const auto run_session = [&](std::size_t s) {
    const auto& session = sessions[s];
    const media::VideoManifest manifest = manifest_for(session.spec);
    const player::PlayerSimulator simulator(manifest, config_.player);

    // Fresh policy instances per session; the optimal plan is per-session.
    abr::FixedBitrate youtube;
    abr::Festive festive;
    abr::Bba bba(5.0, config_.player.buffer_threshold_s);
    core::OnlineBitrateSelector ours(
        objective,
        {.startup_level = config_.online_startup_level,
         .cache = config_.online_cache ? std::make_shared<core::DecisionCache>(
                                             *config_.online_cache)
                                       : nullptr});
    const auto tasks = core::build_task_environments(manifest, session);
    core::OptimalPlanner planner(objective);
    core::PlannedPolicy optimal(planner.plan(tasks));

    std::vector<player::AbrPolicy*> policies = {&youtube, &festive, &bba, &ours,
                                                &optimal};
    abr::Bola bola(5.0, config_.player.buffer_threshold_s);
    if (config_.include_bola) policies.push_back(&bola);

    std::vector<SessionMetrics> rows;
    rows.reserve(policies.size());
    for (player::AbrPolicy* policy : policies) {
      const auto playback = simulator.run(*policy, session);
      rows.push_back(compute_metrics(policy->name(), session.spec.id, playback,
                                     manifest, qoe_model, power_model));
    }
    return rows;
  };

  const auto per_session = util::parallel_map(config_.exec.resolved_jobs(),
                                              sessions.size(), run_session);
  for (const auto& rows : per_session) {
    result.rows.insert(result.rows.end(), rows.begin(), rows.end());
  }
  return result;
}

}  // namespace eacs::sim
