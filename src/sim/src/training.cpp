#include "eacs/sim/training.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eacs/abr/fixed.h"
#include "eacs/sim/metrics.h"
#include "eacs/util/rng.h"
#include "eacs/util/thread_pool.h"

namespace eacs::sim {

CemTrainer::CemTrainer(std::vector<TrainingEpisode> episodes,
                       player::PlayerConfig player_config, double alpha)
    : episodes_(std::move(episodes)), player_config_(player_config), alpha_(alpha) {
  if (episodes_.empty()) throw std::invalid_argument("CemTrainer: no episodes");
  if (alpha_ < 0.0 || alpha_ > 1.0) {
    throw std::invalid_argument("CemTrainer: alpha must be in [0, 1]");
  }
}

std::vector<TrainingEpisode> CemTrainer::make_episodes(
    std::vector<trace::SessionTraces> sessions, double segment_duration_s,
    const player::PlayerConfig& player_config) {
  std::vector<TrainingEpisode> episodes;
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  for (auto& session : sessions) {
    media::VideoManifest manifest("train" + std::to_string(episodes.size()),
                                  session.spec.length_s, segment_duration_s,
                                  media::BitrateLadder::evaluation14());
    const player::PlayerSimulator simulator(manifest, player_config);
    abr::FixedBitrate youtube;
    const auto playback = simulator.run(youtube, session);
    const double energy = session_energy_j(playback, power_model);
    const double qoe = session_mean_qoe(playback, qoe_model);
    episodes.push_back({std::move(session), std::move(manifest), energy, qoe});
  }
  return episodes;
}

double CemTrainer::evaluate(const std::vector<double>& weights) const {
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  double total = 0.0;
  for (const auto& episode : episodes_) {
    abr::LinearPolicy policy(weights);
    const player::PlayerSimulator simulator(episode.manifest, player_config_);
    const auto playback = simulator.run(policy, episode.session);
    const double energy = session_energy_j(playback, power_model);
    const double qoe = session_mean_qoe(playback, qoe_model);
    const double energy_term =
        episode.youtube_energy_j > 0.0 ? energy / episode.youtube_energy_j : 1.0;
    const double qoe_term = episode.youtube_qoe > 0.0 ? qoe / episode.youtube_qoe : 0.0;
    total += (1.0 - alpha_) * qoe_term - alpha_ * energy_term;
  }
  return total / static_cast<double>(episodes_.size());
}

TrainingResult CemTrainer::train(const CemConfig& config) const {
  if (config.elites == 0 || config.elites > config.population) {
    throw std::invalid_argument("CemTrainer: elites must be in [1, population]");
  }
  eacs::Rng rng(config.seed);
  std::vector<double> mean(abr::PolicyFeatures::kCount, 0.0);
  std::vector<double> sigma(abr::PolicyFeatures::kCount, config.initial_sigma);

  TrainingResult result;
  std::vector<std::pair<double, std::vector<double>>> scored(config.population);

  for (std::size_t iteration = 0; iteration < config.iterations; ++iteration) {
    // Sample the whole population serially (one shared RNG stream, same
    // draw order as the historical loop), then score the candidates in
    // parallel — evaluate() is pure, so scored[p] depends only on p.
    for (std::size_t p = 0; p < config.population; ++p) {
      std::vector<double> candidate(abr::PolicyFeatures::kCount);
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        candidate[i] = rng.normal(mean[i], sigma[i]);
      }
      scored[p] = {0.0, std::move(candidate)};
    }
    util::parallel_for(config.exec.resolved_jobs(), config.population,
                       [&](std::size_t p) {
                         scored[p].first = evaluate(scored[p].second);
                       });
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    result.reward_history.push_back(scored.front().first);

    // Refit the sampling distribution on the elites.
    for (std::size_t i = 0; i < mean.size(); ++i) {
      double elite_mean = 0.0;
      for (std::size_t e = 0; e < config.elites; ++e) {
        elite_mean += scored[e].second[i];
      }
      elite_mean /= static_cast<double>(config.elites);
      double elite_var = 0.0;
      for (std::size_t e = 0; e < config.elites; ++e) {
        const double d = scored[e].second[i] - elite_mean;
        elite_var += d * d;
      }
      elite_var /= static_cast<double>(config.elites);
      mean[i] = elite_mean;
      sigma[i] = std::max(config.min_sigma, std::sqrt(elite_var));
    }
  }

  result.weights = mean;
  result.final_reward = evaluate(mean);
  return result;
}

}  // namespace eacs::sim
