#include "eacs/sim/fleet_fault_study.h"

#include <algorithm>
#include <stdexcept>

namespace eacs::sim {
namespace {

/// Intensity scaling conventions: probabilities scale linearly (clamped to
/// 1); severities interpolate from "healthy" toward the full-strength value,
/// so intensity 0 is exactly the clean fleet for every knob.
double scaled_prob(double prob, double intensity) noexcept {
  return std::min(1.0, prob * intensity);
}
double lerp_from_one(double full, double intensity) noexcept {
  return 1.0 + (full - 1.0) * intensity;  // factors / multipliers
}

/// Seeded-episode horizon: the last arrival plus a generous multiple of the
/// nominal session length, so late sessions still see faults.
double fault_horizon_s(const FleetConfig& fleet) noexcept {
  const double arrivals = static_cast<double>(fleet.num_sessions) /
                          fleet.arrival_rate_per_s;
  const double session_s = static_cast<double>(fleet.segments_per_session) *
                           fleet.segment_duration_s;
  return arrivals + 4.0 * session_s;
}

FleetFaultSpec spec_for(const FleetFaultStudyConfig& config,
                        FleetFaultScenario scenario, double intensity) {
  // kCombined runs every family at half the cell's intensity.
  const bool combined = scenario == FleetFaultScenario::kCombined;
  const double level = combined ? 0.5 * intensity : intensity;

  FleetFaultSpec spec;
  SeededFaultConfig& gen = spec.seeded;
  gen.horizon_s = fault_horizon_s(config.fleet);
  gen.epoch_s = config.epoch_s;
  gen.domain_cells = config.domain_cells;
  gen.seed = config.seed;
  if (combined || scenario == FleetFaultScenario::kCellOutages) {
    gen.outage_prob = scaled_prob(config.outage_prob, level);
    gen.outage_duration_s = config.outage_duration_s;
  }
  if (combined || scenario == FleetFaultScenario::kBrownout) {
    gen.brownout_prob = scaled_prob(config.brownout_prob, level);
    gen.brownout_factor = lerp_from_one(config.brownout_factor, level);
    gen.brownout_duration_s = config.brownout_duration_s;
  }
  if (combined || scenario == FleetFaultScenario::kSignalCollapse) {
    gen.collapse_prob = scaled_prob(config.collapse_prob, level);
    gen.collapse_db = config.collapse_db * level;
    gen.collapse_duration_s = config.collapse_duration_s;
  }
  if (combined || scenario == FleetFaultScenario::kFlashCrowd) {
    gen.surge_prob = scaled_prob(config.surge_prob, level);
    gen.surge_multiplier = lerp_from_one(config.surge_multiplier, level);
    gen.surge_duration_s = config.surge_duration_s;
  }
  return spec;
}

}  // namespace

const char* to_string(FleetFaultScenario scenario) noexcept {
  switch (scenario) {
    case FleetFaultScenario::kCellOutages:
      return "cell_outages";
    case FleetFaultScenario::kBrownout:
      return "brownout";
    case FleetFaultScenario::kSignalCollapse:
      return "signal_collapse";
    case FleetFaultScenario::kFlashCrowd:
      return "flash_crowd";
    case FleetFaultScenario::kCombined:
      return "combined";
  }
  return "unknown";
}

std::vector<FleetFaultScenario> all_fleet_fault_scenarios() {
  return {FleetFaultScenario::kCellOutages, FleetFaultScenario::kBrownout,
          FleetFaultScenario::kSignalCollapse, FleetFaultScenario::kFlashCrowd,
          FleetFaultScenario::kCombined};
}

const FleetFaultStudyCell& FleetFaultStudyResult::cell(
    FleetFaultScenario scenario, double intensity, FleetPolicy policy) const {
  for (const FleetFaultStudyCell& c : cells) {
    if (c.scenario == scenario && c.intensity == intensity &&
        c.policy == policy) {
      return c;
    }
  }
  throw std::out_of_range("FleetFaultStudyResult::cell: no such grid point");
}

FleetFaultStudyResult run_fleet_fault_study(
    const FleetFaultStudyConfig& config) {
  if (config.intensities.empty() || config.policies.empty()) {
    throw std::invalid_argument("run_fleet_fault_study: empty sweep axes");
  }
  for (const double intensity : config.intensities) {
    if (!(intensity > 0.0 && intensity <= 1.0)) {
      throw std::invalid_argument(
          "run_fleet_fault_study: intensities must be in (0, 1]");
    }
  }
  const auto scenarios = config.scenarios.empty() ? all_fleet_fault_scenarios()
                                                  : config.scenarios;

  FleetFaultStudyResult result;
  result.policies = config.policies;

  // Clean per-policy baselines anchor every delta.
  result.baselines.reserve(config.policies.size());
  for (const FleetPolicy policy : config.policies) {
    FleetConfig fleet = config.fleet;
    fleet.policy = policy;
    fleet.faults = FleetFaultSpec{};
    result.baselines.push_back(run_fleet(fleet));
  }

  for (const FleetFaultScenario scenario : scenarios) {
    for (const double intensity : config.intensities) {
      for (std::size_t p = 0; p < config.policies.size(); ++p) {
        FleetConfig fleet = config.fleet;
        fleet.policy = config.policies[p];
        fleet.faults = spec_for(config, scenario, intensity);

        FleetFaultStudyCell cell;
        cell.scenario = scenario;
        cell.intensity = intensity;
        cell.policy = config.policies[p];
        cell.metrics = run_fleet(fleet);
        const FleetMetrics& clean = result.baselines[p];
        cell.qoe_delta_vs_clean =
            cell.metrics.qoe.mean() - clean.qoe.mean();
        cell.energy_delta_vs_clean_j =
            cell.metrics.energy_j.mean() - clean.energy_j.mean();
        cell.rebuffer_delta_vs_clean_s =
            cell.metrics.rebuffer_s.mean() - clean.rebuffer_s.mean();
        result.cells.push_back(std::move(cell));
      }
    }
  }
  return result;
}

}  // namespace eacs::sim
