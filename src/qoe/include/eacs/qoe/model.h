#pragma once
// The paper's QoE model (Section III-B, Fig. 2, Table III).
//
// Perceived quality of one video segment ("task") decomposes into:
//
//   Q(i) = q0(r_i)                       original quality (quiet room)
//        - I(v_i, r_i)                   vibration impairment
//        - lambda * |q0(r_i)-q0(r_im1)|  bitrate-switch impairment
//        - mu * T_rebuf(i)               rebuffering impairment
//
// clamped to the 5-level MOS range [1, 5].
//
// Functional forms (reconstruction of the OCR-lost Eqs. 1-4; see DESIGN.md):
//   q0(r)   = 5 - a * r^(-b)                      a=1.036, b=0.429 (Table III)
//   I(v, r) = kappa * v^alpha_v * r^beta_r        fit to the paper's four
//                                                 reported surface samples
//                                                 (0.049/0.184/0.174/0.549)
//
// Sanity anchors from the paper that tests assert:
//   * 1080p -> 480p in a quiet room loses ~12% QoE; on a vehicle only ~4%;
//   * I grows with both v and r; I ~ 0 at very low bitrate or vibration.

#include <cstddef>

namespace eacs::qoe {

/// Model coefficients (Table III reconstruction).
struct QoeModelParams {
  // Original-quality curve q0(r) = 5 - a * r^(-b).
  double a = 1.036;
  double b = 0.429;
  // Vibration impairment surface I(v, r) = kappa * v^alpha_v * r^beta_r.
  double kappa = 0.0165;
  double alpha_v = 1.124;
  double beta_r = 0.872;
  // Bitrate-switch impairment weight (per unit |q0 delta|).
  double switch_penalty = 0.5;
  // Rebuffering impairment weight (MOS points per stalled second).
  double rebuffer_penalty_per_s = 0.8;

  // MOS scale bounds.
  double mos_min = 1.0;
  double mos_max = 5.0;
};

/// Per-segment QoE inputs.
struct SegmentContext {
  double bitrate_mbps = 0.0;       ///< this segment's encode bitrate
  double vibration = 0.0;          ///< vibration level during playback (m/s^2)
  double prev_bitrate_mbps = 0.0;  ///< previous segment's bitrate; <= 0 means
                                   ///< "first segment" (no switch term)
  double rebuffer_s = 0.0;         ///< stall time attributed to this segment
};

/// Evaluates the QoE model.
class QoeModel {
 public:
  explicit QoeModel(QoeModelParams params = {});

  const QoeModelParams& params() const noexcept { return params_; }

  /// Original (quiet-room) quality of a bitrate, clamped to [mos_min, mos_max].
  double original_quality(double bitrate_mbps) const noexcept;

  /// Vibration impairment I(v, r); >= 0, and 0 when v <= 0 or r <= 0.
  double vibration_impairment(double vibration, double bitrate_mbps) const noexcept;

  /// Context-adjusted quality q0(r) - I(v, r), clamped to the MOS range.
  double perceived_quality(double bitrate_mbps, double vibration) const noexcept;

  /// Full per-segment QoE including switch and rebuffer impairments.
  double segment_qoe(const SegmentContext& context) const noexcept;

  /// Bitrate-switch impairment term alone.
  double switch_impairment(double bitrate_mbps, double prev_bitrate_mbps) const noexcept;

 private:
  QoeModelParams params_;
};

}  // namespace eacs::qoe
