#pragma once
// Simulated ITU-T P.910 subjective quality-assessment study.
//
// The paper recruited 20 subjects (IRB-approved) to watch the Table I videos
// at the Table II bitrates in two contexts (quiet room / moving vehicle),
// rate them on the 9-grade numerical scale, transform to the 5-level scale
// with  q5 = 1 + 4*(q9-1)/8, and least-squares fit the QoE model from the
// ratings. This module reproduces that pipeline against a *simulated* rater
// panel: a ground-truth QoE surface plus per-subject bias and per-rating
// noise, then the same 9->5 transform, aggregation into MOS, and model fit.
//
// The fit-recovery property — with 20 noisy subjects the fitted coefficients
// land close to the ground truth — is asserted by tests and printed by
// bench_table3_qoe_fit.

#include <cstddef>
#include <string>
#include <vector>

#include "eacs/media/bitrate_ladder.h"
#include "eacs/media/catalogue.h"
#include "eacs/qoe/model.h"
#include "eacs/util/least_squares.h"
#include "eacs/util/rng.h"

namespace eacs::qoe {

/// One simulated rating event.
struct Rating {
  std::string video;
  double bitrate_mbps = 0.0;
  double vibration = 0.0;  ///< vibration level during the session
  int subject = 0;
  int score9 = 0;          ///< raw 9-grade numerical score (1..9)
  double score5 = 0.0;     ///< transformed 5-level score
};

/// Aggregated mean opinion score for one (bitrate, vibration) condition.
struct MosPoint {
  double bitrate_mbps = 0.0;
  double vibration = 0.0;
  double mos = 0.0;        ///< mean of the transformed scores
  std::size_t n = 0;       ///< ratings aggregated
};

/// Study design parameters.
///
/// Vehicle sessions draw a per-(subject, video) vibration level uniformly in
/// [vehicle_vibration_min, vehicle_vibration_max]: different rides shake
/// differently, which is what makes the impairment surface identifiable in
/// the vibration dimension (a single fixed level would leave the v-exponent
/// unconstrained).
struct StudyConfig {
  std::size_t num_subjects = 20;
  double subject_bias_sd = 0.25;       ///< per-subject constant offset (5-scale)
  double rating_noise_sd = 0.45;       ///< per-rating noise (5-scale)
  double room_vibration = 0.15;        ///< residual vibration in the quiet room
  double vehicle_vibration_min = 1.5;  ///< smooth ride
  double vehicle_vibration_max = 7.0;  ///< rough ride
  double vibration_bin = 0.5;          ///< aggregation bin width (m/s^2)
  /// Content dependence of perceived quality: complex (high-SI) content
  /// needs more bits for the same look, so its effective bitrate is scaled
  /// by 1 / (1 + content_sensitivity*(2*spatial_detail - 1)). 0 disables —
  /// every video then rates identically up to noise. This is why the paper
  /// characterises its dataset by SI/TI (Fig. 2(a)) and averages the fit
  /// over ten diverse videos.
  double content_sensitivity = 0.3;
  std::uint64_t seed = 2019;
};

/// Maps a 9-grade score to the 5-level scale: q5 = 1 + 4*(q9-1)/8.
double nine_to_five(double score9) noexcept;

/// Simulates the full study: every subject rates every Table I video at every
/// Table II bitrate in both contexts.
class SubjectiveStudy {
 public:
  SubjectiveStudy(StudyConfig config, QoeModel ground_truth);

  /// Runs the study and returns every individual rating.
  std::vector<Rating> run();

  /// Aggregates ratings into per-(bitrate, vibration-bin) MOS points; the
  /// reported vibration of a point is the mean of its members.
  static std::vector<MosPoint> aggregate(const std::vector<Rating>& ratings,
                                         double vibration_bin = 0.5);

  const StudyConfig& config() const noexcept { return config_; }

 private:
  StudyConfig config_;
  QoeModel ground_truth_;
};

/// Outcome of fitting the QoE model from MOS data.
struct QoeFit {
  QoeModelParams params;     ///< fitted a, b, kappa, alpha_v, beta_r (penalty
                             ///< terms copied from the input defaults)
  eacs::FitResult curve_fit;      ///< diagnostics for the q0 curve fit
  eacs::FitResult surface_fit;    ///< diagnostics for the impairment fit
};

/// Reproduces the paper's two least-squares fits from aggregated MOS points:
///  1. q0(r) = 5 - a*r^(-b) on the quiet-room MOS points
///     (those with vibration below `room_threshold`), via Gauss-Newton;
///  2. I(v, r) = kappa*v^alpha_v*r^beta_r on the (untruncated) room-minus-
///     vehicle MOS differences, via Gauss-Newton in (log kappa, alpha_v,
///     beta_r).
QoeFit fit_qoe_model(const std::vector<MosPoint>& mos, double room_threshold = 1.0);

/// One video's fitted quiet-room curve (per-genre analysis).
struct VideoCurveFit {
  std::string video;
  double a = 0.0;
  double b = 0.0;
  double r_squared = 0.0;
  double q_at_low = 0.0;   ///< fitted q0(0.375): where content bites hardest
  double q_at_high = 0.0;  ///< fitted q0(5.8)
};

/// Fits q0(r) = 5 - a*r^(-b) separately per video from its quiet-room
/// ratings. With content_sensitivity > 0, complex genres fit lower curves
/// at starved bitrates — the spread the paper's diverse dataset averages
/// over. Ordered as in media::test_videos().
std::vector<VideoCurveFit> fit_q0_per_video(const std::vector<Rating>& ratings,
                                            double room_threshold = 1.0);

/// Higher-resolution variant operating on the individual ratings.
///
/// The impairment surface is fitted on *paired* differences: each subject
/// rated every (video, bitrate) both in the quiet room and on their ride, so
/// the difference of those two scores cancels the subject's constant bias
/// and carries the exact ride vibration (no binning). This is the estimator
/// with the best coefficient recovery and the default in the Table III
/// bench.
QoeFit fit_qoe_model_from_ratings(const std::vector<Rating>& ratings,
                                  double room_threshold = 1.0);

}  // namespace eacs::qoe
