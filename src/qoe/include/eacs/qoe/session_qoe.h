#pragma once
// Session-level QoE aggregation (extension).
//
// The paper scores sessions as the mean per-task QoE. Streaming QoE
// research (the P.1203 family, Liu et al. TBC'15 — the paper's ref [25])
// shows session judgments deviate from plain means: startup delay hurts,
// stall *events* hurt beyond their total duration, the ending matters more
// than the beginning (recency), and quality oscillation is a separate
// annoyance. This aggregator implements those effects on top of the
// per-task qualities so the evaluation can be re-scored under a stricter
// session model (bench_ablation_session_qoe checks whether the paper's
// algorithm ranking survives — it does).

#include <vector>

#include "eacs/player/player.h"
#include "eacs/qoe/model.h"

namespace eacs::qoe {

/// Session-aggregation weights.
struct SessionQoeParams {
  double startup_penalty_per_s = 0.05;   ///< MOS per second of startup delay
  double startup_penalty_cap = 0.5;      ///< max startup deduction
  double stall_event_penalty = 0.15;     ///< MOS per stall event (on top of
                                         ///< the per-task duration term)
  double stall_event_cap = 1.0;
  double recency_half_life_s = 60.0;     ///< exponential recency weighting:
                                         ///< a segment this far from the end
                                         ///< counts half as much
  double oscillation_penalty = 0.3;      ///< MOS at switch_rate = 1 (every
                                         ///< segment switches)
};

/// Breakdown of a session score.
struct SessionQoeBreakdown {
  double base_mos = 0.0;        ///< recency-weighted mean per-task quality
  double startup_penalty = 0.0;
  double stall_penalty = 0.0;
  double oscillation_penalty = 0.0;
  double mos = 0.0;             ///< final, clamped to [1, 5]
};

/// Scores a playback run. Per-task qualities come from `model` (vibration
/// and rebuffer impairments included); the aggregator layers the
/// session-level effects on top.
SessionQoeBreakdown session_qoe(const player::PlaybackResult& result,
                                const QoeModel& model,
                                const SessionQoeParams& params = {});

}  // namespace eacs::qoe
