#include "eacs/qoe/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::qoe {

QoeModel::QoeModel(QoeModelParams params) : params_(params) {
  if (params_.mos_min >= params_.mos_max) {
    throw std::invalid_argument("QoeModel: mos_min must be < mos_max");
  }
  if (params_.a < 0.0 || params_.kappa < 0.0 || params_.switch_penalty < 0.0 ||
      params_.rebuffer_penalty_per_s < 0.0) {
    throw std::invalid_argument("QoeModel: negative coefficient");
  }
}

double QoeModel::original_quality(double bitrate_mbps) const noexcept {
  if (bitrate_mbps <= 0.0) return params_.mos_min;
  const double q = params_.mos_max - params_.a * std::pow(bitrate_mbps, -params_.b);
  return std::clamp(q, params_.mos_min, params_.mos_max);
}

double QoeModel::vibration_impairment(double vibration,
                                      double bitrate_mbps) const noexcept {
  if (vibration <= 0.0 || bitrate_mbps <= 0.0) return 0.0;
  return params_.kappa * std::pow(vibration, params_.alpha_v) *
         std::pow(bitrate_mbps, params_.beta_r);
}

double QoeModel::perceived_quality(double bitrate_mbps, double vibration) const noexcept {
  const double q =
      original_quality(bitrate_mbps) - vibration_impairment(vibration, bitrate_mbps);
  return std::clamp(q, params_.mos_min, params_.mos_max);
}

double QoeModel::switch_impairment(double bitrate_mbps,
                                   double prev_bitrate_mbps) const noexcept {
  if (prev_bitrate_mbps <= 0.0) return 0.0;
  return params_.switch_penalty *
         std::fabs(original_quality(bitrate_mbps) - original_quality(prev_bitrate_mbps));
}

double QoeModel::segment_qoe(const SegmentContext& context) const noexcept {
  double q = original_quality(context.bitrate_mbps);
  q -= vibration_impairment(context.vibration, context.bitrate_mbps);
  q -= switch_impairment(context.bitrate_mbps, context.prev_bitrate_mbps);
  q -= params_.rebuffer_penalty_per_s * std::max(0.0, context.rebuffer_s);
  return std::clamp(q, params_.mos_min, params_.mos_max);
}

}  // namespace eacs::qoe
