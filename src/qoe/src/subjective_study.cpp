#include "eacs/qoe/subjective_study.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace eacs::qoe {

double nine_to_five(double score9) noexcept {
  return 1.0 + 4.0 * (score9 - 1.0) / 8.0;
}

SubjectiveStudy::SubjectiveStudy(StudyConfig config, QoeModel ground_truth)
    : config_(config), ground_truth_(ground_truth) {
  if (config_.num_subjects == 0) {
    throw std::invalid_argument("SubjectiveStudy: need at least one subject");
  }
}

std::vector<Rating> SubjectiveStudy::run() {
  eacs::Rng rng(config_.seed);
  const auto ladder = media::BitrateLadder::table2();
  const auto& videos = media::test_videos();

  // Per-subject constant biases (some people rate harsh, some generous).
  std::vector<double> biases;
  biases.reserve(config_.num_subjects);
  for (std::size_t s = 0; s < config_.num_subjects; ++s) {
    biases.push_back(rng.normal(0.0, config_.subject_bias_sd));
  }

  std::vector<Rating> ratings;
  ratings.reserve(config_.num_subjects * videos.size() * ladder.size() * 2);

  for (std::size_t subject = 0; subject < config_.num_subjects; ++subject) {
    for (const auto& video : videos) {
      // One bus ride per (subject, video): the whole bitrate sweep for this
      // video is watched under the same vibration level.
      const double ride_vibration =
          rng.uniform(config_.vehicle_vibration_min, config_.vehicle_vibration_max);
      const double contexts[] = {config_.room_vibration, ride_vibration};
      // Content factor: complex (high-detail) videos need more bits for the
      // same perceived quality.
      const double content_factor =
          1.0 + config_.content_sensitivity * (2.0 * video.profile.spatial_detail - 1.0);
      for (std::size_t level = 0; level < ladder.size(); ++level) {
        for (double vibration : contexts) {
          const double bitrate = ladder.bitrate(level);
          const double effective_bitrate = bitrate / std::max(0.1, content_factor);
          // Ground-truth perceived quality plus human noise, on the 5-scale.
          const double truth =
              ground_truth_.perceived_quality(effective_bitrate, vibration);
          const double noisy =
              truth + biases[subject] + rng.normal(0.0, config_.rating_noise_sd);
          // Subjects answer on the 9-grade scale; invert the transform, round
          // to an integer grade, clamp to 1..9.
          const double score9_real = 1.0 + (noisy - 1.0) * 8.0 / 4.0;
          const int score9 =
              static_cast<int>(std::clamp(std::round(score9_real), 1.0, 9.0));

          Rating rating;
          rating.video = video.name;
          rating.bitrate_mbps = bitrate;
          rating.vibration = vibration;
          rating.subject = static_cast<int>(subject);
          rating.score9 = score9;
          rating.score5 = nine_to_five(score9);
          ratings.push_back(std::move(rating));
        }
      }
    }
  }
  return ratings;
}

std::vector<MosPoint> SubjectiveStudy::aggregate(const std::vector<Rating>& ratings,
                                                 double vibration_bin) {
  if (vibration_bin <= 0.0) {
    throw std::invalid_argument("aggregate: vibration_bin must be > 0");
  }
  // Key on (bitrate, vibration bin); the point reports the members' mean
  // vibration rather than the bin centre so the fit sees unbiased regressors.
  const auto key_of = [vibration_bin](double bitrate, double vibration) {
    return std::make_pair(static_cast<long long>(std::llround(bitrate * 1e6)),
                          static_cast<long long>(std::floor(vibration / vibration_bin)));
  };
  struct Accumulator {
    double mos_sum = 0.0;
    double vibration_sum = 0.0;
    double bitrate = 0.0;
    std::size_t n = 0;
  };
  std::map<std::pair<long long, long long>, Accumulator> buckets;
  for (const auto& rating : ratings) {
    auto& acc = buckets[key_of(rating.bitrate_mbps, rating.vibration)];
    acc.bitrate = rating.bitrate_mbps;
    acc.mos_sum += rating.score5;
    acc.vibration_sum += rating.vibration;
    acc.n += 1;
  }
  std::vector<MosPoint> out;
  out.reserve(buckets.size());
  for (const auto& [key, acc] : buckets) {
    MosPoint point;
    point.bitrate_mbps = acc.bitrate;
    point.vibration = acc.vibration_sum / static_cast<double>(acc.n);
    point.mos = acc.mos_sum / static_cast<double>(acc.n);
    point.n = acc.n;
    out.push_back(point);
  }
  return out;
}

QoeFit fit_qoe_model(const std::vector<MosPoint>& mos, double room_threshold) {
  std::vector<const MosPoint*> room;
  std::vector<const MosPoint*> vehicle;
  for (const auto& point : mos) {
    (point.vibration < room_threshold ? room : vehicle).push_back(&point);
  }
  if (room.empty()) throw std::invalid_argument("fit_qoe_model: no quiet-room points");

  // --- Fit 1: original quality curve q0(r) = 5 - a * r^(-b). ---
  std::vector<double> bitrates;
  std::vector<double> room_mos;
  for (const auto* point : room) {
    bitrates.push_back(point->bitrate_mbps);
    room_mos.push_back(point->mos);
  }
  const auto q0_model = [&bitrates](std::span<const double> params, std::size_t i) {
    return 5.0 - params[0] * std::pow(bitrates[i], -params[1]);
  };
  eacs::FitResult curve = eacs::gauss_newton(q0_model, room_mos, {1.0, 0.5});

  QoeFit fit;
  fit.params.a = curve.params[0];
  fit.params.b = curve.params[1];
  fit.curve_fit = curve;

  // --- Fit 2: impairment surface on room-minus-vehicle MOS differences. ---
  // Differencing at the same bitrate cancels the q0 curve (and its fit
  // error) exactly; the differences are kept untruncated (negative values
  // are legitimate noise around small impairments — discarding them would
  // bias the low-impairment region upward and flatten the bitrate exponent).
  // Gauss-Newton in (log kappa, alpha_v, beta_r) keeps kappa positive while
  // tolerating non-positive observations, which a log-space linear fit
  // cannot.
  std::vector<double> imp_v;
  std::vector<double> imp_r;
  std::vector<double> imp_y;
  for (const auto* vp : vehicle) {
    if (vp->vibration <= 0.0 || vp->bitrate_mbps <= 0.0) continue;
    for (const auto* rp : room) {
      if (std::fabs(rp->bitrate_mbps - vp->bitrate_mbps) < 1e-9) {
        imp_v.push_back(vp->vibration);
        imp_r.push_back(vp->bitrate_mbps);
        imp_y.push_back(rp->mos - vp->mos);
        break;
      }
    }
  }
  if (imp_y.size() >= 3) {
    const auto surface_model = [&](std::span<const double> p, std::size_t i) {
      return std::exp(p[0]) * std::pow(imp_v[i], p[1]) * std::pow(imp_r[i], p[2]);
    };
    eacs::FitResult surface =
        eacs::gauss_newton(surface_model, imp_y, {std::log(0.02), 1.0, 1.0});
    fit.params.kappa = std::exp(surface.params[0]);
    fit.params.alpha_v = surface.params[1];
    fit.params.beta_r = surface.params[2];
    fit.surface_fit = surface;
  }
  return fit;
}

std::vector<VideoCurveFit> fit_q0_per_video(const std::vector<Rating>& ratings,
                                            double room_threshold) {
  std::vector<VideoCurveFit> fits;
  for (const auto& video : media::test_videos()) {
    std::vector<double> rates;
    std::vector<double> scores;
    for (const auto& rating : ratings) {
      if (rating.video == video.name && rating.vibration < room_threshold) {
        rates.push_back(rating.bitrate_mbps);
        scores.push_back(rating.score5);
      }
    }
    if (scores.size() < 4) continue;
    const auto model = [&rates](std::span<const double> p, std::size_t i) {
      return 5.0 - p[0] * std::pow(rates[i], -p[1]);
    };
    const eacs::FitResult fit = eacs::gauss_newton(model, scores, {1.0, 0.5});
    VideoCurveFit out;
    out.video = video.name;
    out.a = fit.params[0];
    out.b = fit.params[1];
    out.r_squared = fit.r_squared;
    const auto q0 = [&](double r) {
      return std::clamp(5.0 - out.a * std::pow(r, -out.b), 1.0, 5.0);
    };
    out.q_at_low = q0(0.375);
    out.q_at_high = q0(5.8);
    fits.push_back(std::move(out));
  }
  return fits;
}

QoeFit fit_qoe_model_from_ratings(const std::vector<Rating>& ratings,
                                  double room_threshold) {
  // --- Fit 1: q0 curve on the individual quiet-room ratings. ---
  std::vector<double> room_r;
  std::vector<double> room_y;
  for (const auto& rating : ratings) {
    if (rating.vibration < room_threshold) {
      room_r.push_back(rating.bitrate_mbps);
      room_y.push_back(rating.score5);
    }
  }
  if (room_y.size() < 4) {
    throw std::invalid_argument("fit_qoe_model_from_ratings: too few room ratings");
  }
  const auto q0_model = [&room_r](std::span<const double> p, std::size_t i) {
    return 5.0 - p[0] * std::pow(room_r[i], -p[1]);
  };
  eacs::FitResult curve = eacs::gauss_newton(q0_model, room_y, {1.0, 0.5});

  QoeFit fit;
  fit.params.a = curve.params[0];
  fit.params.b = curve.params[1];
  fit.curve_fit = curve;

  // --- Fit 2: paired within-subject impairment differences. ---
  // Key room ratings by (subject, video, bitrate) and subtract the matching
  // vehicle rating: the subject's constant bias cancels, and the difference
  // carries the exact per-ride vibration level.
  struct Key {
    int subject;
    std::string video;
    long long bitrate_micro;
    bool operator<(const Key& other) const {
      if (subject != other.subject) return subject < other.subject;
      if (video != other.video) return video < other.video;
      return bitrate_micro < other.bitrate_micro;
    }
  };
  std::map<Key, double> room_scores;
  for (const auto& rating : ratings) {
    if (rating.vibration < room_threshold) {
      room_scores[{rating.subject, rating.video,
                   static_cast<long long>(std::llround(rating.bitrate_mbps * 1e6))}] =
          rating.score5;
    }
  }
  std::vector<double> imp_v;
  std::vector<double> imp_r;
  std::vector<double> imp_y;
  for (const auto& rating : ratings) {
    if (rating.vibration < room_threshold) continue;
    const auto it = room_scores.find(
        {rating.subject, rating.video,
         static_cast<long long>(std::llround(rating.bitrate_mbps * 1e6))});
    if (it == room_scores.end()) continue;
    imp_v.push_back(rating.vibration);
    imp_r.push_back(rating.bitrate_mbps);
    imp_y.push_back(it->second - rating.score5);
  }
  if (imp_y.size() >= 3) {
    const auto surface_model = [&](std::span<const double> p, std::size_t i) {
      return std::exp(p[0]) * std::pow(imp_v[i], p[1]) * std::pow(imp_r[i], p[2]);
    };
    eacs::FitResult surface =
        eacs::gauss_newton(surface_model, imp_y, {std::log(0.02), 1.0, 1.0});
    fit.params.kappa = std::exp(surface.params[0]);
    fit.params.alpha_v = surface.params[1];
    fit.params.beta_r = surface.params[2];
    fit.surface_fit = surface;
  }
  return fit;
}

}  // namespace eacs::qoe
