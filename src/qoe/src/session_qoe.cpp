#include "eacs/qoe/session_qoe.h"

#include <algorithm>
#include <cmath>

namespace eacs::qoe {

SessionQoeBreakdown session_qoe(const player::PlaybackResult& result,
                                const QoeModel& model,
                                const SessionQoeParams& params) {
  SessionQoeBreakdown breakdown;
  if (result.tasks.empty()) {
    breakdown.mos = model.params().mos_min;
    return breakdown;
  }

  // Recency-weighted mean of per-task quality: weight decays exponentially
  // with media-time distance from the session end.
  double media_duration = 0.0;
  for (const auto& task : result.tasks) media_duration += task.duration_s;

  const double lambda =
      params.recency_half_life_s > 0.0 ? std::log(2.0) / params.recency_half_life_s
                                       : 0.0;
  double weighted = 0.0;
  double weight_sum = 0.0;
  double media_cursor = 0.0;
  double prev_bitrate = 0.0;
  for (const auto& task : result.tasks) {
    SegmentContext context;
    context.bitrate_mbps = task.bitrate_mbps;
    context.vibration = task.vibration;
    context.prev_bitrate_mbps = prev_bitrate;
    context.rebuffer_s = task.rebuffer_s;
    const double quality = model.segment_qoe(context);
    prev_bitrate = task.bitrate_mbps;

    const double distance_from_end =
        media_duration - (media_cursor + task.duration_s / 2.0);
    const double weight = task.duration_s * std::exp(-lambda * distance_from_end);
    weighted += quality * weight;
    weight_sum += weight;
    media_cursor += task.duration_s;
  }
  breakdown.base_mos = weight_sum > 0.0 ? weighted / weight_sum : 0.0;

  breakdown.startup_penalty =
      std::min(params.startup_penalty_cap,
               params.startup_penalty_per_s * std::max(0.0, result.startup_delay_s));
  breakdown.stall_penalty =
      std::min(params.stall_event_cap,
               params.stall_event_penalty *
                   static_cast<double>(result.rebuffer_events));
  const double switch_rate =
      result.tasks.size() > 1
          ? static_cast<double>(result.switch_count) /
                static_cast<double>(result.tasks.size() - 1)
          : 0.0;
  breakdown.oscillation_penalty = params.oscillation_penalty * switch_rate;

  breakdown.mos = std::clamp(breakdown.base_mos - breakdown.startup_penalty -
                                 breakdown.stall_penalty -
                                 breakdown.oscillation_penalty,
                             model.params().mos_min, model.params().mos_max);
  return breakdown;
}

}  // namespace eacs::qoe
