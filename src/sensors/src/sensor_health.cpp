#include "eacs/sensors/sensor_health.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace eacs::sensors {

const char* to_string(ContextHealth health) noexcept {
  switch (health) {
    case ContextHealth::kHealthy: return "healthy";
    case ContextHealth::kDegraded: return "degraded";
    case ContextHealth::kLost: return "lost";
  }
  return "unknown";
}

SensorHealthMonitor::SensorHealthMonitor(SensorHealthConfig config)
    : config_(config) {
  if (config_.accel_stale_after_s <= 0.0 ||
      config_.accel_lost_after_s <= config_.accel_stale_after_s ||
      config_.signal_stale_after_s <= 0.0 ||
      config_.signal_lost_after_s <= config_.signal_stale_after_s) {
    throw std::invalid_argument(
        "SensorHealthMonitor: staleness thresholds must be positive and "
        "stale < lost");
  }
  if (config_.validity_window == 0) {
    throw std::invalid_argument("SensorHealthMonitor: empty validity window");
  }
  validity_ring_.assign(config_.validity_window, true);
}

void SensorHealthMonitor::observe_accel(const AccelSample& sample) {
  const bool valid = std::isfinite(sample.t_s) && std::isfinite(sample.x) &&
                     std::isfinite(sample.y) && std::isfinite(sample.z);
  ++accel_samples_;
  if (!valid) ++invalid_accel_;
  // A garbage sample still proves the sensor is delivering: refresh the
  // clock whenever the timestamp itself is usable.
  if (std::isfinite(sample.t_s)) {
    last_accel_t_s_ = accel_seen_ ? std::max(last_accel_t_s_, sample.t_s)
                                  : sample.t_s;
    accel_seen_ = true;
  }

  if (ring_fill_ == validity_ring_.size()) {
    if (!validity_ring_[ring_head_]) --ring_invalid_;
  } else {
    ++ring_fill_;
  }
  validity_ring_[ring_head_] = valid;
  if (!valid) ++ring_invalid_;
  ring_head_ = (ring_head_ + 1) % validity_ring_.size();
}

void SensorHealthMonitor::observe_signal(double t_s, double dbm) {
  if (!std::isfinite(t_s) || !std::isfinite(dbm)) return;  // undelivered
  ++signal_readings_;
  last_signal_t_s_ = signal_seen_ ? std::max(last_signal_t_s_, t_s) : t_s;
  last_signal_dbm_ = dbm;
  signal_seen_ = true;
}

double SensorHealthMonitor::accel_age_s(double now_s) const noexcept {
  if (!accel_seen_) return std::numeric_limits<double>::infinity();
  return std::max(0.0, now_s - last_accel_t_s_);
}

double SensorHealthMonitor::signal_age_s(double now_s) const noexcept {
  if (!signal_seen_) return std::numeric_limits<double>::infinity();
  return std::max(0.0, now_s - last_signal_t_s_);
}

double SensorHealthMonitor::invalid_fraction() const noexcept {
  if (ring_fill_ == 0) return 0.0;
  return static_cast<double>(ring_invalid_) / static_cast<double>(ring_fill_);
}

ContextHealth SensorHealthMonitor::accel_health(double now_s) const noexcept {
  const double age = accel_age_s(now_s);
  const double invalid = invalid_fraction();
  if (age > config_.accel_lost_after_s ||
      invalid >= config_.lost_invalid_fraction ||
      (!accel_seen_ && !std::isfinite(age))) {
    return ContextHealth::kLost;
  }
  if (age > config_.accel_stale_after_s ||
      invalid > config_.degraded_invalid_fraction) {
    return ContextHealth::kDegraded;
  }
  return ContextHealth::kHealthy;
}

ContextHealth SensorHealthMonitor::signal_health(double now_s) const noexcept {
  const double age = signal_age_s(now_s);
  if (age > config_.signal_lost_after_s) return ContextHealth::kLost;
  if (age > config_.signal_stale_after_s) return ContextHealth::kDegraded;
  return ContextHealth::kHealthy;
}

double SensorHealthMonitor::vibration_confidence(double now_s) const noexcept {
  if (!accel_seen_) return 0.0;
  const double age = accel_age_s(now_s);
  double freshness = 1.0;
  if (age > config_.accel_stale_after_s) {
    freshness = 1.0 - (age - config_.accel_stale_after_s) /
                          (config_.accel_lost_after_s - config_.accel_stale_after_s);
    freshness = std::clamp(freshness, 0.0, 1.0);
  }
  return freshness * (1.0 - invalid_fraction());
}

void SensorHealthMonitor::reset() {
  accel_samples_ = 0;
  invalid_accel_ = 0;
  accel_seen_ = false;
  last_accel_t_s_ = 0.0;
  signal_readings_ = 0;
  signal_seen_ = false;
  last_signal_t_s_ = 0.0;
  last_signal_dbm_ = -90.0;
  std::fill(validity_ring_.begin(), validity_ring_.end(), true);
  ring_head_ = 0;
  ring_fill_ = 0;
  ring_invalid_ = 0;
}

}  // namespace eacs::sensors
