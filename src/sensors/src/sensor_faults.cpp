#include "eacs/sensors/sensor_faults.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "eacs/util/rng.h"

namespace eacs::sensors {

namespace {

constexpr std::uint64_t kAccelScheduleSalt = 0xACCE'1F00ULL;
constexpr std::uint64_t kSignalScheduleSalt = 0x5161'AA11ULL;
constexpr std::uint64_t kCorruptionSalt = 0xC0FF'EE42ULL;

void validate_spec(const SensorFaultSpec& spec) {
  if (spec.noise_sigma < 0.0 || !std::isfinite(spec.noise_sigma)) {
    throw std::invalid_argument("SensorFaultSpec: noise_sigma must be finite and >= 0");
  }
  if (spec.saturation_rail <= 0.0 || !std::isfinite(spec.saturation_rail)) {
    throw std::invalid_argument("SensorFaultSpec: saturation_rail must be finite and > 0");
  }
  if (spec.nan_prob < 0.0 || spec.nan_prob > 1.0 || !std::isfinite(spec.nan_prob)) {
    throw std::invalid_argument("SensorFaultSpec: nan_prob must be in [0, 1]");
  }
  if (spec.rate_collapse_keep == 0) {
    throw std::invalid_argument("SensorFaultSpec: rate_collapse_keep must be >= 1");
  }
  if (spec.accel_episode_rate_per_min < 0.0 || spec.signal_dropout_rate_per_min < 0.0) {
    throw std::invalid_argument("SensorFaultSpec: episode rates must be >= 0");
  }
  if (spec.accel_episode_rate_per_min > 0.0 && spec.accel_episode_mean_s <= 0.0) {
    throw std::invalid_argument("SensorFaultSpec: accel_episode_mean_s must be > 0");
  }
  if (spec.signal_dropout_rate_per_min > 0.0 && spec.signal_dropout_mean_s <= 0.0) {
    throw std::invalid_argument("SensorFaultSpec: signal_dropout_mean_s must be > 0");
  }
  if (spec.accel_episode_rate_per_min > 0.0 && spec.random_fault_types.empty()) {
    throw std::invalid_argument(
        "SensorFaultSpec: random episodes need a non-empty random_fault_types");
  }
  for (const auto* episodes : {&spec.accel_episodes, &spec.signal_episodes}) {
    for (const auto& e : *episodes) {
      if (!std::isfinite(e.start_s) || !std::isfinite(e.end_s) || e.start_s < 0.0 ||
          e.end_s <= e.start_s) {
        throw std::invalid_argument(
            "SensorFaultSpec: episodes need finite 0 <= start < end");
      }
    }
  }
}

// Scripted episodes merged with seeded Poisson-arrival / exponential-duration
// random episodes over [0, horizon), then sorted and clipped so the schedule
// is non-overlapping (earlier episode wins the overlap).
std::vector<SensorFaultEpisode> build_schedule(
    std::vector<SensorFaultEpisode> scripted, double rate_per_min, double mean_s,
    const std::vector<SensorFaultType>& types, double horizon_s,
    std::uint64_t seed) {
  auto schedule = std::move(scripted);
  if (rate_per_min > 0.0 && horizon_s > 0.0 && !types.empty()) {
    Rng rng(seed);
    const double rate_per_s = rate_per_min / 60.0;
    double t = rng.exponential(rate_per_s);
    while (t < horizon_s) {
      const double duration = rng.exponential(1.0 / mean_s);
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(types.size()) - 1));
      schedule.push_back({types[pick], t, std::min(t + duration, horizon_s)});
      t += duration + rng.exponential(rate_per_s);
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const SensorFaultEpisode& a, const SensorFaultEpisode& b) {
              return a.start_s < b.start_s;
            });
  std::vector<SensorFaultEpisode> merged;
  for (auto e : schedule) {
    if (!merged.empty() && e.start_s < merged.back().end_s) {
      e.start_s = merged.back().end_s;  // earlier episode wins the overlap
      if (e.end_s <= e.start_s) continue;
    }
    merged.push_back(e);
  }
  return merged;
}

// Index of the schedule episode covering t_s, or npos.
std::size_t episode_at(const std::vector<SensorFaultEpisode>& schedule,
                       double t_s) noexcept {
  auto it = std::upper_bound(
      schedule.begin(), schedule.end(), t_s,
      [](double t, const SensorFaultEpisode& e) { return t < e.start_s; });
  if (it == schedule.begin()) return static_cast<std::size_t>(-1);
  --it;
  if (t_s < it->end_s) return static_cast<std::size_t>(it - schedule.begin());
  return static_cast<std::size_t>(-1);
}

}  // namespace

const char* to_string(SensorFaultType type) noexcept {
  switch (type) {
    case SensorFaultType::kDropout: return "dropout";
    case SensorFaultType::kStuckAt: return "stuck_at";
    case SensorFaultType::kNoiseBurst: return "noise_burst";
    case SensorFaultType::kSaturation: return "saturation";
    case SensorFaultType::kNanCorruption: return "nan_corruption";
    case SensorFaultType::kRateCollapse: return "rate_collapse";
  }
  return "unknown";
}

SensorFaultInjector::SensorFaultInjector(const AccelTrace& accel,
                                         std::vector<SignalSample> signal,
                                         SensorFaultSpec spec)
    : spec_(std::move(spec)) {
  validate_spec(spec_);

  const double accel_horizon = accel.empty() ? 0.0 : accel.back().t_s;
  const double signal_horizon = signal.empty() ? 0.0 : signal.back().t_s;
  accel_schedule_ = build_schedule(
      spec_.accel_episodes, spec_.accel_episode_rate_per_min,
      spec_.accel_episode_mean_s, spec_.random_fault_types, accel_horizon,
      spec_.seed ^ kAccelScheduleSalt);
  signal_schedule_ = build_schedule(
      spec_.signal_episodes, spec_.signal_dropout_rate_per_min,
      spec_.signal_dropout_mean_s, {SensorFaultType::kDropout}, signal_horizon,
      spec_.seed ^ kSignalScheduleSalt);

  // One deterministic corruption stream; draws happen in sample order, so the
  // corrupted trace is a pure function of (accel, spec).
  Rng corrupt(spec_.seed ^ kCorruptionSalt);

  accel_.reserve(accel.size());
  AccelSample held{};          // last delivered sample, for kStuckAt
  bool have_held = false;
  std::size_t prev_episode = static_cast<std::size_t>(-1);
  std::size_t collapse_counter = 0;
  for (const auto& sample : accel) {
    const std::size_t ep = episode_at(accel_schedule_, sample.t_s);
    if (ep != prev_episode) collapse_counter = 0;
    prev_episode = ep;
    if (ep == static_cast<std::size_t>(-1)) {
      accel_.push_back(sample);
      held = sample;
      have_held = true;
      continue;
    }
    AccelSample out = sample;
    switch (accel_schedule_[ep].type) {
      case SensorFaultType::kDropout:
        continue;  // sample never delivered
      case SensorFaultType::kStuckAt:
        // An episode that starts before any good reading freezes on the first
        // value the sensor produces, like a driver that wedges at boot.
        if (!have_held) {
          held = sample;
          have_held = true;
        }
        out.x = held.x;
        out.y = held.y;
        out.z = held.z;
        break;
      case SensorFaultType::kNoiseBurst:
        out.x += corrupt.normal(0.0, spec_.noise_sigma);
        out.y += corrupt.normal(0.0, spec_.noise_sigma);
        out.z += corrupt.normal(0.0, spec_.noise_sigma);
        break;
      case SensorFaultType::kSaturation:
        out.x = spec_.saturation_rail;
        out.y = spec_.saturation_rail;
        out.z = spec_.saturation_rail;
        break;
      case SensorFaultType::kNanCorruption:
        if (corrupt.bernoulli(spec_.nan_prob)) {
          out.x = std::numeric_limits<double>::quiet_NaN();
          out.y = std::numeric_limits<double>::quiet_NaN();
          out.z = std::numeric_limits<double>::quiet_NaN();
        }
        break;
      case SensorFaultType::kRateCollapse:
        if (collapse_counter++ % spec_.rate_collapse_keep != 0) continue;
        break;
    }
    accel_.push_back(out);
    // Corrupted-but-delivered samples do not refresh the stuck-at hold: a
    // frozen driver repeats the last *good* reading it latched.
    if (accel_schedule_[ep].type != SensorFaultType::kStuckAt &&
        accel_schedule_[ep].type != SensorFaultType::kNanCorruption) {
      held = out;
      have_held = true;
    }
  }

  signal_.reserve(signal.size());
  for (const auto& reading : signal) {
    if (episode_at(signal_schedule_, reading.t_s) != static_cast<std::size_t>(-1)) {
      continue;  // reading suppressed during the dropout
    }
    signal_.push_back(reading);
  }
}

bool SensorFaultInjector::accel_in_fault(double t_s,
                                         SensorFaultType* type) const noexcept {
  const std::size_t ep = episode_at(accel_schedule_, t_s);
  if (ep == static_cast<std::size_t>(-1)) return false;
  if (type != nullptr) *type = accel_schedule_[ep].type;
  return true;
}

double SensorFaultInjector::signal_at(double t_s) const noexcept {
  if (signal_.empty()) return -90.0;
  auto it = std::upper_bound(
      signal_.begin(), signal_.end(), t_s,
      [](double t, const SignalSample& s) { return t < s.t_s; });
  if (it == signal_.begin()) return signal_.front().dbm;
  return std::prev(it)->dbm;
}

double SensorFaultInjector::signal_age_s(double t_s) const noexcept {
  auto it = std::upper_bound(
      signal_.begin(), signal_.end(), t_s,
      [](double t, const SignalSample& s) { return t < s.t_s; });
  if (it == signal_.begin()) return std::numeric_limits<double>::infinity();
  return std::max(0.0, t_s - std::prev(it)->t_s);
}

}  // namespace eacs::sensors
