#include "eacs/sensors/context_classifier.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "eacs/util/filters.h"
#include "eacs/util/stats.h"

namespace eacs::sensors {

const char* to_string(Context context) noexcept {
  switch (context) {
    case Context::kStatic: return "static";
    case Context::kWalking: return "walking";
    case Context::kVehicle: return "vehicle";
  }
  return "?";
}

double goertzel_power(std::span<const double> samples, double freq_hz,
                      double sample_rate_hz) {
  if (samples.empty()) return 0.0;
  if (freq_hz < 0.0 || freq_hz >= sample_rate_hz / 2.0) {
    throw std::invalid_argument("goertzel_power: frequency outside Nyquist band");
  }
  const double omega = 2.0 * 3.14159265358979323846 * freq_hz / sample_rate_hz;
  const double coeff = 2.0 * std::cos(omega);
  double s_prev = 0.0;
  double s_prev2 = 0.0;
  for (double x : samples) {
    const double s = x + coeff * s_prev - s_prev2;
    s_prev2 = s_prev;
    s_prev = s;
  }
  const double power =
      s_prev * s_prev + s_prev2 * s_prev2 - coeff * s_prev * s_prev2;
  return power / static_cast<double>(samples.size());
}

MotionFeatures compute_motion_features(std::span<const AccelSample> window,
                                       const ClassifierConfig& config) {
  MotionFeatures features;
  if (window.empty()) return features;

  // Gravity-removed magnitude stream.
  eacs::HighPassFilter highpass(config.highpass_cutoff_hz, config.sample_rate_hz);
  std::vector<double> ac;
  ac.reserve(window.size());
  for (const auto& sample : window) {
    ac.push_back(highpass.update(sample.magnitude()));
  }
  features.rms = eacs::rms(ac);

  // Hann window before the spectral scan: with a rectangular window a tone
  // that falls between scan bins is orthogonal to every bin and vanishes
  // from the spectrum; the Hann mainlobe guarantees nearby bins see it.
  std::vector<double> windowed(ac.size());
  const double n_minus_1 = static_cast<double>(ac.size() > 1 ? ac.size() - 1 : 1);
  for (std::size_t i = 0; i < ac.size(); ++i) {
    const double hann =
        0.5 * (1.0 - std::cos(2.0 * 3.14159265358979323846 *
                              static_cast<double>(i) / n_minus_1));
    windowed[i] = ac[i] * hann;
  }
  ac.swap(windowed);

  // Spectral scan: dominant frequency and energy-weighted spread.
  double best_power = 0.0;
  double total_power = 0.0;
  double weighted_freq = 0.0;
  std::vector<std::pair<double, double>> spectrum;  // (freq, power)
  const double top =
      std::min(config.scan_max_hz, config.sample_rate_hz / 2.0 - config.scan_step_hz);
  for (double f = config.scan_step_hz; f <= top; f += config.scan_step_hz) {
    const double power = goertzel_power(ac, f, config.sample_rate_hz);
    spectrum.emplace_back(f, power);
    total_power += power;
    weighted_freq += f * power;
    if (power > best_power) {
      best_power = power;
      features.dominant_hz = f;
    }
  }
  if (total_power > 0.0) {
    const double mean_freq = weighted_freq / total_power;
    double var = 0.0;
    for (const auto& [f, power] : spectrum) {
      var += power * (f - mean_freq) * (f - mean_freq);
    }
    features.spectral_spread = std::sqrt(var / total_power);
  }
  return features;
}

Context classify_window(std::span<const AccelSample> window,
                        const ClassifierConfig& config) {
  const MotionFeatures features = compute_motion_features(window, config);
  if (features.rms < config.static_rms) return Context::kStatic;
  const bool cadence_band = features.dominant_hz >= config.walk_min_hz &&
                            features.dominant_hz <= config.walk_max_hz;
  if (cadence_band && features.spectral_spread <= config.walk_max_spread_hz) {
    return Context::kWalking;
  }
  return Context::kVehicle;
}

}  // namespace eacs::sensors
