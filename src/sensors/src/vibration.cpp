#include "eacs/sensors/vibration.h"

#include <stdexcept>

#include "eacs/util/stats.h"

namespace eacs::sensors {

VibrationEstimator::VibrationEstimator(VibrationConfig config)
    : config_(config),
      highpass_(config.highpass_cutoff_hz, config.sample_rate_hz),
      rms_(config.window_samples()) {
  if (config_.window_s <= 0.0 || config_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("VibrationEstimator: non-positive window/rate");
  }
}

double VibrationEstimator::update(const AccelSample& sample) {
  const double ac_component = highpass_.update(sample.magnitude());
  ++samples_seen_;
  return rms_.update(ac_component);
}

double VibrationEstimator::level() const noexcept { return rms_.value(); }

void VibrationEstimator::reset() {
  highpass_.reset();
  rms_.reset();
  samples_seen_ = 0;
}

double vibration_level(std::span<const AccelSample> trace, VibrationConfig config) {
  VibrationEstimator estimator(config);
  double level = 0.0;
  for (const auto& sample : trace) level = estimator.update(sample);
  return level;
}

double mean_vibration_level(std::span<const AccelSample> trace, VibrationConfig config) {
  VibrationEstimator estimator(config);
  const std::size_t warmup = config.window_samples();
  eacs::RunningStats stats;
  std::size_t index = 0;
  for (const auto& sample : trace) {
    const double level = estimator.update(sample);
    if (++index >= warmup) stats.add(level);
  }
  // Short traces (< one window): fall back to the final level.
  if (stats.count() == 0) return estimator.level();
  return stats.mean();
}

}  // namespace eacs::sensors
