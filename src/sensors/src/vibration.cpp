#include "eacs/sensors/vibration.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eacs/util/stats.h"

namespace eacs::sensors {

VibrationEstimator::VibrationEstimator(VibrationConfig config)
    : config_(config),
      highpass_(config.highpass_cutoff_hz, config.sample_rate_hz),
      rms_(config.window_samples()) {
  if (config_.window_s <= 0.0 || config_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("VibrationEstimator: non-positive window/rate");
  }
}

double VibrationEstimator::update(const AccelSample& sample) {
  ++samples_seen_;
  if (!std::isfinite(sample.x) || !std::isfinite(sample.y) ||
      !std::isfinite(sample.z)) {
    ++rejected_samples_;
    return level();
  }
  if (std::isfinite(sample.t_s)) {
    last_valid_t_s_ =
        have_valid_ ? std::max(last_valid_t_s_, sample.t_s) : sample.t_s;
    have_valid_ = true;
  }
  const double ac_component = highpass_.update(sample.magnitude());
  return rms_.update(ac_component);
}

double VibrationEstimator::level() const noexcept { return rms_.value(); }

double VibrationEstimator::level_at(double now_s) const noexcept {
  if (!have_valid_) return config_.prior_vibration;
  const double age = std::max(0.0, now_s - last_valid_t_s_);
  if (age <= config_.quiet_after_s) return level();
  const double w = std::exp(-(age - config_.quiet_after_s) / config_.prior_tau_s);
  return w * level() + (1.0 - w) * config_.prior_vibration;
}

void VibrationEstimator::reset() {
  highpass_.reset();
  rms_.reset();
  samples_seen_ = 0;
  rejected_samples_ = 0;
  last_valid_t_s_ = 0.0;
  have_valid_ = false;
}

double vibration_level(std::span<const AccelSample> trace, VibrationConfig config) {
  VibrationEstimator estimator(config);
  double level = 0.0;
  for (const auto& sample : trace) level = estimator.update(sample);
  return level;
}

double mean_vibration_level(std::span<const AccelSample> trace, VibrationConfig config) {
  VibrationEstimator estimator(config);
  const std::size_t warmup = config.window_samples();
  eacs::RunningStats stats;
  std::size_t index = 0;
  for (const auto& sample : trace) {
    const double level = estimator.update(sample);
    if (++index >= warmup) stats.add(level);
  }
  // Short traces (< one window): fall back to the final level.
  if (stats.count() == 0) return estimator.level();
  return stats.mean();
}

}  // namespace eacs::sensors
