#pragma once
// Deterministic fault injection over sensor streams — the sensing-side
// sibling of net::FaultInjector.
//
// The context path assumes the accelerometer and the telephony signal are
// always present, fresh and finite; real handsets deliver none of those
// guarantees. This layer corrupts the *perceived* streams (what the client's
// estimators see) while the physical session — link throughput, true signal
// at the radio, true vibration at the screen — stays untouched, so a study
// can measure exactly what bad sensing costs the context-aware algorithm.
//
// Accelerometer fault families, applied over scripted plus seeded-random
// episodes merged into one schedule:
//
//  * dropout          — samples stop arriving (sensor service killed);
//  * stuck-at         — the last pre-episode reading repeats (frozen driver);
//  * noise burst      — additive Gaussian noise on every axis (EMI, loose
//                       mount);
//  * rail saturation  — every axis pegs at the sensor rail (clipped part);
//  * NaN corruption   — samples arrive with non-finite axes (firmware bug);
//  * rate collapse    — only every Nth sample survives (starved sensor HAL).
//
// Signal-strength faults: dropout episodes during which telephony readings
// are simply not delivered, so the client's last reading goes stale.
//
// Everything is a pure function of (streams, spec): the same inputs
// reproduce the same episode schedule and the same corrupted samples
// bit-for-bit. A default-constructed spec injects nothing and the injector's
// outputs are element-identical to its inputs.

#include <cstdint>
#include <vector>

#include "eacs/sensors/accel.h"
#include "eacs/sensors/sensor_health.h"

namespace eacs::sensors {

/// Accelerometer fault families.
enum class SensorFaultType {
  kDropout,       ///< samples stop arriving
  kStuckAt,       ///< last pre-episode reading repeats
  kNoiseBurst,    ///< additive Gaussian noise per axis
  kSaturation,    ///< axes pegged at +rail
  kNanCorruption, ///< axes replaced by NaN with per-sample probability
  kRateCollapse,  ///< only every Nth sample delivered
};

/// Stable lower-case identifier (study tables, CSV, logs).
const char* to_string(SensorFaultType type) noexcept;

/// One fault episode: `type` applies to samples with t in [start_s, end_s).
struct SensorFaultEpisode {
  SensorFaultType type = SensorFaultType::kDropout;
  double start_s = 0.0;
  double end_s = 0.0;

  double duration_s() const noexcept { return end_s - start_s; }
};

/// Full description of the sensor faults to inject. The default-constructed
/// spec injects nothing: the injector passes both streams through untouched.
struct SensorFaultSpec {
  /// Scripted accelerometer episodes; merged with the random ones.
  std::vector<SensorFaultEpisode> accel_episodes;

  /// Seeded-random accel episodes: Poisson arrivals at this rate...
  double accel_episode_rate_per_min = 0.0;
  /// ...with exponentially distributed durations of this mean...
  double accel_episode_mean_s = 10.0;
  /// ...each drawing its fault family uniformly from this set.
  std::vector<SensorFaultType> random_fault_types = {
      SensorFaultType::kDropout,       SensorFaultType::kStuckAt,
      SensorFaultType::kNoiseBurst,    SensorFaultType::kSaturation,
      SensorFaultType::kNanCorruption, SensorFaultType::kRateCollapse};

  /// Per-axis noise sigma during kNoiseBurst episodes (m/s^2).
  double noise_sigma = 3.0;
  /// Rail value during kSaturation episodes (m/s^2; ~2 g like a phone part).
  double saturation_rail = 19.6133;
  /// Per-sample corruption probability inside kNanCorruption episodes.
  double nan_prob = 0.5;
  /// kRateCollapse keeps one sample in this many.
  std::size_t rate_collapse_keep = 16;

  /// Scripted signal-dropout episodes (the episode type is ignored).
  std::vector<SensorFaultEpisode> signal_episodes;
  /// Seeded-random signal dropouts: Poisson arrivals / exponential durations.
  double signal_dropout_rate_per_min = 0.0;
  double signal_dropout_mean_s = 20.0;

  /// Seed for the random schedules and per-sample corruption draws.
  std::uint64_t seed = 0x5E50'FA17ULL;

  /// True if any fault family is switched on.
  bool enabled() const noexcept {
    return !accel_episodes.empty() || accel_episode_rate_per_min > 0.0 ||
           !signal_episodes.empty() || signal_dropout_rate_per_min > 0.0;
  }
};

/// Applies a SensorFaultSpec to one session's perceived sensor streams.
/// Construction does all the work; the corrupted streams are then immutable.
class SensorFaultInjector {
 public:
  /// `accel` and `signal` are the clean streams the client would have seen;
  /// they are copied, so the injector owns its outputs. Throws
  /// std::invalid_argument on malformed episodes or parameters.
  SensorFaultInjector(const AccelTrace& accel, std::vector<SignalSample> signal,
                      SensorFaultSpec spec);

  /// False for a default-constructed spec: outputs == inputs.
  bool active() const noexcept { return spec_.enabled(); }
  const SensorFaultSpec& spec() const noexcept { return spec_; }

  /// The corrupted accelerometer stream (dropped samples removed, corrupted
  /// samples in place, still time-ordered).
  const AccelTrace& accel() const noexcept { return accel_; }

  /// The delivered signal readings (dropout episodes removed).
  const std::vector<SignalSample>& signal() const noexcept { return signal_; }

  /// Merged accel episode schedule, sorted by start, non-overlapping.
  const std::vector<SensorFaultEpisode>& accel_schedule() const noexcept {
    return accel_schedule_;
  }
  /// Merged signal-dropout schedule, sorted, non-overlapping.
  const std::vector<SensorFaultEpisode>& signal_schedule() const noexcept {
    return signal_schedule_;
  }

  /// True if an accel episode covers `t_s`; `type` (optional) receives which.
  bool accel_in_fault(double t_s, SensorFaultType* type = nullptr) const noexcept;

  /// Last delivered signal reading at or before `t_s` (falls back to the
  /// first reading before any, -90 dBm if none were ever delivered).
  double signal_at(double t_s) const noexcept;

  /// Age of the last delivered reading at `t_s`; +inf if none were delivered.
  double signal_age_s(double t_s) const noexcept;

 private:
  SensorFaultSpec spec_;
  std::vector<SensorFaultEpisode> accel_schedule_;
  std::vector<SensorFaultEpisode> signal_schedule_;
  AccelTrace accel_;
  std::vector<SignalSample> signal_;
};

}  // namespace eacs::sensors
