#pragma once
// Accelerometer sample types (Android TYPE_ACCELEROMETER semantics: raw
// specific force including gravity, in m/s^2).

#include <cmath>
#include <vector>

namespace eacs::sensors {

/// One 3-axis accelerometer sample.
struct AccelSample {
  double t_s = 0.0;  ///< timestamp, seconds since stream start
  double x = 0.0;    ///< m/s^2, includes gravity
  double y = 0.0;
  double z = 0.0;

  /// Euclidean magnitude of the acceleration vector.
  double magnitude() const noexcept { return std::sqrt(x * x + y * y + z * z); }
};

/// A time-ordered accelerometer stream.
using AccelTrace = std::vector<AccelSample>;

/// Standard gravity used throughout the synthetic generators.
inline constexpr double kGravity = 9.80665;

}  // namespace eacs::sensors
