#pragma once
// Per-sensor freshness/validity tracking for the context pipeline.
//
// The context-aware algorithm plans on two sensed inputs — the accelerometer
// stream behind the vibration estimate (Eq. 5) and the telephony
// signal-strength readings behind the power model — and both fail in the
// field: batches stop arriving (dropout), arrive full of NaN/Inf garbage
// (driver bugs, I2C corruption), or go stale (telephony callbacks suppressed
// in doze mode). SensorHealthMonitor watches each stream's delivery times and
// sample validity and grades it kHealthy / kDegraded / kLost, so the
// selector can fall back to a conservative policy instead of planning on
// garbage (DESIGN.md "Sensor failure model & degraded-context operation").
//
// The monitor is pure bookkeeping: it never mutates the streams it observes,
// and a run that never consults it behaves bit-identically with or without
// one attached.

#include <cstddef>
#include <vector>

#include "eacs/sensors/accel.h"

namespace eacs::sensors {

/// Trust grade for one sensed input.
enum class ContextHealth {
  kHealthy,   ///< fresh and valid; use the measurement as-is
  kDegraded,  ///< stale or partially invalid; blend toward the prior
  kLost,      ///< no usable data; plan on the conservative prior
};

/// Stable lower-case identifier (tables, CSV, logs).
const char* to_string(ContextHealth health) noexcept;

/// One telephony signal-strength reading as delivered to the client.
struct SignalSample {
  double t_s = 0.0;     ///< delivery timestamp, seconds since stream start
  double dbm = -90.0;   ///< RSRP reading
};

/// Freshness/validity thresholds.
struct SensorHealthConfig {
  /// Accelerometer ages (seconds since the last *delivered* sample) at which
  /// the stream grades kDegraded / kLost. At 50 Hz, 0.5 s is 25 missed
  /// samples — far beyond jitter, clearly a dropout.
  double accel_stale_after_s = 0.5;
  double accel_lost_after_s = 5.0;

  /// Signal-reading ages at which the stream grades kDegraded / kLost.
  /// Telephony callbacks are sparse by nature, so the bars sit much higher.
  double signal_stale_after_s = 10.0;
  double signal_lost_after_s = 60.0;

  /// Validity window: the fraction of non-finite samples over the last
  /// `validity_window` deliveries feeds the grade (a fresh stream of NaNs is
  /// just as lost as no stream at all).
  std::size_t validity_window = 50;
  /// Invalid fraction above which a fresh stream grades kDegraded.
  double degraded_invalid_fraction = 0.25;
  /// Invalid fraction above which a fresh stream grades kLost.
  double lost_invalid_fraction = 0.9;
};

/// Streaming per-sensor health tracker.
///
/// Feed every delivered sample (valid or not); query health/confidence at
/// decision time. Deterministic, O(1) per sample, no allocation after
/// construction.
class SensorHealthMonitor {
 public:
  explicit SensorHealthMonitor(SensorHealthConfig config = {});

  const SensorHealthConfig& config() const noexcept { return config_; }

  /// Observes one delivered accelerometer sample; non-finite components are
  /// counted as invalid (they still refresh the delivery clock — a sensor
  /// producing garbage is alive but untrustworthy).
  void observe_accel(const AccelSample& sample);

  /// Observes one delivered signal-strength reading.
  void observe_signal(double t_s, double dbm);

  /// Seconds since the last delivered accel sample; +inf before the first.
  double accel_age_s(double now_s) const noexcept;
  /// Seconds since the last delivered signal reading; +inf before the first.
  double signal_age_s(double now_s) const noexcept;

  /// Health grades at time `now_s` (freshness x validity for accel,
  /// freshness for signal).
  ContextHealth accel_health(double now_s) const noexcept;
  ContextHealth signal_health(double now_s) const noexcept;

  /// Confidence in the vibration estimate at `now_s`, in [0, 1]: the product
  /// of a freshness factor (1 fresh, 0 at accel_lost_after_s) and the valid
  /// fraction of the recent window. 0 before any sample.
  double vibration_confidence(double now_s) const noexcept;

  /// Last delivered signal reading (config default -90 dBm before any).
  double last_signal_dbm() const noexcept { return last_signal_dbm_; }

  /// Fraction of non-finite samples over the trailing validity window
  /// (0 before any sample).
  double invalid_fraction() const noexcept;

  std::size_t accel_samples() const noexcept { return accel_samples_; }
  std::size_t invalid_accel_samples() const noexcept { return invalid_accel_; }
  std::size_t signal_readings() const noexcept { return signal_readings_; }

  void reset();

 private:
  SensorHealthConfig config_;

  std::size_t accel_samples_ = 0;
  std::size_t invalid_accel_ = 0;
  double last_accel_t_s_ = 0.0;
  bool accel_seen_ = false;

  std::size_t signal_readings_ = 0;
  double last_signal_t_s_ = 0.0;
  double last_signal_dbm_ = -90.0;
  bool signal_seen_ = false;

  // Ring buffer of validity bits over the last `validity_window` samples.
  std::vector<bool> validity_ring_;
  std::size_t ring_head_ = 0;
  std::size_t ring_fill_ = 0;
  std::size_t ring_invalid_ = 0;
};

}  // namespace eacs::sensors
