#pragma once
// Vibration-level estimation (reconstruction of the paper's Eq. 5).
//
// The paper records accelerometer data during video watching and computes a
// scalar "vibration level" v (m/s^2, observed range ~0..7) over the trailing
// time window 0.2*W where W is the 30 s player buffer threshold, i.e. a 6 s
// window. We implement v as the RMS of the gravity-removed acceleration
// magnitude over that window:
//
//   v = rms_{window}( highpass( |a(t)| ) )
//
// A quiet room yields v close to 0 (sensor noise only); a moving vehicle
// yields v of several m/s^2, matching Table V's 2.46..6.83 averages.

#include <cstddef>
#include <span>

#include "eacs/sensors/accel.h"
#include "eacs/util/filters.h"

namespace eacs::sensors {

/// Configuration for the vibration estimator.
struct VibrationConfig {
  double window_s = 6.0;        ///< trailing window (paper: 0.2 * 30 s)
  double sample_rate_hz = 50.0; ///< accelerometer rate
  double highpass_cutoff_hz = 0.5;  ///< gravity-removal cutoff

  std::size_t window_samples() const noexcept {
    const double n = window_s * sample_rate_hz;
    return n < 1.0 ? 1 : static_cast<std::size_t>(n);
  }
};

/// Streaming vibration-level estimator.
///
/// Push raw samples as they arrive; `level()` returns the current vibration
/// level over the trailing window. O(1) per sample.
class VibrationEstimator {
 public:
  explicit VibrationEstimator(VibrationConfig config = {});

  /// Consumes one raw sample and returns the updated level.
  double update(const AccelSample& sample);

  /// Current vibration level (m/s^2). 0 before any sample.
  double level() const noexcept;

  /// Number of samples consumed.
  std::size_t samples_seen() const noexcept { return samples_seen_; }

  const VibrationConfig& config() const noexcept { return config_; }

  void reset();

 private:
  VibrationConfig config_;
  eacs::HighPassFilter highpass_;
  eacs::MovingRms rms_;
  std::size_t samples_seen_ = 0;
};

/// Batch helper: vibration level over the trailing window of a whole trace.
double vibration_level(std::span<const AccelSample> trace, VibrationConfig config = {});

/// Batch helper: mean vibration level over the full trace, computed by
/// streaming the estimator across it and averaging the per-sample levels once
/// the window is primed. This is the statistic reported in Table V's
/// "Avg. vibration" column.
double mean_vibration_level(std::span<const AccelSample> trace,
                            VibrationConfig config = {});

}  // namespace eacs::sensors
