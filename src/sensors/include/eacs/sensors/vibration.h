#pragma once
// Vibration-level estimation (reconstruction of the paper's Eq. 5).
//
// The paper records accelerometer data during video watching and computes a
// scalar "vibration level" v (m/s^2, observed range ~0..7) over the trailing
// time window 0.2*W where W is the 30 s player buffer threshold, i.e. a 6 s
// window. We implement v as the RMS of the gravity-removed acceleration
// magnitude over that window:
//
//   v = rms_{window}( highpass( |a(t)| ) )
//
// A quiet room yields v close to 0 (sensor noise only); a moving vehicle
// yields v of several m/s^2, matching Table V's 2.46..6.83 averages.

#include <cstddef>
#include <span>

#include "eacs/sensors/accel.h"
#include "eacs/util/filters.h"

namespace eacs::sensors {

/// Configuration for the vibration estimator.
struct VibrationConfig {
  double window_s = 6.0;        ///< trailing window (paper: 0.2 * 30 s)
  double sample_rate_hz = 50.0; ///< accelerometer rate
  double highpass_cutoff_hz = 0.5;  ///< gravity-removal cutoff

  /// Degraded-stream behaviour for `level_at()`: once the stream has been
  /// quiet for longer than `quiet_after_s`, the estimate decays exponentially
  /// (time constant `prior_tau_s`) toward `prior_vibration`, a conservative
  /// vibrating-commute prior (Table V reports 2.46..6.83 m/s^2 on buses).
  /// Planning on "probably vibrating" costs a little energy headroom when the
  /// user is actually still; planning on a frozen quiet-room estimate costs
  /// rebuffering when they are not.
  double quiet_after_s = 2.0;
  double prior_vibration = 4.0;
  double prior_tau_s = 10.0;

  std::size_t window_samples() const noexcept {
    const double n = window_s * sample_rate_hz;
    return n < 1.0 ? 1 : static_cast<std::size_t>(n);
  }
};

/// Streaming vibration-level estimator.
///
/// Push raw samples as they arrive; `level()` returns the current vibration
/// level over the trailing window. O(1) per sample.
class VibrationEstimator {
 public:
  explicit VibrationEstimator(VibrationConfig config = {});

  /// Consumes one raw sample and returns the updated level. Samples with any
  /// non-finite axis are rejected without touching the filter state (a single
  /// NaN would otherwise poison the trailing RMS window for a full
  /// window_samples() updates); rejected samples are counted but return the
  /// unchanged level.
  double update(const AccelSample& sample);

  /// Current vibration level (m/s^2). 0 before any sample.
  double level() const noexcept;

  /// Level with staleness decay: the raw `level()` while the stream is fresh
  /// (age within quiet_after_s of the last *valid* sample), decaying toward
  /// config().prior_vibration as the stream stays quiet. Returns the prior
  /// outright if no valid sample was ever consumed. Always finite.
  double level_at(double now_s) const noexcept;

  /// Number of samples consumed (valid or not).
  std::size_t samples_seen() const noexcept { return samples_seen_; }

  /// Number of samples rejected for non-finite components.
  std::size_t rejected_samples() const noexcept { return rejected_samples_; }

  const VibrationConfig& config() const noexcept { return config_; }

  void reset();

 private:
  VibrationConfig config_;
  eacs::HighPassFilter highpass_;
  eacs::MovingRms rms_;
  std::size_t samples_seen_ = 0;
  std::size_t rejected_samples_ = 0;
  double last_valid_t_s_ = 0.0;
  bool have_valid_ = false;
};

/// Batch helper: vibration level over the trailing window of a whole trace.
double vibration_level(std::span<const AccelSample> trace, VibrationConfig config = {});

/// Batch helper: mean vibration level over the full trace, computed by
/// streaming the estimator across it and averaging the per-sample levels once
/// the window is primed. This is the statistic reported in Table V's
/// "Avg. vibration" column.
double mean_vibration_level(std::span<const AccelSample> trace,
                            VibrationConfig config = {});

}  // namespace eacs::sensors
