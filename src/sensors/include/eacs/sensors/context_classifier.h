#pragma once
// Context classification from accelerometer features (extension).
//
// The paper's system distinguishes contexts by the continuous vibration
// level; many deployments additionally want a discrete label ("is the user
// on a vehicle?") e.g. to gate the context-aware policy or annotate
// analytics. This classifier computes three windowed features on the
// gravity-removed acceleration magnitude —
//   * RMS level (overall vibration energy),
//   * dominant frequency (Goertzel scan: walking cadence ~1.5-2.5 Hz vs.
//     road/engine harmonics spread over 1-20 Hz),
//   * spectral spread (walking is narrowband, vehicles broadband)
// — and applies calibrated thresholds.

#include <cstddef>
#include <span>

#include "eacs/sensors/accel.h"

namespace eacs::sensors {

/// Discrete context label.
enum class Context { kStatic, kWalking, kVehicle };

const char* to_string(Context context) noexcept;

/// Windowed features of the gravity-removed acceleration magnitude.
struct MotionFeatures {
  double rms = 0.0;            ///< m/s^2
  double dominant_hz = 0.0;    ///< frequency of max spectral energy
  double spectral_spread = 0.0;  ///< energy-weighted std around dominant_hz
};

/// Classifier configuration (thresholds calibrated against the synthetic
/// generators; adjust for real hardware).
struct ClassifierConfig {
  double sample_rate_hz = 50.0;
  double highpass_cutoff_hz = 0.5;
  double static_rms = 0.25;       ///< below: static
  double walk_min_hz = 1.2;       ///< walking cadence band
  double walk_max_hz = 2.8;
  double walk_max_spread_hz = 1.8;  ///< walking is narrowband
  double scan_max_hz = 20.0;      ///< Goertzel scan ceiling
  double scan_step_hz = 0.1;
};

/// Computes the windowed features over a trace slice.
MotionFeatures compute_motion_features(std::span<const AccelSample> window,
                                       const ClassifierConfig& config = {});

/// Classifies one window of samples.
Context classify_window(std::span<const AccelSample> window,
                        const ClassifierConfig& config = {});

/// Goertzel single-bin spectral power of a real signal at `freq_hz`.
double goertzel_power(std::span<const double> samples, double freq_hz,
                      double sample_rate_hz);

}  // namespace eacs::sensors
