#include "eacs/media/mpd.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace eacs::media {
namespace {

constexpr const char* kProfile = "urn:mpeg:dash:profile:isoff-on-demand:2011";

/// Pixel dimensions for the named rungs of the paper's ladder.
struct NamedResolution {
  const char* name;
  int width;
  int height;
};
constexpr NamedResolution kResolutions[] = {
    {"144p", 256, 144},  {"240p", 426, 240},  {"360p", 640, 360},
    {"480p", 854, 480},  {"720p", 1280, 720}, {"1080p", 1920, 1080},
};

const NamedResolution* lookup_resolution(const std::string& name) {
  for (const auto& resolution : kResolutions) {
    if (name == resolution.name) return &resolution;
  }
  return nullptr;
}

std::string resolution_name_for(int height) {
  const std::string candidate = std::to_string(height) + "p";
  return lookup_resolution(candidate) ? candidate : std::string{};
}

std::string format_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

}  // namespace

std::string iso8601_duration(double seconds) {
  if (seconds < 0.0) throw std::invalid_argument("iso8601_duration: negative");
  return "PT" + format_number(seconds) + "S";
}

double parse_iso8601_duration(std::string_view text) {
  if (text.substr(0, 2) != "PT") {
    throw std::runtime_error("parse_iso8601_duration: expected 'PT' prefix in '" +
                             std::string(text) + "'");
  }
  double total = 0.0;
  std::size_t pos = 2;
  bool any_component = false;
  while (pos < text.size()) {
    std::size_t digits_end = pos;
    while (digits_end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[digits_end])) ||
            text[digits_end] == '.')) {
      ++digits_end;
    }
    if (digits_end == pos || digits_end >= text.size()) {
      throw std::runtime_error("parse_iso8601_duration: malformed '" +
                               std::string(text) + "'");
    }
    const double value = std::stod(std::string(text.substr(pos, digits_end - pos)));
    const char unit = text[digits_end];
    switch (unit) {
      case 'H': total += value * 3600.0; break;
      case 'M': total += value * 60.0; break;
      case 'S': total += value; break;
      default:
        throw std::runtime_error("parse_iso8601_duration: unknown unit in '" +
                                 std::string(text) + "'");
    }
    any_component = true;
    pos = digits_end + 1;
  }
  if (!any_component) {
    throw std::runtime_error("parse_iso8601_duration: no components in '" +
                             std::string(text) + "'");
  }
  return total;
}

eacs::XmlNode to_mpd_tree(const VideoManifest& manifest) {
  eacs::XmlNode mpd("MPD");
  mpd.set_attribute("xmlns", "urn:mpeg:dash:schema:mpd:2011");
  mpd.set_attribute("type", "static");
  mpd.set_attribute("profiles", kProfile);
  mpd.set_attribute("mediaPresentationDuration",
                    iso8601_duration(manifest.total_duration_s()));
  if (manifest.vbr().amplitude > 0.0) {
    mpd.set_attribute("eacs:vbrAmplitude", format_number(manifest.vbr().amplitude));
  }
  mpd.set_attribute("eacs:videoId", manifest.video_id());

  // DASH multi-CDN delivery: one <BaseURL> per candidate origin, in priority
  // order, before the <Period> (ISO/IEC 23009-1 §5.6).
  for (const std::string& url : manifest.base_urls()) {
    mpd.add_child("BaseURL").set_text(url);
  }

  auto& period = mpd.add_child("Period");
  period.set_attribute("id", "0");
  period.set_attribute("duration", iso8601_duration(manifest.total_duration_s()));

  auto& adaptation = period.add_child("AdaptationSet");
  adaptation.set_attribute("contentType", "video");
  adaptation.set_attribute("mimeType", "video/mp4");
  adaptation.set_attribute("segmentAlignment", "true");

  auto& segment_template = adaptation.add_child("SegmentTemplate");
  constexpr long long kTimescale = 1000000;  // microseconds: sub-ppm rounding
  segment_template.set_attribute("timescale", std::to_string(kTimescale));
  segment_template.set_attribute(
      "duration",
      std::to_string(static_cast<long long>(
          std::llround(manifest.segment_duration_s() * kTimescale))));
  segment_template.set_attribute("media", "segment-$RepresentationID$-$Number$.m4s");
  segment_template.set_attribute("startNumber", "0");

  const auto& ladder = manifest.ladder();
  for (std::size_t level = 0; level < ladder.size(); ++level) {
    auto& representation = adaptation.add_child("Representation");
    representation.set_attribute("id", "r" + std::to_string(level));
    representation.set_attribute(
        "bandwidth",
        std::to_string(static_cast<long long>(
            std::llround(ladder.bitrate(level) * 1e6))));
    if (const auto* resolution = lookup_resolution(ladder.rung(level).resolution)) {
      representation.set_attribute("width", std::to_string(resolution->width));
      representation.set_attribute("height", std::to_string(resolution->height));
    }
  }
  return mpd;
}

std::string to_mpd_xml(const VideoManifest& manifest) {
  return eacs::to_xml(to_mpd_tree(manifest));
}

VideoManifest from_mpd_xml(std::string_view xml_text) {
  const eacs::XmlNode mpd = eacs::parse_xml(xml_text);
  if (mpd.name() != "MPD") {
    throw std::runtime_error("from_mpd_xml: root element is <" + mpd.name() +
                             ">, expected <MPD>");
  }
  const double total_duration =
      parse_iso8601_duration(mpd.required_attribute("mediaPresentationDuration"));

  const eacs::XmlNode& period = mpd.required_child("Period");
  const eacs::XmlNode& adaptation = period.required_child("AdaptationSet");
  const eacs::XmlNode& segment_template = adaptation.required_child("SegmentTemplate");

  const double timescale =
      segment_template.attribute("timescale")
          ? segment_template.attribute_as_double("timescale")
          : 1.0;
  const double segment_duration =
      segment_template.attribute_as_double("duration") / timescale;

  std::vector<BitrateRung> rungs;
  for (const eacs::XmlNode* representation : adaptation.find_children("Representation")) {
    BitrateRung rung;
    rung.bitrate_mbps = representation->attribute_as_double("bandwidth") / 1e6;
    if (representation->attribute("height")) {
      rung.resolution = resolution_name_for(
          static_cast<int>(representation->attribute_as_int("height")));
    }
    rungs.push_back(std::move(rung));
  }
  if (rungs.empty()) {
    throw std::runtime_error("from_mpd_xml: no <Representation> elements");
  }

  VbrModel vbr;
  if (mpd.attribute("eacs:vbrAmplitude")) {
    vbr.amplitude = mpd.attribute_as_double("eacs:vbrAmplitude");
  }
  const std::string video_id =
      mpd.attribute("eacs:videoId").value_or("imported-mpd");

  std::vector<std::string> base_urls;
  for (const eacs::XmlNode* base_url : mpd.find_children("BaseURL")) {
    base_urls.push_back(base_url->text());
  }

  VideoManifest manifest(video_id, total_duration, segment_duration,
                         BitrateLadder(std::move(rungs)), vbr);
  manifest.set_base_urls(std::move(base_urls));
  return manifest;
}

}  // namespace eacs::media
