#include "eacs/media/frames.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::media {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::uint8_t to_pixel(double value) noexcept {
  return static_cast<std::uint8_t>(std::clamp(value, 0.0, 255.0));
}

}  // namespace

Frame::Frame(std::size_t width, std::size_t height)
    : width_(width), height_(height), pixels_(width * height, 0) {
  if (width == 0 || height == 0) throw std::invalid_argument("Frame: empty dimensions");
}

FrameGenerator::FrameGenerator(std::size_t width, std::size_t height,
                               ContentProfile profile)
    : width_(width), height_(height), profile_(profile), rng_(profile.seed) {
  if (profile_.spatial_detail < 0.0 || profile_.spatial_detail > 1.0 ||
      profile_.motion < 0.0 || profile_.motion > 1.0) {
    throw std::invalid_argument("FrameGenerator: knobs must be in [0, 1]");
  }
  // A bank of oriented sinusoids. Higher spatial_detail adds higher spatial
  // frequencies (larger gradients => larger Sobel response => larger SI).
  // Frequencies, orientations and amplitudes are deterministic functions of
  // the knob so the measured SI is monotone in spatial_detail; only the
  // phases carry the content seed (two videos with equal knobs still look
  // different without measuring differently).
  const std::size_t num_waves = 4 + static_cast<std::size_t>(profile_.spatial_detail * 8);
  const double max_freq = 0.04 + 0.26 * profile_.spatial_detail;  // cycles/pixel
  waves_.reserve(num_waves);
  for (std::size_t i = 0; i < num_waves; ++i) {
    const double position =
        num_waves > 1 ? static_cast<double>(i) / static_cast<double>(num_waves - 1)
                      : 1.0;
    const double freq = max_freq * (0.35 + 0.65 * position);
    const double angle = kPi * (0.1 + 0.8 * position);  // spread orientations
    Wave wave;
    wave.fx = 2.0 * kPi * freq * std::cos(angle);
    wave.fy = 2.0 * kPi * freq * std::sin(angle);
    wave.phase = rng_.uniform(0.0, 2.0 * kPi);
    wave.amplitude =
        (30.0 + 40.0 * profile_.spatial_detail) / static_cast<double>(num_waves);
    waves_.push_back(wave);
  }
}

Frame FrameGenerator::next() {
  Frame frame(width_, height_);
  // Motion: global pan of the texture plus per-frame scintillation noise.
  const double displacement = 6.0 * profile_.motion * static_cast<double>(frame_index_);
  const double scintillation = 18.0 * profile_.motion;
  for (std::size_t y = 0; y < height_; ++y) {
    for (std::size_t x = 0; x < width_; ++x) {
      double value = 128.0;
      const double px = static_cast<double>(x) + displacement;
      const double py = static_cast<double>(y) + 0.5 * displacement;
      for (const Wave& wave : waves_) {
        value += wave.amplitude * std::sin(wave.fx * px + wave.fy * py + wave.phase);
      }
      if (scintillation > 0.0) value += rng_.normal(0.0, scintillation);
      frame.set(x, y, to_pixel(value));
    }
  }
  ++frame_index_;
  return frame;
}

std::vector<Frame> FrameGenerator::generate(std::size_t count) {
  std::vector<Frame> frames;
  frames.reserve(count);
  for (std::size_t i = 0; i < count; ++i) frames.push_back(next());
  return frames;
}

}  // namespace eacs::media
