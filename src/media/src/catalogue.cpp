#include "eacs/media/catalogue.h"

#include <stdexcept>

namespace eacs::media {

const std::vector<TestVideo>& test_videos() {
  // spatial_detail / motion knobs are ordered to reproduce the Fig. 2(a)
  // layout: speech-like content bottom-left (low SI, low TI), sports and
  // horseracing top-right (high SI, high TI).
  static const std::vector<TestVideo> videos = {
      {"Speech", "Speech on TV", {0.18, 0.05, 101}, 30.0, 2.0},
      {"Show", "Allen show", {0.30, 0.15, 102}, 36.0, 5.0},
      {"Doc", "Documentary", {0.40, 0.24, 103}, 40.0, 8.0},
      {"BBB", "Big Buck Bunny (animation)", {0.45, 0.32, 104}, 42.0, 10.0},
      {"Sintel", "Sintel (movie)", {0.52, 0.38, 105}, 45.0, 12.0},
      {"Yacht", "Moving yacht", {0.55, 0.48, 106}, 48.0, 15.0},
      {"Matrix", "A fight scene in The Matrix (movie)", {0.66, 0.56, 107}, 50.0, 18.0},
      {"Basketball", "Sport", {0.70, 0.78, 108}, 52.0, 25.0},
      {"Battle", "A battle scene in The Hobbit (movie)", {0.86, 0.66, 109}, 55.0, 22.0},
      {"Goodwood", "Horseracing", {0.88, 0.90, 110}, 58.0, 28.0},
  };
  return videos;
}

const std::vector<SessionSpec>& evaluation_sessions() {
  static const std::vector<SessionSpec> sessions = [] {
    std::vector<SessionSpec> list = {
        {1, 198.0, 65.1, 6.83, false, 0},
        {2, 371.0, 123.8, 2.46, false, 0},
        {3, 449.0, 140.6, 6.61, false, 0},
        {4, 498.0, 152.2, 6.41, false, 0},
        {5, 612.0, 173.1, 5.23, false, 0},
    };
    for (auto& session : list) {
      session.on_vehicle = session.avg_vibration >= 4.0;
      session.seed = 0x5EED'0000ULL + static_cast<std::uint64_t>(session.id);
    }
    return list;
  }();
  return sessions;
}

const TestVideo& test_video(const std::string& name) {
  for (const auto& video : test_videos()) {
    if (video.name == name) return video;
  }
  throw std::out_of_range("test_video: unknown video '" + name + "'");
}

}  // namespace eacs::media
