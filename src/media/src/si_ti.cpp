#include "eacs/media/si_ti.h"

#include <cmath>
#include <stdexcept>

#include "eacs/util/stats.h"

namespace eacs::media {

std::vector<double> sobel_magnitude(const Frame& frame) {
  const std::size_t w = frame.width();
  const std::size_t h = frame.height();
  if (w < 3 || h < 3) throw std::invalid_argument("sobel_magnitude: frame too small");
  std::vector<double> out;
  out.reserve((w - 2) * (h - 2));
  for (std::size_t y = 1; y + 1 < h; ++y) {
    for (std::size_t x = 1; x + 1 < w; ++x) {
      const auto p = [&](std::size_t dx, std::size_t dy) {
        return static_cast<double>(frame.at(x + dx - 1, y + dy - 1));
      };
      const double gx = (p(2, 0) + 2.0 * p(2, 1) + p(2, 2)) -
                        (p(0, 0) + 2.0 * p(0, 1) + p(0, 2));
      const double gy = (p(0, 2) + 2.0 * p(1, 2) + p(2, 2)) -
                        (p(0, 0) + 2.0 * p(1, 0) + p(2, 0));
      out.push_back(std::sqrt(gx * gx + gy * gy));
    }
  }
  return out;
}

double spatial_information(const Frame& frame) {
  const auto gradient = sobel_magnitude(frame);
  return stddev(gradient);
}

double temporal_information(const Frame& current, const Frame& previous) {
  if (current.width() != previous.width() || current.height() != previous.height()) {
    throw std::invalid_argument("temporal_information: dimension mismatch");
  }
  std::vector<double> diff;
  diff.reserve(current.pixels().size());
  for (std::size_t i = 0; i < current.pixels().size(); ++i) {
    diff.push_back(static_cast<double>(current.pixels()[i]) -
                   static_cast<double>(previous.pixels()[i]));
  }
  return stddev(diff);
}

SiTiResult analyze_si_ti(std::span<const Frame> frames) {
  SiTiResult result;
  if (frames.empty()) return result;
  RunningStats si_stats;
  RunningStats ti_stats;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    si_stats.add(spatial_information(frames[i]));
    if (i > 0) ti_stats.add(temporal_information(frames[i], frames[i - 1]));
  }
  result.si = si_stats.max();
  result.si_mean = si_stats.mean();
  result.ti = ti_stats.count() > 0 ? ti_stats.max() : 0.0;
  result.ti_mean = ti_stats.mean();
  return result;
}

}  // namespace eacs::media
