#include "eacs/media/manifest.h"

#include <cmath>
#include <stdexcept>

namespace eacs::media {
namespace {

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace

double VbrModel::waveform(std::uint64_t video_hash, std::size_t segment_index) noexcept {
  // Two incommensurate sinusoids seeded by the video hash: smooth across
  // neighbouring segments (scene complexity is correlated in time) yet
  // deterministic and cheap.
  const double phase = static_cast<double>(video_hash % 1000003ULL);
  const double t = static_cast<double>(segment_index);
  return 0.6 * std::sin(0.37 * t + phase) + 0.4 * std::sin(0.113 * t + 2.0 * phase);
}

VideoManifest::VideoManifest(std::string video_id, double total_duration_s,
                             double segment_duration_s, BitrateLadder ladder,
                             VbrModel vbr)
    : video_id_(std::move(video_id)),
      total_duration_s_(total_duration_s),
      segment_duration_s_(segment_duration_s),
      ladder_(std::move(ladder)),
      vbr_(vbr),
      num_segments_(0),
      video_hash_(fnv1a(video_id_)) {
  if (total_duration_s_ <= 0.0 || segment_duration_s_ <= 0.0) {
    throw std::invalid_argument("VideoManifest: durations must be positive");
  }
  if (vbr_.amplitude < 0.0 || vbr_.amplitude >= 1.0) {
    throw std::invalid_argument("VideoManifest: vbr amplitude must be in [0, 1)");
  }
  num_segments_ = static_cast<std::size_t>(
      std::ceil(total_duration_s_ / segment_duration_s_ - 1e-9));
}

double VideoManifest::segment_duration(std::size_t index) const {
  if (index >= num_segments_) throw std::out_of_range("VideoManifest: segment index");
  const double start = static_cast<double>(index) * segment_duration_s_;
  return std::min(segment_duration_s_, total_duration_s_ - start);
}

double VideoManifest::segment_size_megabits(std::size_t index, std::size_t level) const {
  const double nominal = ladder_.bitrate(level) * segment_duration(index);
  const double factor = 1.0 + vbr_.amplitude * VbrModel::waveform(video_hash_, index);
  return nominal * factor;
}

Segment VideoManifest::segment(std::size_t index, std::size_t level) const {
  Segment out;
  out.index = index;
  out.level = level;
  out.duration_s = segment_duration(index);
  out.bitrate_mbps = ladder_.bitrate(level);
  out.size_megabits = segment_size_megabits(index, level);
  return out;
}

double VideoManifest::total_size_megabytes(std::size_t level) const {
  double megabits = 0.0;
  for (std::size_t i = 0; i < num_segments_; ++i) {
    megabits += segment_size_megabits(i, level);
  }
  return megabits / 8.0;
}

}  // namespace eacs::media
