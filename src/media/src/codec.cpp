#include "eacs/media/codec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::media {
namespace {

constexpr struct {
  const char* name;
  std::size_t width;
  std::size_t height;
} kNamed[] = {
    {"144p", 256, 144},  {"240p", 426, 240},  {"360p", 640, 360},
    {"480p", 854, 480},  {"720p", 1280, 720}, {"1080p", 1920, 1080},
};

std::uint8_t clamp_pixel(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

}  // namespace

Frame downsample(const Frame& source, std::size_t width, std::size_t height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("downsample: empty target");
  }
  Frame out(width, height);
  const double sx = static_cast<double>(source.width()) / static_cast<double>(width);
  const double sy = static_cast<double>(source.height()) / static_cast<double>(height);
  for (std::size_t y = 0; y < height; ++y) {
    const auto y0 = static_cast<std::size_t>(static_cast<double>(y) * sy);
    const auto y1 = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::ceil(static_cast<double>(y + 1) * sy)), y0 + 1,
        source.height());
    for (std::size_t x = 0; x < width; ++x) {
      const auto x0 = static_cast<std::size_t>(static_cast<double>(x) * sx);
      const auto x1 = std::clamp<std::size_t>(
          static_cast<std::size_t>(std::ceil(static_cast<double>(x + 1) * sx)), x0 + 1,
          source.width());
      double sum = 0.0;
      std::size_t count = 0;
      for (std::size_t yy = y0; yy < y1; ++yy) {
        for (std::size_t xx = x0; xx < x1; ++xx) {
          sum += source.at(xx, yy);
          ++count;
        }
      }
      out.set(x, y, clamp_pixel(count > 0 ? sum / static_cast<double>(count) : 0.0));
    }
  }
  return out;
}

Frame upsample(const Frame& source, std::size_t width, std::size_t height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("upsample: empty target");
  }
  Frame out(width, height);
  const double sx =
      static_cast<double>(source.width() - 1) / std::max<std::size_t>(1, width - 1);
  const double sy =
      static_cast<double>(source.height() - 1) / std::max<std::size_t>(1, height - 1);
  for (std::size_t y = 0; y < height; ++y) {
    const double fy = static_cast<double>(y) * sy;
    const auto y0 = static_cast<std::size_t>(fy);
    const std::size_t y1 = std::min(y0 + 1, source.height() - 1);
    const double wy = fy - static_cast<double>(y0);
    for (std::size_t x = 0; x < width; ++x) {
      const double fx = static_cast<double>(x) * sx;
      const auto x0 = static_cast<std::size_t>(fx);
      const std::size_t x1 = std::min(x0 + 1, source.width() - 1);
      const double wx = fx - static_cast<double>(x0);
      const double top = (1.0 - wx) * source.at(x0, y0) + wx * source.at(x1, y0);
      const double bottom = (1.0 - wx) * source.at(x0, y1) + wx * source.at(x1, y1);
      out.set(x, y, clamp_pixel((1.0 - wy) * top + wy * bottom));
    }
  }
  return out;
}

Frame quantize(const Frame& source, double step) {
  if (step < 1.0) throw std::invalid_argument("quantize: step must be >= 1");
  Frame out(source.width(), source.height());
  for (std::size_t y = 0; y < source.height(); ++y) {
    for (std::size_t x = 0; x < source.width(); ++x) {
      const double quantized =
          std::round(static_cast<double>(source.at(x, y)) / step) * step;
      out.set(x, y, clamp_pixel(quantized));
    }
  }
  return out;
}

PixelSize rung_pixels(const BitrateRung& rung) {
  for (const auto& named : kNamed) {
    if (rung.resolution == named.name) return {named.width, named.height};
  }
  // Unnamed rung: interpolate area from bitrate assuming constant bpp at
  // 30 fps relative to 1080p @ 5.8 Mbps, preserving 16:9.
  const double area_ratio = rung.bitrate_mbps / 5.8;
  const double height = std::clamp(1080.0 * std::sqrt(area_ratio), 72.0, 2160.0);
  const double width = height * 16.0 / 9.0;
  return {static_cast<std::size_t>(width), static_cast<std::size_t>(height)};
}

Frame simulate_encode(const Frame& source, const BitrateRung& rung,
                      const CodecConfig& config) {
  const PixelSize pixels = rung_pixels(rung);
  const auto scaled_w = std::max<std::size_t>(
      4, static_cast<std::size_t>(static_cast<double>(pixels.width) *
                                  config.resolution_scale));
  const auto scaled_h = std::max<std::size_t>(
      4, static_cast<std::size_t>(static_cast<double>(pixels.height) *
                                  config.resolution_scale));
  // Never "encode" above the source resolution.
  const std::size_t encode_w = std::min(scaled_w, source.width());
  const std::size_t encode_h = std::min(scaled_h, source.height());
  Frame encoded = downsample(source, encode_w, encode_h);

  // Quantisation driven by bits/pixel at the rung's own resolution.
  const double bpp =
      rung.bitrate_mbps * 1e6 /
      (static_cast<double>(pixels.width * pixels.height) * config.fps);
  const double step = std::clamp(
      config.base_quant_step * config.reference_bpp / std::max(1e-6, bpp), 1.0, 64.0);
  encoded = quantize(encoded, step);

  return upsample(encoded, source.width(), source.height());
}

double psnr(const Frame& reference, const Frame& distorted) {
  if (reference.width() != distorted.width() ||
      reference.height() != distorted.height()) {
    throw std::invalid_argument("psnr: dimension mismatch");
  }
  double mse = 0.0;
  const auto& a = reference.pixels();
  const auto& b = distorted.pixels();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(a.size());
  if (mse <= 1e-12) return 100.0;
  return std::min(100.0, 10.0 * std::log10(255.0 * 255.0 / mse));
}

double ssim(const Frame& reference, const Frame& distorted) {
  if (reference.width() != distorted.width() ||
      reference.height() != distorted.height()) {
    throw std::invalid_argument("ssim: dimension mismatch");
  }
  const auto& a = reference.pixels();
  const auto& b = distorted.pixels();
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double var_a = 0.0;
  double var_b = 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    var_a += da * da;
    var_b += db * db;
    cov += da * db;
  }
  var_a /= n;
  var_b /= n;
  cov /= n;
  constexpr double kC1 = (0.01 * 255.0) * (0.01 * 255.0);
  constexpr double kC2 = (0.03 * 255.0) * (0.03 * 255.0);
  return ((2.0 * mean_a * mean_b + kC1) * (2.0 * cov + kC2)) /
         ((mean_a * mean_a + mean_b * mean_b + kC1) * (var_a + var_b + kC2));
}

}  // namespace eacs::media
