#include "eacs/media/bitrate_ladder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::media {
namespace {

constexpr double kBitrateEpsilon = 1e-9;

}  // namespace

BitrateLadder::BitrateLadder(std::vector<BitrateRung> rungs) : rungs_(std::move(rungs)) {
  if (rungs_.empty()) throw std::invalid_argument("BitrateLadder: empty ladder");
  std::sort(rungs_.begin(), rungs_.end(),
            [](const BitrateRung& a, const BitrateRung& b) {
              return a.bitrate_mbps < b.bitrate_mbps;
            });
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    if (rungs_[i].bitrate_mbps <= 0.0) {
      throw std::invalid_argument("BitrateLadder: non-positive bitrate");
    }
    if (i > 0 &&
        rungs_[i].bitrate_mbps - rungs_[i - 1].bitrate_mbps < kBitrateEpsilon) {
      throw std::invalid_argument("BitrateLadder: duplicate bitrate");
    }
  }
}

std::vector<double> BitrateLadder::bitrates() const {
  std::vector<double> out;
  out.reserve(rungs_.size());
  for (const auto& rung : rungs_) out.push_back(rung.bitrate_mbps);
  return out;
}

std::optional<std::size_t> BitrateLadder::level_of(double bitrate_mbps) const noexcept {
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    if (std::fabs(rungs_[i].bitrate_mbps - bitrate_mbps) < 1e-6) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> BitrateLadder::highest_level_not_above(
    double cap_mbps) const noexcept {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    if (rungs_[i].bitrate_mbps <= cap_mbps + kBitrateEpsilon) best = i;
  }
  return best;
}

std::optional<std::size_t> BitrateLadder::highest_level_below(
    double cap_mbps) const noexcept {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < rungs_.size(); ++i) {
    if (rungs_[i].bitrate_mbps < cap_mbps - kBitrateEpsilon) best = i;
  }
  return best;
}

std::size_t BitrateLadder::clamp_level(long long level) const noexcept {
  if (level < 0) return 0;
  const auto max_level = static_cast<long long>(rungs_.size()) - 1;
  return static_cast<std::size_t>(std::min(level, max_level));
}

BitrateLadder BitrateLadder::table2() {
  return BitrateLadder({
      {0.10, "144p"},
      {0.375, "240p"},
      {0.75, "360p"},
      {1.50, "480p"},
      {3.00, "720p"},
      {5.80, "1080p"},
  });
}

BitrateLadder BitrateLadder::evaluation14() {
  return BitrateLadder({
      {0.10, "144p"},
      {0.20, ""},
      {0.24, ""},
      {0.375, "240p"},
      {0.55, ""},
      {0.75, "360p"},
      {1.00, ""},
      {1.50, "480p"},
      {2.30, ""},
      {2.56, ""},
      {3.00, "720p"},
      {3.60, ""},
      {4.30, ""},
      {5.80, "1080p"},
  });
}

}  // namespace eacs::media
