#pragma once
// ITU-T P.910 spatial / temporal information measures.
//
// SI = max over frames of stddev_space(Sobel(F_n))
// TI = max over frames of stddev_space(F_n - F_{n-1})
//
// These are the exact definitions in Recommendation P.910 §7.7; the paper
// uses them to characterise its test videos (Fig. 2(a)).

#include <span>
#include <vector>

#include "eacs/media/frames.h"

namespace eacs::media {

/// Result of a P.910 analysis over a frame sequence.
struct SiTiResult {
  double si = 0.0;       ///< spatial information (max over frames)
  double ti = 0.0;       ///< temporal information (max over frame pairs)
  double si_mean = 0.0;  ///< mean across frames, useful for stable plots
  double ti_mean = 0.0;
};

/// Sobel gradient magnitude image of a frame (borders excluded, i.e. the
/// result covers (width-2) x (height-2) interior pixels).
std::vector<double> sobel_magnitude(const Frame& frame);

/// Spatial information of a single frame: stddev of its Sobel magnitude.
double spatial_information(const Frame& frame);

/// Temporal information of a frame pair: stddev of the pixel difference.
/// Throws std::invalid_argument if dimensions differ.
double temporal_information(const Frame& current, const Frame& previous);

/// Full P.910 analysis. Requires at least 2 frames for TI (TI = 0 otherwise).
SiTiResult analyze_si_ti(std::span<const Frame> frames);

}  // namespace eacs::media
