#pragma once
// Synthetic luma-frame generator.
//
// The paper characterises its 10-video dataset by ITU-T P.910 spatial
// information (SI) and temporal information (TI) (Fig. 2(a)). We have no
// YouTube videos offline, so each catalogue entry carries (spatial_detail,
// motion) knobs, the generator synthesises 8-bit luma frames from them, and
// the P.910 calculator in si_ti.h measures real SI/TI on those frames — the
// full measurement path exists and is testable.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eacs/util/rng.h"

namespace eacs::media {

/// A single 8-bit luma frame.
class Frame {
 public:
  Frame(std::size_t width, std::size_t height);

  std::size_t width() const noexcept { return width_; }
  std::size_t height() const noexcept { return height_; }

  std::uint8_t at(std::size_t x, std::size_t y) const {
    return pixels_[y * width_ + x];
  }
  void set(std::size_t x, std::size_t y, std::uint8_t value) {
    pixels_[y * width_ + x] = value;
  }

  const std::vector<std::uint8_t>& pixels() const noexcept { return pixels_; }

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<std::uint8_t> pixels_;
};

/// Content knobs for the synthesiser.
struct ContentProfile {
  double spatial_detail = 0.5;  ///< in [0,1]: texture energy / edge density
  double motion = 0.5;          ///< in [0,1]: inter-frame displacement & churn
  std::uint64_t seed = 1;       ///< content identity
};

/// Generates frames whose measured SI grows with `spatial_detail` and whose
/// measured TI grows with `motion`.
///
/// Construction: a static band-limited texture (sum of oriented sinusoids
/// with detail-controlled spatial frequency and amplitude) that pans by a
/// motion-controlled displacement per frame, plus motion-controlled temporal
/// scintillation noise.
class FrameGenerator {
 public:
  FrameGenerator(std::size_t width, std::size_t height, ContentProfile profile);

  /// Produces the next frame in the sequence.
  Frame next();

  /// Convenience: generate `count` consecutive frames.
  std::vector<Frame> generate(std::size_t count);

 private:
  std::size_t width_;
  std::size_t height_;
  ContentProfile profile_;
  eacs::Rng rng_;
  std::size_t frame_index_ = 0;
  struct Wave {
    double fx, fy, phase, amplitude;
  };
  std::vector<Wave> waves_;
};

}  // namespace eacs::media
