#pragma once
// DASH bitrate ladders.
//
// Two ladders appear in the paper:
//  * Table II's 6-rung subjective-study ladder (144p..1080p);
//  * the 14-rung evaluation ladder used in Section V's simulations:
//    {0.1, 0.2, 0.24, 0.375, 0.55, 0.75, 1.0, 1.5, 2.3, 2.56, 3.0, 3.6,
//     4.3, 5.8} Mbps.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace eacs::media {

/// One rung of a bitrate ladder.
struct BitrateRung {
  double bitrate_mbps = 0.0;
  std::string resolution;  ///< e.g. "1080p"; empty when the rung has no named
                           ///< resolution (intermediate evaluation rungs)
};

/// Ordered (ascending) set of available bitrates for a DASH stream.
class BitrateLadder {
 public:
  /// Builds a ladder from rungs; sorts ascending and rejects duplicates and
  /// non-positive bitrates (throws std::invalid_argument).
  explicit BitrateLadder(std::vector<BitrateRung> rungs);

  std::size_t size() const noexcept { return rungs_.size(); }
  const BitrateRung& rung(std::size_t level) const { return rungs_.at(level); }
  double bitrate(std::size_t level) const { return rungs_.at(level).bitrate_mbps; }

  std::size_t lowest_level() const noexcept { return 0; }
  std::size_t highest_level() const noexcept { return rungs_.size() - 1; }
  double lowest_bitrate() const { return rungs_.front().bitrate_mbps; }
  double highest_bitrate() const { return rungs_.back().bitrate_mbps; }

  /// All bitrates, ascending.
  std::vector<double> bitrates() const;

  /// Level of the given bitrate if it is (approximately) on the ladder.
  std::optional<std::size_t> level_of(double bitrate_mbps) const noexcept;

  /// Highest level whose bitrate is <= the cap; nullopt when even the lowest
  /// rung exceeds the cap.
  std::optional<std::size_t> highest_level_not_above(double cap_mbps) const noexcept;

  /// Highest level whose bitrate is strictly below the cap (FESTIVE's rule);
  /// nullopt when the lowest rung is not below the cap.
  std::optional<std::size_t> highest_level_below(double cap_mbps) const noexcept;

  /// Clamps a level index into the valid range.
  std::size_t clamp_level(long long level) const noexcept;

  /// The paper's Table II ladder (144p..1080p, 0.1..5.8 Mbps).
  static BitrateLadder table2();

  /// The paper's 14-rate evaluation ladder (Section V-A).
  static BitrateLadder evaluation14();

 private:
  std::vector<BitrateRung> rungs_;
};

}  // namespace eacs::media
