#pragma once
// Encoder simulation and full-reference quality metrics (extension).
//
// The paper's q0(r) curve is *subjective* (rater MOS per ladder rung). This
// module grounds it objectively: simulate what encoding at a ladder rung
// does to a frame — downsample to the rung's resolution, quantize the luma
// (coarser at starved bitrates), upsample back to the display — and measure
// the damage with PSNR and SSIM. The resulting objective-quality-vs-bitrate
// curve should share q0's shape: steep at the bottom rungs, saturating at
// the top (bench_ext_codec checks the correlation).

#include <cstddef>

#include "eacs/media/bitrate_ladder.h"
#include "eacs/media/frames.h"

namespace eacs::media {

/// Encoder-simulation knobs.
struct CodecConfig {
  double fps = 30.0;
  /// Bits/pixel below which quantisation becomes visible; the paper's
  /// ladder keeps bpp roughly constant (~0.09), so resolution dominates.
  double reference_bpp = 0.09;
  /// Luma quantisation step at reference_bpp (doubles as bpp halves).
  double base_quant_step = 4.0;
  /// Uniformly scales the rungs' pixel dimensions, letting laptop-sized
  /// test frames stand in for a full display: with scale 0.25 a 480x270
  /// source plays the role of a 1080p-class display (1080p encodes at
  /// 480x270, 144p at 64x36). Quantisation still uses the real rung
  /// resolutions. 1.0 = true pixel dimensions.
  double resolution_scale = 1.0;
};

/// Box-filter downsample to (width, height).
Frame downsample(const Frame& source, std::size_t width, std::size_t height);

/// Bilinear upsample to (width, height).
Frame upsample(const Frame& source, std::size_t width, std::size_t height);

/// Uniform luma quantisation with the given step (>= 1 keeps the frame).
Frame quantize(const Frame& source, double step);

/// Pixel dimensions of a named ladder resolution ("720p" -> 1280x720).
/// Falls back to scaling from the bitrate when the rung is unnamed.
struct PixelSize {
  std::size_t width = 0;
  std::size_t height = 0;
};
PixelSize rung_pixels(const BitrateRung& rung);

/// Simulates encoding `source` at the given rung and decoding back to the
/// source's dimensions (the phone's display).
Frame simulate_encode(const Frame& source, const BitrateRung& rung,
                      const CodecConfig& config = {});

/// Peak signal-to-noise ratio in dB; identical frames return +100 dB (cap).
/// Throws std::invalid_argument on dimension mismatch.
double psnr(const Frame& reference, const Frame& distorted);

/// Structural similarity (global statistics variant, standard constants);
/// 1.0 for identical frames. Throws std::invalid_argument on mismatch.
double ssim(const Frame& reference, const Frame& distorted);

}  // namespace eacs::media
