#pragma once
// DASH-style video manifest: a fixed segment duration, a bitrate ladder and a
// per-segment size model. Mirrors the subset of an MPEG-DASH MPD that the
// bitrate-adaptation algorithms consume.

#include <cstddef>
#include <string>
#include <vector>

#include "eacs/media/bitrate_ladder.h"

namespace eacs::media {

/// A downloadable media segment at a specific bitrate level.
struct Segment {
  std::size_t index = 0;        ///< position in the stream, 0-based
  std::size_t level = 0;        ///< ladder level the segment is encoded at
  double duration_s = 0.0;      ///< playback duration in seconds
  double bitrate_mbps = 0.0;    ///< nominal encode bitrate
  double size_megabits = 0.0;   ///< actual size in megabits (VBR-adjusted)

  double size_megabytes() const noexcept { return size_megabits / 8.0; }
};

/// Per-segment encoder variability model.
///
/// Real encoders produce variable-bitrate segments: scene complexity makes a
/// nominal-R segment larger or smaller than R*duration. We model size as
/// nominal * (1 + vbr_amplitude * w(index)) where w is a deterministic smooth
/// pseudo-random waveform in [-1, 1] derived from (video id, segment index) —
/// so sizes are reproducible without storing them.
struct VbrModel {
  double amplitude = 0.0;  ///< 0 disables VBR (CBR sizes)

  /// Deterministic waveform value in [-1, 1].
  static double waveform(std::uint64_t video_hash, std::size_t segment_index) noexcept;
};

/// Immutable description of one adaptive stream.
class VideoManifest {
 public:
  /// Throws std::invalid_argument on non-positive durations.
  VideoManifest(std::string video_id, double total_duration_s, double segment_duration_s,
                BitrateLadder ladder, VbrModel vbr = {});

  const std::string& video_id() const noexcept { return video_id_; }

  /// Candidate delivery origins for every segment (MPD <BaseURL> elements,
  /// in document order — the first is the default origin). Empty when the
  /// manifest names a single implicit origin. Multi-source playback builds
  /// one net::SegmentSource per entry.
  const std::vector<std::string>& base_urls() const noexcept { return base_urls_; }
  void set_base_urls(std::vector<std::string> urls) { base_urls_ = std::move(urls); }
  double total_duration_s() const noexcept { return total_duration_s_; }
  double segment_duration_s() const noexcept { return segment_duration_s_; }
  const BitrateLadder& ladder() const noexcept { return ladder_; }
  const VbrModel& vbr() const noexcept { return vbr_; }

  /// Number of segments (last segment may be shorter than the nominal
  /// duration to cover the tail of the stream).
  std::size_t num_segments() const noexcept { return num_segments_; }

  /// Playback duration of segment `index`.
  double segment_duration(std::size_t index) const;

  /// Fully-described segment at (index, level). Throws std::out_of_range.
  Segment segment(std::size_t index, std::size_t level) const;

  /// Size in megabits of segment `index` at ladder level `level`.
  double segment_size_megabits(std::size_t index, std::size_t level) const;

  /// Total size in megabytes if every segment used `level`.
  double total_size_megabytes(std::size_t level) const;

 private:
  std::string video_id_;
  std::vector<std::string> base_urls_;
  double total_duration_s_;
  double segment_duration_s_;
  BitrateLadder ladder_;
  VbrModel vbr_;
  std::size_t num_segments_;
  std::uint64_t video_hash_;
};

}  // namespace eacs::media
