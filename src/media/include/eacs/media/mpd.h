#pragma once
// MPEG-DASH Media Presentation Description (MPD) serialisation.
//
// A VideoManifest round-trips through the MPD XML subset that real DASH
// players consume: one Period, one video AdaptationSet with SegmentTemplate
// timing, and one Representation per ladder rung. This makes the simulator's
// stream descriptions interchangeable with externally authored manifests
// (within the supported subset) and gives the repository a protocol-level
// artifact rather than an internal-only struct.
//
// Supported subset:
//   MPD @mediaPresentationDuration (ISO-8601 "PT...S"), @type="static",
//   @profiles; BaseURL (zero or more, MPD-level, in priority order — the
//   multi-CDN origin list that multi-source playback maps to one
//   net::SegmentSource each); Period; AdaptationSet @contentType="video";
//   SegmentTemplate @duration/@timescale; Representation @id/@bandwidth
//   (bits per second) /@width/@height (optional).
// Our VBR size model rides in a private attribute (eacs:vbrAmplitude) so
// that round-trips are lossless; foreign MPDs without it parse as CBR.

#include <string>

#include "eacs/media/manifest.h"
#include "eacs/util/xml.h"

namespace eacs::media {

/// Serialises a manifest to MPD XML text.
std::string to_mpd_xml(const VideoManifest& manifest);

/// Builds the MPD element tree (for callers that post-process the XML).
eacs::XmlNode to_mpd_tree(const VideoManifest& manifest);

/// Parses MPD XML into a VideoManifest.
/// Throws std::runtime_error when the document is malformed or uses
/// features outside the supported subset.
VideoManifest from_mpd_xml(std::string_view xml_text);

/// Formats seconds as an ISO-8601 duration ("PT123.5S").
std::string iso8601_duration(double seconds);

/// Parses the ISO-8601 duration subset "PT[nH][nM][n.nS]".
/// Throws std::runtime_error on malformed input.
double parse_iso8601_duration(std::string_view text);

}  // namespace eacs::media
