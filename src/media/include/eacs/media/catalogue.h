#pragma once
// The paper's video datasets.
//
//  * Table I — ten quality-assessment videos covering a wide SI/TI range
//    (speech, shows, documentary, animation, movies, sports).
//  * Table V — the five streaming sessions used in the trace-driven
//    evaluation (length, downloaded data size, average vibration level).
//
// Each Table I entry carries synthesiser knobs plus the approximate SI/TI
// coordinates read off Fig. 2(a) so tests/benches can verify that the
// measured P.910 values land in the right region and ordering.

#include <string>
#include <vector>

#include "eacs/media/frames.h"

namespace eacs::media {

/// One quality-assessment video (Table I).
struct TestVideo {
  std::string name;         ///< short name, e.g. "Matrix"
  std::string description;  ///< Table I explanation column
  ContentProfile profile;   ///< synthesiser knobs standing in for the content
  double target_si = 0.0;   ///< approximate Fig. 2(a) coordinate
  double target_ti = 0.0;
};

/// One evaluation streaming session (Table V).
struct SessionSpec {
  int id = 0;
  double length_s = 0.0;          ///< video length in seconds
  double data_size_mb = 0.0;      ///< total downloaded data (YouTube baseline)
  double avg_vibration = 0.0;     ///< mean vibration level, m/s^2
  bool on_vehicle = false;        ///< derived context flag (vibration >= 4)
  std::uint64_t seed = 0;         ///< deterministic trace seed
};

/// Table I: the ten test videos.
const std::vector<TestVideo>& test_videos();

/// Table V: the five evaluation sessions (lengths 198/371/449/498/612 s,
/// average vibration 6.83/2.46/6.61/6.41/5.23 m/s^2).
const std::vector<SessionSpec>& evaluation_sessions();

/// Looks up a test video by name; throws std::out_of_range when absent.
const TestVideo& test_video(const std::string& name);

}  // namespace eacs::media
