#pragma once
// Synthetic LTE downlink throughput trace generator.
//
// Substitutes for the paper's Tcpdump-derived throughput trace. Throughput is
// modelled as capacity(signal) * fading, where capacity is a smooth function
// of RSRP (halving roughly every 10 dB below -80 dBm, consistent with the
// paper's premise that weak signal both slows downloads and raises energy per
// byte) and fading is a lognormal mean-reverting multiplier capturing
// scheduler/load variation that the signal trace does not explain.

#include <cstdint>

#include "eacs/trace/time_series.h"
#include "eacs/util/rng.h"

namespace eacs::trace {

/// Parameters of the throughput process.
///
/// Defaults are calibrated so that a quiet-room session (~-85 dBm) sees
/// ~30 Mbps and a moving-vehicle session (~-105 dBm) ~9-11 Mbps — enough to
/// sustain 5.8 Mbps 1080p most of the time (the paper's YouTube baseline
/// rarely stalls) while still dipping below it during deep fades.
struct ThroughputModel {
  double capacity_at_80dbm_mbps = 40.0;  ///< capacity at RSRP = -80 dBm
  double halving_db = 12.0;              ///< dB of extra path loss per halving
  double min_mbps = 0.20;
  double max_mbps = 60.0;
  double fading_volatility = 0.25;       ///< lognormal sigma (per sqrt(s))
  double fading_reversion_rate = 0.35;   ///< OU theta in log domain (1/s)

  /// Deterministic capacity component for a given signal strength.
  double capacity_mbps(double signal_dbm) const noexcept;
};

/// Generates a throughput TimeSeries aligned to a signal-strength trace.
class ThroughputGenerator {
 public:
  ThroughputGenerator(ThroughputModel model, std::uint64_t seed);

  /// One throughput sample per signal sample.
  TimeSeries generate(const TimeSeries& signal_dbm);

 private:
  ThroughputModel model_;
  eacs::Rng rng_;
};

}  // namespace eacs::trace
