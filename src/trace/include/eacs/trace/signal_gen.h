#pragma once
// Synthetic LTE signal-strength (RSRP, dBm) trace generator.
//
// Substitutes for the paper's `adb shell dumpsys telephony.registry` trace.
// The process is a mean-reverting Ornstein-Uhlenbeck random walk around a
// context-dependent mean, plus (for vehicle contexts) Poisson-arriving deep
// fades: driving past buildings/underpasses produces multi-dB drops lasting
// seconds, which is the regime where the paper's Fig. 1(a) energy penalty
// bites.

#include <cstdint>

#include "eacs/trace/time_series.h"
#include "eacs/util/rng.h"

namespace eacs::trace {

/// Parameters of the signal-strength process.
struct SignalModel {
  double mean_dbm = -90.0;        ///< long-run mean RSRP
  double reversion_rate = 0.15;   ///< OU theta (1/s)
  double volatility = 2.0;        ///< OU sigma (dB / sqrt(s))
  double min_dbm = -120.0;        ///< clamp floor
  double max_dbm = -70.0;         ///< clamp ceiling
  double fade_rate_per_s = 0.0;   ///< Poisson rate of deep-fade events
  double fade_depth_db = 10.0;    ///< mean extra attenuation during a fade
  double fade_duration_s = 6.0;   ///< mean fade duration

  /// Static indoor context: strong, stable signal.
  static SignalModel quiet_room();
  /// Moving-vehicle context: weak, volatile signal with deep fades.
  static SignalModel moving_vehicle();
  /// Interpolates room->vehicle by a severity in [0, 1]; used to match the
  /// per-session conditions implied by Table V's vibration column.
  static SignalModel blended(double severity);
};

/// Generates a signal-strength TimeSeries.
class SignalStrengthGenerator {
 public:
  SignalStrengthGenerator(SignalModel model, std::uint64_t seed);

  /// Generates `duration_s` seconds sampled every `dt_s` (default 0.5 s, the
  /// telephony-registry polling cadence). `start_dbm`, when finite, seeds
  /// the OU process at that level instead of the model mean — used by the
  /// scenario builder to keep the signal continuous across phase changes.
  TimeSeries generate(double duration_s, double dt_s = 0.5,
                      double start_dbm = kFromModelMean);

  /// Sentinel: start the process at the model mean.
  static constexpr double kFromModelMean = -1e9;

 private:
  SignalModel model_;
  eacs::Rng rng_;
};

}  // namespace eacs::trace
