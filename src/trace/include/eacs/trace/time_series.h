#pragma once
// Time-indexed scalar series: the common representation for throughput traces
// (Mbps) and signal-strength traces (dBm), whether synthetic or loaded from
// CSV recordings.

#include <cstddef>
#include <span>
#include <vector>

namespace eacs::trace {

/// One (time, value) sample.
struct TimePoint {
  double t_s = 0.0;
  double value = 0.0;
};

/// Monotonic time series with step and linear interpolation lookups.
///
/// Timestamps must be non-decreasing. Duplicate (zero-width) timestamps are
/// allowed and represent a step discontinuity: at exactly the shared time the
/// *last* duplicate's value wins, which is how outage edges and real CSV
/// recordings with repeated timestamps are modelled.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Builds from samples; throws std::invalid_argument if timestamps decrease.
  explicit TimeSeries(std::vector<TimePoint> samples);

  /// Appends a sample; throws if `t_s` moves backwards in time.
  void append(double t_s, double value);

  bool empty() const noexcept { return samples_.empty(); }
  std::size_t size() const noexcept { return samples_.size(); }
  const TimePoint& at(std::size_t i) const { return samples_.at(i); }
  std::span<const TimePoint> samples() const noexcept { return samples_; }

  double start_time() const;
  double end_time() const;
  double duration() const;

  /// Value of the most recent sample at or before `t_s` (zero-order hold).
  /// Before the first sample, returns the first value.
  double step_at(double t_s) const;

  /// Linear interpolation between neighbouring samples; clamps outside the
  /// covered range.
  double linear_at(double t_s) const;

  /// Mean of `linear_at` over [t0, t1] via trapezoidal integration.
  double mean_over(double t0, double t1) const;

  /// Time-integral of `linear_at` over [t0, t1] (e.g. Mbps * s = Mbits).
  double integral_over(double t0, double t1) const;

  /// All values, in time order.
  std::vector<double> values() const;

  /// Uniformly resampled copy (linear interpolation) with step `dt_s`.
  TimeSeries resampled(double dt_s) const;

  /// Index of the last sample with t <= `t_s` (0 before the first sample;
  /// with duplicate timestamps, the *last* duplicate — the right-continuous
  /// step contract). Throws std::logic_error on an empty series. This is the
  /// index every lookup (step_at / linear_at / TimeSeriesCursor) resolves
  /// through, exposed so cursor implementations can certify against it.
  std::size_t index_at_or_before(double t_s) const;

 private:
  friend class TimeSeriesCursor;

  /// Interpolated value given `index == index_at_or_before(t_s)`. Shared by
  /// linear_at and TimeSeriesCursor so the two paths are the same arithmetic
  /// (bit-identical by construction, not by accident).
  double linear_value_from(std::size_t index, double t_s) const;

  std::vector<TimePoint> samples_;
};

/// Stateful lookup cursor over one TimeSeries.
///
/// The stateless lookups binary-search the whole series on every call; the
/// playback engines query traces at points that move almost monotonically
/// (the session clock), so a cursor that walks from the previously resolved
/// index turns per-sample O(log N) searches into amortised O(1) steps.
///
/// Contract (certified by tests/trace/time_series_cursor_test.cpp and the
/// differential harness):
///  * step_at / linear_at return values bitwise identical to the cursorless
///    TimeSeries lookups for ANY query sequence — forward, backward or
///    repeated times, including duplicate-timestamp step edges (the lookup
///    resolves to the last duplicate: right-continuous, last wins);
///  * the cursor never mutates the series; many cursors may share one;
///  * appending to the series keeps the cursor valid (the resolved prefix is
///    immutable); destroying or moving the series invalidates it — the
///    cursor holds an unowned pointer and must not outlive the series.
class TimeSeriesCursor {
 public:
  /// `series` is unowned and must outlive the cursor.
  explicit TimeSeriesCursor(const TimeSeries& series) noexcept
      : series_(&series) {}

  /// Value of the most recent sample at or before `t_s` (zero-order hold).
  double step_at(double t_s);

  /// Linear interpolation between neighbouring samples; clamps outside the
  /// covered range. Bitwise identical to TimeSeries::linear_at.
  double linear_at(double t_s);

 private:
  /// Resolves index_at_or_before(t_s) by walking from the cached hint,
  /// falling back to the full binary search when the target is far away.
  std::size_t seek(double t_s);

  const TimeSeries* series_;
  std::size_t hint_ = 0;
};

}  // namespace eacs::trace
