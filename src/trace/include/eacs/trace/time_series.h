#pragma once
// Time-indexed scalar series: the common representation for throughput traces
// (Mbps) and signal-strength traces (dBm), whether synthetic or loaded from
// CSV recordings.

#include <cstddef>
#include <span>
#include <vector>

namespace eacs::trace {

/// One (time, value) sample.
struct TimePoint {
  double t_s = 0.0;
  double value = 0.0;
};

/// Monotonic time series with step and linear interpolation lookups.
///
/// Timestamps must be non-decreasing. Duplicate (zero-width) timestamps are
/// allowed and represent a step discontinuity: at exactly the shared time the
/// *last* duplicate's value wins, which is how outage edges and real CSV
/// recordings with repeated timestamps are modelled.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Builds from samples; throws std::invalid_argument if timestamps decrease.
  explicit TimeSeries(std::vector<TimePoint> samples);

  /// Appends a sample; throws if `t_s` moves backwards in time.
  void append(double t_s, double value);

  bool empty() const noexcept { return samples_.empty(); }
  std::size_t size() const noexcept { return samples_.size(); }
  const TimePoint& at(std::size_t i) const { return samples_.at(i); }
  std::span<const TimePoint> samples() const noexcept { return samples_; }

  double start_time() const;
  double end_time() const;
  double duration() const;

  /// Value of the most recent sample at or before `t_s` (zero-order hold).
  /// Before the first sample, returns the first value.
  double step_at(double t_s) const;

  /// Linear interpolation between neighbouring samples; clamps outside the
  /// covered range.
  double linear_at(double t_s) const;

  /// Mean of `linear_at` over [t0, t1] via trapezoidal integration.
  double mean_over(double t0, double t1) const;

  /// Time-integral of `linear_at` over [t0, t1] (e.g. Mbps * s = Mbits).
  double integral_over(double t0, double t1) const;

  /// All values, in time order.
  std::vector<double> values() const;

  /// Uniformly resampled copy (linear interpolation) with step `dt_s`.
  TimeSeries resampled(double dt_s) const;

 private:
  std::size_t index_at_or_before(double t_s) const;
  std::vector<TimePoint> samples_;
};

}  // namespace eacs::trace
