#pragma once
// Multi-phase scenario synthesis (extension).
//
// Real viewing sessions cross contexts: start at home on strong Wi-Fi-like
// signal, walk to the stop, ride the bus, sit down in a cafe. The
// ScenarioBuilder composes such phases into a single SessionTraces with a
// continuous signal process (each phase's OU walk starts where the previous
// one ended) and per-phase calibrated vibration, so the adaptation
// algorithms can be studied across context *transitions* — the regime the
// paper's 30 s-window estimators must track.

#include <string>
#include <vector>

#include "eacs/trace/accel_gen.h"
#include "eacs/trace/session.h"
#include "eacs/trace/signal_gen.h"
#include "eacs/trace/throughput_gen.h"

namespace eacs::trace {

/// One homogeneous scenario phase.
struct ScenarioPhase {
  std::string label;           ///< e.g. "home", "bus"
  double duration_s = 60.0;
  SignalModel signal;          ///< signal process during the phase
  AccelModel accel;            ///< accelerometer process during the phase
  double target_vibration = 0.0;  ///< calibrated mean vibration; <= 0 keeps
                                  ///< the raw (typically quiet) waveform

  /// Context presets.
  static ScenarioPhase home(double duration_s);
  static ScenarioPhase walking(double duration_s, double vibration = 2.0);
  static ScenarioPhase bus(double duration_s, double vibration = 6.5);
  static ScenarioPhase cafe(double duration_s);
};

/// Phase boundary in the built session (for labelling plots/examples).
struct PhaseBoundary {
  std::string label;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Composes phases into one continuous session.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::uint64_t seed = 0x5CE7A210ULL);

  ScenarioBuilder& add_phase(ScenarioPhase phase);

  /// Total duration of the added phases.
  double total_duration_s() const noexcept;
  const std::vector<ScenarioPhase>& phases() const noexcept { return phases_; }

  /// Builds the composite session; `margin_s` extends the final phase so the
  /// traces outlast the video. Throws std::logic_error with no phases.
  SessionTraces build(double margin_s = 120.0) const;

  /// Phase boundaries of the built session (same order as added).
  std::vector<PhaseBoundary> boundaries() const;

 private:
  std::uint64_t seed_;
  std::vector<ScenarioPhase> phases_;
};

}  // namespace eacs::trace
