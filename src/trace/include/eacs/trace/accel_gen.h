#pragma once
// Synthetic 3-axis accelerometer trace generator.
//
// Substitutes for the smartphone accelerometer recordings. Two regimes:
//  * quiet room — gravity plus sensor noise and slow handheld sway; the
//    estimator reads a vibration level near zero;
//  * moving vehicle — gravity plus road/engine harmonics (1-20 Hz),
//    low-frequency body roll, and Poisson-arriving bump transients.
//
// The generator is *calibrated*: callers specify the target mean vibration
// level (as measured by eacs::sensors::VibrationEstimator) and the generator
// scales its vibration waveform so the measured level matches the target,
// reproducing Table V's per-session averages.

#include <cstdint>

#include "eacs/sensors/accel.h"
#include "eacs/sensors/vibration.h"
#include "eacs/util/rng.h"

namespace eacs::trace {

/// Parameters of the accelerometer synthesis.
struct AccelModel {
  double sample_rate_hz = 50.0;
  double sensor_noise = 0.03;        ///< white noise sigma per axis (m/s^2)
  double sway_amplitude = 0.02;      ///< slow handheld sway (m/s^2)
  double bump_rate_per_s = 0.0;      ///< Poisson rate of road bumps
  double bump_amplitude = 3.0;       ///< peak bump acceleration (m/s^2)
  double harmonic_energy = 0.0;      ///< road/engine harmonic amplitude scale
  double walk_cadence_hz = 0.0;      ///< step frequency; 0 disables walking
  double walk_amplitude = 0.0;       ///< vertical bobbing amplitude (m/s^2)

  static AccelModel quiet_room();
  static AccelModel moving_vehicle();
  /// Handheld walking: narrowband bobbing at the step cadence (~2 Hz) plus
  /// its first harmonic — distinguishable from broadband vehicle vibration
  /// by the context classifier.
  static AccelModel walking();
};

/// Generates accelerometer traces with a calibrated vibration level.
class AccelGenerator {
 public:
  AccelGenerator(AccelModel model, std::uint64_t seed);

  /// Generates `duration_s` seconds of samples (uncalibrated waveform).
  sensors::AccelTrace generate(double duration_s);

  /// Generates a trace whose *mean* vibration level (per
  /// sensors::mean_vibration_level with `config`) is within `tolerance`
  /// (relative) of `target_level`. Uses secant iteration on the waveform
  /// scale; typically 2-3 generations. A target of 0 returns a quiet trace.
  sensors::AccelTrace generate_calibrated(double duration_s, double target_level,
                                          sensors::VibrationConfig config = {},
                                          double tolerance = 0.03);

 private:
  sensors::AccelTrace generate_scaled(double duration_s, double vibration_scale,
                                      std::uint64_t stream_seed);

  AccelModel model_;
  std::uint64_t seed_;
  eacs::Rng rng_;
};

}  // namespace eacs::trace
