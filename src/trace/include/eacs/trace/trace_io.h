#pragma once
// CSV persistence for traces.
//
// Formats (headers are authoritative; extra columns are ignored on load):
//   time series:    t_s,value
//   accelerometer:  t_s,x,y,z
//
// Real recorded traces in the same format can be dropped in to replace the
// synthetic generators anywhere a TimeSeries / AccelTrace is accepted.
//
// Loads are validated: every value must be finite (no NaN/Inf) and timestamps
// must never decrease (duplicates are allowed — they encode step edges).
// Violations throw std::runtime_error naming the offending 1-based file line.

#include <filesystem>

#include "eacs/sensors/accel.h"
#include "eacs/trace/time_series.h"
#include "eacs/util/csv.h"

namespace eacs::trace {

/// TimeSeries <-> CsvTable.
eacs::CsvTable time_series_to_csv(const TimeSeries& series);
TimeSeries time_series_from_csv(const eacs::CsvTable& table);

/// AccelTrace <-> CsvTable.
eacs::CsvTable accel_to_csv(const sensors::AccelTrace& trace);
sensors::AccelTrace accel_from_csv(const eacs::CsvTable& table);

/// File round-trips (throw std::runtime_error on I/O failure).
void save_time_series(const std::filesystem::path& path, const TimeSeries& series);
TimeSeries load_time_series(const std::filesystem::path& path);
void save_accel(const std::filesystem::path& path, const sensors::AccelTrace& trace);
sensors::AccelTrace load_accel(const std::filesystem::path& path);

}  // namespace eacs::trace
