#pragma once
// Builds the five evaluation sessions of Table V: each session couples a
// video (length + YouTube-baseline data size) with a signal-strength trace,
// a throughput trace and an accelerometer trace whose measured average
// vibration level matches the paper's reported value.

#include <cstdint>
#include <vector>

#include "eacs/media/catalogue.h"
#include "eacs/sensors/accel.h"
#include "eacs/sensors/sensor_health.h"
#include "eacs/trace/accel_gen.h"
#include "eacs/trace/signal_gen.h"
#include "eacs/trace/throughput_gen.h"
#include "eacs/trace/time_series.h"

namespace eacs::trace {

/// All traces for one viewing session.
struct SessionTraces {
  media::SessionSpec spec;
  TimeSeries signal_dbm;        ///< RSRP over time
  TimeSeries throughput_mbps;   ///< available downlink bandwidth over time
  sensors::AccelTrace accel;    ///< raw accelerometer stream
};

/// Knobs for session synthesis.
struct SessionBuildOptions {
  double margin_s = 120.0;      ///< trace length beyond video length, to cover
                                ///< startup delay and rebuffering overrun
  double signal_dt_s = 0.5;     ///< signal/throughput sampling period
  sensors::VibrationConfig vibration;  ///< estimator the calibration targets
};

/// Synthesises all traces for one Table V session. Deterministic in
/// spec.seed. The accelerometer trace is calibrated so that
/// sensors::mean_vibration_level(...) matches spec.avg_vibration within 3%.
///
/// Context coupling: sessions with higher vibration get weaker / more
/// volatile signal (severity = avg_vibration / 7), reflecting the paper's
/// observation that moving-vehicle sessions suffer both.
SessionTraces build_session(const media::SessionSpec& spec,
                            const SessionBuildOptions& options = {});

/// Builds all five Table V sessions.
std::vector<SessionTraces> build_all_sessions(const SessionBuildOptions& options = {});

/// Converts a signal-strength TimeSeries into the discrete delivered-reading
/// stream that sensors::SensorFaultInjector consumes (one SignalSample per
/// trace point).
std::vector<sensors::SignalSample> signal_samples(const TimeSeries& signal_dbm);

}  // namespace eacs::trace
