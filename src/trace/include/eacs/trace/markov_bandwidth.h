#pragma once
// Markov-modulated bandwidth generator (extension).
//
// The session builder's default throughput process is an OU fading model
// conditioned on signal strength. A second family is standard in the ABR
// literature (and in public 3G/HSDPA trace collections): a continuous-time
// Markov chain over discrete link states (excellent / good / fair / poor /
// outage), each with its own mean rate, within-state jitter and sojourn
// time. Evaluating under both families shows the paper-shape conclusions
// are not an artifact of one network model
// (bench_ablation_network_model).

#include <cstdint>
#include <string>
#include <vector>

#include "eacs/trace/session.h"
#include "eacs/trace/time_series.h"
#include "eacs/util/rng.h"

namespace eacs::trace {

/// One link state of the chain.
struct LinkState {
  std::string name;
  double mean_mbps = 0.0;       ///< state mean rate
  double jitter_fraction = 0.2; ///< lognormal-ish within-state variation
  double mean_sojourn_s = 20.0; ///< exponential sojourn time
  double signal_dbm = -95.0;    ///< representative RSRP for the state (the
                                ///< energy model prices bytes by signal)
};

/// Chain specification: states plus a row-stochastic transition matrix
/// (self-transitions are ignored; the sojourn time governs dwell).
struct MarkovBandwidthModel {
  std::vector<LinkState> states;
  std::vector<std::vector<double>> transitions;  ///< [from][to], rows sum to 1

  /// A 5-state LTE-flavoured chain calibrated so that "vehicle" conditions
  /// (start in fair/poor) roughly match the OU vehicle traces, including
  /// short outages.
  static MarkovBandwidthModel lte_vehicle();
  /// A 3-state stable indoor chain.
  static MarkovBandwidthModel lte_indoor();

  /// Validates shape and stochasticity; throws std::invalid_argument.
  void validate() const;
};

/// Generated pair of aligned traces.
struct MarkovTraces {
  TimeSeries throughput_mbps;
  TimeSeries signal_dbm;
  std::vector<std::size_t> state_sequence;  ///< state index per sample
};

/// Samples the chain.
class MarkovBandwidthGenerator {
 public:
  MarkovBandwidthGenerator(MarkovBandwidthModel model, std::uint64_t seed);

  /// Generates `duration_s` seconds sampled every `dt_s`, starting from
  /// `initial_state` (index into model.states).
  MarkovTraces generate(double duration_s, double dt_s = 0.5,
                        std::size_t initial_state = 0);

 private:
  MarkovBandwidthModel model_;
  eacs::Rng rng_;
};

/// Replaces a session's throughput/signal with Markov-generated ones (the
/// accelerometer context is kept), for apples-to-apples network-model
/// ablations.
SessionTraces with_markov_network(SessionTraces session,
                                  const MarkovBandwidthModel& model,
                                  std::uint64_t seed, std::size_t initial_state = 0);

}  // namespace eacs::trace
