#include "eacs/trace/signal_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::trace {

SignalModel SignalModel::quiet_room() {
  SignalModel m;
  m.mean_dbm = -85.0;
  m.reversion_rate = 0.2;
  m.volatility = 0.8;
  m.fade_rate_per_s = 0.0;
  return m;
}

SignalModel SignalModel::moving_vehicle() {
  SignalModel m;
  m.mean_dbm = -108.0;
  m.reversion_rate = 0.12;
  m.volatility = 3.5;
  m.fade_rate_per_s = 1.0 / 40.0;
  m.fade_depth_db = 9.0;
  m.fade_duration_s = 7.0;
  return m;
}

SignalModel SignalModel::blended(double severity) {
  const double s = std::clamp(severity, 0.0, 1.0);
  const SignalModel room = quiet_room();
  const SignalModel vehicle = moving_vehicle();
  const auto lerp = [s](double a, double b) { return a + s * (b - a); };
  SignalModel m;
  m.mean_dbm = lerp(room.mean_dbm, vehicle.mean_dbm);
  m.reversion_rate = lerp(room.reversion_rate, vehicle.reversion_rate);
  m.volatility = lerp(room.volatility, vehicle.volatility);
  m.fade_rate_per_s = lerp(room.fade_rate_per_s, vehicle.fade_rate_per_s);
  m.fade_depth_db = vehicle.fade_depth_db;
  m.fade_duration_s = vehicle.fade_duration_s;
  return m;
}

SignalStrengthGenerator::SignalStrengthGenerator(SignalModel model, std::uint64_t seed)
    : model_(model), rng_(seed) {
  if (model_.volatility < 0.0 || model_.reversion_rate <= 0.0) {
    throw std::invalid_argument("SignalStrengthGenerator: bad OU parameters");
  }
}

TimeSeries SignalStrengthGenerator::generate(double duration_s, double dt_s,
                                             double start_dbm) {
  if (duration_s <= 0.0 || dt_s <= 0.0) {
    throw std::invalid_argument("SignalStrengthGenerator: bad durations");
  }
  TimeSeries out;
  double level = start_dbm > kFromModelMean ? start_dbm : model_.mean_dbm;
  // Active fade state: remaining seconds and current depth.
  double fade_remaining_s = 0.0;
  double fade_depth = 0.0;
  const double sqrt_dt = std::sqrt(dt_s);

  for (double t = 0.0; t <= duration_s + 1e-9; t += dt_s) {
    // OU update.
    level += model_.reversion_rate * (model_.mean_dbm - level) * dt_s +
             model_.volatility * sqrt_dt * rng_.normal();
    // Fade arrivals.
    if (fade_remaining_s <= 0.0 && model_.fade_rate_per_s > 0.0 &&
        rng_.bernoulli(1.0 - std::exp(-model_.fade_rate_per_s * dt_s))) {
      fade_remaining_s = rng_.exponential(1.0 / model_.fade_duration_s);
      fade_depth = model_.fade_depth_db * (0.5 + rng_.uniform());
    }
    double effective = level;
    if (fade_remaining_s > 0.0) {
      effective -= fade_depth;
      fade_remaining_s -= dt_s;
    }
    out.append(t, std::clamp(effective, model_.min_dbm, model_.max_dbm));
  }
  return out;
}

}  // namespace eacs::trace
