#include "eacs/trace/markov_bandwidth.h"

#include <cmath>
#include <stdexcept>

namespace eacs::trace {

void MarkovBandwidthModel::validate() const {
  if (states.empty()) throw std::invalid_argument("MarkovBandwidthModel: no states");
  if (transitions.size() != states.size()) {
    throw std::invalid_argument("MarkovBandwidthModel: transition rows != states");
  }
  for (const auto& state : states) {
    if (state.mean_mbps < 0.0 || state.mean_sojourn_s <= 0.0 ||
        state.jitter_fraction < 0.0) {
      throw std::invalid_argument("MarkovBandwidthModel: bad state parameters");
    }
  }
  for (const auto& row : transitions) {
    if (row.size() != states.size()) {
      throw std::invalid_argument("MarkovBandwidthModel: ragged transition row");
    }
    double sum = 0.0;
    for (double p : row) {
      if (p < 0.0) throw std::invalid_argument("MarkovBandwidthModel: negative prob");
      sum += p;
    }
    if (std::fabs(sum - 1.0) > 1e-6) {
      throw std::invalid_argument("MarkovBandwidthModel: row does not sum to 1");
    }
  }
}

MarkovBandwidthModel MarkovBandwidthModel::lte_vehicle() {
  MarkovBandwidthModel model;
  model.states = {
      {"excellent", 28.0, 0.15, 25.0, -85.0},
      {"good", 16.0, 0.20, 30.0, -95.0},
      {"fair", 9.0, 0.25, 35.0, -104.0},
      {"poor", 4.0, 0.35, 20.0, -112.0},
      {"outage", 0.4, 0.50, 6.0, -119.0},
  };
  model.transitions = {
      {0.00, 0.80, 0.15, 0.05, 0.00},
      {0.25, 0.00, 0.55, 0.15, 0.05},
      {0.10, 0.45, 0.00, 0.35, 0.10},
      {0.05, 0.15, 0.55, 0.00, 0.25},
      {0.00, 0.10, 0.40, 0.50, 0.00},
  };
  return model;
}

MarkovBandwidthModel MarkovBandwidthModel::lte_indoor() {
  MarkovBandwidthModel model;
  model.states = {
      {"excellent", 32.0, 0.10, 60.0, -84.0},
      {"good", 22.0, 0.15, 45.0, -90.0},
      {"fair", 12.0, 0.20, 20.0, -98.0},
  };
  model.transitions = {
      {0.00, 0.85, 0.15},
      {0.60, 0.00, 0.40},
      {0.30, 0.70, 0.00},
  };
  return model;
}

MarkovBandwidthGenerator::MarkovBandwidthGenerator(MarkovBandwidthModel model,
                                                   std::uint64_t seed)
    : model_(std::move(model)), rng_(seed) {
  model_.validate();
}

MarkovTraces MarkovBandwidthGenerator::generate(double duration_s, double dt_s,
                                                std::size_t initial_state) {
  if (duration_s <= 0.0 || dt_s <= 0.0) {
    throw std::invalid_argument("MarkovBandwidthGenerator: bad durations");
  }
  if (initial_state >= model_.states.size()) {
    throw std::invalid_argument("MarkovBandwidthGenerator: bad initial state");
  }
  MarkovTraces out;
  std::size_t current = initial_state;
  double leave_at = rng_.exponential(1.0 / model_.states[current].mean_sojourn_s);
  double smooth_jitter = 0.0;  // slow AR(1) within-state wobble

  for (double t = 0.0; t <= duration_s + 1e-9; t += dt_s) {
    while (t >= leave_at) {
      // Jump: sample the next state from the transition row.
      const auto& row = model_.transitions[current];
      double draw = rng_.uniform();
      std::size_t next = current;
      for (std::size_t candidate = 0; candidate < row.size(); ++candidate) {
        if (draw < row[candidate]) {
          next = candidate;
          break;
        }
        draw -= row[candidate];
      }
      current = next;
      leave_at = t + rng_.exponential(1.0 / model_.states[current].mean_sojourn_s);
    }
    const auto& state = model_.states[current];
    smooth_jitter = 0.9 * smooth_jitter + 0.1 * rng_.normal();
    const double rate = std::max(
        0.05, state.mean_mbps * (1.0 + state.jitter_fraction * smooth_jitter));
    out.throughput_mbps.append(t, rate);
    out.signal_dbm.append(t, state.signal_dbm + rng_.normal(0.0, 1.0));
    out.state_sequence.push_back(current);
  }
  return out;
}

SessionTraces with_markov_network(SessionTraces session,
                                  const MarkovBandwidthModel& model,
                                  std::uint64_t seed, std::size_t initial_state) {
  const double duration = session.signal_dbm.end_time();
  MarkovBandwidthGenerator generator(model, seed);
  MarkovTraces traces = generator.generate(duration, 0.5, initial_state);
  session.throughput_mbps = std::move(traces.throughput_mbps);
  session.signal_dbm = std::move(traces.signal_dbm);
  return session;
}

}  // namespace eacs::trace
