#include "eacs/trace/scenario.h"

#include <stdexcept>

namespace eacs::trace {

ScenarioPhase ScenarioPhase::home(double duration_s) {
  ScenarioPhase phase;
  phase.label = "home";
  phase.duration_s = duration_s;
  phase.signal = SignalModel::quiet_room();
  phase.accel = AccelModel::quiet_room();
  phase.target_vibration = 0.0;
  return phase;
}

ScenarioPhase ScenarioPhase::walking(double duration_s, double vibration) {
  ScenarioPhase phase;
  phase.label = "walking";
  phase.duration_s = duration_s;
  phase.signal = SignalModel::blended(0.5);
  phase.accel = AccelModel::walking();
  phase.target_vibration = vibration;
  return phase;
}

ScenarioPhase ScenarioPhase::bus(double duration_s, double vibration) {
  ScenarioPhase phase;
  phase.label = "bus";
  phase.duration_s = duration_s;
  phase.signal = SignalModel::moving_vehicle();
  phase.accel = AccelModel::moving_vehicle();
  phase.target_vibration = vibration;
  return phase;
}

ScenarioPhase ScenarioPhase::cafe(double duration_s) {
  ScenarioPhase phase;
  phase.label = "cafe";
  phase.duration_s = duration_s;
  phase.signal = SignalModel::quiet_room();
  phase.accel = AccelModel::quiet_room();
  phase.target_vibration = 0.0;
  return phase;
}

ScenarioBuilder::ScenarioBuilder(std::uint64_t seed) : seed_(seed) {}

ScenarioBuilder& ScenarioBuilder::add_phase(ScenarioPhase phase) {
  if (phase.duration_s <= 0.0) {
    throw std::invalid_argument("ScenarioBuilder: phase duration must be > 0");
  }
  phases_.push_back(std::move(phase));
  return *this;
}

double ScenarioBuilder::total_duration_s() const noexcept {
  double total = 0.0;
  for (const auto& phase : phases_) total += phase.duration_s;
  return total;
}

std::vector<PhaseBoundary> ScenarioBuilder::boundaries() const {
  std::vector<PhaseBoundary> out;
  double cursor = 0.0;
  for (const auto& phase : phases_) {
    out.push_back({phase.label, cursor, cursor + phase.duration_s});
    cursor += phase.duration_s;
  }
  return out;
}

SessionTraces ScenarioBuilder::build(double margin_s) const {
  if (phases_.empty()) throw std::logic_error("ScenarioBuilder: no phases");

  SessionTraces session;
  session.spec.id = 0;
  session.spec.length_s = total_duration_s();
  session.spec.seed = seed_;

  constexpr double kSignalDt = 0.5;
  double offset = 0.0;
  double last_signal = SignalStrengthGenerator::kFromModelMean;
  std::uint64_t phase_salt = 0;

  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const auto& phase = phases_[i];
    const bool last_phase = i + 1 == phases_.size();
    const double duration = phase.duration_s + (last_phase ? margin_s : 0.0);

    // Signal: continue from the previous phase's final level.
    SignalStrengthGenerator signal_gen(phase.signal, seed_ ^ (0x51 + phase_salt));
    const TimeSeries phase_signal = signal_gen.generate(duration, kSignalDt, last_signal);
    for (const auto& point : phase_signal.samples()) {
      // Skip the t=0 sample of non-first phases: it would collide with the
      // previous phase's final timestamp.
      if (i > 0 && point.t_s == 0.0) continue;
      session.signal_dbm.append(offset + point.t_s, point.value);
    }
    last_signal = phase_signal.samples().back().value;

    // Accelerometer: per-phase calibration to the target vibration.
    AccelGenerator accel_gen(phase.accel, seed_ ^ (0xACC + phase_salt));
    const sensors::AccelTrace phase_accel =
        phase.target_vibration > 0.0
            ? accel_gen.generate_calibrated(duration, phase.target_vibration)
            : accel_gen.generate(duration);
    for (const auto& sample : phase_accel) {
      if (i > 0 && sample.t_s == 0.0) continue;
      sensors::AccelSample shifted = sample;
      shifted.t_s += offset;
      session.accel.push_back(shifted);
    }

    offset += duration;
    phase_salt += 7;
  }

  // Throughput from the composite signal (one fading process end to end).
  ThroughputGenerator throughput_gen(ThroughputModel{}, seed_ ^ 0x7417ULL);
  session.throughput_mbps = throughput_gen.generate(session.signal_dbm);

  // The session's nominal average vibration (Table V-style annotation).
  session.spec.avg_vibration = sensors::mean_vibration_level(session.accel);
  session.spec.on_vehicle = session.spec.avg_vibration >= 4.0;
  return session;
}

}  // namespace eacs::trace
