#include "eacs/trace/accel_gen.h"

#include <cmath>
#include <stdexcept>

namespace eacs::trace {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

AccelModel AccelModel::quiet_room() {
  AccelModel m;
  m.sensor_noise = 0.03;
  m.sway_amplitude = 0.02;
  m.bump_rate_per_s = 0.0;
  m.bump_amplitude = 0.0;
  m.harmonic_energy = 0.0;
  return m;
}

AccelModel AccelModel::moving_vehicle() {
  AccelModel m;
  m.sensor_noise = 0.05;
  m.sway_amplitude = 0.2;
  m.bump_rate_per_s = 0.25;
  m.bump_amplitude = 3.0;
  m.harmonic_energy = 1.0;
  return m;
}

AccelModel AccelModel::walking() {
  AccelModel m;
  m.sensor_noise = 0.05;
  m.sway_amplitude = 0.15;
  m.walk_cadence_hz = 1.9;
  m.walk_amplitude = 1.8;
  return m;
}

AccelGenerator::AccelGenerator(AccelModel model, std::uint64_t seed)
    : model_(model), seed_(seed), rng_(seed) {
  if (model_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("AccelGenerator: sample rate must be > 0");
  }
}

sensors::AccelTrace AccelGenerator::generate_scaled(double duration_s,
                                                    double vibration_scale,
                                                    std::uint64_t stream_seed) {
  if (duration_s <= 0.0) throw std::invalid_argument("AccelGenerator: bad duration");
  eacs::Rng rng(stream_seed);
  const double dt = 1.0 / model_.sample_rate_hz;
  const auto count = static_cast<std::size_t>(duration_s * model_.sample_rate_hz) + 1;

  // Road/engine harmonic bank: frequencies fixed per stream, amplitudes
  // weighted toward the low end (suspension resonance ~1-3 Hz dominates).
  struct Harmonic {
    double freq_hz, amplitude, phase;
  };
  std::vector<Harmonic> harmonics;
  if (model_.harmonic_energy > 0.0) {
    const double base_freqs[] = {1.3, 2.4, 3.6, 7.5, 12.0, 17.0};
    const double weights[] = {1.0, 0.8, 0.55, 0.3, 0.2, 0.15};
    for (std::size_t i = 0; i < 6; ++i) {
      harmonics.push_back({base_freqs[i] * (0.9 + 0.2 * rng.uniform()),
                           model_.harmonic_energy * weights[i],
                           rng.uniform(0.0, 2.0 * kPi)});
    }
  }

  sensors::AccelTrace out;
  out.reserve(count);
  double bump_level = 0.0;  // decaying bump envelope
  double bump_sign = 1.0;
  double sway_phase = rng.uniform(0.0, 2.0 * kPi);
  // Slow amplitude modulation of the harmonics (road roughness changes).
  double modulation = 1.0;

  for (std::size_t i = 0; i < count; ++i) {
    const double t = static_cast<double>(i) * dt;
    // Vibration waveform along the phone's z axis (screen normal).
    double vib = 0.0;
    for (const auto& h : harmonics) {
      vib += h.amplitude * std::sin(2.0 * kPi * h.freq_hz * t + h.phase);
    }
    // Road roughness modulation: mean-reverting around 1.
    modulation += 0.02 * (1.0 - modulation) + 0.02 * rng.normal();
    if (modulation < 0.2) modulation = 0.2;
    vib *= modulation;

    // Walking: narrowband vertical bobbing at the step cadence plus its
    // first harmonic (heel-strike sharpening).
    if (model_.walk_cadence_hz > 0.0 && model_.walk_amplitude > 0.0) {
      vib += model_.walk_amplitude *
             (std::sin(2.0 * kPi * model_.walk_cadence_hz * t) +
              0.35 * std::sin(2.0 * kPi * 2.0 * model_.walk_cadence_hz * t + 0.7));
    }

    // Bumps: decaying oscillatory transient.
    if (model_.bump_rate_per_s > 0.0 &&
        rng.bernoulli(1.0 - std::exp(-model_.bump_rate_per_s * dt))) {
      bump_level = model_.bump_amplitude * (0.5 + rng.uniform());
      bump_sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
    }
    if (bump_level > 1e-3) {
      vib += bump_sign * bump_level * std::sin(2.0 * kPi * 9.0 * t);
      bump_level *= std::exp(-dt / 0.25);  // ~0.25 s decay constant
    }
    vib *= vibration_scale;

    // Handheld sway: slow, survives in x/y.
    sway_phase += 2.0 * kPi * 0.3 * dt;
    const double sway = model_.sway_amplitude * std::sin(sway_phase);

    sensors::AccelSample sample;
    sample.t_s = t;
    sample.x = sway + rng.normal(0.0, model_.sensor_noise) + 0.3 * vib;
    sample.y = 0.5 * sway + rng.normal(0.0, model_.sensor_noise) + 0.2 * vib;
    sample.z = sensors::kGravity + vib + rng.normal(0.0, model_.sensor_noise);
    out.push_back(sample);
  }
  return out;
}

sensors::AccelTrace AccelGenerator::generate(double duration_s) {
  return generate_scaled(duration_s, 1.0, rng_.next_u64());
}

sensors::AccelTrace AccelGenerator::generate_calibrated(double duration_s,
                                                        double target_level,
                                                        sensors::VibrationConfig config,
                                                        double tolerance) {
  // The stream seed is fixed across calibration iterations so that changing
  // the scale rescales the *same* waveform rather than sampling a new one.
  const std::uint64_t stream_seed = rng_.next_u64();

  if (target_level <= 0.0) return generate_scaled(duration_s, 0.0, stream_seed);

  // A model with no vibration waveform (quiet room: noise and sway only)
  // cannot reach a positive target by scaling; bootstrap a unit harmonic
  // bank first.
  if (model_.harmonic_energy <= 0.0 && model_.bump_rate_per_s <= 0.0) {
    AccelModel boosted = model_;
    boosted.harmonic_energy = 1.0;
    AccelGenerator helper(boosted, stream_seed ^ 0xABCDULL);
    return helper.generate_calibrated(duration_s, target_level, config, tolerance);
  }

  // The measured level is monotone (affine up to the noise floor) in the
  // scale, so a secant iteration converges in a couple of steps.
  double scale = 1.0;
  auto trace = generate_scaled(duration_s, scale, stream_seed);
  double measured = sensors::mean_vibration_level(trace, config);
  if (measured <= 1e-9) return trace;  // defensive: nothing to scale

  for (int iter = 0; iter < 8; ++iter) {
    const double relative_error = std::fabs(measured - target_level) / target_level;
    if (relative_error <= tolerance) break;
    scale *= target_level / measured;
    trace = generate_scaled(duration_s, scale, stream_seed);
    measured = sensors::mean_vibration_level(trace, config);
  }
  return trace;
}

}  // namespace eacs::trace
