#include "eacs/trace/throughput_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::trace {

double ThroughputModel::capacity_mbps(double signal_dbm) const noexcept {
  const double capacity =
      capacity_at_80dbm_mbps * std::exp2((signal_dbm + 80.0) / halving_db);
  return std::clamp(capacity, min_mbps, max_mbps);
}

ThroughputGenerator::ThroughputGenerator(ThroughputModel model, std::uint64_t seed)
    : model_(model), rng_(seed) {
  if (model_.capacity_at_80dbm_mbps <= 0.0 || model_.halving_db <= 0.0) {
    throw std::invalid_argument("ThroughputGenerator: bad capacity parameters");
  }
}

TimeSeries ThroughputGenerator::generate(const TimeSeries& signal_dbm) {
  if (signal_dbm.empty()) throw std::invalid_argument("ThroughputGenerator: empty signal");
  TimeSeries out;
  double log_fading = 0.0;
  double prev_t = signal_dbm.at(0).t_s;
  for (std::size_t i = 0; i < signal_dbm.size(); ++i) {
    const TimePoint& p = signal_dbm.at(i);
    const double dt = i == 0 ? 0.0 : p.t_s - prev_t;
    prev_t = p.t_s;
    if (dt > 0.0) {
      log_fading += -model_.fading_reversion_rate * log_fading * dt +
                    model_.fading_volatility * std::sqrt(dt) * rng_.normal();
    }
    const double capacity = model_.capacity_mbps(p.value);
    const double throughput =
        std::clamp(capacity * std::exp(log_fading), model_.min_mbps, model_.max_mbps);
    out.append(p.t_s, throughput);
  }
  return out;
}

}  // namespace eacs::trace
