#include "eacs/trace/trace_io.h"

namespace eacs::trace {

eacs::CsvTable time_series_to_csv(const TimeSeries& series) {
  eacs::CsvTable table({"t_s", "value"});
  for (const auto& point : series.samples()) {
    table.add_row({eacs::format_double(point.t_s), eacs::format_double(point.value)});
  }
  return table;
}

TimeSeries time_series_from_csv(const eacs::CsvTable& table) {
  TimeSeries series;
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    series.append(table.cell_as_double(row, "t_s"), table.cell_as_double(row, "value"));
  }
  return series;
}

eacs::CsvTable accel_to_csv(const sensors::AccelTrace& trace) {
  eacs::CsvTable table({"t_s", "x", "y", "z"});
  for (const auto& sample : trace) {
    table.add_row({eacs::format_double(sample.t_s), eacs::format_double(sample.x),
                   eacs::format_double(sample.y), eacs::format_double(sample.z)});
  }
  return table;
}

sensors::AccelTrace accel_from_csv(const eacs::CsvTable& table) {
  sensors::AccelTrace trace;
  trace.reserve(table.num_rows());
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    sensors::AccelSample sample;
    sample.t_s = table.cell_as_double(row, "t_s");
    sample.x = table.cell_as_double(row, "x");
    sample.y = table.cell_as_double(row, "y");
    sample.z = table.cell_as_double(row, "z");
    trace.push_back(sample);
  }
  return trace;
}

void save_time_series(const std::filesystem::path& path, const TimeSeries& series) {
  eacs::write_csv_file(path, time_series_to_csv(series));
}

TimeSeries load_time_series(const std::filesystem::path& path) {
  return time_series_from_csv(eacs::read_csv_file(path));
}

void save_accel(const std::filesystem::path& path, const sensors::AccelTrace& trace) {
  eacs::write_csv_file(path, accel_to_csv(trace));
}

sensors::AccelTrace load_accel(const std::filesystem::path& path) {
  return accel_from_csv(eacs::read_csv_file(path));
}

}  // namespace eacs::trace
