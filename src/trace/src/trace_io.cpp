#include "eacs/trace/trace_io.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace eacs::trace {
namespace {

/// Data rows start on line 2 of the file (line 1 is the header), so CSV row
/// `row` lives on line row + 2. All validation errors cite that line.
std::size_t csv_line(std::size_t row) { return row + 2; }

double finite_cell(const eacs::CsvTable& table, std::size_t row,
                   std::string_view column) {
  const double value = table.cell_as_double(row, column);
  if (!std::isfinite(value)) {
    throw std::runtime_error("trace_io: line " + std::to_string(csv_line(row)) +
                             ": column '" + std::string(column) + "' is '" +
                             table.cell(row, table.column_index(column)) +
                             "', expected a finite number");
  }
  return value;
}

/// Timestamps may repeat (zero-width step edges) but must never decrease.
void check_time_monotone(double prev_t, double t, std::size_t row) {
  if (t < prev_t) {
    throw std::runtime_error("trace_io: line " + std::to_string(csv_line(row)) +
                             ": timestamp " + eacs::format_double(t) +
                             " moves backwards past " + eacs::format_double(prev_t));
  }
}

}  // namespace

eacs::CsvTable time_series_to_csv(const TimeSeries& series) {
  eacs::CsvTable table({"t_s", "value"});
  for (const auto& point : series.samples()) {
    table.add_row({eacs::format_double(point.t_s), eacs::format_double(point.value)});
  }
  return table;
}

TimeSeries time_series_from_csv(const eacs::CsvTable& table) {
  TimeSeries series;
  double prev_t = -std::numeric_limits<double>::infinity();
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    const double t = finite_cell(table, row, "t_s");
    const double value = finite_cell(table, row, "value");
    check_time_monotone(prev_t, t, row);
    prev_t = t;
    series.append(t, value);
  }
  return series;
}

eacs::CsvTable accel_to_csv(const sensors::AccelTrace& trace) {
  eacs::CsvTable table({"t_s", "x", "y", "z"});
  for (const auto& sample : trace) {
    table.add_row({eacs::format_double(sample.t_s), eacs::format_double(sample.x),
                   eacs::format_double(sample.y), eacs::format_double(sample.z)});
  }
  return table;
}

sensors::AccelTrace accel_from_csv(const eacs::CsvTable& table) {
  sensors::AccelTrace trace;
  trace.reserve(table.num_rows());
  double prev_t = -std::numeric_limits<double>::infinity();
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    sensors::AccelSample sample;
    sample.t_s = finite_cell(table, row, "t_s");
    sample.x = finite_cell(table, row, "x");
    sample.y = finite_cell(table, row, "y");
    sample.z = finite_cell(table, row, "z");
    check_time_monotone(prev_t, sample.t_s, row);
    prev_t = sample.t_s;
    trace.push_back(sample);
  }
  return trace;
}

void save_time_series(const std::filesystem::path& path, const TimeSeries& series) {
  eacs::write_csv_file(path, time_series_to_csv(series));
}

TimeSeries load_time_series(const std::filesystem::path& path) {
  return time_series_from_csv(eacs::read_csv_file(path));
}

void save_accel(const std::filesystem::path& path, const sensors::AccelTrace& trace) {
  eacs::write_csv_file(path, accel_to_csv(trace));
}

sensors::AccelTrace load_accel(const std::filesystem::path& path) {
  return accel_from_csv(eacs::read_csv_file(path));
}

}  // namespace eacs::trace
