#include "eacs/trace/session.h"

#include <algorithm>

namespace eacs::trace {

SessionTraces build_session(const media::SessionSpec& spec,
                            const SessionBuildOptions& options) {
  SessionTraces session;
  session.spec = spec;

  const double duration = spec.length_s + options.margin_s;
  const double severity = std::clamp(spec.avg_vibration / 7.0, 0.0, 1.0);

  SignalStrengthGenerator signal_gen(SignalModel::blended(severity), spec.seed);
  session.signal_dbm = signal_gen.generate(duration, options.signal_dt_s);

  ThroughputGenerator throughput_gen(ThroughputModel{}, spec.seed ^ 0x7417ULL);
  session.throughput_mbps = throughput_gen.generate(session.signal_dbm);

  AccelModel accel_model =
      spec.on_vehicle ? AccelModel::moving_vehicle() : AccelModel::moving_vehicle();
  // Table V's five sessions were all recorded on the move; session 2's low
  // average (2.46) corresponds to a smooth ride, which calibration handles by
  // scaling the same vehicle waveform down.
  AccelGenerator accel_gen(accel_model, spec.seed ^ 0xACCE1ULL);
  session.accel =
      accel_gen.generate_calibrated(duration, spec.avg_vibration, options.vibration);

  return session;
}

std::vector<SessionTraces> build_all_sessions(const SessionBuildOptions& options) {
  std::vector<SessionTraces> sessions;
  for (const auto& spec : media::evaluation_sessions()) {
    sessions.push_back(build_session(spec, options));
  }
  return sessions;
}

std::vector<sensors::SignalSample> signal_samples(const TimeSeries& signal_dbm) {
  std::vector<sensors::SignalSample> readings;
  readings.reserve(signal_dbm.size());
  for (const auto& point : signal_dbm.samples()) {
    readings.push_back({point.t_s, point.value});
  }
  return readings;
}

}  // namespace eacs::trace
