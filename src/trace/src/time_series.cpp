#include "eacs/trace/time_series.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::trace {

TimeSeries::TimeSeries(std::vector<TimePoint> samples) : samples_(std::move(samples)) {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].t_s < samples_[i - 1].t_s) {
      throw std::invalid_argument("TimeSeries: timestamps must not decrease");
    }
  }
}

void TimeSeries::append(double t_s, double value) {
  if (!samples_.empty() && t_s < samples_.back().t_s) {
    throw std::invalid_argument("TimeSeries::append: time must not go backwards");
  }
  samples_.push_back({t_s, value});
}

double TimeSeries::start_time() const {
  if (samples_.empty()) throw std::logic_error("TimeSeries: empty");
  return samples_.front().t_s;
}

double TimeSeries::end_time() const {
  if (samples_.empty()) throw std::logic_error("TimeSeries: empty");
  return samples_.back().t_s;
}

double TimeSeries::duration() const { return end_time() - start_time(); }

std::size_t TimeSeries::index_at_or_before(double t_s) const {
  if (samples_.empty()) throw std::logic_error("TimeSeries: empty");
  // First sample with t > t_s, then step back.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t_s,
      [](double t, const TimePoint& p) { return t < p.t_s; });
  if (it == samples_.begin()) return 0;
  return static_cast<std::size_t>(std::distance(samples_.begin(), it)) - 1;
}

double TimeSeries::step_at(double t_s) const {
  return samples_[index_at_or_before(t_s)].value;
}

double TimeSeries::linear_value_from(std::size_t i, double t_s) const {
  if (t_s < samples_.front().t_s) return samples_.front().value;
  if (i + 1 >= samples_.size()) return samples_.back().value;
  const TimePoint& a = samples_[i];
  const TimePoint& b = samples_[i + 1];
  // Zero-width breakpoints (duplicate timestamps) are step discontinuities;
  // index_at_or_before already resolved to the last duplicate, so `a` holds
  // the value that applies at exactly `t_s`.
  if (b.t_s <= a.t_s) return b.value;
  const double frac = (t_s - a.t_s) / (b.t_s - a.t_s);
  return a.value + frac * (b.value - a.value);
}

double TimeSeries::linear_at(double t_s) const {
  return linear_value_from(index_at_or_before(t_s), t_s);
}

double TimeSeries::integral_over(double t0, double t1) const {
  if (t1 < t0) throw std::invalid_argument("TimeSeries::integral_over: t1 < t0");
  if (t1 == t0) return 0.0;
  // Trapezoidal rule over the interpolated signal: integrate between every
  // pair of breakpoints intersected by [t0, t1].
  double total = 0.0;
  double cursor = t0;
  double cursor_value = linear_at(t0);
  // First breakpoint strictly after t0, found in O(log N): on a sorted series
  // this skips exactly the samples the old linear scan skipped, so the
  // accumulation below visits the same terms in the same order.
  auto it = std::upper_bound(samples_.begin(), samples_.end(), t0,
                             [](double t, const TimePoint& p) { return t < p.t_s; });
  for (; it != samples_.end(); ++it) {
    const TimePoint& p = *it;
    // Strictly-greater: breakpoints exactly at t1 (including zero-width step
    // duplicates) must still update cursor_value, or a step at t1 would leak
    // the post-step value into the closing trapezoid.
    if (p.t_s > t1) break;
    total += 0.5 * (cursor_value + p.value) * (p.t_s - cursor);
    cursor = p.t_s;
    cursor_value = p.value;
  }
  const double end_value = linear_at(t1);
  total += 0.5 * (cursor_value + end_value) * (t1 - cursor);
  return total;
}

double TimeSeries::mean_over(double t0, double t1) const {
  if (t1 <= t0) return linear_at(t0);
  return integral_over(t0, t1) / (t1 - t0);
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& p : samples_) out.push_back(p.value);
  return out;
}

TimeSeries TimeSeries::resampled(double dt_s) const {
  if (dt_s <= 0.0) throw std::invalid_argument("TimeSeries::resampled: dt must be > 0");
  if (samples_.empty()) return {};
  TimeSeries out;
  const double t0 = start_time();
  const double t1 = end_time();
  for (double t = t0; t <= t1 + 1e-12; t += dt_s) {
    out.append(t, linear_at(std::min(t, t1)));
  }
  return out;
}

// --- TimeSeriesCursor -------------------------------------------------------

std::size_t TimeSeriesCursor::seek(double t_s) {
  const std::span<const TimePoint> s = series_->samples();
  // Empty series: delegate so the error is identical to the stateless path.
  if (s.empty()) return series_->index_at_or_before(t_s);
  // Walk from the cached hint; if the target is far, fall back to the full
  // binary search so a pathological query sequence stays O(log N) per call.
  constexpr std::size_t kMaxLinearSteps = 32;
  std::size_t i = std::min(hint_, s.size() - 1);
  std::size_t steps = 0;
  while (i + 1 < s.size() && s[i + 1].t_s <= t_s) {
    if (++steps > kMaxLinearSteps) return hint_ = series_->index_at_or_before(t_s);
    ++i;
  }
  while (i > 0 && s[i].t_s > t_s) {
    if (++steps > kMaxLinearSteps) return hint_ = series_->index_at_or_before(t_s);
    --i;
  }
  // Loop invariants leave i as the last index with t <= t_s (or 0 when t_s
  // precedes the series) — exactly TimeSeries::index_at_or_before(t_s),
  // including the last-duplicate-wins rule at zero-width step edges.
  return hint_ = i;
}

double TimeSeriesCursor::step_at(double t_s) {
  return series_->samples()[seek(t_s)].value;
}

double TimeSeriesCursor::linear_at(double t_s) {
  return series_->linear_value_from(seek(t_s), t_s);
}

}  // namespace eacs::trace
