#include "eacs/util/csv.h"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace eacs {

CsvTable::CsvTable(std::vector<std::string> header) : header_(std::move(header)) {}

std::size_t CsvTable::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  throw std::out_of_range("CsvTable: no column named '" + std::string(name) + "'");
}

bool CsvTable::has_column(std::string_view name) const noexcept {
  for (const auto& column : header_) {
    if (column == name) return true;
  }
  return false;
}

void CsvTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::runtime_error("CsvTable: row width " + std::to_string(row.size()) +
                             " != header width " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

const std::string& CsvTable::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

const std::string& CsvTable::cell(std::size_t row, std::string_view col_name) const {
  return rows_.at(row).at(column_index(col_name));
}

double CsvTable::cell_as_double(std::size_t row, std::string_view col_name) const {
  const std::string& text = cell(row, col_name);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || text.empty() || errno == ERANGE) {
    throw std::runtime_error("CsvTable: row " + std::to_string(row) + ", column '" +
                             std::string(col_name) + "': cell '" + text +
                             "' is not a double");
  }
  return value;
}

long long CsvTable::cell_as_int(std::size_t row, std::string_view col_name) const {
  const std::string& text = cell(row, col_name);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::runtime_error("CsvTable: row " + std::to_string(row) + ", column '" +
                             std::string(col_name) + "': cell '" + text +
                             "' is not an integer");
  }
  return value;
}

std::vector<double> CsvTable::column_as_double(std::string_view col_name) const {
  std::vector<double> out;
  out.reserve(num_rows());
  for (std::size_t row = 0; row < num_rows(); ++row) {
    out.push_back(cell_as_double(row, col_name));
  }
  return out;
}

namespace {

/// Raw rows plus the 1-based input line each row started on (quoted cells may
/// span lines, so a row's number is where it *begins*).
struct RawRows {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::size_t> lines;
};

RawRows parse_rows(std::string_view text) {
  RawRows raw;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;
  std::size_t line = 1;
  std::size_t row_start_line = 1;
  std::size_t quote_open_line = 1;

  const auto flush_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
  };
  const auto flush_row = [&] {
    flush_cell();
    raw.rows.push_back(std::move(row));
    raw.lines.push_back(row_start_line);
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        if (c == '\n') ++line;
        cell.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        quote_open_line = line;
        row_has_content = true;
        break;
      case ',':
        flush_cell();
        row_has_content = true;
        break;
      case '\r':
        break;  // handled with the following \n
      case '\n':
        if (row_has_content || !cell.empty() || !row.empty()) flush_row();
        ++line;
        row_start_line = line;
        break;
      default:
        cell.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) {
    throw std::runtime_error("parse_csv: line " + std::to_string(quote_open_line) +
                             ": unterminated quoted field");
  }
  if (row_has_content || !cell.empty() || !row.empty()) flush_row();
  return raw;
}

bool needs_quoting(std::string_view cell) {
  return cell.find_first_of(",\"\n\r") != std::string_view::npos;
}

void append_quoted(std::string& out, std::string_view cell) {
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

CsvTable parse_csv(std::string_view text) {
  auto raw = parse_rows(text);
  if (raw.rows.empty()) throw std::runtime_error("parse_csv: empty input");
  CsvTable table(std::move(raw.rows.front()));
  for (std::size_t i = 1; i < raw.rows.size(); ++i) {
    if (raw.rows[i].size() != table.num_cols()) {
      throw std::runtime_error(
          "parse_csv: line " + std::to_string(raw.lines[i]) + ": row has " +
          std::to_string(raw.rows[i].size()) + " cells but the header has " +
          std::to_string(table.num_cols()));
    }
    table.add_row(std::move(raw.rows[i]));
  }
  return table;
}

std::string to_csv(const CsvTable& table) {
  std::string out;
  const auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out.push_back(',');
      if (needs_quoting(row[i])) {
        append_quoted(out, row[i]);
      } else {
        out += row[i];
      }
    }
    out.push_back('\n');
  };
  write_row(table.header());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.num_cols());
    for (std::size_t c = 0; c < table.num_cols(); ++c) row.push_back(table.cell(r, c));
    write_row(row);
  }
  return out;
}

CsvTable read_csv_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str());
}

void write_csv_file(const std::filesystem::path& path, const CsvTable& table) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_csv_file: cannot open " + path.string());
  out << to_csv(table);
  if (!out) throw std::runtime_error("write_csv_file: write failed for " + path.string());
}

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace eacs
