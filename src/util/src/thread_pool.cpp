#include "eacs/util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace eacs::util {

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   // workers wait for tasks / stop
  std::condition_variable idle_cv;   // wait() waits for pending == 0
  std::deque<std::function<void()>> queue;
  std::size_t pending = 0;           // queued + running tasks
  bool stop = false;
  std::exception_ptr error;
  std::vector<std::thread> threads;

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (queue.empty()) return;  // stop requested and nothing left to run
        task = std::move(queue.front());
        queue.pop_front();
      }
      try {
        task();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (--pending == 0) idle_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  const std::size_t count = std::max<std::size_t>(1, workers);
  impl_->threads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& thread : impl_->threads) thread.join();
  delete impl_;
}

std::size_t ThreadPool::worker_count() const noexcept {
  return impl_->threads.size();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->queue.push_back(std::move(task));
    ++impl_->pending;
  }
  impl_->work_cv.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->idle_cv.wait(lock, [&] { return impl_->pending == 0; });
  if (impl_->error) {
    std::exception_ptr error = std::exchange(impl_->error, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

namespace {

// Shared dispatch state for one parallel_for call. The dispatch counter and
// the failure flag live on separate cache lines: `next` is hammered by every
// runner's fetch_add while `failed` is read-mostly, and co-locating them made
// each abort-check invalidate the dispatch line on every claim.
struct DispatchControl {
  alignas(kCacheLineBytes) std::atomic<std::size_t> next{0};
  alignas(kCacheLineBytes) std::atomic<bool> failed{false};
};

}  // namespace

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_workers(n, [&fn](std::size_t, std::size_t i) { fn(i); });
}

void ThreadPool::parallel_for_workers(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  // Shared state outlives this call only via the runner tasks, which wait()
  // drains before returning; shared_ptr keeps it valid if wait() throws.
  auto control = std::make_shared<DispatchControl>();
  const std::size_t runners = std::min(worker_count(), n);
  for (std::size_t r = 0; r < runners; ++r) {
    submit([control, r, n, &fn] {
      while (!control->failed.load(std::memory_order_relaxed)) {
        const std::size_t i = control->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          fn(r, i);
        } catch (...) {
          control->failed.store(true, std::memory_order_relaxed);
          throw;  // recorded by the worker loop, rethrown by wait()
        }
      }
    });
  }
  wait();
}

std::size_t effective_workers(std::size_t jobs, std::size_t n) noexcept {
  if (jobs <= 1 || n <= 1) return 1;
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return std::min({jobs, n, hw});
}

void parallel_for(std::size_t jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  const std::size_t workers = effective_workers(jobs, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(workers);
  pool.parallel_for(n, fn);
}

}  // namespace eacs::util
