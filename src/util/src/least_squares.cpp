#include "eacs/util/least_squares.h"

#include <cmath>
#include <stdexcept>

#include "eacs/util/stats.h"

namespace eacs {
namespace {

double residual_sum_of_squares(std::span<const double> y,
                               std::span<const double> predicted) {
  double rss = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - predicted[i];
    rss += r * r;
  }
  return rss;
}

double r_squared_of(std::span<const double> y, double rss) {
  const double mu = mean(y);
  double tss = 0.0;
  for (double v : y) tss += (v - mu) * (v - mu);
  if (tss <= 0.0) return rss <= 0.0 ? 1.0 : 0.0;
  return 1.0 - rss / tss;
}

}  // namespace

std::vector<double> solve_linear_system(std::vector<double> a, std::vector<double> b,
                                        std::size_t n) {
  if (a.size() != n * n || b.size() != n) {
    throw std::invalid_argument("solve_linear_system: dimension mismatch");
  }
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double candidate = std::fabs(a[row * n + col]);
      if (candidate > best) {
        best = candidate;
        pivot = row;
      }
    }
    if (best < 1e-14) throw std::runtime_error("solve_linear_system: singular matrix");
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) std::swap(a[col * n + k], a[pivot * n + k]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row * n + k] -= factor * a[col * n + k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double accum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) accum -= a[i * n + k] * x[k];
    x[i] = accum / a[i * n + i];
  }
  return x;
}

FitResult linear_least_squares(std::span<const double> design,
                               std::span<const double> y, std::size_t num_params) {
  if (num_params == 0) throw std::invalid_argument("num_params must be > 0");
  if (design.size() != y.size() * num_params) {
    throw std::invalid_argument("design matrix size mismatch");
  }
  if (y.size() < num_params) {
    throw std::invalid_argument("underdetermined least-squares system");
  }
  const std::size_t n = y.size();
  // Normal equations: (X^T X) beta = X^T y.
  std::vector<double> xtx(num_params * num_params, 0.0);
  std::vector<double> xty(num_params, 0.0);
  for (std::size_t row = 0; row < n; ++row) {
    const double* x_row = design.data() + row * num_params;
    for (std::size_t i = 0; i < num_params; ++i) {
      xty[i] += x_row[i] * y[row];
      for (std::size_t j = 0; j < num_params; ++j) {
        xtx[i * num_params + j] += x_row[i] * x_row[j];
      }
    }
  }
  FitResult result;
  result.params = solve_linear_system(std::move(xtx), std::move(xty), num_params);
  std::vector<double> predicted(n, 0.0);
  for (std::size_t row = 0; row < n; ++row) {
    const double* x_row = design.data() + row * num_params;
    double value = 0.0;
    for (std::size_t i = 0; i < num_params; ++i) value += x_row[i] * result.params[i];
    predicted[row] = value;
  }
  result.rss = residual_sum_of_squares(y, predicted);
  result.r_squared = r_squared_of(y, result.rss);
  return result;
}

FitResult fit_line(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_line: size mismatch");
  std::vector<double> design;
  design.reserve(x.size() * 2);
  for (double xi : x) {
    design.push_back(1.0);
    design.push_back(xi);
  }
  return linear_least_squares(design, y, 2);
}

FitResult fit_power_law_2d(std::span<const double> x1, std::span<const double> x2,
                           std::span<const double> y) {
  if (x1.size() != y.size() || x2.size() != y.size()) {
    throw std::invalid_argument("fit_power_law_2d: size mismatch");
  }
  std::vector<double> design;
  std::vector<double> log_y;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (x1[i] <= 0.0 || x2[i] <= 0.0 || y[i] <= 0.0) continue;
    design.push_back(1.0);
    design.push_back(std::log(x1[i]));
    design.push_back(std::log(x2[i]));
    log_y.push_back(std::log(y[i]));
  }
  FitResult log_fit = linear_least_squares(design, log_y, 3);
  FitResult result;
  result.params = {std::exp(log_fit.params[0]), log_fit.params[1], log_fit.params[2]};
  // Recompute goodness of fit in linear space over the retained samples.
  std::vector<double> predicted;
  std::vector<double> retained_y;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (x1[i] <= 0.0 || x2[i] <= 0.0 || y[i] <= 0.0) continue;
    predicted.push_back(result.params[0] * std::pow(x1[i], result.params[1]) *
                        std::pow(x2[i], result.params[2]));
    retained_y.push_back(y[i]);
  }
  result.rss = residual_sum_of_squares(retained_y, predicted);
  result.r_squared = r_squared_of(retained_y, result.rss);
  return result;
}

FitResult fit_power_law(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("fit_power_law: size mismatch");
  std::vector<double> design;
  std::vector<double> log_y;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    design.push_back(1.0);
    design.push_back(std::log(x[i]));
    log_y.push_back(std::log(y[i]));
  }
  FitResult log_fit = linear_least_squares(design, log_y, 2);
  FitResult result;
  result.params = {std::exp(log_fit.params[0]), log_fit.params[1]};
  std::vector<double> predicted;
  std::vector<double> retained_y;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (x[i] <= 0.0 || y[i] <= 0.0) continue;
    predicted.push_back(result.params[0] * std::pow(x[i], result.params[1]));
    retained_y.push_back(y[i]);
  }
  result.rss = residual_sum_of_squares(retained_y, predicted);
  result.r_squared = r_squared_of(retained_y, result.rss);
  return result;
}

FitResult gauss_newton(
    const std::function<double(std::span<const double>, std::size_t)>& model,
    std::span<const double> y, std::vector<double> initial_params,
    std::size_t max_iterations, double tolerance) {
  const std::size_t n = y.size();
  const std::size_t p = initial_params.size();
  if (n < p) throw std::invalid_argument("gauss_newton: underdetermined");

  std::vector<double> params = std::move(initial_params);
  std::vector<double> residuals(n, 0.0);
  std::vector<double> jacobian(n * p, 0.0);

  auto evaluate_rss = [&](std::span<const double> candidate) {
    double rss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = y[i] - model(candidate, i);
      rss += r * r;
    }
    return rss;
  };

  FitResult result;
  double rss = evaluate_rss(params);
  double damping = 1e-3;  // Levenberg-Marquardt style damping for robustness.

  std::size_t iter = 0;
  for (; iter < max_iterations; ++iter) {
    for (std::size_t i = 0; i < n; ++i) residuals[i] = y[i] - model(params, i);
    // Numeric Jacobian (forward differences).
    for (std::size_t j = 0; j < p; ++j) {
      const double h = std::max(1e-7, std::fabs(params[j]) * 1e-7);
      std::vector<double> bumped = params;
      bumped[j] += h;
      for (std::size_t i = 0; i < n; ++i) {
        jacobian[i * p + j] = (model(bumped, i) - model(params, i)) / h;
      }
    }
    // Solve (J^T J + damping I) delta = J^T r.
    std::vector<double> jtj(p * p, 0.0);
    std::vector<double> jtr(p, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t a = 0; a < p; ++a) {
        jtr[a] += jacobian[i * p + a] * residuals[i];
        for (std::size_t b = 0; b < p; ++b) {
          jtj[a * p + b] += jacobian[i * p + a] * jacobian[i * p + b];
        }
      }
    }
    for (std::size_t a = 0; a < p; ++a) jtj[a * p + a] += damping;

    std::vector<double> delta;
    try {
      delta = solve_linear_system(std::move(jtj), std::move(jtr), p);
    } catch (const std::runtime_error&) {
      damping *= 10.0;
      continue;
    }
    std::vector<double> candidate = params;
    for (std::size_t j = 0; j < p; ++j) candidate[j] += delta[j];
    const double candidate_rss = evaluate_rss(candidate);
    if (candidate_rss < rss) {
      const double improvement = rss - candidate_rss;
      params = std::move(candidate);
      rss = candidate_rss;
      damping = std::max(damping * 0.5, 1e-12);
      if (improvement < tolerance * (1.0 + rss)) {
        ++iter;
        break;
      }
    } else {
      damping *= 10.0;
      if (damping > 1e12) break;
    }
  }

  result.params = std::move(params);
  result.rss = rss;
  result.r_squared = r_squared_of(y, rss);
  result.iterations = iter;
  result.converged = iter < max_iterations;
  return result;
}

}  // namespace eacs
