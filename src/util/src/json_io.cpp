#include "eacs/util/json_io.h"

#include <atomic>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace eacs::util {

std::string snake_case_id(const std::string& title) {
  std::string out;
  out.reserve(title.size());
  bool pending_sep = false;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_sep = true;
    }
  }
  return out;
}

namespace {

std::string trimmed(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("json_io: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Unique-per-writer temporary path next to `path`. Two processes (or two
// threads in one process) appending concurrently must not share a staging
// file, or the rename could publish an interleaved mix of both writes.
std::string staging_path(const std::string& path) {
  static std::atomic<unsigned long long> counter{0};
  const auto thread_tag =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::ostringstream name;
  name << path << ".tmp." << thread_tag << "."
       << counter.fetch_add(1, std::memory_order_relaxed);
  return name.str();
}

}  // namespace

std::vector<std::string> split_json_array(const std::string& array_text) {
  const std::string text = trimmed(array_text);
  if (text.size() < 2 || text.front() != '[' || text.back() != ']') {
    throw std::runtime_error(
        "json_io: not a JSON array (truncated or corrupted file?)");
  }
  std::vector<std::string> elements;
  std::string current;
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 1; i + 1 < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      current.push_back(c);
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      current.push_back(c);
    } else if (c == '{' || c == '[') {
      ++depth;
      current.push_back(c);
    } else if (c == '}' || c == ']') {
      --depth;
      if (depth < 0) {
        throw std::runtime_error("json_io: unbalanced brackets in JSON array");
      }
      current.push_back(c);
    } else if (c == ',' && depth == 0) {
      const std::string element = trimmed(current);
      if (element.empty()) {
        throw std::runtime_error("json_io: empty element in JSON array");
      }
      elements.push_back(element);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (in_string || depth != 0) {
    throw std::runtime_error(
        "json_io: unterminated element in JSON array (partial write?)");
  }
  const std::string last = trimmed(current);
  if (!last.empty()) {
    elements.push_back(last);
  } else if (!elements.empty()) {
    throw std::runtime_error("json_io: trailing comma in JSON array");
  }
  return elements;
}

std::string json_object_string_field(const std::string& object_text,
                                     const std::string& field) {
  const std::string needle = "\"" + field + "\"";
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (std::size_t i = 0; i < object_text.size(); ++i) {
    const char c = object_text[i];
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      --depth;
    } else if (c == '"') {
      // Top level of the object is depth 1 (inside the outer braces).
      if (depth == 1 && object_text.compare(i, needle.size(), needle) == 0) {
        std::size_t j = i + needle.size();
        while (j < object_text.size() &&
               std::isspace(static_cast<unsigned char>(object_text[j]))) {
          ++j;
        }
        if (j < object_text.size() && object_text[j] == ':') {
          ++j;
          while (j < object_text.size() &&
                 std::isspace(static_cast<unsigned char>(object_text[j]))) {
            ++j;
          }
          if (j < object_text.size() && object_text[j] == '"') {
            std::string value;
            bool value_escaped = false;
            for (std::size_t k = j + 1; k < object_text.size(); ++k) {
              const char v = object_text[k];
              if (value_escaped) {
                value.push_back(v);
                value_escaped = false;
              } else if (v == '\\') {
                value_escaped = true;
              } else if (v == '"') {
                return value;
              } else {
                value.push_back(v);
              }
            }
            return value;  // unterminated: best effort
          }
        }
      }
      in_string = true;
    }
  }
  return "";
}

void upsert_json_array_record(const std::string& path,
                              const std::string& record,
                              const std::string& key_field) {
  const std::string key = json_object_string_field(record, key_field);
  std::vector<std::string> elements;
  if (std::filesystem::exists(path)) {
    elements = split_json_array(read_whole_file(path));
  }
  bool replaced = false;
  for (auto& element : elements) {
    if (!key.empty() && json_object_string_field(element, key_field) == key) {
      element = trimmed(record);
      replaced = true;
      break;
    }
  }
  if (!replaced) elements.push_back(trimmed(record));

  const std::string tmp = staging_path(path);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("json_io: cannot write " + tmp);
    out << "[\n";
    for (std::size_t i = 0; i < elements.size(); ++i) {
      out << elements[i];
      if (i + 1 < elements.size()) out << ",";
      out << "\n";
    }
    out << "]\n";
    out.flush();
    if (!out) throw std::runtime_error("json_io: write failed for " + tmp);
  }
  // rename(2) is atomic within a filesystem: readers see either the old
  // array or the new one, never a prefix.
  std::filesystem::rename(tmp, path);
}

}  // namespace eacs::util
