#include "eacs/util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace eacs {

AsciiTable::AsciiTable(std::string title) : title_(std::move(title)) {}

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("AsciiTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string AsciiTable::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string AsciiTable::percent(double ratio, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", precision, ratio * 100.0);
  return buffer;
}

std::string AsciiTable::render() const {
  const std::size_t cols =
      header_.empty() ? (rows_.empty() ? 0 : rows_.front().size()) : header_.size();
  std::vector<std::size_t> widths(cols, 0);
  for (std::size_t c = 0; c < cols && c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < cols && c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < cols; ++c) {
      out << std::string(widths[c] + 2, '-') << '+';
    }
    out << '\n';
  };
  const auto emit_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      const Align align = c < alignment_.size() ? alignment_[c] : Align::kLeft;
      const std::size_t pad = widths[c] - cell.size();
      out << ' ';
      if (align == Align::kRight) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
      out << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  rule();
  if (!header_.empty()) {
    emit_row(header_);
    rule();
  }
  for (const auto& row : rows_) emit_row(row);
  rule();
  return out.str();
}

void AsciiTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace eacs
