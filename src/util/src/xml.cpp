#include "eacs/util/xml.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace eacs {

XmlNode::XmlNode(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw std::invalid_argument("XmlNode: empty element name");
}

void XmlNode::set_attribute(std::string key, std::string value) {
  for (auto& [existing_key, existing_value] : attributes_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string> XmlNode::attribute(std::string_view key) const {
  for (const auto& [existing_key, value] : attributes_) {
    if (existing_key == key) return value;
  }
  return std::nullopt;
}

std::string XmlNode::required_attribute(std::string_view key) const {
  auto value = attribute(key);
  if (!value) {
    throw std::runtime_error("XmlNode: <" + name_ + "> missing attribute '" +
                             std::string(key) + "'");
  }
  return *value;
}

double XmlNode::attribute_as_double(std::string_view key) const {
  const std::string text = required_attribute(key);
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || errno == ERANGE) {
    throw std::runtime_error("XmlNode: attribute '" + std::string(key) +
                             "' is not a number: " + text);
  }
  return value;
}

long long XmlNode::attribute_as_int(std::string_view key) const {
  const std::string text = required_attribute(key);
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::runtime_error("XmlNode: attribute '" + std::string(key) +
                             "' is not an integer: " + text);
  }
  return value;
}

XmlNode& XmlNode::add_child(std::string child_name) {
  children_.push_back(std::make_unique<XmlNode>(std::move(child_name)));
  return *children_.back();
}

const XmlNode* XmlNode::find_child(std::string_view child_name) const noexcept {
  for (const auto& child : children_) {
    if (child->name() == child_name) return child.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::find_children(std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children_) {
    if (child->name() == child_name) out.push_back(child.get());
  }
  return out;
}

const XmlNode& XmlNode::required_child(std::string_view child_name) const {
  const XmlNode* child = find_child(child_name);
  if (!child) {
    throw std::runtime_error("XmlNode: <" + name_ + "> missing child <" +
                             std::string(child_name) + ">");
  }
  return *child;
}

std::string xml_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

namespace {

void write_node(std::ostringstream& out, const XmlNode& node, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  out << indent << '<' << node.name();
  for (const auto& [key, value] : node.attributes()) {
    out << ' ' << key << "=\"" << xml_escape(value) << '"';
  }
  if (node.children().empty() && node.text().empty()) {
    out << "/>\n";
    return;
  }
  out << '>';
  if (!node.text().empty()) out << xml_escape(node.text());
  if (!node.children().empty()) {
    out << '\n';
    for (const auto& child : node.children()) write_node(out, *child, depth + 1);
    out << indent;
  }
  out << "</" << node.name() << ">\n";
}

/// Cursor-based recursive-descent parser.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  XmlNode parse_document() {
    skip_prolog();
    XmlNode root = parse_element();
    skip_misc();
    if (pos_ != text_.size()) fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::runtime_error("parse_xml: " + message + " (offset " +
                             std::to_string(pos_) + ")");
  }

  bool at_end() const noexcept { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool starts_with(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  void skip_whitespace() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  void skip_comment() {
    // assumes starts_with("<!--")
    const auto end = text_.find("-->", pos_ + 4);
    if (end == std::string_view::npos) fail("unterminated comment");
    pos_ = end + 3;
  }

  void skip_prolog() {
    skip_whitespace();
    if (starts_with("<?xml")) {
      const auto end = text_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated XML declaration");
      pos_ = end + 2;
    }
    skip_misc();
  }

  void skip_misc() {
    for (;;) {
      skip_whitespace();
      if (starts_with("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!at_end()) {
      const char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == ':' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string unescape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const auto semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out.push_back('&');
      else if (entity == "lt") out.push_back('<');
      else if (entity == "gt") out.push_back('>');
      else if (entity == "quot") out.push_back('"');
      else if (entity == "apos") out.push_back('\'');
      else fail("unknown entity '&" + std::string(entity) + ";'");
      i = semi;
    }
    return out;
  }

  void parse_attributes(XmlNode& node) {
    for (;;) {
      skip_whitespace();
      if (at_end()) fail("unterminated start tag");
      if (peek() == '>' || peek() == '/') return;
      std::string key = parse_name();
      skip_whitespace();
      if (at_end() || peek() != '=') fail("expected '=' after attribute name");
      ++pos_;
      skip_whitespace();
      if (at_end() || (peek() != '"' && peek() != '\'')) {
        fail("expected quoted attribute value");
      }
      const char quote = peek();
      ++pos_;
      const auto end = text_.find(quote, pos_);
      if (end == std::string_view::npos) fail("unterminated attribute value");
      node.set_attribute(std::move(key), unescape(text_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }
  }

  XmlNode parse_element() {
    if (at_end() || peek() != '<') fail("expected '<'");
    ++pos_;
    XmlNode node(parse_name());
    parse_attributes(node);
    if (starts_with("/>")) {
      pos_ += 2;
      return node;
    }
    if (at_end() || peek() != '>') fail("expected '>'");
    ++pos_;

    std::string text;
    for (;;) {
      if (at_end()) fail("unterminated element <" + node.name() + ">");
      if (starts_with("<!--")) {
        skip_comment();
        continue;
      }
      if (starts_with("</")) {
        pos_ += 2;
        const std::string closing = parse_name();
        if (closing != node.name()) {
          fail("mismatched closing tag </" + closing + "> for <" + node.name() + ">");
        }
        skip_whitespace();
        if (at_end() || peek() != '>') fail("expected '>' in closing tag");
        ++pos_;
        break;
      }
      if (peek() == '<') {
        XmlNode child = parse_element();
        // Move the parsed child into the tree.
        XmlNode& slot = node.add_child(child.name());
        slot = std::move(child);
        continue;
      }
      const auto next_tag = text_.find('<', pos_);
      if (next_tag == std::string_view::npos) fail("unterminated text content");
      text += unescape(text_.substr(pos_, next_tag - pos_));
      pos_ = next_tag;
    }
    // Trim pure-whitespace text (formatting noise).
    const auto first = text.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) {
      text.clear();
    } else {
      const auto last = text.find_last_not_of(" \t\r\n");
      text = text.substr(first, last - first + 1);
    }
    node.set_text(std::move(text));
    return node;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_xml(const XmlNode& root) {
  std::ostringstream out;
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  write_node(out, root, 0);
  return out.str();
}

XmlNode parse_xml(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace eacs
