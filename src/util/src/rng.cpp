#include "eacs/util/rng.h"

#include <cmath>
#include <stdexcept>

namespace eacs {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

constexpr double kPi = 3.14159265358979323846;

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x1ULL;
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return lo + static_cast<std::int64_t>(next_u64());
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = radius * std::sin(2.0 * kPi * u2);
  has_cached_normal_ = true;
  return radius * std::cos(2.0 * kPi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint32_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0U : static_cast<std::uint32_t>(draw + 0.5);
  }
  const double threshold = std::exp(-mean);
  std::uint32_t count = 0;
  double product = uniform();
  while (product > threshold) {
    ++count;
    product *= uniform();
  }
  return count;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::fork(std::uint64_t salt) noexcept {
  return Rng{next_u64() ^ (salt * 0x9E3779B97F4A7C15ULL)};
}

void Rng::restore(const RngState& state) {
  if (state.words[0] == 0 && state.words[1] == 0 && state.words[2] == 0 &&
      state.words[3] == 0) {
    throw std::invalid_argument("Rng::restore: all-zero xoshiro state");
  }
  state_ = state.words;
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace eacs
