#include "eacs/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double accum = 0.0;
  for (double x : xs) accum += (x - mu) * (x - mu);
  return accum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double rms(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double accum = 0.0;
  for (double x : xs) accum += x * x;
  return std::sqrt(accum / static_cast<double>(xs.size()));
}

double harmonic_mean(std::span<const double> xs) noexcept {
  double denom = 0.0;
  std::size_t positives = 0;
  for (double x : xs) {
    if (x > 0.0) {
      denom += 1.0 / x;
      ++positives;
    }
  }
  if (positives == 0) return 0.0;
  return static_cast<double>(positives) / denom;
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("SlidingWindow capacity must be > 0");
  items_.reserve(capacity_);
}

void SlidingWindow::push(double x) {
  if (items_.size() < capacity_) {
    items_.push_back(x);
    return;
  }
  items_[head_] = x;
  head_ = (head_ + 1) % capacity_;
}

void SlidingWindow::clear() noexcept {
  items_.clear();
  head_ = 0;
}

std::vector<double> SlidingWindow::values() const {
  std::vector<double> out;
  out.reserve(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    out.push_back(items_[(head_ + i) % items_.size()]);
  }
  return out;
}

double SlidingWindow::mean() const noexcept { return eacs::mean(items_); }

double SlidingWindow::harmonic_mean() const noexcept { return eacs::harmonic_mean(items_); }

double SlidingWindow::rms() const noexcept { return eacs::rms(items_); }

}  // namespace eacs
