#include "eacs/util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = mean(xs);
  double accum = 0.0;
  for (double x : xs) accum += (x - mu) * (x - mu);
  return accum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept { return std::sqrt(variance(xs)); }

double rms(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double accum = 0.0;
  for (double x : xs) accum += x * x;
  return std::sqrt(accum / static_cast<double>(xs.size()));
}

double harmonic_mean(std::span<const double> xs) noexcept {
  double denom = 0.0;
  std::size_t positives = 0;
  for (double x : xs) {
    if (x > 0.0) {
      denom += 1.0 / x;
      ++positives;
    }
  }
  if (positives == 0) return 0.0;
  return static_cast<double>(positives) / denom;
}

double percentile(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  const double mx = mean(xs.subspan(0, n));
  const double my = mean(ys.subspan(0, n));
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::invalid_argument("SlidingWindow capacity must be > 0");
  items_.reserve(capacity_);
}

void SlidingWindow::push(double x) {
  if (items_.size() < capacity_) {
    items_.push_back(x);
    return;
  }
  items_[head_] = x;
  head_ = (head_ + 1) % capacity_;
}

void SlidingWindow::clear() noexcept {
  items_.clear();
  head_ = 0;
}

std::vector<double> SlidingWindow::values() const {
  std::vector<double> out;
  out.reserve(items_.size());
  for (std::size_t i = 0; i < items_.size(); ++i) {
    out.push_back(items_[(head_ + i) % items_.size()]);
  }
  return out;
}

double SlidingWindow::mean() const noexcept { return eacs::mean(items_); }

double SlidingWindow::harmonic_mean() const noexcept { return eacs::harmonic_mean(items_); }

double SlidingWindow::rms() const noexcept { return eacs::rms(items_); }

P2Quantile::P2Quantile(double p) : p_(p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("P2Quantile p must be in (0, 1)");
  }
}

void P2Quantile::add(double x) {
  // Bootstrap: the first five samples become the markers, kept sorted.
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    std::sort(heights_.begin(), heights_.begin() + static_cast<long>(count_));
    if (count_ == 5) {
      for (int i = 0; i < 5; ++i) positions_[i] = static_cast<double>(i + 1);
      desired_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
      increments_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
    }
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Adjust the interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic (P^2) prediction of the marker height.
      const double np = positions_[i + 1] - positions_[i - 1];
      const double candidate =
          heights_[i] +
          sign / np *
              ((below + sign) * (heights_[i + 1] - heights_[i]) / above +
               (above - sign) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        // Parabolic prediction left the bracket; fall back to linear.
        const int j = i + static_cast<int>(sign);
        heights_[i] += sign * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += sign;
    }
  }
}

void P2Quantile::restore(const P2QuantileState& state) {
  if (!(state.p > 0.0 && state.p < 1.0)) {
    throw std::invalid_argument("P2Quantile::restore: p must be in (0, 1)");
  }
  p_ = state.p;
  count_ = state.count;
  heights_ = state.heights;
  positions_ = state.positions;
  desired_ = state.desired;
  increments_ = state.increments;
}

double P2Quantile::value() const noexcept {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact quantile of the sorted bootstrap buffer.
    const double rank = p_ * static_cast<double>(count_ - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, count_ - 1);
    const double frac = rank - static_cast<double>(lo);
    return heights_[lo] + (heights_[hi] - heights_[lo]) * frac;
  }
  return heights_[2];
}

ReservoirSampler::ReservoirSampler(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  if (capacity_ == 0) {
    throw std::invalid_argument("ReservoirSampler capacity must be > 0");
  }
  items_.reserve(capacity_);
}

void ReservoirSampler::add(double x) {
  ++count_;
  if (items_.size() < capacity_) {
    items_.push_back(x);
    return;
  }
  // Algorithm R: keep x with probability capacity/count, evicting uniformly.
  const auto j = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(count_) - 1));
  if (j < capacity_) items_[j] = x;
}

void ReservoirSampler::merge(const ReservoirSampler& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    // Adopt the other reservoir's sample but keep our own Rng stream so the
    // merged state stays a pure function of (this seed, both streams).
    items_ = other.items_;
    count_ = other.count_;
    return;
  }
  // Each output slot keeps this side's element with probability
  // count/(count+other.count), otherwise draws uniformly from the other
  // reservoir. Count-weighting preserves uniformity over the union stream.
  const double total = static_cast<double>(count_) + static_cast<double>(other.count_);
  const double keep_self = static_cast<double>(count_) / total;
  const std::size_t out_size = std::min(capacity_, items_.size() + other.items_.size());
  std::vector<double> merged;
  merged.reserve(out_size);
  for (std::size_t i = 0; i < out_size; ++i) {
    if (i < items_.size() && (i >= other.items_.size() || rng_.uniform() < keep_self)) {
      merged.push_back(items_[i]);
    } else {
      const auto j = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(other.items_.size()) - 1));
      merged.push_back(other.items_[j]);
    }
  }
  items_ = std::move(merged);
  count_ += other.count_;
}

void ReservoirSampler::restore(const ReservoirSamplerState& state) {
  if (state.capacity == 0) {
    throw std::invalid_argument("ReservoirSampler::restore: zero capacity");
  }
  if (state.items.size() > state.capacity) {
    throw std::invalid_argument(
        "ReservoirSampler::restore: more kept items than capacity");
  }
  if (state.items.size() != std::min(state.count, state.capacity)) {
    throw std::invalid_argument(
        "ReservoirSampler::restore: kept-item count inconsistent with stream "
        "count");
  }
  Rng rng(0);  // seed irrelevant; the state overwrite below is total
  rng.restore(state.rng);
  capacity_ = state.capacity;
  count_ = state.count;
  rng_ = rng;
  items_ = state.items;
  items_.reserve(capacity_);
}

double ReservoirSampler::quantile(double p) const {
  return percentile(items_, std::clamp(p, 0.0, 1.0) * 100.0);
}

}  // namespace eacs
