#include "eacs/util/filters.h"

#include <cmath>
#include <stdexcept>

namespace eacs {

EmaFilter::EmaFilter(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0) {
    throw std::invalid_argument("EmaFilter: alpha must be in (0, 1]");
  }
}

double EmaFilter::update(double x) noexcept {
  if (!primed_) {
    value_ = x;
    primed_ = true;
  } else {
    value_ += alpha_ * (x - value_);
  }
  return value_;
}

void EmaFilter::reset() noexcept {
  value_ = 0.0;
  primed_ = false;
}

HighPassFilter::HighPassFilter(double cutoff_hz, double sample_rate_hz) {
  if (cutoff_hz <= 0.0 || sample_rate_hz <= 0.0 || cutoff_hz >= sample_rate_hz / 2.0) {
    throw std::invalid_argument("HighPassFilter: invalid cutoff/sample rate");
  }
  constexpr double kPi = 3.14159265358979323846;
  const double rc = 1.0 / (2.0 * kPi * cutoff_hz);
  const double dt = 1.0 / sample_rate_hz;
  r_ = rc / (rc + dt);
}

double HighPassFilter::update(double x) noexcept {
  if (!primed_) {
    // Start with zero output so a constant input (gravity) is rejected from
    // the first sample instead of producing a large transient.
    prev_input_ = x;
    prev_output_ = 0.0;
    primed_ = true;
    return 0.0;
  }
  const double y = r_ * (prev_output_ + x - prev_input_);
  prev_input_ = x;
  prev_output_ = y;
  return y;
}

void HighPassFilter::reset() noexcept {
  prev_input_ = 0.0;
  prev_output_ = 0.0;
  primed_ = false;
}

MovingRms::MovingRms(std::size_t window) : window_(window), storage_(window, 0.0) {
  if (window == 0) throw std::invalid_argument("MovingRms: window must be > 0");
}

double MovingRms::update(double x) {
  const double squared = x * x;
  if (count_ < window_) {
    storage_[count_] = squared;
    sum_squares_ += squared;
    ++count_;
  } else {
    sum_squares_ += squared - storage_[head_];
    storage_[head_] = squared;
    head_ = (head_ + 1) % window_;
  }
  return value();
}

double MovingRms::value() const noexcept {
  if (count_ == 0) return 0.0;
  // Guard against tiny negative drift from floating-point cancellation.
  const double mean_square = sum_squares_ > 0.0
                                 ? sum_squares_ / static_cast<double>(count_)
                                 : 0.0;
  return std::sqrt(mean_square);
}

void MovingRms::reset() noexcept {
  count_ = 0;
  head_ = 0;
  sum_squares_ = 0.0;
  for (auto& s : storage_) s = 0.0;
}

}  // namespace eacs
