#pragma once
// Streaming signal filters used by the sensing pipeline.
//
// The vibration-level estimator removes the gravity component from raw
// accelerometer magnitudes with a single-pole high-pass filter and then takes
// a windowed RMS; the bandwidth path uses an EMA smoother for diagnostics.

#include <cstddef>
#include <vector>

namespace eacs {

/// Exponential moving average, y[n] = (1-a)*y[n-1] + a*x[n].
class EmaFilter {
 public:
  /// `alpha` in (0, 1]; larger tracks the input faster.
  explicit EmaFilter(double alpha);

  double update(double x) noexcept;
  double value() const noexcept { return value_; }
  bool primed() const noexcept { return primed_; }
  void reset() noexcept;

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// Single-pole high-pass filter (DC blocker):
///   y[n] = r * (y[n-1] + x[n] - x[n-1]).
/// Used to strip gravity (a quasi-DC 9.81 m/s^2 bias) from accelerometer
/// magnitude streams before computing vibration energy.
class HighPassFilter {
 public:
  /// `cutoff_hz` must be > 0 and < sample_rate_hz / 2.
  HighPassFilter(double cutoff_hz, double sample_rate_hz);

  double update(double x) noexcept;
  void reset() noexcept;

 private:
  double r_;
  double prev_input_ = 0.0;
  double prev_output_ = 0.0;
  bool primed_ = false;
};

/// Fixed-size moving RMS over the last `window` samples.
class MovingRms {
 public:
  explicit MovingRms(std::size_t window);

  double update(double x);
  double value() const noexcept;
  std::size_t count() const noexcept { return count_; }
  void reset() noexcept;

 private:
  std::size_t window_;
  std::size_t count_ = 0;
  std::size_t head_ = 0;
  double sum_squares_ = 0.0;
  std::vector<double> storage_;  // ring buffer of squared samples
};

}  // namespace eacs
