#pragma once
// Fixed-size worker pool with deterministic parallel-for/map helpers.
//
// The pool exists to make embarrassingly parallel sweeps (evaluation
// sessions, fault-study cells, robustness runs, CEM rollouts) fast without
// changing their results. The contract (see DESIGN.md, "Parallel execution
// model"): parallel_for(jobs, n, fn) calls fn(i) exactly once for every
// index i in [0, n); fn must be a pure function of its index that writes
// only state owned by that index; the caller reduces in index order
// afterwards. Under that contract the output is bit-identical at any
// worker count. jobs <= 1 runs the plain serial loop on the calling thread
// — no pool, no locks, exactly the pre-parallel code path.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace eacs::util {

/// Fixed worker-count thread pool. Tasks are run in submission order by
/// whichever worker is free; wait() blocks until the queue drains and
/// rethrows the first exception any task threw.
class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to at least 1).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers. Pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept;

  /// Enqueues one task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished; rethrows the first
  /// exception captured from a task (later exceptions are dropped).
  void wait();

  /// Runs fn(i) for every i in [0, n) across the workers and blocks until
  /// done. Indices are handed out dynamically (work stealing via a shared
  /// counter); remaining indices are skipped after the first exception,
  /// which wait() rethrows.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  Impl* impl_;
};

/// Calls fn(i) for i in [0, n). jobs <= 1 (or n <= 1) is the serial loop on
/// the calling thread; otherwise a transient pool of min(jobs, n) workers
/// runs the indices and the call blocks until all finish. Exceptions from fn
/// propagate to the caller on both paths.
void parallel_for(std::size_t jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Maps fn over [0, n) into a vector ordered by index — the deterministic
/// fan-out primitive: out[i] depends only on i, never on scheduling. The
/// result type must be default-constructible.
template <typename Fn>
auto parallel_map(std::size_t jobs, std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> out(n);
  parallel_for(jobs, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace eacs::util
