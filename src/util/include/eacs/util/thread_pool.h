#pragma once
// Fixed-size worker pool with deterministic parallel-for/map helpers.
//
// The pool exists to make embarrassingly parallel sweeps (evaluation
// sessions, fault-study cells, robustness runs, CEM rollouts) fast without
// changing their results. The contract (see DESIGN.md, "Parallel execution
// model"): parallel_for(jobs, n, fn) calls fn(i) exactly once for every
// index i in [0, n); fn must be a pure function of its index that writes
// only state owned by that index; the caller reduces in index order
// afterwards. Under that contract the output is bit-identical at any
// worker count. jobs <= 1 runs the plain serial loop on the calling thread
// — no pool, no locks, exactly the pre-parallel code path.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace eacs::util {

/// Alignment used to pad shared counters and per-worker result arenas onto
/// their own cache lines. A constant rather than
/// std::hardware_destructive_interference_size, which GCC warns is
/// ABI-unstable across -mtune targets; 64 bytes is correct for every
/// platform this project targets.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Fixed worker-count thread pool. Tasks are run in submission order by
/// whichever worker is free; wait() blocks until the queue drains and
/// rethrows the first exception any task threw.
class ThreadPool {
 public:
  /// Spawns `workers` threads (clamped to at least 1).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers. Pending tasks are still executed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept;

  /// Enqueues one task.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished; rethrows the first
  /// exception captured from a task (later exceptions are dropped).
  void wait();

  /// Runs fn(i) for every i in [0, n) across the workers and blocks until
  /// done. Indices are handed out dynamically (work stealing via a shared
  /// counter); remaining indices are skipped after the first exception,
  /// which wait() rethrows.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but hands fn a stable runner index in
  /// [0, min(worker_count(), n)) alongside the work-item index, so callers
  /// can give each runner a private, cache-line-padded result arena and
  /// merge deterministically by work-item index afterwards. Which runner
  /// executes which item is scheduling-dependent; only the (runner, item)
  /// pairing varies, never the set of items run.
  void parallel_for_workers(
      std::size_t n,
      const std::function<void(std::size_t worker, std::size_t i)>& fn);

 private:
  struct Impl;
  Impl* impl_;
};

/// Number of concurrent runners the free parallel helpers actually use for
/// `n` items at a requested `jobs` level: 1 when the request or the work is
/// serial, otherwise min(jobs, n) clamped to the hardware concurrency.
/// Oversubscribing threads beyond the physical cores only adds contention
/// (the sweeps are CPU-bound), and under the DESIGN §6 purity contract the
/// worker count never affects results, so the clamp is output-neutral.
std::size_t effective_workers(std::size_t jobs, std::size_t n) noexcept;

/// Calls fn(i) for i in [0, n). jobs <= 1 (or n <= 1) is the serial loop on
/// the calling thread; otherwise a transient pool of min(jobs, n) workers
/// runs the indices and the call blocks until all finish. Exceptions from fn
/// propagate to the caller on both paths.
void parallel_for(std::size_t jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Maps fn over [0, n) into a vector ordered by index — the deterministic
/// fan-out primitive: out[i] depends only on i, never on scheduling. The
/// result type must be default-constructible.
///
/// Workers never touch the shared output vector: each runner appends
/// (index, result) pairs to a private cache-line-padded arena, and the
/// arenas are merged into `out` by work-item index after the pool drains.
/// The merge is deterministic regardless of arena visitation order because
/// indices are unique and out[i] depends only on fn(i) (DESIGN §6). This
/// removes the false sharing of adjacent out[i] slots that serialized small
/// result types.
template <typename Fn>
auto parallel_map(std::size_t jobs, std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>> {
  using Result = std::decay_t<decltype(fn(std::size_t{0}))>;
  std::vector<Result> out(n);
  const std::size_t workers = effective_workers(jobs, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    return out;
  }
  struct alignas(kCacheLineBytes) Arena {
    std::vector<std::pair<std::size_t, Result>> items;
  };
  std::vector<Arena> arenas(workers);
  // Declared after the arenas so the pool (and with it every worker thread)
  // is destroyed first if an exception unwinds this scope.
  ThreadPool pool(workers);
  pool.parallel_for_workers(n, [&](std::size_t worker, std::size_t i) {
    arenas[worker].items.emplace_back(i, fn(i));
  });
  for (auto& arena : arenas) {
    for (auto& [i, value] : arena.items) out[i] = std::move(value);
  }
  return out;
}

}  // namespace eacs::util
