#pragma once
// Crash-safe maintenance of JSON array files keyed by record identity.
//
// The bench binaries append their headline records to a shared snapshot file
// (BENCH_baseline.json): a top-level JSON array with one object per
// experiment. Appending by re-reading and rewriting the file in place is a
// flake factory — an interrupted writer leaves a truncated file, and two
// bench processes appending concurrently can interleave their writes. This
// module centralises the update: validate the existing array, splice the new
// record in (replacing any record with the same key), write the result to a
// uniquely named temporary file, and atomically rename it over the original.
// Concurrent appenders race to last-writer-wins, but the file is a valid
// JSON array at every instant.

#include <string>
#include <vector>

namespace eacs::util {

/// Canonical machine-readable id for an experiment title: lowercase ASCII
/// alphanumerics with every other run of characters collapsed to a single
/// '_', leading/trailing '_' trimmed ("Extension: CDN failover" ->
/// "extension_cdn_failover"). Stable under prose tweaks to spacing and
/// punctuation — this is the upsert key of BENCH_baseline.json records.
std::string snake_case_id(const std::string& title);

/// Splits the body of a top-level JSON array into its element texts.
/// `array_text` must start with '[' and end with ']' (after trimming
/// whitespace); throws std::runtime_error otherwise — a file that fails this
/// check was truncated or corrupted by a partial write and must not be
/// silently clobbered. String escapes and nesting are respected.
std::vector<std::string> split_json_array(const std::string& array_text);

/// Returns the string value of `field` ("key") in the top level of the JSON
/// object `object_text`, or "" if absent. Minimal scanner sufficient for the
/// machine-written records this module manages.
std::string json_object_string_field(const std::string& object_text,
                                     const std::string& field);

/// Inserts `record` (the text of one JSON object) into the JSON array file
/// at `path`, replacing any existing element whose `key_field` string equals
/// the new record's, else appending. A missing file becomes a fresh
/// one-element array. Throws std::runtime_error if the existing file is not
/// a well-formed top-level array (truncation guard) or on I/O failure. The
/// rewrite goes through a per-process-and-thread temporary file followed by
/// an atomic rename, so readers and concurrent appenders never observe a
/// partially written file.
void upsert_json_array_record(const std::string& path,
                              const std::string& record,
                              const std::string& key_field = "experiment");

}  // namespace eacs::util
