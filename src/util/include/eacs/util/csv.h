#pragma once
// Minimal CSV table reader/writer for trace persistence.
//
// Traces (throughput, signal strength, accelerometer) are stored as CSV so a
// user can substitute real recorded traces for the synthetic generators: any
// file with the same header columns round-trips through this module.

#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace eacs {

/// In-memory CSV table: a header row plus rows of string cells.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  const std::vector<std::string>& header() const noexcept { return header_; }
  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return header_.size(); }

  /// Index of a named column. Throws std::out_of_range if missing.
  std::size_t column_index(std::string_view name) const;
  bool has_column(std::string_view name) const noexcept;

  void add_row(std::vector<std::string> row);

  const std::string& cell(std::size_t row, std::size_t col) const;
  const std::string& cell(std::size_t row, std::string_view col_name) const;

  double cell_as_double(std::size_t row, std::string_view col_name) const;
  long long cell_as_int(std::size_t row, std::string_view col_name) const;

  /// Whole named column converted to double.
  std::vector<double> column_as_double(std::string_view col_name) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses CSV text (RFC-4180 subset: quoted fields, embedded commas/quotes,
/// \n or \r\n line endings). First row is the header. Throws
/// std::runtime_error on ragged rows.
CsvTable parse_csv(std::string_view text);

/// Serialises a table to CSV text (quoting cells that need it).
std::string to_csv(const CsvTable& table);

/// File helpers. Throw std::runtime_error on I/O failure.
CsvTable read_csv_file(const std::filesystem::path& path);
void write_csv_file(const std::filesystem::path& path, const CsvTable& table);

/// Formats a double with enough digits to round-trip.
std::string format_double(double value);

}  // namespace eacs
