#pragma once
// Descriptive statistics helpers used across the evaluation pipeline.

#include <cstddef>
#include <span>
#include <vector>

namespace eacs {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Population variance; returns 0 for spans shorter than 2.
double variance(std::span<const double> xs) noexcept;

/// Population standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Root mean square.
double rms(std::span<const double> xs) noexcept;

/// Harmonic mean of strictly positive samples; non-positive samples are
/// ignored. Returns 0 if no positive sample exists.
///
/// This is the bandwidth estimator primitive used by FESTIVE and by the
/// paper's online algorithm: the harmonic mean damps the effect of isolated
/// throughput spikes, which otherwise cause over-optimistic bitrate choices.
double harmonic_mean(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Returns 0 for empty input.
double percentile(std::vector<double> xs, double p) noexcept;

/// Minimum / maximum; return 0 for empty input.
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Pearson correlation coefficient; 0 if either side is constant or empty.
double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity sliding window over recent samples, oldest evicted first.
/// Used by the bandwidth estimators (harmonic mean over the last K segment
/// throughputs) and by the vibration estimator's RMS window.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void push(double x);
  void clear() noexcept;

  std::size_t size() const noexcept { return items_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return items_.size() == capacity_; }

  /// Snapshot of the window contents in insertion order (oldest first).
  std::vector<double> values() const;

  double mean() const noexcept;
  double harmonic_mean() const noexcept;
  double rms() const noexcept;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest element once full
  std::vector<double> items_;
};

}  // namespace eacs
