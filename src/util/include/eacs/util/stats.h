#pragma once
// Descriptive statistics helpers used across the evaluation pipeline, plus
// the streaming aggregators the fleet simulator folds per-session metrics
// into (P^2 online quantiles, seeded reservoir sampling) so 100k-session
// runs report percentiles without retaining per-session results.

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "eacs/util/rng.h"

namespace eacs {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Population variance; returns 0 for spans shorter than 2.
double variance(std::span<const double> xs) noexcept;

/// Population standard deviation.
double stddev(std::span<const double> xs) noexcept;

/// Root mean square.
double rms(std::span<const double> xs) noexcept;

/// Harmonic mean of strictly positive samples; non-positive samples are
/// ignored. Returns 0 if no positive sample exists.
///
/// This is the bandwidth estimator primitive used by FESTIVE and by the
/// paper's online algorithm: the harmonic mean damps the effect of isolated
/// throughput spikes, which otherwise cause over-optimistic bitrate choices.
double harmonic_mean(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Returns 0 for empty input.
double percentile(std::vector<double> xs, double p) noexcept;

/// Minimum / maximum; return 0 for empty input.
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Pearson correlation coefficient; 0 if either side is constant or empty.
double pearson(std::span<const double> xs, std::span<const double> ys) noexcept;

/// Full internal state of a RunningStats accumulator. Exposed for the fleet
/// checkpoint (DESIGN §14): restore(state()) reproduces the accumulator
/// bit-for-bit, so serialize -> restore -> add/merge equals never-serialized.
struct RunningStatsState {
  std::size_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  bool operator==(const RunningStatsState&) const = default;
};

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  /// Checkpoint-safe state round-trip: state() captures every internal
  /// field; restore() reinstates them exactly.
  RunningStatsState state() const noexcept {
    return {count_, mean_, m2_, sum_, min_, max_};
  }
  void restore(const RunningStatsState& state) noexcept {
    count_ = state.count;
    mean_ = state.mean;
    m2_ = state.m2;
    sum_ = state.sum;
    min_ = state.min;
    max_ = state.max;
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-capacity sliding window over recent samples, oldest evicted first.
/// Used by the bandwidth estimators (harmonic mean over the last K segment
/// throughputs) and by the vibration estimator's RMS window.
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void push(double x);
  void clear() noexcept;

  std::size_t size() const noexcept { return items_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return items_.size() == capacity_; }

  /// Snapshot of the window contents in insertion order (oldest first).
  std::vector<double> values() const;

  double mean() const noexcept;
  double harmonic_mean() const noexcept;
  double rms() const noexcept;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest element once full
  std::vector<double> items_;
};

/// Full internal state of a P2Quantile estimator (markers, positions, and
/// bootstrap count). P^2 is deliberately NOT mergeable; exposing the state
/// instead makes it checkpoint-safe: restore(state()) continues the stream
/// bit-for-bit where the checkpoint cut it.
struct P2QuantileState {
  double p = 0.5;
  std::size_t count = 0;
  std::array<double, 5> heights{};
  std::array<double, 5> positions{};
  std::array<double, 5> desired{};
  std::array<double, 5> increments{};

  bool operator==(const P2QuantileState&) const = default;
};

/// Online quantile estimator (Jain & Chlamtac's P^2 algorithm): tracks one
/// quantile of an unbounded stream in O(1) memory with five markers. Exact
/// until five samples have arrived, then piecewise-parabolic interpolation.
/// Deterministic: the estimate is a pure function of the sample sequence.
/// P^2 state is not mergeable — use ReservoirSampler when shard results must
/// be combined.
class P2Quantile {
 public:
  /// `p` is the quantile in (0, 1), e.g. 0.5 for the median; throws
  /// std::invalid_argument outside that range.
  explicit P2Quantile(double p);

  void add(double x);

  /// Checkpoint-safe state round-trip. restore() throws
  /// std::invalid_argument when the quantile parameter is outside (0, 1).
  P2QuantileState state() const noexcept {
    return {p_, count_, heights_, positions_, desired_, increments_};
  }
  void restore(const P2QuantileState& state);

  std::size_t count() const noexcept { return count_; }
  double p() const noexcept { return p_; }

  /// Current estimate; 0 before any sample (matching percentile()'s
  /// empty-input convention).
  double value() const noexcept;

 private:
  double p_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights q_i
  std::array<double, 5> positions_{};  // actual marker positions n_i
  std::array<double, 5> desired_{};    // desired marker positions n'_i
  std::array<double, 5> increments_{}; // dn'_i per observation
};

/// Full internal state of a ReservoirSampler: the kept sample, the stream
/// count, and the exact Rng engine state — everything the remaining stream's
/// keep/evict draws depend on. Restoring it makes checkpointed sampling
/// bit-identical to uninterrupted sampling, including across merges.
struct ReservoirSamplerState {
  std::size_t capacity = 1;
  std::size_t count = 0;
  RngState rng;
  std::vector<double> items;

  bool operator==(const ReservoirSamplerState&) const = default;
};

/// Fixed-capacity uniform sample of an unbounded stream (Algorithm R with a
/// seeded eacs::Rng, so the kept sample is a pure function of (seed, stream)).
/// Quantiles of the reservoir approximate stream quantiles with error
/// O(1/sqrt(capacity)); `merge` combines shard reservoirs by count-weighted
/// interleave, which keeps the uniformity guarantee and — merged in a fixed
/// shard order — is bit-deterministic at any worker count (DESIGN §6).
class ReservoirSampler {
 public:
  /// Throws std::invalid_argument on zero capacity.
  explicit ReservoirSampler(std::size_t capacity, std::uint64_t seed = 0x5EED5A17ULL);

  void add(double x);

  /// Folds `other` into this sampler: each kept slot is drawn from the two
  /// reservoirs with probability proportional to their stream counts.
  /// Deterministic in (this state, other state).
  void merge(const ReservoirSampler& other);

  /// Checkpoint-safe state round-trip. restore() throws
  /// std::invalid_argument on zero capacity, more kept items than capacity,
  /// fewer items than min(count, capacity), or an invalid Rng state.
  ReservoirSamplerState state() const noexcept {
    return {capacity_, count_, rng_.state(), items_};
  }
  void restore(const ReservoirSamplerState& state);

  std::size_t capacity() const noexcept { return capacity_; }
  /// Samples seen (the whole stream, not the kept subset).
  std::size_t count() const noexcept { return count_; }
  /// The kept sample, in retention order.
  std::span<const double> sample() const noexcept { return items_; }

  /// Linear-interpolated quantile of the kept sample, `p` in [0, 1];
  /// 0 before any sample.
  double quantile(double p) const;

 private:
  std::size_t capacity_;
  std::size_t count_ = 0;
  Rng rng_;
  std::vector<double> items_;
};

}  // namespace eacs
