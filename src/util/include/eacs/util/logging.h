#pragma once
// Lightweight levelled logging. Off by default in benchmarks; the simulator
// raises the level when --verbose style flags are set by callers.

#include <sstream>
#include <string>
#include <string_view>

namespace eacs {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emits one line to stderr as "[LEVEL] message".
void log_message(LogLevel level, std::string_view message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace eacs

#define EACS_LOG(level)                          \
  if (static_cast<int>(level) < static_cast<int>(::eacs::log_level())) { \
  } else                                          \
    ::eacs::detail::LogLine(level)

#define EACS_LOG_DEBUG EACS_LOG(::eacs::LogLevel::kDebug)
#define EACS_LOG_INFO EACS_LOG(::eacs::LogLevel::kInfo)
#define EACS_LOG_WARN EACS_LOG(::eacs::LogLevel::kWarn)
#define EACS_LOG_ERROR EACS_LOG(::eacs::LogLevel::kError)
