#pragma once
// ASCII table renderer used by the benchmark harness to print the paper's
// tables and figure series in a stable, diff-friendly format.

#include <string>
#include <string_view>
#include <vector>

namespace eacs {

/// Column alignment for AsciiTable.
enum class Align { kLeft, kRight };

/// Simple monospace table with a title, a header row and data rows.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title = {});

  void set_header(std::vector<std::string> header);
  void set_alignment(std::vector<Align> alignment);
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);
  /// Formats a ratio as a percentage string, e.g. 0.33 -> "33.0%".
  static std::string percent(double ratio, int precision = 1);

  /// Renders the table with box-drawing dashes/pipes.
  std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eacs
