#pragma once
// Least-squares fitting used to (re-)derive the paper's model coefficients.
//
// The paper fits (i) a bitrate->quality curve from the simulated-room study
// ("least squares regression method", Fig. 2(b)) and (ii) a vibration
// impairment surface over (vibration, bitrate) (Fig. 2(c)). Both fits are
// reproduced in eacs::qoe on top of the primitives here.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace eacs {

/// Result of a least-squares fit.
struct FitResult {
  std::vector<double> params;  ///< fitted parameter vector
  double rss = 0.0;            ///< residual sum of squares
  double r_squared = 0.0;      ///< coefficient of determination
  std::size_t iterations = 0;  ///< Gauss-Newton iterations (0 for linear fits)
  bool converged = true;
};

/// Solves the dense linear system A x = b (Gaussian elimination with partial
/// pivoting). `a` is row-major n x n. Throws std::runtime_error on a singular
/// system.
std::vector<double> solve_linear_system(std::vector<double> a, std::vector<double> b,
                                        std::size_t n);

/// Ordinary linear least squares: finds beta minimising ||X beta - y||^2.
/// `design` is row-major, one row per observation with `num_params` columns.
FitResult linear_least_squares(std::span<const double> design,
                               std::span<const double> y, std::size_t num_params);

/// Fits y ~ a + b*x.
FitResult fit_line(std::span<const double> x, std::span<const double> y);

/// Fits y ~ c * x1^p1 * x2^p2 (log-space linear regression). All samples must
/// be strictly positive; non-positive samples are skipped. params = {c, p1, p2}.
FitResult fit_power_law_2d(std::span<const double> x1, std::span<const double> x2,
                           std::span<const double> y);

/// Fits y ~ c * x^p (log-space). params = {c, p}.
FitResult fit_power_law(std::span<const double> x, std::span<const double> y);

/// Nonlinear least squares via damped Gauss-Newton with numeric Jacobian.
///
/// `model(params, x)` evaluates the model at sample `x` (index into the
/// observation arrays is passed; the caller captures its own regressors).
FitResult gauss_newton(
    const std::function<double(std::span<const double> params, std::size_t sample)>& model,
    std::span<const double> y, std::vector<double> initial_params,
    std::size_t max_iterations = 100, double tolerance = 1e-10);

}  // namespace eacs
