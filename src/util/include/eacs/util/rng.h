#pragma once
// Deterministic pseudo-random number generation for reproducible simulations.
//
// All stochastic components in the library (trace generators, the simulated
// subjective study, the Monsoon measurement channel) draw from eacs::Rng so
// that a fixed seed reproduces an experiment bit-for-bit across runs and
// platforms. The engine is xoshiro256**, seeded via SplitMix64.

#include <array>
#include <cstdint>
#include <vector>

namespace eacs {

/// Complete engine state of an Rng, exposed for deterministic
/// checkpoint/resume (DESIGN §14): restoring a captured state reproduces the
/// remaining draw stream bit-for-bit. The fields are the raw xoshiro256**
/// words plus the Box-Muller carry.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  bool operator==(const RngState&) const = default;
};

/// Deterministic random number generator (xoshiro256** engine).
///
/// Not thread-safe; create one instance per logical stream. Use `fork()` to
/// derive independent child streams (e.g. one per trace) from a master seed.
class Rng {
 public:
  /// Seeds the engine deterministically from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xEAC5'2019'0001ULL) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate) noexcept;

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint32_t poisson(double mean) noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Derives an independent child stream; deterministic in (parent state, salt).
  Rng fork(std::uint64_t salt) noexcept;

  /// Snapshot of the full engine state (checkpoint side).
  RngState state() const noexcept {
    return {state_, cached_normal_, has_cached_normal_};
  }

  /// Restores a previously captured state (resume side); throws
  /// std::invalid_argument on the all-zero word state, which xoshiro256**
  /// can never reach and never leave.
  void restore(const RngState& state);

  /// Shuffles a vector in place (Fisher-Yates).
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace eacs
