#pragma once
// Minimal XML document model, writer and parser.
//
// Supports the subset needed for MPEG-DASH MPD manifests: elements,
// attributes, text content, comments and XML declarations. No namespaces
// resolution (prefixes are kept verbatim in names), no DTD/entities beyond
// the five predefined ones.

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eacs {

/// One XML element with attributes, text and child elements.
class XmlNode {
 public:
  explicit XmlNode(std::string name);

  const std::string& name() const noexcept { return name_; }

  /// Attribute access. set_attribute overwrites an existing value.
  void set_attribute(std::string key, std::string value);
  std::optional<std::string> attribute(std::string_view key) const;
  /// Typed helpers; throw std::runtime_error when missing or malformed.
  std::string required_attribute(std::string_view key) const;
  double attribute_as_double(std::string_view key) const;
  long long attribute_as_int(std::string_view key) const;
  const std::vector<std::pair<std::string, std::string>>& attributes() const noexcept {
    return attributes_;
  }

  /// Text content (concatenated across text sections).
  void set_text(std::string text) { text_ = std::move(text); }
  const std::string& text() const noexcept { return text_; }

  /// Children.
  XmlNode& add_child(std::string child_name);
  const std::vector<std::unique_ptr<XmlNode>>& children() const noexcept {
    return children_;
  }
  /// First child with the given name; nullptr when absent.
  const XmlNode* find_child(std::string_view child_name) const noexcept;
  /// All children with the given name.
  std::vector<const XmlNode*> find_children(std::string_view child_name) const;
  /// First child with the given name; throws std::runtime_error when absent.
  const XmlNode& required_child(std::string_view child_name) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::string text_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

/// Serialises a tree to indented XML with a `<?xml?>` declaration.
std::string to_xml(const XmlNode& root);

/// Parses an XML document; returns the root element.
/// Throws std::runtime_error on malformed input.
XmlNode parse_xml(std::string_view text);

/// Escapes the five predefined entities in text/attribute content.
std::string xml_escape(std::string_view raw);

}  // namespace eacs
