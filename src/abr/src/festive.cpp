#include "eacs/abr/festive.h"

namespace eacs::abr {

Festive::Festive(bool gradual_ramp) : gradual_ramp_(gradual_ramp) {}

std::size_t Festive::choose_level(const player::AbrContext& context) {
  const auto& ladder = context.manifest->ladder();
  const double estimate = context.bandwidth->estimate();
  if (estimate <= 0.0) {
    // No measurement yet: conservative start at the bottom rung.
    return ladder.lowest_level();
  }
  const std::size_t target =
      ladder.highest_level_below(estimate).value_or(ladder.lowest_level());
  if (gradual_ramp_ && context.prev_level.has_value() && target > *context.prev_level) {
    return *context.prev_level + 1;
  }
  return target;
}

}  // namespace eacs::abr
