#include "eacs/abr/bola.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace eacs::abr {

Bola::Bola(double gamma_p, double buffer_target_s)
    : gamma_p_(gamma_p), buffer_target_s_(buffer_target_s) {
  if (gamma_p_ <= 0.0) throw std::invalid_argument("Bola: gamma_p must be > 0");
}

std::size_t Bola::choose_level(const player::AbrContext& context) {
  const auto& ladder = context.manifest->ladder();
  const double segment_s = context.manifest->segment_duration_s();
  const double buffer_target =
      buffer_target_s_ > 0.0 ? buffer_target_s_ : 30.0;

  // Startup: nothing buffered and no throughput history — bottom rung.
  if (context.bandwidth->observations() == 0 && context.buffer_s <= 0.0) {
    return ladder.lowest_level();
  }

  const double q_segments = context.buffer_s / segment_s;          // Q
  const double q_max_segments = buffer_target / segment_s;         // Q_max
  const double s_min = ladder.lowest_bitrate() * segment_s;        // megabits

  const double u_max = std::log(ladder.highest_bitrate() / ladder.lowest_bitrate());
  // V chosen so the argmax hits the top level when the buffer is full:
  // standard BOLA-BASIC derivation V = (Q_max - 1) / (u_max + gamma_p).
  const double v = std::max(1e-9, (q_max_segments - 1.0)) / (u_max + gamma_p_);

  std::size_t best_level = ladder.lowest_level();
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t level = 0; level < ladder.size(); ++level) {
    const double size = ladder.bitrate(level) * segment_s;  // megabits
    const double utility = std::log(size / s_min);
    const double score = (v * (utility + gamma_p_) - q_segments) / size;
    if (score > best_score) {
      best_score = score;
      best_level = level;
    }
  }
  return best_level;
}

}  // namespace eacs::abr
