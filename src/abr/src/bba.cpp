#include "eacs/abr/bba.h"

#include <cmath>
#include <stdexcept>

namespace eacs::abr {

Bba::Bba(double reservoir_s, double cushion_s)
    : reservoir_s_(reservoir_s), cushion_s_(cushion_s) {
  if (reservoir_s_ <= 0.0) throw std::invalid_argument("Bba: reservoir must be > 0");
  if (cushion_s_ > 0.0 && cushion_s_ <= reservoir_s_) {
    throw std::invalid_argument("Bba: cushion must exceed the reservoir");
  }
}

std::size_t Bba::choose_level(const player::AbrContext& context) {
  const auto& ladder = context.manifest->ladder();
  const double cushion = cushion_s_ > 0.0 ? cushion_s_ : 30.0;

  // Startup phase: throughput-based ramp (the buffer map would pin the
  // bitrate to the floor while the buffer is still filling).
  if (context.startup_phase || !steady_state_) {
    if (context.buffer_s >= cushion - 1e-9) steady_state_ = true;
    const double estimate = context.bandwidth->estimate();
    if (estimate <= 0.0) return ladder.lowest_level();
    return ladder.highest_level_not_above(estimate).value_or(ladder.lowest_level());
  }

  // Steady state: linear map of buffer occupancy onto the ladder.
  if (context.buffer_s <= reservoir_s_) return ladder.lowest_level();
  if (context.buffer_s >= cushion) return ladder.highest_level();
  const double fraction = (context.buffer_s - reservoir_s_) / (cushion - reservoir_s_);
  const auto span = static_cast<double>(ladder.highest_level());
  return ladder.clamp_level(static_cast<long long>(std::floor(fraction * span + 0.5)));
}

}  // namespace eacs::abr
