#include "eacs/abr/mpc.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace eacs::abr {
namespace {

/// Log-utility of a bitrate relative to the ladder floor (the MPC paper's
/// utility choice).
double utility(const media::BitrateLadder& ladder, std::size_t level) {
  return std::log(ladder.bitrate(level) / ladder.lowest_bitrate());
}

}  // namespace

Mpc::Mpc(MpcConfig config) : config_(config) {
  if (config_.horizon == 0) throw std::invalid_argument("Mpc: horizon must be > 0");
  if (config_.bandwidth_discount <= 0.0 || config_.bandwidth_discount > 1.0) {
    throw std::invalid_argument("Mpc: bandwidth discount must be in (0, 1]");
  }
}

double Mpc::sequence_score(const player::AbrContext& context,
                           const std::vector<std::size_t>& levels,
                           double bandwidth_mbps) const {
  const auto& manifest = *context.manifest;
  const auto& ladder = manifest.ladder();
  double buffer = context.buffer_s;
  double score = 0.0;
  double prev_utility = context.prev_level.has_value()
                            ? utility(ladder, *context.prev_level)
                            : utility(ladder, levels.front());
  for (std::size_t k = 0; k < levels.size(); ++k) {
    const std::size_t segment = context.segment_index + k;
    if (segment >= manifest.num_segments()) break;
    const double size = manifest.segment_size_megabits(segment, levels[k]);
    const double download_s = size / bandwidth_mbps;
    double rebuffer = 0.0;
    if (download_s > buffer) {
      rebuffer = download_s - buffer;
      buffer = 0.0;
    } else {
      buffer -= download_s;
    }
    buffer += manifest.segment_duration(segment);
    const double u = utility(ladder, levels[k]);
    score += u - config_.rebuffer_penalty * rebuffer -
             config_.switch_penalty * std::fabs(u - prev_utility);
    prev_utility = u;
  }
  return score;
}

std::size_t Mpc::choose_level(const player::AbrContext& context) {
  const auto& ladder = context.manifest->ladder();
  const double estimate = context.bandwidth->estimate();
  if (estimate <= 0.0) return ladder.lowest_level();
  const double bandwidth = estimate * config_.bandwidth_discount;

  const std::size_t m = ladder.size();
  const std::size_t horizon = config_.horizon;

  // Enumerate all m^horizon sequences via an odometer.
  std::vector<std::size_t> levels(horizon, 0);
  std::size_t best_first = ladder.lowest_level();
  double best_score = -std::numeric_limits<double>::infinity();
  for (;;) {
    const double score = sequence_score(context, levels, bandwidth);
    if (score > best_score) {
      best_score = score;
      best_first = levels.front();
    }
    // Advance the odometer.
    std::size_t digit = 0;
    while (digit < horizon) {
      if (++levels[digit] < m) break;
      levels[digit] = 0;
      ++digit;
    }
    if (digit == horizon) break;
  }
  return best_first;
}

}  // namespace eacs::abr
