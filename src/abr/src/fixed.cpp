#include "eacs/abr/fixed.h"

namespace eacs::abr {

FixedBitrate::FixedBitrate(std::optional<std::size_t> level, std::string name)
    : level_(level), name_(std::move(name)) {}

std::size_t FixedBitrate::choose_level(const player::AbrContext& context) {
  const auto& ladder = context.manifest->ladder();
  if (!level_.has_value()) return ladder.highest_level();
  return ladder.clamp_level(static_cast<long long>(*level_));
}

}  // namespace eacs::abr
