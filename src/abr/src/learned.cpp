#include "eacs/abr/learned.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::abr {

std::array<double, PolicyFeatures::kCount> PolicyFeatures::extract(
    const player::AbrContext& context) {
  const double levels =
      static_cast<double>(context.manifest->ladder().size() - 1);
  std::array<double, kCount> features{};
  features[0] = 1.0;  // bias
  features[1] = std::min(1.0, context.bandwidth->estimate() / 20.0);
  features[2] = std::min(1.0, context.buffer_s / 30.0);
  features[3] = context.prev_level.has_value() && levels > 0.0
                    ? static_cast<double>(*context.prev_level) / levels
                    : 0.0;
  features[4] = std::min(1.0, context.vibration_level / 7.0);
  features[5] = std::clamp((context.signal_dbm + 120.0) / 40.0, 0.0, 1.0);
  return features;
}

LinearPolicy::LinearPolicy(std::vector<double> weights, std::string name)
    : weights_(std::move(weights)), name_(std::move(name)) {
  if (weights_.size() != PolicyFeatures::kCount) {
    throw std::invalid_argument("LinearPolicy: expected " +
                                std::to_string(PolicyFeatures::kCount) + " weights");
  }
}

std::size_t LinearPolicy::choose_level(const player::AbrContext& context) {
  const auto features = PolicyFeatures::extract(context);
  double activation = 0.0;
  for (std::size_t i = 0; i < PolicyFeatures::kCount; ++i) {
    activation += weights_[i] * features[i];
  }
  const double squashed = 1.0 / (1.0 + std::exp(-activation));
  const auto& ladder = context.manifest->ladder();
  const double levels = static_cast<double>(ladder.size() - 1);
  return ladder.clamp_level(static_cast<long long>(std::llround(squashed * levels)));
}

}  // namespace eacs::abr
