#include "eacs/abr/pid.h"

#include <algorithm>
#include <stdexcept>

namespace eacs::abr {

PidController::PidController(PidConfig config) : config_(config) {
  if (config_.setpoint_s <= 0.0 || config_.min_factor <= 0.0 ||
      config_.max_factor <= config_.min_factor || config_.integral_limit <= 0.0) {
    throw std::invalid_argument("PidController: invalid configuration");
  }
}

void PidController::reset() {
  integral_ = 0.0;
  prev_error_ = 0.0;
  primed_ = false;
}

std::size_t PidController::choose_level(const player::AbrContext& context) {
  const auto& ladder = context.manifest->ladder();
  const double estimate = context.bandwidth->estimate();
  if (estimate <= 0.0) return ladder.lowest_level();

  const double error = context.buffer_s - config_.setpoint_s;
  integral_ = std::clamp(integral_ + error, -config_.integral_limit,
                         config_.integral_limit);
  const double derivative = primed_ ? error - prev_error_ : 0.0;
  prev_error_ = error;
  primed_ = true;

  const double factor = std::clamp(
      1.0 + config_.kp * error + config_.ki * integral_ + config_.kd * derivative,
      config_.min_factor, config_.max_factor);
  const double target = factor * estimate;
  return ladder.highest_level_not_above(target).value_or(ladder.lowest_level());
}

}  // namespace eacs::abr
