#pragma once
// BBA baseline (Huang et al., SIGCOMM 2014): buffer-based rate adaptation.
//
// As the paper describes it: throughput-driven during the startup phase;
// after reaching steady state, a linear function maps the current buffer
// occupancy between a reservoir and a cushion onto the bitrate ladder —
// requesting the highest bitrate whenever the buffer exceeds the cushion,
// which is why BBA is the most energy-hungry adaptive baseline in Fig. 5.

#include "eacs/player/abr_policy.h"

namespace eacs::abr {

/// BBA-0 style buffer-based adaptation.
class Bba final : public player::AbrPolicy {
 public:
  /// `reservoir_s`: below this buffer level the lowest bitrate is used.
  /// `cushion_s`: at/above this level the highest bitrate is used; defaults
  /// to the paper's 30 s player threshold at run time when <= 0.
  explicit Bba(double reservoir_s = 5.0, double cushion_s = 0.0);

  std::string name() const override { return "BBA"; }
  std::size_t choose_level(const player::AbrContext& context) override;
  void reset() override { steady_state_ = false; }

 private:
  double reservoir_s_;
  double cushion_s_;
  bool steady_state_ = false;
};

}  // namespace eacs::abr
