#pragma once
// FESTIVE baseline (Jiang, Sekar, Zhang — IEEE/ACM ToN 2014), as used in the
// paper's evaluation: estimate bandwidth as the harmonic mean of the last 20
// segment throughputs and select the highest ladder bitrate strictly below
// the estimate. The paper (and therefore this reproduction) omits FESTIVE's
// randomized scheduling and multi-player fairness machinery.

#include "eacs/player/abr_policy.h"

namespace eacs::abr {

/// Throughput-based adaptation.
class Festive final : public player::AbrPolicy {
 public:
  /// `gradual_ramp`: real FESTIVE raises the bitrate at most one level per
  /// switch; enabled by default, disable for the paper's simplified variant.
  explicit Festive(bool gradual_ramp = true);

  std::string name() const override { return "FESTIVE"; }
  std::size_t choose_level(const player::AbrContext& context) override;
  void reset() override {}

 private:
  bool gradual_ramp_;
};

}  // namespace eacs::abr
