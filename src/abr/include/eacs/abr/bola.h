#pragma once
// BOLA baseline (Spiteri, Urgaonkar, Sitaraman — INFOCOM 2016).
//
// Not part of the paper's comparison (it cites BOLA in related work); we
// include it as an extension baseline. BOLA-BASIC: pick the level maximising
//   (V * (u_j + gamma_p) - Q) / S_j
// where u_j = ln(S_j / S_min) is the utility of level j, S_j its size, Q the
// buffer occupancy in segments, and V is derived from the maximum buffer so
// that the top level is reached exactly when the buffer is full.

#include "eacs/player/abr_policy.h"

namespace eacs::abr {

/// Lyapunov buffer-based utility maximiser.
class Bola final : public player::AbrPolicy {
 public:
  /// `gamma_p` trades utility against rebuffer avoidance (BOLA paper uses 5).
  /// `buffer_target_s` should match the player's buffer threshold; defaults
  /// to 30 s when <= 0.
  explicit Bola(double gamma_p = 5.0, double buffer_target_s = 0.0);

  std::string name() const override { return "BOLA"; }
  std::size_t choose_level(const player::AbrContext& context) override;

 private:
  double gamma_p_;
  double buffer_target_s_;
};

}  // namespace eacs::abr
