#pragma once
// MPC baseline (Yin, Jindal, Sekar, Sinopoli — SIGCOMM 2015, the paper's
// reference [17]): model-predictive bitrate control.
//
// Not part of the paper's comparison; included as an extension baseline.
// Every segment, the controller enumerates all bitrate sequences over a
// short lookahead horizon, simulates the buffer under the (harmonic-mean)
// bandwidth prediction, scores each sequence with the standard DASH QoE
// objective
//     sum_k  q(r_k) - mu * rebuffer_k - lambda * |q(r_k) - q(r_{k-1})|
// (q = log-utility of the bitrate) and plays the first action of the best
// sequence (receding horizon).

#include "eacs/player/abr_policy.h"

namespace eacs::abr {

/// RobustMPC-style configuration.
struct MpcConfig {
  std::size_t horizon = 3;            ///< lookahead segments (14^h sequences)
  double rebuffer_penalty = 4.3;      ///< MOS-equivalents per stalled second
  double switch_penalty = 1.0;        ///< per unit |utility delta|
  double bandwidth_discount = 0.85;   ///< robustness: use discounted estimate
};

/// Exhaustive receding-horizon controller.
class Mpc final : public player::AbrPolicy {
 public:
  explicit Mpc(MpcConfig config = {});

  std::string name() const override { return "MPC"; }
  std::size_t choose_level(const player::AbrContext& context) override;

 private:
  double sequence_score(const player::AbrContext& context,
                        const std::vector<std::size_t>& levels,
                        double bandwidth_mbps) const;

  MpcConfig config_;
};

}  // namespace eacs::abr
