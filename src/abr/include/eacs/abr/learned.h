#pragma once
// Learned ABR policy (extension; the paper's ref [27] is Pensieve, which
// trains a neural policy with A3C on a cluster). We implement the same idea
// at laptop scale: a linear-sigmoid policy over normalized player/context
// features. The trainer lives in eacs::sim (sim/training.h) — it needs the
// whole simulation stack; the policy itself only needs the player
// interface, so pre-trained weight vectors are usable standalone.
//
//   features f = [1, bandwidth, buffer, prev level, vibration, signal]
//   policy   level = round((M-1) * sigmoid(w . f))

#include <array>
#include <string>
#include <vector>

#include "eacs/player/abr_policy.h"

namespace eacs::abr {

/// Normalized policy features.
struct PolicyFeatures {
  static constexpr std::size_t kCount = 6;

  /// Extracts [bias, bandwidth/20, buffer/30, prev/(M-1), vibration/7,
  /// (signal+120)/40] from a decision context, each clamped to [0, 1].
  static std::array<double, kCount> extract(const player::AbrContext& context);
};

/// Linear-sigmoid policy over PolicyFeatures.
class LinearPolicy final : public player::AbrPolicy {
 public:
  /// `weights` must have PolicyFeatures::kCount entries.
  explicit LinearPolicy(std::vector<double> weights, std::string name = "Learned");

  std::string name() const override { return name_; }
  std::size_t choose_level(const player::AbrContext& context) override;

  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::vector<double> weights_;
  std::string name_;
};

}  // namespace eacs::abr
