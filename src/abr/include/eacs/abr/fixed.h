#pragma once
// "YouTube" baseline: every segment at a fixed ladder level.
//
// The paper's YouTube baseline streams everything at 5.8 Mbps (1080p) — the
// highest rung — consuming the most energy and suffering no switch
// impairment.

#include <optional>

#include "eacs/player/abr_policy.h"

namespace eacs::abr {

/// Requests a constant level; by default the top of the ladder.
class FixedBitrate final : public player::AbrPolicy {
 public:
  /// `level` = std::nullopt means "always the highest rung".
  explicit FixedBitrate(std::optional<std::size_t> level = std::nullopt,
                        std::string name = "Youtube");

  std::string name() const override { return name_; }
  std::size_t choose_level(const player::AbrContext& context) override;

 private:
  std::optional<std::size_t> level_;
  std::string name_;
};

}  // namespace eacs::abr
