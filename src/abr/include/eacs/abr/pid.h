#pragma once
// PID-control baseline (Qin et al., INFOCOM 2017 — the paper's ref [4]:
// "A Control Theoretic Approach to ABR Video Streaming: A Fresh Look at
// PID-Based Rate Adaptation").
//
// The controller regulates the buffer level around a setpoint: the error
// e = buffer - setpoint feeds a discrete PID whose output scales the
// bandwidth estimate into a target rate; the ladder level is the highest
// rate not above the target. Above-setpoint buffers push rates up,
// below-setpoint buffers pull them down — a smoother buffer-feedback loop
// than BBA's piecewise-linear map.

#include "eacs/player/abr_policy.h"

namespace eacs::abr {

/// PID gains and limits.
struct PidConfig {
  double setpoint_s = 20.0;  ///< buffer target
  double kp = 0.05;          ///< proportional gain (per second of error)
  double ki = 0.002;         ///< integral gain
  double kd = 0.05;          ///< derivative gain
  double min_factor = 0.25;  ///< clamp on the rate multiplier
  double max_factor = 1.50;
  double integral_limit = 60.0;  ///< anti-windup bound on the error integral
};

/// Buffer-feedback rate controller.
class PidController final : public player::AbrPolicy {
 public:
  explicit PidController(PidConfig config = {});

  std::string name() const override { return "PID"; }
  std::size_t choose_level(const player::AbrContext& context) override;
  void reset() override;

 private:
  PidConfig config_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool primed_ = false;
};

}  // namespace eacs::abr
