#include "eacs/power/monsoon.h"

#include <cmath>
#include <stdexcept>

namespace eacs::power {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

MonsoonSimulator::MonsoonSimulator(MonsoonConfig config, PowerModel model)
    : config_(config), model_(model), rng_(config.seed) {
  if (config_.sample_rate_hz <= 0.0) {
    throw std::invalid_argument("MonsoonSimulator: sample rate must be > 0");
  }
}

double MonsoonSimulator::true_power(const ActivityInterval& interval) const noexcept {
  double watts = 0.0;
  if (interval.playing) {
    watts += model_.playback_power(interval.bitrate_mbps);
  } else {
    watts += model_.pause_power();
  }
  if (interval.downloading) {
    watts += model_.download_power(interval.signal_dbm, interval.throughput_mbps);
  }
  return watts;
}

std::vector<PowerSample> MonsoonSimulator::sample(
    const std::vector<ActivityInterval>& timeline) {
  std::vector<PowerSample> samples;
  const double dt = 1.0 / config_.sample_rate_hz;
  // Random phases so different runs de-correlate the unmodeled components.
  const double ripple_phase = rng_.uniform(0.0, 2.0 * kPi);
  const double drift_phase = rng_.uniform(0.0, 2.0 * kPi);
  for (const auto& interval : timeline) {
    if (interval.end_s <= interval.start_s) {
      throw std::invalid_argument("MonsoonSimulator: empty/negative interval");
    }
    const double base = true_power(interval);
    for (double t = interval.start_s; t < interval.end_s; t += dt) {
      double watts = base;
      watts += config_.ripple_w *
               std::sin(2.0 * kPi * config_.ripple_hz * t + ripple_phase);
      watts += config_.drift_w * std::sin(2.0 * kPi * t / 600.0 + drift_phase);
      watts += rng_.normal(0.0, config_.noise_sd_w);
      samples.push_back({t, std::max(0.0, watts)});
    }
  }
  return samples;
}

double MonsoonSimulator::integrate_energy(const std::vector<PowerSample>& samples) {
  double joules = 0.0;
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = samples[i].t_s - samples[i - 1].t_s;
    if (dt <= 0.0) continue;  // interval boundaries may touch
    joules += 0.5 * (samples[i].watts + samples[i - 1].watts) * dt;
  }
  return joules;
}

double MonsoonSimulator::measure_energy(const std::vector<ActivityInterval>& timeline) {
  // Streaming integration: at 5 kHz a 600 s session is 3M samples; avoid
  // materialising them when only the integral is needed.
  const double dt = 1.0 / config_.sample_rate_hz;
  const double ripple_phase = rng_.uniform(0.0, 2.0 * kPi);
  const double drift_phase = rng_.uniform(0.0, 2.0 * kPi);
  double joules = 0.0;
  for (const auto& interval : timeline) {
    if (interval.end_s <= interval.start_s) {
      throw std::invalid_argument("MonsoonSimulator: empty/negative interval");
    }
    const double base = true_power(interval);
    double prev_watts = -1.0;
    for (double t = interval.start_s; t < interval.end_s; t += dt) {
      double watts = base;
      watts += config_.ripple_w *
               std::sin(2.0 * kPi * config_.ripple_hz * t + ripple_phase);
      watts += config_.drift_w * std::sin(2.0 * kPi * t / 600.0 + drift_phase);
      watts += rng_.normal(0.0, config_.noise_sd_w);
      watts = std::max(0.0, watts);
      if (prev_watts >= 0.0) joules += 0.5 * (watts + prev_watts) * dt;
      prev_watts = watts;
    }
  }
  return joules;
}

}  // namespace eacs::power
