#include "eacs/power/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::power {

PowerModel::PowerModel(PowerModelParams params) : params_(params) {
  if (params_.e_ref_j_per_mb <= 0.0 || params_.p_base_w <= 0.0 ||
      params_.k_per_db < 0.0 || params_.c1_w_per_mbps < 0.0 ||
      params_.tail_energy_j < 0.0) {
    throw std::invalid_argument("PowerModel: invalid parameters");
  }
}

double PowerModel::energy_per_mb(double s_dbm) const noexcept {
  const double e =
      params_.e_ref_j_per_mb * std::exp(params_.k_per_db * (params_.s_ref_dbm - s_dbm));
  return std::clamp(e, params_.e_min_j_per_mb, params_.e_max_j_per_mb);
}

double PowerModel::download_energy(double size_mb, double s_dbm) const noexcept {
  if (size_mb <= 0.0) return 0.0;
  return size_mb * energy_per_mb(s_dbm);
}

double PowerModel::download_power(double s_dbm, double throughput_mbps) const noexcept {
  if (throughput_mbps <= 0.0) return 0.0;
  const double mb_per_s = throughput_mbps / 8.0;
  return energy_per_mb(s_dbm) * mb_per_s;
}

double PowerModel::playback_power(double bitrate_mbps) const noexcept {
  const double r = std::max(0.0, bitrate_mbps);
  return params_.p_base_w + params_.c0_w + params_.c1_w_per_mbps * r;
}

double PowerModel::task_energy(const TaskEnergyInput& input) const noexcept {
  double energy = download_energy(input.size_mb, input.signal_dbm);
  if (input.play_s > 0.0) {
    energy += playback_power(input.bitrate_mbps) * input.play_s;
  }
  if (input.rebuffer_s > 0.0) {
    energy += pause_power() * input.rebuffer_s;
  }
  if (params_.tail_energy_j > 0.0 && input.size_mb > 0.0) {
    energy += params_.tail_energy_j * static_cast<double>(input.download_bursts);
  }
  return energy;
}

}  // namespace eacs::power
