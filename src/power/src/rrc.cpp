#include "eacs/power/rrc.h"

#include <algorithm>
#include <stdexcept>

namespace eacs::power {

RrcSimulator::RrcSimulator(RrcConfig config) : config_(config) {
  if (config_.inactivity_s < 0.0 || config_.short_drx_s < 0.0 ||
      config_.long_drx_s < 0.0) {
    throw std::invalid_argument("RrcSimulator: negative timer");
  }
}

double RrcSimulator::single_tail_energy_j() const noexcept {
  return config_.connected_tail_w * config_.inactivity_s +
         config_.short_drx_w * config_.short_drx_s +
         config_.long_drx_w * config_.long_drx_s;
}

RrcBreakdown RrcSimulator::analyze(std::vector<TransferBurst> bursts,
                                   double session_end_s) const {
  for (const auto& burst : bursts) {
    if (burst.end_s < burst.start_s || burst.start_s < 0.0) {
      throw std::invalid_argument("RrcSimulator: malformed burst");
    }
  }
  std::sort(bursts.begin(), bursts.end(),
            [](const TransferBurst& a, const TransferBurst& b) {
              return a.start_s < b.start_s;
            });
  // Merge overlapping / touching bursts: the radio does not distinguish
  // back-to-back requests.
  std::vector<TransferBurst> merged;
  for (const auto& burst : bursts) {
    if (!merged.empty() && burst.start_s <= merged.back().end_s) {
      merged.back().end_s = std::max(merged.back().end_s, burst.end_s);
    } else {
      merged.push_back(burst);
    }
  }
  if (!merged.empty() && session_end_s < merged.back().end_s) {
    throw std::invalid_argument("RrcSimulator: session ends before last burst");
  }

  RrcBreakdown out;
  const double tail_span =
      config_.inactivity_s + config_.short_drx_s + config_.long_drx_s;

  // The machine starts IDLE at t = 0.
  double cursor = 0.0;
  bool radio_warm = false;  // still within a previous burst's tail at cursor?

  // Charges the gap [from, to] given the tail budget carried into it.
  const auto charge_gap = [&](double from, double to) {
    double remaining = to - from;
    if (remaining <= 0.0) return;
    // Walk the tail phases in order.
    const double phases[3][2] = {
        {config_.inactivity_s, config_.connected_tail_w},
        {config_.short_drx_s, config_.short_drx_w},
        {config_.long_drx_s, config_.long_drx_w},
    };
    double offset = 0.0;  // how far into the tail the gap starts (0 here:
                          // every gap starts a fresh tail because a burst
                          // just ended)
    for (const auto& [span, watts] : phases) {
      const double available = std::max(0.0, span - offset);
      offset = std::max(0.0, offset - span);
      const double used = std::min(available, remaining);
      if (used > 0.0) {
        out.tail_time_s += used;
        out.tail_energy_j += watts * used;
        remaining -= used;
      }
      if (remaining <= 0.0) break;
    }
    if (remaining > 0.0) {
      out.idle_time_s += remaining;
      out.idle_energy_j += config_.idle_w * remaining;
    }
  };

  for (const auto& burst : merged) {
    const double gap_start = cursor;
    const double gap_end = burst.start_s;
    if (gap_end > gap_start) {
      if (radio_warm) {
        charge_gap(gap_start, gap_end);
        // Did the tail fully elapse during the gap? Then the radio dropped
        // to IDLE and this burst pays a promotion.
        if (gap_end - gap_start >= tail_span) {
          radio_warm = false;
        }
      } else {
        out.idle_time_s += gap_end - gap_start;
        out.idle_energy_j += config_.idle_w * (gap_end - gap_start);
      }
    }
    if (!radio_warm) {
      ++out.promotions;
      out.promotion_energy_j += config_.promotion_energy_j;
    }
    const double active = burst.end_s - burst.start_s;
    out.active_time_s += active;
    out.active_energy_j += config_.connected_active_w * active;
    radio_warm = true;
    cursor = burst.end_s;
  }

  // Trailing gap to the session end.
  if (session_end_s > cursor) {
    if (radio_warm) {
      charge_gap(cursor, session_end_s);
    } else {
      out.idle_time_s += session_end_s - cursor;
      out.idle_energy_j += config_.idle_w * (session_end_s - cursor);
    }
  }
  return out;
}

}  // namespace eacs::power
