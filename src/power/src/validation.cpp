#include "eacs/power/validation.h"

#include <cmath>
#include <stdexcept>

namespace eacs::power {

std::vector<ValidationRow> validate_power_model(const PowerModel& model,
                                                const media::BitrateLadder& ladder,
                                                const ValidationConfig& config) {
  if (config.video_duration_s <= 0.0 || config.segment_duration_s <= 0.0 ||
      config.throughput_mbps <= 0.0) {
    throw std::invalid_argument("validate_power_model: bad configuration");
  }
  std::vector<ValidationRow> rows;
  const auto num_segments = static_cast<std::size_t>(
      std::ceil(config.video_duration_s / config.segment_duration_s - 1e-9));

  for (std::size_t level = 0; level < ladder.size(); ++level) {
    const double bitrate = ladder.bitrate(level);
    const double segment_mb = bitrate * config.segment_duration_s / 8.0;
    const double download_s = segment_mb * 8.0 / config.throughput_mbps;

    // Activity timeline: the video plays continuously; each segment's
    // download occupies the head of its playback slot (steady-state DASH
    // keeps the buffer topped up one segment at a time).
    std::vector<ActivityInterval> timeline;
    timeline.reserve(num_segments * 2);
    for (std::size_t k = 0; k < num_segments; ++k) {
      const double slot_start = static_cast<double>(k) * config.segment_duration_s;
      const double slot_end =
          std::min(slot_start + config.segment_duration_s, config.video_duration_s);
      const double dl_end = std::min(slot_start + download_s, slot_end);
      if (dl_end > slot_start) {
        timeline.push_back({slot_start, dl_end, /*playing=*/true, bitrate,
                            /*downloading=*/true, config.signal_dbm,
                            config.throughput_mbps});
      }
      if (slot_end > dl_end) {
        timeline.push_back({dl_end, slot_end, /*playing=*/true, bitrate,
                            /*downloading=*/false, config.signal_dbm, 0.0});
      }
    }

    MonsoonConfig channel = config.monsoon;
    channel.seed = config.monsoon.seed ^ (level * 0x9E37ULL + 1);
    MonsoonSimulator monsoon(channel, model);

    ValidationRow row;
    row.bitrate_mbps = bitrate;
    row.measured_j = monsoon.measure_energy(timeline);

    // Analytic prediction, following the paper: identify download periods,
    // charge per-byte radio energy for them, playback power for the whole
    // clip.
    TaskEnergyInput whole_clip;
    whole_clip.size_mb = segment_mb * static_cast<double>(num_segments);
    whole_clip.bitrate_mbps = bitrate;
    whole_clip.signal_dbm = config.signal_dbm;
    whole_clip.play_s = config.video_duration_s;
    whole_clip.rebuffer_s = 0.0;
    row.calculated_j = model.task_energy(whole_clip);

    row.error_ratio = row.measured_j > 0.0
                          ? std::fabs(row.measured_j - row.calculated_j) / row.measured_j
                          : 0.0;
    rows.push_back(row);
  }
  return rows;
}

double mean_error_ratio(const std::vector<ValidationRow>& rows) {
  if (rows.empty()) return 0.0;
  double total = 0.0;
  for (const auto& row : rows) total += row.error_ratio;
  return total / static_cast<double>(rows.size());
}

}  // namespace eacs::power
