#include "eacs/power/battery.h"

#include <stdexcept>

namespace eacs::power {

Battery::Battery(BatteryConfig config) : config_(config) {
  if (config_.capacity_mah <= 0.0 || config_.nominal_voltage <= 0.0 ||
      config_.usable_fraction <= 0.0 || config_.usable_fraction > 1.0 ||
      config_.conversion_efficiency <= 0.0 || config_.conversion_efficiency > 1.0) {
    throw std::invalid_argument("Battery: invalid configuration");
  }
}

double Battery::usable_energy_j() const noexcept {
  // mAh * V = mWh; * 3.6 = joules.
  return config_.capacity_mah * config_.nominal_voltage * 3.6 *
         config_.usable_fraction * config_.conversion_efficiency;
}

double Battery::drain_fraction(double joules) const noexcept {
  if (joules <= 0.0) return 0.0;
  return joules / usable_energy_j();
}

double Battery::hours_at(double watts) const noexcept {
  if (watts <= 0.0) return 0.0;
  return usable_energy_j() / watts / 3600.0;
}

double Battery::video_minutes(double session_energy_j,
                              double session_duration_s) const {
  if (session_duration_s <= 0.0) {
    throw std::invalid_argument("Battery: session duration must be > 0");
  }
  if (session_energy_j <= 0.0) return 0.0;
  const double watts = session_energy_j / session_duration_s;
  return hours_at(watts) * 60.0;
}

}  // namespace eacs::power
