#pragma once
// Power-model validation harness (Table VI).
//
// Reproduces the paper's methodology: stream a fixed test video at each
// Table II bitrate under a -90 dBm signal, record the "real" power trace with
// the (simulated) Monsoon monitor, identify the download periods, and compare
// the integrated measurement against the analytic model's prediction. The
// paper reports error ratios consistently below 3% (mean 1.43%).

#include <vector>

#include "eacs/media/bitrate_ladder.h"
#include "eacs/power/model.h"
#include "eacs/power/monsoon.h"

namespace eacs::power {

/// One Table VI row.
struct ValidationRow {
  double bitrate_mbps = 0.0;
  double measured_j = 0.0;    ///< integrated (simulated) Monsoon trace
  double calculated_j = 0.0;  ///< analytic PowerModel prediction
  double error_ratio = 0.0;   ///< |measured - calculated| / measured
};

/// Validation experiment configuration.
struct ValidationConfig {
  double video_duration_s = 300.0;  ///< the paper's short YouTube test clip
  double segment_duration_s = 2.0;
  double signal_dbm = -90.0;
  double throughput_mbps = 20.0;    ///< stable download rate at -90 dBm
  MonsoonConfig monsoon;            ///< measurement-channel knobs
};

/// Runs the validation across a ladder. One row per rung, ascending bitrate.
std::vector<ValidationRow> validate_power_model(
    const PowerModel& model, const media::BitrateLadder& ladder,
    const ValidationConfig& config = {});

/// Mean error ratio across rows.
double mean_error_ratio(const std::vector<ValidationRow>& rows);

}  // namespace eacs::power
