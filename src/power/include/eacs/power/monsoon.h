#pragma once
// Monsoon power-monitor simulator.
//
// The paper validates its power model against a Monsoon monitor attached to
// the phone (Table VI). We cannot attach hardware, so this module synthesises
// the measurement channel: given a session's activity timeline (which
// intervals played video at which bitrate, which intervals downloaded at
// which signal strength and throughput), it produces a dense power-sample
// stream containing effects the *analytic* model deliberately ignores —
// periodic CPU/wakeup ripple, slow thermal drift and white measurement noise
// — and integrates it to a "measured" energy the way one integrates Monsoon
// output. Comparing that against PowerModel::task_energy reproduces the
// paper's validation methodology (error consistently < 3%).

#include <cstdint>
#include <vector>

#include "eacs/power/model.h"
#include "eacs/util/rng.h"

namespace eacs::power {

/// One homogeneous interval of phone activity.
struct ActivityInterval {
  double start_s = 0.0;
  double end_s = 0.0;
  bool playing = false;            ///< video decoding on screen
  double bitrate_mbps = 0.0;       ///< bitrate being played (if playing)
  bool downloading = false;        ///< radio actively receiving
  double signal_dbm = -90.0;       ///< signal during the interval
  double throughput_mbps = 0.0;    ///< receive rate during the interval
};

/// One sampled power reading.
struct PowerSample {
  double t_s = 0.0;
  double watts = 0.0;
};

/// Monsoon channel configuration.
struct MonsoonConfig {
  double sample_rate_hz = 5000.0;  ///< real Monsoon LVPM rate
  double noise_sd_w = 0.05;        ///< white measurement noise
  double ripple_w = 0.06;          ///< unmodeled periodic CPU/wakeup ripple
  double ripple_hz = 1.3;
  double drift_w = 0.02;           ///< slow thermal drift amplitude
  std::uint64_t seed = 77;
};

/// Synthesises and integrates power measurements.
class MonsoonSimulator {
 public:
  explicit MonsoonSimulator(MonsoonConfig config, PowerModel model);

  /// Dense power samples over a timeline of activity intervals.
  std::vector<PowerSample> sample(const std::vector<ActivityInterval>& timeline);

  /// Trapezoidal integration of a sample stream to joules.
  static double integrate_energy(const std::vector<PowerSample>& samples);

  /// Convenience: sample + integrate without materialising the stream.
  double measure_energy(const std::vector<ActivityInterval>& timeline);

 private:
  double true_power(const ActivityInterval& interval) const noexcept;

  MonsoonConfig config_;
  PowerModel model_;
  eacs::Rng rng_;
};

}  // namespace eacs::power
