#pragma once
// The paper's power model (Section III-C, Fig. 1(a), Table IV/VI).
//
// Two operating modes:
//  * downloading — wireless-interface energy dominated by the radio; the
//    paper's Fig. 1(a) shows the energy to move a fixed 100 MB growing from
//    49 J at -90 dBm to 193 J at -115 dBm. We model a per-megabyte energy
//        e(s) = e_ref * exp(k * (s_ref - s))   [J/MB],  s in dBm
//    with e_ref = 0.49 J/MB at s_ref = -90 dBm and k = ln(193/49)/25 per dB.
//  * playback only — screen + decode power as an affine function of bitrate:
//        P_play(r) = P_base + c0 + c1 * r      [W]
//    calibrated so a 300 s session at -90 dBm reproduces Table VI's
//    597..708 J whole-phone range across the Table II ladder.
//
// Task energy (Eqs. 8-10 reconstruction): for task i downloading a segment of
// size B_i at signal s_i while the player plays buffered content,
//    E(i) = B_i * e(s_i)                       radio energy
//         + P_play(r_played) * t_play          playback energy
//         + P_pause * t_rebuf                  screen-on stalled time
// where the rebuffering term uses "P(0, s)" semantics — downloading continues
// (covered by the per-byte term) but no video plays.

#include <cstddef>

namespace eacs::power {

/// Coefficients of the power model (our Table IV).
struct PowerModelParams {
  // Radio per-byte energy e(s).
  double e_ref_j_per_mb = 0.49;   ///< J/MB at the reference signal
  double s_ref_dbm = -90.0;       ///< reference signal strength
  double k_per_db = 0.054823;     ///< ln(193/49)/25: halves/doubles per ~12.6 dB
  double e_min_j_per_mb = 0.05;   ///< clamp under excellent signal
  double e_max_j_per_mb = 8.0;    ///< clamp under terrible signal

  // Playback power P_play(r) = p_base + c0 + c1 * r.
  double p_base_w = 1.95;         ///< screen + SoC floor while video plays
  double c0_w = 0.01;             ///< decode pipeline fixed cost
  double c1_w_per_mbps = 0.006;   ///< decode cost growth with bitrate

  // Power while stalled (screen on, spinner, no decode).
  double p_pause_w = 1.80;

  // Optional LTE tail energy extension (RRC CONNECTED -> IDLE demotion):
  // charged once per download burst that is followed by radio idleness.
  double tail_energy_j = 0.0;     ///< 0 disables the tail model
};

/// Inputs for one task's energy (one segment download + its playback window).
struct TaskEnergyInput {
  double size_mb = 0.0;          ///< downloaded bytes for this task, MB
  double bitrate_mbps = 0.0;     ///< bitrate of the content being *played*
  double signal_dbm = -90.0;     ///< mean signal strength during the download
  double play_s = 0.0;           ///< seconds of video played during the task
  double rebuffer_s = 0.0;       ///< seconds stalled during the task
  std::size_t download_bursts = 1;  ///< bursts, for the tail-energy extension
};

/// Evaluates the power model.
class PowerModel {
 public:
  explicit PowerModel(PowerModelParams params = {});

  const PowerModelParams& params() const noexcept { return params_; }

  /// Radio energy to move one megabyte at signal strength `s_dbm` [J/MB].
  double energy_per_mb(double s_dbm) const noexcept;

  /// Radio energy for a transfer of `size_mb` at `s_dbm` [J].
  double download_energy(double size_mb, double s_dbm) const noexcept;

  /// Instantaneous radio power while downloading at `throughput_mbps` under
  /// signal `s_dbm`: e(s) * throughput [W]. Used by the Monsoon simulator.
  double download_power(double s_dbm, double throughput_mbps) const noexcept;

  /// Playback power at bitrate `r` [W] (includes the base/screen term).
  double playback_power(double bitrate_mbps) const noexcept;

  /// Power while stalled [W].
  double pause_power() const noexcept { return params_.p_pause_w; }

  /// Whole-task energy (Eq. 10 reconstruction) [J].
  double task_energy(const TaskEnergyInput& input) const noexcept;

 private:
  PowerModelParams params_;
};

}  // namespace eacs::power
