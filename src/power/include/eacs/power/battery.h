#pragma once
// Battery model: joules to user-meaningful battery life.
//
// The paper reports joules; what a user feels is minutes of video per
// charge. This model converts session energy into state-of-charge drain and
// achievable playback time for a phone battery (defaults: the LG Nexus 5X's
// 2700 mAh / 3.85 V pack used throughout the paper), including a
// configurable conversion efficiency for regulator/charger losses.

#include <cstddef>

namespace eacs::power {

/// Battery pack parameters.
struct BatteryConfig {
  double capacity_mah = 2700.0;    ///< LG Nexus 5X
  double nominal_voltage = 3.85;   ///< Li-ion nominal
  double usable_fraction = 0.95;   ///< OS cutoff before true empty
  double conversion_efficiency = 0.90;  ///< regulator losses: joules drawn
                                        ///< from the pack per joule consumed
};

/// Converts between energy and battery state.
class Battery {
 public:
  explicit Battery(BatteryConfig config = {});

  const BatteryConfig& config() const noexcept { return config_; }

  /// Usable pack energy in joules.
  double usable_energy_j() const noexcept;

  /// Fraction of the pack a load of `joules` consumes (>= 0; can exceed 1).
  double drain_fraction(double joules) const noexcept;

  /// Hours of continuous operation at `watts` from a full charge.
  double hours_at(double watts) const noexcept;

  /// Minutes of video playback a full charge sustains, given one measured
  /// session (energy over wall-clock seconds). Throws std::invalid_argument
  /// for non-positive session duration.
  double video_minutes(double session_energy_j, double session_duration_s) const;

 private:
  BatteryConfig config_;
};

}  // namespace eacs::power
