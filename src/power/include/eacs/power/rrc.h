#pragma once
// LTE RRC state-machine radio-energy model (extension).
//
// The paper's per-byte model (Fig. 1(a)) folds the radio's behaviour into
// e(signal) J/MB. The tail-energy literature it cites (Huang et al.
// MobiSys'12; Yang & Cao TWC'18) shows a second-order effect that per-byte
// accounting misses: after each transfer the radio lingers in
// RRC_CONNECTED and DRX states for seconds ("tail"), burning energy
// without moving data. Segment pacing therefore matters — many small
// spaced downloads pay many tails, batched downloads amortise them.
//
// This module implements the standard 4-state machine:
//
//   IDLE --(data)--> CONNECTED --T_inactivity--> SHORT_DRX
//        <---------- LONG_DRX <--T_short_drx ----
//                       |  T_long_drx
//                       v
//                     IDLE
//
// with per-state power draws and a promotion cost on IDLE->CONNECTED.
// `RrcSimulator::analyze` consumes a session's transfer bursts and returns
// the full energy/time breakdown; `sim/metrics.h` exposes an RRC-aware
// session energy built on it.

#include <cstddef>
#include <vector>

namespace eacs::power {

/// RRC machine parameters (defaults follow published LTE measurements).
struct RrcConfig {
  // Timers (seconds).
  double inactivity_s = 0.2;   ///< CONNECTED continuous-rx -> short DRX
  double short_drx_s = 1.0;    ///< short DRX -> long DRX
  double long_drx_s = 10.0;    ///< long DRX -> IDLE (the "tail" end)
  // Per-state power (watts), radio subsystem only.
  double connected_active_w = 1.1;  ///< receiving data (base; per-byte energy
                                    ///< from PowerModel::e(s) rides on top in
                                    ///< combined accounting)
  double connected_tail_w = 1.0;    ///< CONNECTED, no data
  double short_drx_w = 0.65;
  double long_drx_w = 0.35;
  double idle_w = 0.01;
  // Promotion (IDLE -> CONNECTED) cost.
  double promotion_energy_j = 0.45;
  double promotion_latency_s = 0.26;
};

/// One radio transfer burst.
struct TransferBurst {
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Aggregate outcome of an RRC analysis.
struct RrcBreakdown {
  double active_time_s = 0.0;     ///< receiving data
  double tail_time_s = 0.0;       ///< CONNECTED-tail + short DRX + long DRX
  double idle_time_s = 0.0;
  double active_energy_j = 0.0;   ///< state power during transfers
  double tail_energy_j = 0.0;     ///< energy burnt in tails
  double idle_energy_j = 0.0;
  double promotion_energy_j = 0.0;
  std::size_t promotions = 0;     ///< IDLE -> CONNECTED transitions

  double total_energy_j() const noexcept {
    return active_energy_j + tail_energy_j + idle_energy_j + promotion_energy_j;
  }
};

/// Replays transfer bursts through the RRC machine.
class RrcSimulator {
 public:
  explicit RrcSimulator(RrcConfig config = {});

  const RrcConfig& config() const noexcept { return config_; }

  /// Analyzes bursts (must be time-ordered and non-overlapping; overlapping
  /// bursts are merged) over [0, session_end_s]. Throws
  /// std::invalid_argument on negative/inverted bursts or a session end
  /// before the last burst.
  RrcBreakdown analyze(std::vector<TransferBurst> bursts, double session_end_s) const;

  /// Tail energy after a single isolated burst (the textbook number).
  double single_tail_energy_j() const noexcept;

 private:
  RrcConfig config_;
};

}  // namespace eacs::power
