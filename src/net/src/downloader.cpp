#include "eacs/net/downloader.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::net {
namespace {

// Solves for x >= 0 such that v0*x + 0.5*m*x^2 == target, where throughput is
// v(t) = v0 + m*t over the interval and target > 0. Assumes a root exists
// (caller checked the full-interval integral exceeds target).
double solve_partial_interval(double v0, double m, double target) {
  if (std::fabs(m) < 1e-12) {
    return target / v0;
  }
  // 0.5*m*x^2 + v0*x - target = 0.
  const double disc = v0 * v0 + 2.0 * m * target;
  const double sqrt_disc = std::sqrt(std::max(0.0, disc));
  // The physically meaningful (smallest positive) root.
  const double root = (-v0 + sqrt_disc) / m;
  if (root >= 0.0) return root;
  return (-v0 - sqrt_disc) / m;
}

}  // namespace

SegmentDownloader::SegmentDownloader(const trace::TimeSeries& throughput_mbps)
    : throughput_(std::make_shared<trace::TimeSeries>(throughput_mbps)) {
  validate();
}

SegmentDownloader::SegmentDownloader(trace::TimeSeries&& throughput_mbps)
    : throughput_(std::make_shared<trace::TimeSeries>(std::move(throughput_mbps))) {
  validate();
}

SegmentDownloader::SegmentDownloader(std::shared_ptr<const trace::TimeSeries> throughput_mbps)
    : throughput_(std::move(throughput_mbps)) {
  if (!throughput_) {
    throw std::invalid_argument("SegmentDownloader: null throughput trace");
  }
  validate();
}

void SegmentDownloader::validate() const {
  if (throughput_->empty()) {
    throw std::invalid_argument("SegmentDownloader: empty throughput trace");
  }
  for (const auto& point : throughput_->samples()) {
    if (point.value < 0.0) {
      throw std::invalid_argument("SegmentDownloader: negative throughput");
    }
  }
}

double SegmentDownloader::bandwidth_at(double t_s) const {
  return throughput_->linear_at(t_s);
}

DownloadResult SegmentDownloader::download(double start_s, double size_megabits) const {
  if (size_megabits < 0.0) {
    throw std::invalid_argument("SegmentDownloader: negative size");
  }
  DownloadResult result;
  result.start_s = start_s;
  result.size_megabits = size_megabits;
  if (size_megabits == 0.0) {
    result.end_s = start_s;
    result.mean_throughput_mbps = bandwidth_at(start_s);
    return result;
  }

  double remaining = size_megabits;
  double cursor = start_s;
  double cursor_value = throughput_->linear_at(start_s);

  // Walk the trace breakpoints after the start time. The first one is found
  // by binary search: on a sorted trace this lands on exactly the first
  // sample the old `t_s <= start_s` linear skip would have kept, so the
  // accumulation below is bit-identical to the linear-scan version.
  const auto samples = throughput_->samples();
  auto it = std::upper_bound(samples.begin(), samples.end(), start_s,
                             [](double t, const trace::TimePoint& p) { return t < p.t_s; });
  for (; it != samples.end(); ++it) {
    const auto& point = *it;
    const double dt = point.t_s - cursor;
    if (dt <= 0.0) {
      // Zero-width breakpoint (duplicate timestamp): a step discontinuity.
      // No bytes move in zero time; adopt the post-step rate and continue.
      cursor_value = point.value;
      continue;
    }
    const double chunk = 0.5 * (cursor_value + point.value) * dt;
    if (chunk >= remaining && chunk > 0.0) {
      const double slope = (point.value - cursor_value) / dt;
      const double x = solve_partial_interval(cursor_value, slope, remaining);
      result.end_s = cursor + std::min(x, dt);
      result.mean_throughput_mbps = size_megabits / std::max(1e-12, result.duration_s());
      return result;
    }
    remaining -= chunk;
    cursor = point.t_s;
    cursor_value = point.value;
  }

  // Past the end of the trace: hold the last value.
  const double tail_rate = samples.back().value;
  if (tail_rate <= 1e-9) {
    // Dead link at trace end: report a very long stall rather than dividing
    // by zero; the player treats this as a session-ending condition.
    result.end_s = cursor + 3600.0;
  } else {
    result.end_s = cursor + remaining / tail_rate;
  }
  result.mean_throughput_mbps = size_megabits / std::max(1e-12, result.duration_s());
  return result;
}

}  // namespace eacs::net
