#include "eacs/net/bandwidth_estimator.h"

#include <algorithm>

namespace eacs::net {
namespace {

// Non-positive observations (failed, aborted or fully stalled downloads)
// carry real information — the link is dead — but a zero would blow up the
// harmonic mean. Record them at the floor instead so the estimate collapses
// towards (but never to) zero and recovers once the link returns.
double floored(double throughput_mbps) noexcept {
  return throughput_mbps > 0.0 ? throughput_mbps : kFailureFloorMbps;
}

}  // namespace

HarmonicMeanEstimator::HarmonicMeanEstimator(std::size_t window) : window_(window) {}

void HarmonicMeanEstimator::observe(double throughput_mbps) {
  window_.push(floored(throughput_mbps));
  ++seen_;
}

double HarmonicMeanEstimator::estimate() const { return window_.harmonic_mean(); }

void HarmonicMeanEstimator::reset() {
  window_.clear();
  seen_ = 0;
}

EmaEstimator::EmaEstimator(double alpha) : filter_(alpha) {}

void EmaEstimator::observe(double throughput_mbps) {
  filter_.update(floored(throughput_mbps));
  ++seen_;
}

double EmaEstimator::estimate() const { return filter_.primed() ? filter_.value() : 0.0; }

void EmaEstimator::reset() {
  filter_.reset();
  seen_ = 0;
}

void LastSampleEstimator::observe(double throughput_mbps) {
  last_ = floored(throughput_mbps);
  ++seen_;
}

void LastSampleEstimator::reset() {
  last_ = 0.0;
  seen_ = 0;
}

}  // namespace eacs::net
