#include "eacs/net/bandwidth_estimator.h"

namespace eacs::net {

HarmonicMeanEstimator::HarmonicMeanEstimator(std::size_t window) : window_(window) {}

void HarmonicMeanEstimator::observe(double throughput_mbps) {
  if (throughput_mbps > 0.0) {
    window_.push(throughput_mbps);
    ++seen_;
  }
}

double HarmonicMeanEstimator::estimate() const { return window_.harmonic_mean(); }

void HarmonicMeanEstimator::reset() {
  window_.clear();
  seen_ = 0;
}

EmaEstimator::EmaEstimator(double alpha) : filter_(alpha) {}

void EmaEstimator::observe(double throughput_mbps) {
  if (throughput_mbps > 0.0) {
    filter_.update(throughput_mbps);
    ++seen_;
  }
}

double EmaEstimator::estimate() const { return filter_.primed() ? filter_.value() : 0.0; }

void EmaEstimator::reset() {
  filter_.reset();
  seen_ = 0;
}

void LastSampleEstimator::observe(double throughput_mbps) {
  if (throughput_mbps > 0.0) {
    last_ = throughput_mbps;
    ++seen_;
  }
}

void LastSampleEstimator::reset() {
  last_ = 0.0;
  seen_ = 0;
}

}  // namespace eacs::net
