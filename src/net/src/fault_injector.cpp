#include "eacs/net/fault_injector.h"

#include <algorithm>
#include <stdexcept>

#include "eacs/util/rng.h"

namespace eacs::net {
namespace {

// Per-attempt seed: a pure function of (spec seed, segment, attempt) so a
// retry of one segment never perturbs what any other attempt draws.
std::uint64_t attempt_seed(std::uint64_t seed, std::size_t segment,
                           std::size_t attempt) noexcept {
  std::uint64_t x =
      seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(segment) + 1));
  x ^= 0xBF58476D1CE4E5B9ULL * (static_cast<std::uint64_t>(attempt) + 1);
  return x;
}

}  // namespace

std::vector<OutageWindow> build_outage_schedule(
    const std::vector<OutageWindow>& scripted, double rate_per_min,
    double mean_s, std::uint64_t seed, const trace::TimeSeries& trace) {
  std::vector<OutageWindow> windows;
  for (const auto& w : scripted) {
    if (w.end_s < w.start_s) {
      throw std::invalid_argument("FaultSpec: outage window ends before it starts");
    }
    if (w.duration_s() > 0.0) windows.push_back(w);
  }

  if (rate_per_min > 0.0) {
    eacs::Rng rng(seed);
    const double rate_per_s = rate_per_min / 60.0;
    const double clamped_mean_s = std::max(mean_s, 1e-3);
    double t = trace.start_time() + rng.exponential(rate_per_s);
    while (t < trace.end_time()) {
      const double duration = rng.exponential(1.0 / clamped_mean_s);
      windows.push_back({t, t + duration});
      t += duration + rng.exponential(rate_per_s);
    }
  }

  std::sort(windows.begin(), windows.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.start_s < b.start_s;
            });
  std::vector<OutageWindow> merged;
  for (const auto& w : windows) {
    if (!merged.empty() && w.start_s <= merged.back().end_s) {
      merged.back().end_s = std::max(merged.back().end_s, w.end_s);
    } else {
      merged.push_back(w);
    }
  }
  return merged;
}

trace::TimeSeries outage_zeroed_trace(const trace::TimeSeries& original,
                                      const std::vector<OutageWindow>& windows) {
  if (windows.empty()) return original;

  const auto inside = [&](double t) {
    for (const auto& w : windows) {
      if (t < w.start_s) break;
      if (t < w.end_s) return true;
    }
    return false;
  };

  // Rank orders coincident events: pre-edge value, original sample, post-edge
  // value — so at a window start the healthy value precedes the zero, and at
  // a window end the zero precedes the restored value.
  struct Event {
    double t;
    int rank;
    double value;
  };
  std::vector<Event> events;
  events.reserve(original.size() + 4 * windows.size());
  for (const auto& p : original.samples()) {
    events.push_back({p.t_s, 1, inside(p.t_s) ? 0.0 : p.value});
  }
  for (const auto& w : windows) {
    events.push_back({w.start_s, 0, original.linear_at(w.start_s)});
    events.push_back({w.start_s, 2, 0.0});
    events.push_back({w.end_s, 0, 0.0});
    events.push_back({w.end_s, 2, original.linear_at(w.end_s)});
  }
  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.t < b.t || (a.t == b.t && a.rank < b.rank);
  });

  trace::TimeSeries out;
  for (const auto& e : events) {
    if (!out.empty() && out.samples().back().t_s == e.t &&
        out.samples().back().value == e.value) {
      continue;  // collapse exact duplicates the event expansion produced
    }
    out.append(e.t, e.value);
  }
  return out;
}

FaultInjector::FaultInjector(const trace::TimeSeries& throughput_mbps, FaultSpec spec,
                             const trace::TimeSeries* signal_dbm)
    : spec_(std::move(spec)),
      signal_(signal_dbm),
      schedule_(build_outage_schedule(spec_.outages, spec_.outage_rate_per_min,
                                      spec_.outage_mean_s,
                                      spec_.seed ^ 0x0074'A6E5ULL,
                                      throughput_mbps)),
      downloader_(outage_zeroed_trace(throughput_mbps, schedule_)) {
  if (spec_.failure_prob < 0.0 || spec_.failure_prob > 1.0 ||
      spec_.stall_prob < 0.0 || spec_.stall_prob > 1.0) {
    throw std::invalid_argument("FaultSpec: probabilities must be in [0, 1]");
  }
  if (spec_.signal_failure_per_db > 0.0 && signal_ == nullptr) {
    throw std::invalid_argument(
        "FaultInjector: signal-coupled failures need a signal trace");
  }
}

bool FaultInjector::in_outage(double t_s) const noexcept {
  for (const auto& w : schedule_) {
    if (t_s < w.start_s) return false;
    if (t_s < w.end_s) return true;
  }
  return false;
}

double FaultInjector::failure_probability(double t_s) const {
  double p = spec_.failure_prob;
  if (spec_.signal_failure_per_db > 0.0 && signal_ != nullptr) {
    const double deficit =
        std::max(0.0, spec_.signal_threshold_dbm - signal_->linear_at(t_s));
    p += spec_.signal_failure_per_db * deficit;
  }
  // Capped below 1 so bounded retries always have a chance of progress.
  return std::clamp(p, 0.0, 0.95);
}

AttemptOutcome FaultInjector::attempt(std::size_t segment_index, std::size_t attempt,
                                      double start_s, double size_megabits) const {
  AttemptOutcome out;
  if (!active()) {
    out.result = downloader_.download(start_s, size_megabits);
    return out;
  }

  eacs::Rng rng(attempt_seed(spec_.seed, segment_index, attempt));
  // Fixed draw order (stall, fail, fraction) keeps outcomes reproducible.
  const bool stalled = rng.bernoulli(spec_.stall_prob);
  const bool failed = rng.bernoulli(failure_probability(start_s));
  const double fraction = rng.uniform(0.05, 0.95);

  if (stalled) {
    out.stalled = true;
    const double rate = std::max(spec_.stall_rate_mbps, 1e-6);
    out.result.start_s = start_s;
    out.result.size_megabits = size_megabits;
    out.result.end_s = start_s + size_megabits / rate;
    out.result.mean_throughput_mbps = rate;
    return out;
  }

  out.result = downloader_.download(start_s, size_megabits);
  if (failed) {
    out.failed = true;
    out.fail_fraction = fraction;
    out.fail_at_s =
        size_megabits > 0.0
            ? downloader_.download(start_s, size_megabits * fraction).end_s
            : start_s;
  }
  return out;
}

double FaultInjector::megabits_over(double t0, double t1) const {
  return downloader_.trace().integral_over(t0, t1);
}

}  // namespace eacs::net
