#include "eacs/net/prediction.h"

#include <cmath>
#include <stdexcept>

namespace eacs::net {

HoltLinearEstimator::HoltLinearEstimator(double alpha, double beta)
    : alpha_(alpha), beta_(beta) {
  if (alpha <= 0.0 || alpha > 1.0 || beta <= 0.0 || beta > 1.0) {
    throw std::invalid_argument("HoltLinearEstimator: smoothing factors in (0,1]");
  }
}

void HoltLinearEstimator::observe(double throughput_mbps) {
  if (throughput_mbps <= 0.0) return;
  if (seen_ == 0) {
    level_ = throughput_mbps;
    trend_ = 0.0;
  } else {
    const double prev_level = level_;
    level_ = alpha_ * throughput_mbps + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  }
  ++seen_;
}

double HoltLinearEstimator::estimate() const {
  if (seen_ == 0) return 0.0;
  return std::max(0.0, level_ + trend_);  // one-step-ahead forecast
}

void HoltLinearEstimator::reset() {
  level_ = 0.0;
  trend_ = 0.0;
  seen_ = 0;
}

SignalAwareEstimator::SignalAwareEstimator(trace::ThroughputModel capacity_model,
                                           std::size_t window, double signal_weight)
    : capacity_model_(capacity_model), history_(window), signal_weight_(signal_weight) {
  if (signal_weight_ < 0.0 || signal_weight_ > 1.0) {
    throw std::invalid_argument("SignalAwareEstimator: weight must be in [0,1]");
  }
}

void SignalAwareEstimator::observe_signal(double dbm) {
  last_signal_dbm_ = dbm;
  has_signal_ = true;
}

void SignalAwareEstimator::observe(double throughput_mbps) {
  if (throughput_mbps <= 0.0) return;
  history_.observe(throughput_mbps);
  if (has_signal_) {
    // Calibrate the capacity curve against this link: EMA of the
    // measured/implied ratio.
    const double implied = capacity_model_.capacity_mbps(last_signal_dbm_);
    if (implied > 0.0) {
      const double ratio = throughput_mbps / implied;
      const double alpha = bias_samples_ < 5 ? 0.5 : 0.1;
      capacity_bias_ += alpha * (ratio - capacity_bias_);
      ++bias_samples_;
    }
  }
}

double SignalAwareEstimator::estimate() const {
  const double history = history_.estimate();
  if (!has_signal_ || bias_samples_ == 0) return history;
  const double signal_implied =
      capacity_model_.capacity_mbps(last_signal_dbm_) * capacity_bias_;
  if (history <= 0.0) return signal_implied;
  return (1.0 - signal_weight_) * history + signal_weight_ * signal_implied;
}

void SignalAwareEstimator::reset() {
  history_.reset();
  has_signal_ = false;
  last_signal_dbm_ = -90.0;
  capacity_bias_ = 1.0;
  bias_samples_ = 0;
}

PredictionEvaluator::PredictionEvaluator(double segment_s) : segment_s_(segment_s) {
  if (segment_s_ <= 0.0) {
    throw std::invalid_argument("PredictionEvaluator: segment duration must be > 0");
  }
}

PredictionScore PredictionEvaluator::score(const std::string& name,
                                           BandwidthEstimator& estimator,
                                           const trace::TimeSeries& throughput,
                                           const trace::TimeSeries* signal_dbm) const {
  estimator.reset();
  PredictionScore result;
  result.name = name;
  double abs_sum = 0.0;
  double pct_sum = 0.0;
  double sq_sum = 0.0;
  std::size_t n = 0;

  auto* signal_aware = dynamic_cast<SignalAwareEstimator*>(&estimator);
  const double end = throughput.end_time();
  for (double t = throughput.start_time(); t + 2.0 * segment_s_ <= end;
       t += segment_s_) {
    const double observed = throughput.mean_over(t, t + segment_s_);
    estimator.observe(observed);
    if (signal_aware != nullptr && signal_dbm != nullptr) {
      signal_aware->observe_signal(signal_dbm->linear_at(t + segment_s_));
    }
    const double predicted = estimator.estimate();
    if (predicted <= 0.0) continue;  // warm-up
    const double actual = throughput.mean_over(t + segment_s_, t + 2.0 * segment_s_);
    const double error = predicted - actual;
    abs_sum += std::fabs(error);
    if (actual > 0.0) pct_sum += std::fabs(error) / actual;
    sq_sum += error * error;
    ++n;
  }
  if (n > 0) {
    result.mae_mbps = abs_sum / static_cast<double>(n);
    result.mape = pct_sum / static_cast<double>(n);
    result.rmse_mbps = std::sqrt(sq_sum / static_cast<double>(n));
    result.samples = n;
  }
  return result;
}

}  // namespace eacs::net
