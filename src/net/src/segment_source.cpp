#include "eacs/net/segment_source.h"

#include <algorithm>
#include <stdexcept>

#include "eacs/util/rng.h"

namespace eacs::net {
namespace {

// Per-attempt seed: pure in (spec seed, source id, segment, attempt), so a
// hedged duplicate on one source never perturbs another source's draws and
// two sources sharing a spec seed still fail independently.
std::uint64_t source_attempt_seed(std::uint64_t seed, std::size_t source_id,
                                  std::size_t segment,
                                  std::size_t attempt) noexcept {
  std::uint64_t x =
      seed ^ (0x94D049BB133111EBULL * (static_cast<std::uint64_t>(source_id) + 1));
  x ^= 0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(segment) + 1);
  x ^= 0xBF58476D1CE4E5B9ULL * (static_cast<std::uint64_t>(attempt) + 1);
  return x;
}

// Capacity trace of one source. Exactly 1.0 returns the original unchanged
// (bitwise — required by the trivial-source no-op contract).
trace::TimeSeries scaled_trace(const trace::TimeSeries& original, double scale) {
  if (scale == 1.0) return original;
  trace::TimeSeries out;
  for (const auto& p : original.samples()) out.append(p.t_s, p.value * scale);
  return out;
}

bool inside_windows(const std::vector<OutageWindow>& windows,
                    double t_s) noexcept {
  for (const auto& w : windows) {
    if (t_s < w.start_s) return false;
    if (t_s < w.end_s) return true;
  }
  return false;
}

}  // namespace

const char* to_string(CdnAttemptClass kind) noexcept {
  switch (kind) {
    case CdnAttemptClass::kOk: return "ok";
    case CdnAttemptClass::kHttpError: return "http_error";
    case CdnAttemptClass::kTruncated: return "truncated";
    case CdnAttemptClass::kCorrupted: return "corrupted";
    case CdnAttemptClass::kSlow: return "slow";
  }
  return "unknown";
}

const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

// --- SegmentSource ----------------------------------------------------------

SegmentSource::SegmentSource(const trace::TimeSeries& throughput_mbps,
                             CdnSourceConfig config,
                             const trace::TimeSeries* signal_dbm)
    : config_(std::move(config)),
      signal_(signal_dbm),
      outages_(build_outage_schedule(
          config_.faults.outages, config_.faults.outage_rate_per_min,
          config_.faults.outage_mean_s, config_.faults.seed ^ 0x00D4'A6E5ULL,
          throughput_mbps)),
      episodes_(build_outage_schedule(
          {}, config_.faults.error_rate_per_min,
          config_.faults.error_episode_mean_s,
          config_.faults.seed ^ 0x0E44'0E44ULL, throughput_mbps)),
      downloader_(outage_zeroed_trace(
          scaled_trace(throughput_mbps, config_.throughput_scale), outages_)) {
  const auto& f = config_.faults;
  if (f.error_prob < 0.0 || f.error_prob > 1.0 || f.episode_error_prob < 0.0 ||
      f.episode_error_prob > 1.0 || f.truncate_prob < 0.0 ||
      f.truncate_prob > 1.0 || f.corrupt_prob < 0.0 || f.corrupt_prob > 1.0 ||
      f.slow_start_prob < 0.0 || f.slow_start_prob > 1.0) {
    throw std::invalid_argument("CdnFaultSpec: probabilities must be in [0, 1]");
  }
  if (f.slow_scale <= 0.0 || f.slow_scale > 1.0) {
    throw std::invalid_argument("CdnFaultSpec: slow_scale must be in (0, 1]");
  }
  if (config_.throughput_scale <= 0.0) {
    throw std::invalid_argument("SegmentSource: throughput_scale must be > 0");
  }
  if (config_.base_rtt_s < 0.0) {
    throw std::invalid_argument("SegmentSource: base_rtt_s must be >= 0");
  }
}

bool SegmentSource::in_outage(double t_s) const noexcept {
  return inside_windows(outages_, t_s);
}

double SegmentSource::error_probability(double t_s) const noexcept {
  const auto& f = config_.faults;
  const double p = inside_windows(episodes_, t_s)
                       ? std::max(f.error_prob, f.episode_error_prob)
                       : f.error_prob;
  // Capped below 1 so bounded retries always have a chance of progress.
  return std::clamp(p, 0.0, 0.95);
}

SourceAttemptOutcome SegmentSource::attempt(std::size_t segment,
                                            std::size_t attempt, double start_s,
                                            double size_megabits) const {
  SourceAttemptOutcome out;
  const double rtt = config_.base_rtt_s;

  // The RTT surcharge delays every completion; the measured throughput the
  // estimator sees includes it (size over wall time, as a client measures).
  const auto with_rtt = [&](DownloadResult result) {
    if (rtt > 0.0) {
      result.end_s += rtt;
      const double elapsed = result.end_s - result.start_s;
      if (elapsed > 0.0 && result.size_megabits > 0.0) {
        result.mean_throughput_mbps = result.size_megabits / elapsed;
      }
    }
    return result;
  };

  if (!config_.faults.enabled()) {
    out.result = with_rtt(downloader_.download(start_s, size_megabits));
    return out;
  }

  eacs::Rng rng(
      source_attempt_seed(config_.faults.seed, config_.id, segment, attempt));
  // Fixed draw order (error, truncate, corrupt, slow, fraction) keeps
  // outcomes reproducible regardless of which families are enabled; the
  // families apply in that precedence order.
  const bool http_error = rng.bernoulli(error_probability(start_s));
  const bool truncated = rng.bernoulli(config_.faults.truncate_prob);
  const bool corrupted = rng.bernoulli(config_.faults.corrupt_prob);
  const bool slow = rng.bernoulli(config_.faults.slow_start_prob);
  const double fraction = rng.uniform(0.05, 0.95);

  if (http_error) {
    // 4xx/5xx: dies after one RTT with headers only — no payload bytes.
    out.kind = CdnAttemptClass::kHttpError;
    out.failed = true;
    out.fail_at_s = start_s + std::max(rtt, 0.05);
    out.fail_fraction = 0.0;
    out.result = with_rtt(downloader_.download(start_s, size_megabits));
    return out;
  }

  if (slow) {
    // Stuck in slow start: the transfer crawls at slow_scale of capacity.
    out.kind = CdnAttemptClass::kSlow;
    const auto full = downloader_.download(start_s, size_megabits);
    out.result.start_s = start_s;
    out.result.size_megabits = size_megabits;
    out.result.end_s =
        start_s + full.duration_s() / config_.faults.slow_scale + rtt;
    const double elapsed = out.result.end_s - start_s;
    out.result.mean_throughput_mbps =
        elapsed > 0.0 ? size_megabits / elapsed : 0.0;
    if (truncated) {
      out.failed = true;
      out.kind = CdnAttemptClass::kTruncated;
      out.fail_fraction = fraction;
      out.fail_at_s = start_s + elapsed * fraction;
    }
    return out;
  }

  out.result = with_rtt(downloader_.download(start_s, size_megabits));
  if (truncated) {
    out.kind = CdnAttemptClass::kTruncated;
    out.failed = true;
    out.fail_fraction = fraction;
    out.fail_at_s =
        size_megabits > 0.0
            ? downloader_.download(start_s, size_megabits * fraction).end_s + rtt
            : start_s;
  } else if (corrupted) {
    // Full payload, failed checksum: every byte moved is waste.
    out.kind = CdnAttemptClass::kCorrupted;
    out.failed = true;
    out.fail_fraction = 1.0;
    out.fail_at_s = out.result.end_s;
  }
  return out;
}

DownloadResult SegmentSource::rescue(double start_s, double size_megabits) const {
  return downloader_.download(start_s, size_megabits);
}

double SegmentSource::megabits_over(double t0, double t1) const {
  return downloader_.trace().integral_over(t0, t1);
}

// --- CircuitBreaker ---------------------------------------------------------

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config) : config_(config) {
  if (config_.window == 0) {
    throw std::invalid_argument("CircuitBreaker: window must be > 0");
  }
  if (config_.failure_threshold <= 0.0 || config_.failure_threshold > 1.0) {
    throw std::invalid_argument(
        "CircuitBreaker: failure_threshold must be in (0, 1]");
  }
  if (config_.open_cooldown_s < 0.0) {
    throw std::invalid_argument("CircuitBreaker: cooldown must be >= 0");
  }
  if (config_.half_open_successes == 0) {
    throw std::invalid_argument(
        "CircuitBreaker: half_open_successes must be > 0");
  }
  window_.assign(config_.window, false);
}

void CircuitBreaker::set_state(BreakerState next) noexcept {
  if (next != state_) {
    state_ = next;
    ++transitions_;
  }
}

bool CircuitBreaker::allow(double now_s) {
  if (state_ == BreakerState::kOpen &&
      now_s >= opened_at_s_ + config_.open_cooldown_s) {
    probe_successes_ = 0;
    set_state(BreakerState::kHalfOpen);
  }
  return state_ != BreakerState::kOpen;
}

double CircuitBreaker::failure_rate() const noexcept {
  if (filled_ == 0) return 0.0;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < filled_; ++i) {
    if (window_[i]) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(filled_);
}

void CircuitBreaker::record_success(double /*now_s*/) {
  if (state_ == BreakerState::kHalfOpen) {
    if (++probe_successes_ >= config_.half_open_successes) {
      // Close with a clean slate: old failures do not re-trip the breaker.
      std::fill(window_.begin(), window_.end(), false);
      cursor_ = 0;
      filled_ = 0;
      set_state(BreakerState::kClosed);
    }
    return;
  }
  if (state_ == BreakerState::kOpen) return;
  window_[cursor_] = false;
  cursor_ = (cursor_ + 1) % config_.window;
  filled_ = std::min(filled_ + 1, config_.window);
}

void CircuitBreaker::record_failure(double now_s) {
  if (state_ == BreakerState::kHalfOpen) {
    opened_at_s_ = now_s;
    set_state(BreakerState::kOpen);
    return;
  }
  if (state_ == BreakerState::kOpen) return;
  window_[cursor_] = true;
  cursor_ = (cursor_ + 1) % config_.window;
  filled_ = std::min(filled_ + 1, config_.window);
  if (filled_ >= config_.min_samples &&
      failure_rate() >= config_.failure_threshold) {
    opened_at_s_ = now_s;
    set_state(BreakerState::kOpen);
  }
}

// --- SourceSelector ---------------------------------------------------------

SourceSelector::SourceSelector(std::span<const SegmentSource> sources,
                               SourceSelectorConfig config)
    : sources_(sources), config_(config) {
  if (sources_.empty()) {
    throw std::invalid_argument("SourceSelector: need at least one source");
  }
  if (config_.ewma_alpha <= 0.0 || config_.ewma_alpha > 1.0) {
    throw std::invalid_argument("SourceSelector: ewma_alpha must be in (0, 1]");
  }
  breakers_.reserve(sources_.size());
  scores_.reserve(sources_.size());
  for (const auto& source : sources_) {
    breakers_.emplace_back(config_.breaker);
    scores_.push_back(source.config().throughput_scale);
  }
}

std::size_t SourceSelector::pick_primary(double now_s) {
  std::size_t best = scores_.size();
  for (std::size_t i = 0; i < scores_.size(); ++i) {
    if (!breakers_[i].allow(now_s)) continue;
    if (best == scores_.size() || scores_[i] > scores_[best]) best = i;
  }
  if (best != scores_.size()) return best;
  // Every breaker is open: fall back to the best score overall so the
  // session always makes progress (the request doubles as a probe).
  best = 0;
  for (std::size_t i = 1; i < scores_.size(); ++i) {
    if (scores_[i] > scores_[best]) best = i;
  }
  return best;
}

std::optional<std::size_t> SourceSelector::pick_backup(double now_s,
                                                       std::size_t primary) {
  std::size_t best = scores_.size();
  for (std::size_t i = 0; i < scores_.size(); ++i) {
    if (i == primary || !breakers_[i].allow(now_s)) continue;
    if (best == scores_.size() || scores_[i] > scores_[best]) best = i;
  }
  if (best == scores_.size()) return std::nullopt;
  return best;
}

void SourceSelector::record(std::size_t source, bool success, double mbps,
                            double now_s) {
  if (source >= scores_.size()) {
    throw std::out_of_range("SourceSelector: source index out of range");
  }
  if (success) {
    scores_[source] = (1.0 - config_.ewma_alpha) * scores_[source] +
                      config_.ewma_alpha * std::max(mbps, 0.0);
    breakers_[source].record_success(now_s);
  } else {
    // No throughput observation: decay the score toward zero so a failing
    // source loses its standing even before the breaker trips.
    scores_[source] *= 1.0 - config_.ewma_alpha;
    breakers_[source].record_failure(now_s);
  }
}

}  // namespace eacs::net
