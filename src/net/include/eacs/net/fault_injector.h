#pragma once
// Deterministic fault injection over a throughput trace.
//
// The plain SegmentDownloader models an idealised link: every transfer
// completes and nothing ever times out. Real mobile sessions — the paper's
// moving-vehicle scenarios in particular — hit tunnels (link outages),
// handover drops and HTTP-level failures, and they hit them *more often
// where the signal is weak*, which is exactly where the context-aware
// algorithm claims its savings. This layer wraps the downloader with three
// fault families, all deterministic in (FaultSpec, seed):
//
//  * link outages — throughput forced to zero over an interval; scripted
//    windows (a known tunnel) plus seeded-random windows (Poisson arrivals,
//    exponential durations) are merged into one outage schedule and applied
//    to the trace as zero-width step breakpoints;
//  * per-request failures — an attempt dies after a fraction of its bytes
//    (connection reset); the probability optionally grows with every dB the
//    signal sits below a threshold, tying failures to the paper's Table VI
//    signal model;
//  * stuck transfers (slow loris) — an attempt crawls at a token rate
//    regardless of link capacity until the player's deadline aborts it.
//
// The player-side retry machinery that survives all of this lives in
// eacs::player (PlayerSimulator::run overload taking a FaultInjector).

#include <cstdint>
#include <vector>

#include "eacs/net/downloader.h"
#include "eacs/trace/time_series.h"

namespace eacs::net {

/// One link outage: effective throughput is zero over [start_s, end_s).
struct OutageWindow {
  double start_s = 0.0;
  double end_s = 0.0;

  double duration_s() const noexcept { return end_s - start_s; }
};

/// Full description of the faults to inject. The default-constructed spec
/// injects nothing: FaultInjector{trace, FaultSpec{}} is a strict no-op
/// pass-through around SegmentDownloader.
struct FaultSpec {
  /// Scripted outages (tunnels, known dead zones); merged with random ones.
  std::vector<OutageWindow> outages;

  /// Seeded-random outages: Poisson arrivals at this rate over the trace...
  double outage_rate_per_min = 0.0;
  /// ...with exponentially distributed durations of this mean.
  double outage_mean_s = 6.0;

  /// Baseline probability that any single download attempt fails mid-flight.
  double failure_prob = 0.0;

  /// Signal coupling: adds this much failure probability per dB the signal
  /// sits below `signal_threshold_dbm` at the attempt's start (weak LTE
  /// fails more). Requires a signal trace to be passed to the injector.
  double signal_failure_per_db = 0.0;
  double signal_threshold_dbm = -100.0;

  /// Probability an attempt is a stuck transfer crawling at `stall_rate_mbps`
  /// regardless of link capacity (a slow-loris server / half-dead bearer).
  double stall_prob = 0.0;
  double stall_rate_mbps = 0.05;

  /// Seed for the random outage schedule and all per-attempt draws.
  std::uint64_t seed = 0xFA01'7EC7ULL;

  /// True if any fault family is switched on.
  bool enabled() const noexcept {
    return !outages.empty() || outage_rate_per_min > 0.0 || failure_prob > 0.0 ||
           signal_failure_per_db > 0.0 || stall_prob > 0.0;
  }
};

/// What one download attempt experiences.
struct AttemptOutcome {
  /// Completion against the effective (outage-zeroed) trace. Meaningful when
  /// the attempt neither failed nor stalled; for a failed attempt it is the
  /// hypothetical full completion, for a stalled one the crawl completion.
  DownloadResult result;
  bool failed = false;    ///< dies at `fail_at_s` after `fail_fraction` bytes
  bool stalled = false;   ///< slow loris: crawls at spec.stall_rate_mbps
  double fail_at_s = 0.0;
  double fail_fraction = 0.0;
};

/// Scripted windows validated plus seeded-random windows (Poisson arrivals
/// at `rate_per_min`, exponential durations of mean `mean_s`) drawn over the
/// trace span, merged into one sorted, non-overlapping schedule. Shared by
/// FaultInjector (link outages) and SegmentSource (origin outages and HTTP
/// error episodes). Throws std::invalid_argument on a scripted window that
/// ends before it starts.
std::vector<OutageWindow> build_outage_schedule(
    const std::vector<OutageWindow>& scripted, double rate_per_min,
    double mean_s, std::uint64_t seed, const trace::TimeSeries& trace);

/// The original trace with every window forced to zero. Window edges become
/// zero-width step breakpoints (duplicate timestamps); an empty window list
/// returns the original unchanged (bitwise — the no-op contract).
trace::TimeSeries outage_zeroed_trace(const trace::TimeSeries& original,
                                      const std::vector<OutageWindow>& windows);

/// Wraps a throughput trace with a deterministic fault model. Everything is
/// a pure function of (trace, spec, signal): the same inputs reproduce the
/// same outage schedule and the same per-attempt outcomes bit-for-bit,
/// independent of call order.
class FaultInjector {
 public:
  /// `signal_dbm` (optional, unowned, must outlive the injector) enables the
  /// signal-correlated failure term.
  FaultInjector(const trace::TimeSeries& throughput_mbps, FaultSpec spec,
                const trace::TimeSeries* signal_dbm = nullptr);

  /// False for a default-constructed spec: the injector passes through.
  bool active() const noexcept { return spec_.enabled(); }
  const FaultSpec& spec() const noexcept { return spec_; }

  /// The downloader over the effective (outage-zeroed) throughput trace.
  /// With no outages this is byte-identical to a downloader on the original.
  const SegmentDownloader& downloader() const noexcept { return downloader_; }

  /// Merged outage schedule (scripted + random), sorted, non-overlapping.
  const std::vector<OutageWindow>& outage_schedule() const noexcept {
    return schedule_;
  }

  /// True if `t_s` falls inside an outage window [start, end).
  bool in_outage(double t_s) const noexcept;

  /// Failure probability for an attempt starting at `t_s` (baseline plus the
  /// signal-coupled term), clamped to [0, 0.95] so retries can make progress.
  double failure_probability(double t_s) const;

  /// Simulates one attempt for (`segment_index`, `attempt`). Deterministic:
  /// the draws depend only on (spec.seed, segment_index, attempt), so a
  /// retry of segment 7 never perturbs what segment 8 experiences.
  AttemptOutcome attempt(std::size_t segment_index, std::size_t attempt,
                         double start_s, double size_megabits) const;

  /// Megabits the effective link moves over [t0, t1] — what an aborted
  /// attempt wasted.
  double megabits_over(double t0, double t1) const;

 private:
  FaultSpec spec_;
  const trace::TimeSeries* signal_ = nullptr;
  std::vector<OutageWindow> schedule_;
  SegmentDownloader downloader_;
};

}  // namespace eacs::net
