#pragma once
// Client-side bandwidth estimation.
//
// The paper's online algorithm (and FESTIVE) estimate available bandwidth as
// the harmonic mean of the downloading throughputs of the past several
// segments — the harmonic mean damps isolated spikes, which matters on a
// moving vehicle where throughput fluctuates widely. EMA and last-sample
// estimators are included for the estimator ablation bench.

#include <cstddef>
#include <memory>

#include "eacs/util/filters.h"
#include "eacs/util/stats.h"

namespace eacs::net {

/// Floor at which failed / stalled downloads are recorded (Mbps). Dropping
/// zero-throughput observations would mean an outage never lowers the
/// estimate; a literal zero would pin the harmonic mean at zero forever.
inline constexpr double kFailureFloorMbps = 0.01;

/// Streaming bandwidth estimator interface.
class BandwidthEstimator {
 public:
  virtual ~BandwidthEstimator() = default;

  /// Records the measured throughput of one segment download. Non-positive
  /// values (a failed or fully stalled download) are recorded as
  /// kFailureFloorMbps so estimators react to dead links.
  virtual void observe(double throughput_mbps) = 0;

  /// Current estimate in Mbps.
  ///
  /// Returns 0 before the estimator is primed (no observations yet). Callers
  /// MUST treat 0 as "no estimate", not as a measured dead link: the player
  /// policies fall back to a startup rung (see OnlineBitrateSelector) or a
  /// conservative lowest-level choice when this returns 0. A measured outage
  /// is reported as a small positive value (>= kFailureFloorMbps) instead.
  virtual double estimate() const = 0;

  /// Number of observations consumed.
  virtual std::size_t observations() const = 0;

  virtual void reset() = 0;
};

/// Harmonic mean of the last `window` samples (FESTIVE uses window = 20).
class HarmonicMeanEstimator final : public BandwidthEstimator {
 public:
  explicit HarmonicMeanEstimator(std::size_t window = 20);

  void observe(double throughput_mbps) override;
  double estimate() const override;
  std::size_t observations() const override { return seen_; }
  void reset() override;

 private:
  eacs::SlidingWindow window_;
  std::size_t seen_ = 0;
};

/// Exponential moving average estimator (ablation baseline).
class EmaEstimator final : public BandwidthEstimator {
 public:
  explicit EmaEstimator(double alpha = 0.25);

  void observe(double throughput_mbps) override;
  /// 0.0 until the first observe() primes the filter — per the base-class
  /// contract. Check observations() to distinguish "unprimed" from a genuine
  /// near-zero estimate (which is floored at kFailureFloorMbps anyway).
  double estimate() const override;
  std::size_t observations() const override { return seen_; }
  void reset() override;

 private:
  eacs::EmaFilter filter_;
  std::size_t seen_ = 0;
};

/// Uses only the most recent sample (ablation baseline; maximally reactive
/// and maximally noisy).
class LastSampleEstimator final : public BandwidthEstimator {
 public:
  void observe(double throughput_mbps) override;
  double estimate() const override { return last_; }
  std::size_t observations() const override { return seen_; }
  void reset() override;

 private:
  double last_ = 0.0;
  std::size_t seen_ = 0;
};

}  // namespace eacs::net
