#pragma once
// Client-side bandwidth estimation.
//
// The paper's online algorithm (and FESTIVE) estimate available bandwidth as
// the harmonic mean of the downloading throughputs of the past several
// segments — the harmonic mean damps isolated spikes, which matters on a
// moving vehicle where throughput fluctuates widely. EMA and last-sample
// estimators are included for the estimator ablation bench.

#include <cstddef>
#include <memory>

#include "eacs/util/filters.h"
#include "eacs/util/stats.h"

namespace eacs::net {

/// Streaming bandwidth estimator interface.
class BandwidthEstimator {
 public:
  virtual ~BandwidthEstimator() = default;

  /// Records the measured throughput of one completed segment download.
  virtual void observe(double throughput_mbps) = 0;

  /// Current estimate in Mbps; 0 before any observation.
  virtual double estimate() const = 0;

  /// Number of observations consumed.
  virtual std::size_t observations() const = 0;

  virtual void reset() = 0;
};

/// Harmonic mean of the last `window` samples (FESTIVE uses window = 20).
class HarmonicMeanEstimator final : public BandwidthEstimator {
 public:
  explicit HarmonicMeanEstimator(std::size_t window = 20);

  void observe(double throughput_mbps) override;
  double estimate() const override;
  std::size_t observations() const override { return seen_; }
  void reset() override;

 private:
  eacs::SlidingWindow window_;
  std::size_t seen_ = 0;
};

/// Exponential moving average estimator (ablation baseline).
class EmaEstimator final : public BandwidthEstimator {
 public:
  explicit EmaEstimator(double alpha = 0.25);

  void observe(double throughput_mbps) override;
  double estimate() const override;
  std::size_t observations() const override { return seen_; }
  void reset() override;

 private:
  eacs::EmaFilter filter_;
  std::size_t seen_ = 0;
};

/// Uses only the most recent sample (ablation baseline; maximally reactive
/// and maximally noisy).
class LastSampleEstimator final : public BandwidthEstimator {
 public:
  void observe(double throughput_mbps) override;
  double estimate() const override { return last_; }
  std::size_t observations() const override { return seen_; }
  void reset() override;

 private:
  double last_ = 0.0;
  std::size_t seen_ = 0;
};

}  // namespace eacs::net
