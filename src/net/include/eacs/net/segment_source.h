#pragma once
// Multi-source CDN delivery: per-source server faults, circuit breakers and
// health-scored source selection.
//
// net::FaultInjector models the *link* (the bearer between the device and
// the network); this layer models the *server side* — the CDN edges and
// origins that actually answer segment requests. A session sees N
// SegmentSources (one per manifest BaseURL); each source has its own
// capacity scale, base RTT and a CdnFaultSpec describing four server fault
// families, all deterministic in (spec, seed, source id):
//
//  * origin outages — the source serves nothing over an interval; scripted
//    windows plus seeded-random windows (Poisson arrivals, exponential
//    durations) merged into one schedule and applied to the source's
//    effective trace as zero-width step breakpoints (exactly the link-outage
//    mechanics, but scoped to one source — the other sources stay up);
//  * HTTP error episodes — an attempt dies almost immediately (4xx/5xx after
//    one RTT, headers only, no payload bytes); a baseline per-attempt
//    probability plus seeded episode windows during which the error rate
//    spikes (a misconfigured edge, an overloaded origin);
//  * truncated / corrupted payloads — the connection closes after a fraction
//    of the bytes (truncated), or the full payload lands but fails its
//    checksum so every byte is waste (corrupted);
//  * slow-start degradation — the attempt crawls at a fraction of the
//    source's capacity (an overloaded server that never ramps up).
//
// The default-constructed CdnFaultSpec injects nothing, and a SegmentSource
// with scale 1, RTT 0 and a default spec is a *certified no-op*: its
// effective trace is the session trace itself (no copy-through arithmetic),
// so the player's single-source path is bit-identical to the plain
// SegmentDownloader path.
//
// CircuitBreaker and SourceSelector are the client-side failover machinery:
// a deterministic per-source breaker (closed → open → half-open on a
// failure-rate window) and a selector that scores sources by breaker health
// and EWMA throughput. The player engine (player::CdnLinkModel +
// SessionEngine) drives them and implements hedged requests on top.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "eacs/net/downloader.h"
#include "eacs/net/fault_injector.h"
#include "eacs/trace/time_series.h"

namespace eacs::net {

/// Server-side fault families for one CDN source. The default-constructed
/// spec injects nothing: a source with a default spec never perturbs a run.
struct CdnFaultSpec {
  /// Scripted origin outages (a known maintenance window); merged with the
  /// seeded-random ones into one schedule.
  std::vector<OutageWindow> outages;

  /// Seeded-random origin outages: Poisson arrivals at this rate...
  double outage_rate_per_min = 0.0;
  /// ...with exponentially distributed durations of this mean.
  double outage_mean_s = 8.0;

  /// Baseline probability that an attempt draws an HTTP 4xx/5xx: the request
  /// dies after one RTT with zero payload bytes moved.
  double error_prob = 0.0;

  /// Seeded error *episodes*: Poisson windows at this rate during which the
  /// per-attempt error probability jumps to `episode_error_prob` (an
  /// overloaded origin answering 503 for a stretch).
  double error_rate_per_min = 0.0;
  double error_episode_mean_s = 10.0;
  double episode_error_prob = 0.9;

  /// Probability the connection closes after a fraction of the payload.
  double truncate_prob = 0.0;

  /// Probability the full payload lands but fails its checksum — every byte
  /// is wasted and the attempt counts as failed at its completion time.
  double corrupt_prob = 0.0;

  /// Probability the attempt crawls at `slow_scale` of the source's capacity
  /// (a server stuck in slow start / an overloaded edge).
  double slow_start_prob = 0.0;
  double slow_scale = 0.25;

  /// Seed for the outage/episode schedules and all per-attempt draws.
  std::uint64_t seed = 0xCD4F'417CULL;

  /// True if any fault family is switched on.
  bool enabled() const noexcept {
    return !outages.empty() || outage_rate_per_min > 0.0 || error_prob > 0.0 ||
           error_rate_per_min > 0.0 || truncate_prob > 0.0 ||
           corrupt_prob > 0.0 || slow_start_prob > 0.0;
  }
};

/// What a server fault did to one attempt.
enum class CdnAttemptClass {
  kOk,         ///< clean transfer against the source's effective trace
  kHttpError,  ///< 4xx/5xx after one RTT; zero payload bytes
  kTruncated,  ///< connection closed after `fail_fraction` of the bytes
  kCorrupted,  ///< full payload, failed checksum; every byte wasted
  kSlow,       ///< crawls at spec.slow_scale of the source's capacity
};

/// Stable lower-case identifier (timeline / study output).
const char* to_string(CdnAttemptClass kind) noexcept;

/// Outcome of one attempt against one source.
struct SourceAttemptOutcome {
  /// Completion against the source's effective trace (plus base RTT). For a
  /// failed attempt this is the hypothetical full completion; for a slow one
  /// the crawl completion.
  DownloadResult result;
  CdnAttemptClass kind = CdnAttemptClass::kOk;
  bool failed = false;        ///< kHttpError / kTruncated / kCorrupted
  double fail_at_s = 0.0;     ///< when the attempt dies
  double fail_fraction = 0.0; ///< payload fraction moved before death
};

/// Static description of one CDN source.
struct CdnSourceConfig {
  std::string name = "origin";
  /// Decorrelates per-attempt draws between sources sharing a spec seed.
  std::size_t id = 0;
  /// Capacity multiplier applied to the session throughput trace (an edge
  /// closer than the origin serves faster). Exactly 1.0 skips the
  /// multiplication entirely, keeping the trace bitwise intact.
  double throughput_scale = 1.0;
  /// Added to every attempt's completion (and to the HTTP-error death time).
  double base_rtt_s = 0.0;
  /// Server faults; the default spec is a certified no-op.
  CdnFaultSpec faults;
};

/// One CDN endpoint a session can fetch segments from. Everything is a pure
/// function of (trace, config, signal): identical inputs reproduce identical
/// outage/episode schedules and per-attempt outcomes bit-for-bit.
class SegmentSource {
 public:
  /// `throughput_mbps` is the session link trace the source's capacity is
  /// derived from; `signal_dbm` is optional (unowned, must outlive the
  /// source) and only recorded for symmetry with FaultInjector.
  SegmentSource(const trace::TimeSeries& throughput_mbps, CdnSourceConfig config,
                const trace::TimeSeries* signal_dbm = nullptr);

  const CdnSourceConfig& config() const noexcept { return config_; }
  const std::string& name() const noexcept { return config_.name; }
  std::size_t id() const noexcept { return config_.id; }

  /// True when the source cannot perturb a run: scale 1, RTT 0, default
  /// spec. The player's single-trivial-source path is bit-identical to the
  /// plain downloader path.
  bool trivial() const noexcept {
    return config_.throughput_scale == 1.0 && config_.base_rtt_s == 0.0 &&
           !config_.faults.enabled();
  }

  /// The downloader over the source's effective (scaled, outage-zeroed)
  /// trace. For a trivial source this is byte-identical to a downloader on
  /// the original session trace.
  const SegmentDownloader& downloader() const noexcept { return downloader_; }

  /// Merged origin-outage schedule, sorted, non-overlapping.
  const std::vector<OutageWindow>& outage_schedule() const noexcept {
    return outages_;
  }
  /// Seeded HTTP-error episode windows, sorted, non-overlapping.
  const std::vector<OutageWindow>& error_episodes() const noexcept {
    return episodes_;
  }

  /// True if `t_s` falls inside an origin outage [start, end).
  bool in_outage(double t_s) const noexcept;

  /// HTTP-error probability for an attempt starting at `t_s` (baseline, or
  /// the episode rate inside an episode window), clamped to [0, 0.95].
  double error_probability(double t_s) const noexcept;

  /// Simulates attempt `attempt` of `segment` started at `start_s`.
  /// Deterministic: draws depend only on (spec seed, source id, segment,
  /// attempt), so hedged duplicates on another source never perturb the
  /// primary's outcome.
  SourceAttemptOutcome attempt(std::size_t segment, std::size_t attempt,
                               double start_s, double size_megabits) const;

  /// Held-open rescue transfer: always completes (origin outages still slow
  /// it via the effective trace); no per-attempt faults, no RTT surcharge.
  DownloadResult rescue(double start_s, double size_megabits) const;

  /// Megabits the source's effective capacity moves over [t0, t1] — what an
  /// aborted or losing hedged attempt wasted.
  double megabits_over(double t0, double t1) const;

 private:
  CdnSourceConfig config_;
  const trace::TimeSeries* signal_ = nullptr;
  std::vector<OutageWindow> outages_;
  std::vector<OutageWindow> episodes_;
  SegmentDownloader downloader_;
};

/// Circuit-breaker state (the canonical three-state machine).
enum class BreakerState {
  kClosed,    ///< requests flow; failures are counted
  kOpen,      ///< requests blocked until the cooldown elapses
  kHalfOpen,  ///< probe requests allowed; success closes, failure re-opens
};

/// Stable lower-case identifier (timeline / study output).
const char* to_string(BreakerState state) noexcept;

/// Breaker tuning. Defaults trip after half of a small recent window fails.
struct CircuitBreakerConfig {
  std::size_t window = 8;          ///< sliding window of recent outcomes
  std::size_t min_samples = 4;     ///< no tripping before this many outcomes
  double failure_threshold = 0.5;  ///< open when failure fraction >= this
  double open_cooldown_s = 8.0;    ///< wall time open before half-open probes
  std::size_t half_open_successes = 1;  ///< probe successes needed to close
};

/// Deterministic per-source circuit breaker: closed → open on a failure-rate
/// window, open → half-open after a wall-clock cooldown, half-open → closed
/// on enough probe successes (or straight back to open on a probe failure).
/// No randomness anywhere: state is a pure function of the observation
/// sequence, so breaker-guarded runs stay bit-reproducible.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  const CircuitBreakerConfig& config() const noexcept { return config_; }
  BreakerState state() const noexcept { return state_; }

  /// Whether a request may be sent at `now_s`. An open breaker whose
  /// cooldown has elapsed transitions to half-open here (and allows).
  bool allow(double now_s);

  void record_success(double now_s);
  void record_failure(double now_s);

  /// Failure fraction over the current window (0 when empty).
  double failure_rate() const noexcept;
  /// Count of state changes so far (event plumbing / tests).
  std::size_t transitions() const noexcept { return transitions_; }

 private:
  void set_state(BreakerState next) noexcept;

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  std::vector<bool> window_;   ///< ring of recent outcomes; true = failure
  std::size_t cursor_ = 0;
  std::size_t filled_ = 0;
  double opened_at_s_ = 0.0;
  std::size_t probe_successes_ = 0;
  std::size_t transitions_ = 0;
};

/// Selector tuning: EWMA smoothing for the throughput score plus the breaker
/// applied to every source.
struct SourceSelectorConfig {
  double ewma_alpha = 0.3;  ///< weight of the newest throughput observation
  CircuitBreakerConfig breaker;
};

/// Scores sources by breaker health and EWMA throughput and picks the
/// primary (and optionally a hedge backup) for each attempt. Per-run state:
/// the engine constructs one selector per session run. Deterministic — the
/// pick sequence is a pure function of the observation sequence.
class SourceSelector {
 public:
  /// `sources` is unowned and must outlive the selector; it must be
  /// non-empty. Scores start at each source's nominal capacity scale.
  SourceSelector(std::span<const SegmentSource> sources,
                 SourceSelectorConfig config = {});

  std::size_t num_sources() const noexcept { return scores_.size(); }

  /// Best allowed source (breaker permitting) by score, ties to the lowest
  /// index. If every breaker blocks, falls back to the best score overall so
  /// a session always makes progress.
  std::size_t pick_primary(double now_s);

  /// Best allowed source other than `primary`, or nullopt if none.
  std::optional<std::size_t> pick_backup(double now_s, std::size_t primary);

  /// Feeds one attempt outcome into the breaker and the EWMA score.
  /// `mbps` is the observed throughput (ignored for failures).
  void record(std::size_t source, bool success, double mbps, double now_s);

  const CircuitBreaker& breaker(std::size_t source) const {
    return breakers_[source];
  }
  double score(std::size_t source) const { return scores_[source]; }

 private:
  std::span<const SegmentSource> sources_;
  SourceSelectorConfig config_;
  std::vector<CircuitBreaker> breakers_;
  std::vector<double> scores_;
};

}  // namespace eacs::net
