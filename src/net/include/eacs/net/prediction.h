#pragma once
// Bandwidth prediction beyond the harmonic mean (extension).
//
// The paper uses the harmonic mean "similar to [FESTIVE]" and defers richer
// estimation to its references ([3] ARBITER+, [22] piStream, [23]
// LinkForecast). This module implements that design space behind the
// BandwidthEstimator interface plus an evaluation harness measuring
// prediction error against ground-truth traces:
//
//   * HoltLinearEstimator — double exponential smoothing with a trend term
//     (tracks ramps that any windowed mean lags);
//   * SignalAwareEstimator — LinkForecast-style: fuses the throughput
//     history with the current RSRP reading through the capacity curve,
//     anticipating throughput change *before* it shows up in samples;
//   * PredictionEvaluator — walks a throughput trace, feeds each estimator
//     the per-segment samples a client would see, and scores next-sample
//     predictions (MAE / MAPE / RMSE).

#include <memory>
#include <string>
#include <vector>

#include "eacs/net/bandwidth_estimator.h"
#include "eacs/trace/throughput_gen.h"
#include "eacs/trace/time_series.h"

namespace eacs::net {

/// Holt's linear (double-exponential) smoothing: level + trend.
class HoltLinearEstimator final : public BandwidthEstimator {
 public:
  /// `alpha` smooths the level, `beta` the trend; forecasts one step ahead.
  explicit HoltLinearEstimator(double alpha = 0.4, double beta = 0.2);

  void observe(double throughput_mbps) override;
  double estimate() const override;
  std::size_t observations() const override { return seen_; }
  void reset() override;

 private:
  double alpha_;
  double beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::size_t seen_ = 0;
};

/// Signal-assisted estimator: blends the harmonic-mean history with the
/// capacity implied by the latest signal-strength reading.
///
/// The fusion weight leans on the signal-implied capacity when it diverges
/// from the history (the radio knows about the fade before the next segment
/// measures it) and on the history otherwise.
class SignalAwareEstimator final : public BandwidthEstimator {
 public:
  SignalAwareEstimator(trace::ThroughputModel capacity_model, std::size_t window = 20,
                       double signal_weight = 0.5);

  /// Feeds the latest RSRP reading (call before estimate()).
  void observe_signal(double dbm);

  void observe(double throughput_mbps) override;
  double estimate() const override;
  std::size_t observations() const override { return history_.observations(); }
  void reset() override;

 private:
  trace::ThroughputModel capacity_model_;
  HarmonicMeanEstimator history_;
  double signal_weight_;
  double last_signal_dbm_ = -90.0;
  bool has_signal_ = false;
  /// Running ratio between measured throughput and signal-implied capacity,
  /// calibrating the capacity curve to the link actually observed.
  double capacity_bias_ = 1.0;
  std::size_t bias_samples_ = 0;
};

/// One estimator's aggregate prediction error over a trace.
struct PredictionScore {
  std::string name;
  double mae_mbps = 0.0;   ///< mean absolute error
  double mape = 0.0;       ///< mean absolute percentage error
  double rmse_mbps = 0.0;  ///< root mean squared error
  std::size_t samples = 0;
};

/// Walks a (throughput, signal) trace pair segment by segment: after each
/// simulated segment download the estimators observe its mean throughput
/// (and the signal reading), then predict the next segment's; errors are
/// aggregated into a PredictionScore per estimator.
class PredictionEvaluator {
 public:
  /// `segment_s` sets the sampling cadence (one observation per segment).
  explicit PredictionEvaluator(double segment_s = 2.0);

  PredictionScore score(const std::string& name, BandwidthEstimator& estimator,
                        const trace::TimeSeries& throughput,
                        const trace::TimeSeries* signal_dbm = nullptr) const;

 private:
  double segment_s_;
};

}  // namespace eacs::net
