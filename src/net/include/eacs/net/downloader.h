#pragma once
// Trace-driven segment download simulation.
//
// Given a throughput trace (Mbps over time), computes when a download of a
// given size finishes if started at a given instant — the inverse of the
// trace's time-integral. This is the primitive the player simulator uses to
// replay DASH sessions against recorded or synthetic network traces.

#include "eacs/trace/time_series.h"

namespace eacs::net {

/// Outcome of one simulated transfer.
struct DownloadResult {
  double start_s = 0.0;
  double end_s = 0.0;
  double size_megabits = 0.0;
  /// Effective mean throughput over the transfer (size / duration).
  double mean_throughput_mbps = 0.0;

  double duration_s() const noexcept { return end_s - start_s; }
};

/// Simulates transfers against a fixed throughput trace.
class SegmentDownloader {
 public:
  /// The trace must be non-empty. Beyond its end the last sample's value is
  /// held (the session generators append enough margin that this is rare).
  /// Duplicate (zero-width) breakpoints — step discontinuities, e.g. outage
  /// edges injected by net::FaultInjector or repeated timestamps in recorded
  /// CSV traces — are tolerated.
  explicit SegmentDownloader(const trace::TimeSeries& throughput_mbps);

  /// Computes the completion of a `size_megabits` transfer starting at
  /// `start_s`. Throws std::invalid_argument for negative sizes.
  DownloadResult download(double start_s, double size_megabits) const;

  /// Instantaneous available bandwidth at `t_s` (linear interpolation).
  ///
  /// At a step discontinuity — duplicate timestamps t in the trace — the
  /// lookup resolves to the *last* sample at t, so bandwidth_at(t) returns
  /// the post-step (right-hand) value: the signal is right-continuous. With
  /// k >= 2 samples at the same t, the intermediate duplicates are
  /// unobservable; only the final one defines the value at t. Before the
  /// first sample the first value is held, beyond the last the last.
  double bandwidth_at(double t_s) const;

  const trace::TimeSeries& trace() const noexcept { return throughput_; }

 private:
  trace::TimeSeries throughput_;
};

}  // namespace eacs::net
