#pragma once
// Trace-driven segment download simulation.
//
// Given a throughput trace (Mbps over time), computes when a download of a
// given size finishes if started at a given instant — the inverse of the
// trace's time-integral. This is the primitive the player simulator uses to
// replay DASH sessions against recorded or synthetic network traces.

#include <memory>

#include "eacs/trace/time_series.h"

namespace eacs::net {

/// Outcome of one simulated transfer.
struct DownloadResult {
  double start_s = 0.0;
  double end_s = 0.0;
  double size_megabits = 0.0;
  /// Effective mean throughput over the transfer (size / duration).
  double mean_throughput_mbps = 0.0;

  double duration_s() const noexcept { return end_s - start_s; }
};

/// Simulates transfers against a fixed throughput trace.
class SegmentDownloader {
 public:
  /// The trace must be non-empty. Beyond its end the last sample's value is
  /// held (the session generators append enough margin that this is rare).
  /// Duplicate (zero-width) breakpoints — step discontinuities, e.g. outage
  /// edges injected by net::FaultInjector or repeated timestamps in recorded
  /// CSV traces — are tolerated.
  ///
  /// This overload copies the trace (safe to pass a temporary).
  explicit SegmentDownloader(const trace::TimeSeries& throughput_mbps);

  /// Owning move: adopts the trace without copying it.
  explicit SegmentDownloader(trace::TimeSeries&& throughput_mbps);

  /// Shares an immutable trace. Many downloaders (e.g. one per sweep cell)
  /// can reference the same samples with no per-instance copy. Throws
  /// std::invalid_argument if the pointer is null or the trace invalid.
  explicit SegmentDownloader(std::shared_ptr<const trace::TimeSeries> throughput_mbps);

  /// Computes the completion of a `size_megabits` transfer starting at
  /// `start_s`. Throws std::invalid_argument for negative sizes.
  DownloadResult download(double start_s, double size_megabits) const;

  /// Instantaneous available bandwidth at `t_s` (linear interpolation).
  ///
  /// At a step discontinuity — duplicate timestamps t in the trace — the
  /// lookup resolves to the *last* sample at t, so bandwidth_at(t) returns
  /// the post-step (right-hand) value: the signal is right-continuous. With
  /// k >= 2 samples at the same t, the intermediate duplicates are
  /// unobservable; only the final one defines the value at t. Before the
  /// first sample the first value is held, beyond the last the last.
  double bandwidth_at(double t_s) const;

  const trace::TimeSeries& trace() const noexcept { return *throughput_; }

 private:
  void validate() const;

  std::shared_ptr<const trace::TimeSeries> throughput_;
};

/// Non-owning view of `series` as a shared_ptr (the aliasing constructor with
/// an empty control block). For handing a long-lived trace — e.g. one owned
/// by a SessionTraces that outlives every per-cell run — to the sharing
/// SegmentDownloader constructor without a copy or a heap allocation. The
/// caller is responsible for the series outliving every user of the view.
inline std::shared_ptr<const trace::TimeSeries> borrow_trace(
    const trace::TimeSeries& series) noexcept {
  return std::shared_ptr<const trace::TimeSeries>(
      std::shared_ptr<const trace::TimeSeries>{}, &series);
}

}  // namespace eacs::net
