#include "eacs/core/context_monitor.h"

namespace eacs::core {

ContextMonitor::ContextMonitor(Config config)
    : config_(config),
      vibration_(config.vibration),
      bandwidth_(config.bandwidth_window) {}

void ContextMonitor::update_accel(const sensors::AccelSample& sample) {
  vibration_.update(sample);
}

void ContextMonitor::observe_throughput(double mbps) { bandwidth_.observe(mbps); }

void ContextMonitor::observe_signal(double dbm) { last_signal_dbm_ = dbm; }

ContextSnapshot ContextMonitor::snapshot() const {
  ContextSnapshot snap;
  snap.vibration = vibration_.level();
  snap.bandwidth_mbps = bandwidth_.estimate();
  snap.signal_dbm = last_signal_dbm_;
  snap.vibrating_environment = snap.vibration >= config_.vibrating_threshold;
  return snap;
}

void ContextMonitor::reset() {
  vibration_.reset();
  bandwidth_.reset();
  last_signal_dbm_ = -90.0;
}

}  // namespace eacs::core
