#include "eacs/core/context_monitor.h"

#include <algorithm>
#include <cmath>

namespace eacs::core {

ContextMonitor::ContextMonitor(Config config)
    : config_(config),
      vibration_(config.vibration),
      health_(config.health),
      bandwidth_(config.bandwidth_window) {}

void ContextMonitor::update_accel(const sensors::AccelSample& sample) {
  vibration_.update(sample);
  health_.observe_accel(sample);
  if (std::isfinite(sample.t_s)) clock_s_ = std::max(clock_s_, sample.t_s);
}

void ContextMonitor::observe_throughput(double mbps) { bandwidth_.observe(mbps); }

void ContextMonitor::observe_signal(double dbm) {
  observe_signal(clock_s_, dbm);
}

void ContextMonitor::observe_signal(double t_s, double dbm) {
  if (std::isfinite(dbm)) last_signal_dbm_ = dbm;
  health_.observe_signal(t_s, dbm);
  if (std::isfinite(t_s)) clock_s_ = std::max(clock_s_, t_s);
}

ContextSnapshot ContextMonitor::snapshot() const { return snapshot(clock_s_); }

ContextSnapshot ContextMonitor::snapshot(double now_s) const {
  ContextSnapshot snap;
  snap.vibration = vibration_.level_at(now_s);
  snap.bandwidth_mbps = bandwidth_.estimate();
  snap.signal_dbm = last_signal_dbm_;
  snap.vibrating_environment = snap.vibration >= config_.vibrating_threshold;
  snap.vibration_health = health_.accel_health(now_s);
  snap.signal_health = health_.signal_health(now_s);
  snap.vibration_confidence = health_.vibration_confidence(now_s);
  snap.signal_age_s = health_.signal_age_s(now_s);
  return snap;
}

void ContextMonitor::reset() {
  vibration_.reset();
  health_.reset();
  bandwidth_.reset();
  last_signal_dbm_ = -90.0;
  clock_s_ = 0.0;
}

}  // namespace eacs::core
