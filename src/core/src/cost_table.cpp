#include "eacs/core/cost_table.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eacs/core/cost_stats.h"

namespace eacs::core {

TaskCostTable::TaskCostTable(const Objective& objective,
                             const TaskEnvironment& env, double buffer_s) {
  if (env.size_megabits.empty()) {
    throw std::invalid_argument(
        "TaskCostTable: empty bitrate ladder (no candidate sizes)");
  }
  const std::size_t m = env.size_megabits.size();
  const qoe::QoeModel& qoe = objective.qoe_model();
  const qoe::QoeModelParams& qoe_params = qoe.params();
  const ObjectiveConfig& config = objective.config();

  alpha_ = config.alpha;
  one_minus_alpha_ = 1.0 - config.alpha;
  switch_penalty_ = qoe_params.switch_penalty;
  mos_min_ = qoe_params.mos_min;
  mos_max_ = qoe_params.mos_max;

  energy_.resize(m);
  e_term_.resize(m);
  e_cost_.resize(m);
  quality_base_.resize(m);
  original_quality_.resize(m);
  bitrate_mbps_.resize(m);
  rebuffer_s_.resize(m);
  rebuffer_impair_.resize(m);

  // Exactly the vibration input task_qoe builds (context_aware ablation).
  const double vibration = config.context_aware ? env.vibration : 0.0;
  CostStats* stats = CostStatsScope::current();
  for (std::size_t level = 0; level < m; ++level) {
    // task_energy's model call, verbatim (counted inside task_energy).
    energy_[level] = objective.task_energy(env, level, buffer_s);
    // task_qoe's subexpressions, verbatim: bitrate, q0, I(v, r), rebuffer.
    const double size_megabits = env.size_megabits[level];
    const double bitrate = size_megabits / std::max(1e-9, env.duration_s);
    bitrate_mbps_[level] = bitrate;
    original_quality_[level] = qoe.original_quality(bitrate);
    quality_base_[level] =
        original_quality_[level] - qoe.vibration_impairment(vibration, bitrate);
    rebuffer_s_[level] =
        objective.expected_rebuffer_s(size_megabits, env.bandwidth_mbps, buffer_s);
    rebuffer_impair_[level] =
        qoe_params.rebuffer_penalty_per_s * std::max(0.0, rebuffer_s_[level]);
    if (stats) ++stats->qoe_model_evals;  // q0 + I together = one segment eval
  }

  // task_cost's normalisers: energy at the top rung with the same buffer
  // (bitwise the energy_[m-1] just computed — same call, same arguments),
  // and the top rung's QoE with no switch context at the config threshold.
  energy_max_ = energy_[m - 1];
  quality_max_ =
      objective.task_qoe(env, m - 1, std::nullopt, config.buffer_threshold_s);

  for (std::size_t level = 0; level < m; ++level) {
    e_term_[level] = energy_max_ > 0.0 ? energy_[level] / energy_max_ : 0.0;
    e_cost_[level] = alpha_ * e_term_[level];
  }
  if (stats) ++stats->tables_built;
}

double TaskCostTable::switch_impair(std::size_t level,
                                    std::size_t prev_level) const noexcept {
  // switch_impairment guards on the *previous* bitrate only.
  if (bitrate_mbps_[prev_level] <= 0.0) return 0.0;
  return switch_penalty_ *
         std::fabs(original_quality_[level] - original_quality_[prev_level]);
}

double TaskCostTable::weigh(std::size_t level, double quality) const noexcept {
  // segment_qoe's final clamp, then task_cost's weighted sum, verbatim.
  quality = std::clamp(quality, mos_min_, mos_max_);
  const double q_term = quality_max_ > 0.0 ? quality / quality_max_ : 0.0;
  return e_cost_[level] - one_minus_alpha_ * q_term;
}

void TaskCostTable::reweight(double alpha) noexcept {
  alpha_ = alpha;
  one_minus_alpha_ = 1.0 - alpha;
  for (std::size_t level = 0; level < e_term_.size(); ++level) {
    e_cost_[level] = alpha_ * e_term_[level];
  }
}

std::vector<TaskCostTable> build_cost_tables(
    const Objective& objective, std::span<const TaskEnvironment> tasks,
    double buffer_s) {
  if (tasks.empty()) {
    throw std::invalid_argument("build_cost_tables: no tasks");
  }
  const std::size_t m = tasks.front().size_megabits.size();
  std::vector<TaskCostTable> tables;
  tables.reserve(tasks.size());
  for (const TaskEnvironment& env : tasks) {
    if (env.size_megabits.size() != m) {
      throw std::invalid_argument("build_cost_tables: ragged task ladder");
    }
    tables.emplace_back(objective, env, buffer_s);
  }
  return tables;
}

}  // namespace eacs::core
