#include "eacs/core/cost_stats.h"

namespace eacs::core {
namespace {

thread_local CostStats* g_current_stats = nullptr;

}  // namespace

CostStatsScope::CostStatsScope(CostStats& stats) noexcept
    : previous_(g_current_stats) {
  g_current_stats = &stats;
}

CostStatsScope::~CostStatsScope() { g_current_stats = previous_; }

CostStats* CostStatsScope::current() noexcept { return g_current_stats; }

}  // namespace eacs::core
