#include "eacs/core/graph.h"

#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "eacs/core/cost_table.h"

namespace eacs::core {

std::string SelectionGraph::to_dot() const {
  std::ostringstream out;
  out << "digraph selection {\n  rankdir=LR;\n  node [shape=circle];\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    out << "  n" << i << " [label=\"" << nodes[i].label << "\"";
    if (nodes[i].is_terminal) out << ", shape=doublecircle";
    out << "];\n";
  }
  // Keep each task's nodes on one rank (the Fig. 4 column layout).
  for (std::size_t task = 0; task < num_tasks; ++task) {
    out << "  { rank=same;";
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (!nodes[i].is_terminal && nodes[i].task == task) out << " n" << i << ";";
    }
    out << " }\n";
  }
  for (const auto& edge : edges) {
    char label[32];
    std::snprintf(label, sizeof(label), "%.3f", edge.weight);
    out << "  n" << edge.from << " -> n" << edge.to << " [label=\"" << label
        << "\"];\n";
  }
  out << "}\n";
  return out.str();
}

SelectionGraph build_selection_graph(const Objective& objective,
                                     const std::vector<TaskEnvironment>& tasks,
                                     double buffer_s) {
  if (tasks.empty()) throw std::invalid_argument("build_selection_graph: no tasks");
  const std::size_t m = tasks.front().size_megabits.size();
  if (m == 0) {
    throw std::invalid_argument(
        "build_selection_graph: empty bitrate ladder (task has no candidate sizes)");
  }
  for (const auto& env : tasks) {
    if (env.size_megabits.size() != m) {
      throw std::invalid_argument("build_selection_graph: ragged ladder");
    }
  }
  const double buffer =
      buffer_s > 0.0 ? buffer_s : objective.config().buffer_threshold_s;
  const std::size_t n = tasks.size();
  // One cost table per task: O(N*M) model evaluations to weight the graph's
  // O(N*M^2) edges (each edge is then a few cached adds/compares).
  const std::vector<TaskCostTable> tables =
      build_cost_tables(objective, tasks, buffer);

  SelectionGraph graph;
  graph.num_tasks = n;
  graph.num_levels = m;
  graph.nodes.reserve(2 + n * m);
  graph.nodes.push_back({"S", 0, 0, true});
  graph.source = 0;
  for (std::size_t task = 0; task < n; ++task) {
    for (std::size_t level = 0; level < m; ++level) {
      graph.nodes.push_back({"T" + std::to_string(task + 1) + "R" +
                                 std::to_string(level + 1),
                             task, level, false});
    }
  }
  graph.nodes.push_back({"D", 0, 0, true});
  graph.sink = graph.nodes.size() - 1;

  const auto node_of = [m](std::size_t task, std::size_t level) {
    return 1 + task * m + level;
  };

  // S -> first layer: the first task has no switch coupling.
  for (std::size_t level = 0; level < m; ++level) {
    graph.edges.push_back(
        {graph.source, node_of(0, level), tables[0].edge_cost(level)});
  }
  // Layer i-1 -> layer i: weight reads both endpoints (switch term).
  for (std::size_t task = 1; task < n; ++task) {
    for (std::size_t prev = 0; prev < m; ++prev) {
      for (std::size_t level = 0; level < m; ++level) {
        graph.edges.push_back({node_of(task - 1, prev), node_of(task, level),
                               tables[task].edge_cost(level, prev)});
      }
    }
  }
  // Last layer -> D: weight 0 (the paper's construction).
  for (std::size_t level = 0; level < m; ++level) {
    graph.edges.push_back({node_of(n - 1, level), graph.sink, 0.0});
  }
  return graph;
}

GraphShortestPath bellman_ford_shortest_path(const SelectionGraph& graph) {
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  std::vector<double> dist(graph.nodes.size(), kInfinity);
  std::vector<std::size_t> parent(graph.nodes.size(), graph.source);
  dist[graph.source] = 0.0;

  // |V|-1 relaxation rounds suffice in general; here the edge list is
  // emitted in topological order (S-edges, then layers ascending, then sink
  // edges), so a single pass propagates the whole layered DAG and a second
  // pass confirms quiescence. The longest S->D path has num_tasks+1 edges,
  // so num_tasks+2 rounds is a safe cap even if the edge order changes.
  //
  // The comparison is a strict `<` with no tolerance: on an exact cost tie
  // the first (lowest-index) predecessor wins, which is the same tie-break
  // as the DP's ascending strict-< scan and the offset-Dijkstra's
  // lowest-predecessor rule — all three solvers reconstruct identical plans.
  const std::size_t rounds = graph.num_tasks + 2;
  for (std::size_t round = 0; round < rounds; ++round) {
    bool changed = false;
    for (const auto& edge : graph.edges) {
      if (dist[edge.from] == kInfinity) continue;
      const double candidate = dist[edge.from] + edge.weight;
      if (candidate < dist[edge.to]) {
        dist[edge.to] = candidate;
        parent[edge.to] = edge.from;
        changed = true;
      }
    }
    if (!changed) break;
  }

  GraphShortestPath path;
  path.total_cost = dist[graph.sink];
  path.levels.assign(graph.num_tasks, 0);
  std::size_t cursor = parent[graph.sink];
  while (cursor != graph.source) {
    const GraphNode& node = graph.nodes[cursor];
    path.levels[node.task] = node.level;
    cursor = parent[cursor];
  }
  return path;
}

}  // namespace eacs::core
