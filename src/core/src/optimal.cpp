#include "eacs/core/optimal.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "eacs/core/cost_stats.h"

namespace eacs::core {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

OptimalPlanner::OptimalPlanner(Objective objective) : objective_(std::move(objective)) {}

OptimalPlan OptimalPlanner::plan(const std::vector<TaskEnvironment>& tasks,
                                 PlannerMethod method, double buffer_s) const {
  if (tasks.empty()) return {};
  if (tasks.front().size_megabits.empty()) {
    throw std::invalid_argument(
        "OptimalPlanner: empty bitrate ladder (task has no candidate sizes)");
  }
  const double buffer =
      buffer_s > 0.0 ? buffer_s : objective_.config().buffer_threshold_s;
  switch (method) {
    case PlannerMethod::kDagDp:
      return plan_dag_dp(tasks, buffer);
    case PlannerMethod::kDijkstra:
      return plan_dijkstra(tasks, buffer);
  }
  throw std::invalid_argument("OptimalPlanner: unknown method");
}

OptimalPlan plan_over_cost_tables(const std::vector<TaskCostTable>& tables) {
  if (tables.empty()) return {};
  const std::size_t n = tables.size();
  const std::size_t m = tables.front().num_levels();

  // dp[j] = best cost of a prefix ending with task i at level j.
  std::vector<double> dp(m, kInfinity);
  std::vector<double> next(m, kInfinity);
  // parent[i][j] = level chosen for task i-1 on the best path to (i, j).
  std::vector<std::vector<std::size_t>> parent(n, std::vector<std::size_t>(m, 0));

  for (std::size_t j = 0; j < m; ++j) {
    dp[j] = tables[0].edge_cost(j);
  }

  for (std::size_t i = 1; i < n; ++i) {
    const TaskCostTable& table = tables[i];
    std::fill(next.begin(), next.end(), kInfinity);
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t jp = 0; jp < m; ++jp) {
        const double weight = table.edge_cost(j, jp);
        const double candidate = dp[jp] + weight;
        if (candidate < next[j]) {
          next[j] = candidate;
          parent[i][j] = jp;
        }
      }
    }
    dp.swap(next);
  }

  OptimalPlan plan;
  plan.levels.assign(n, 0);
  std::size_t best = 0;
  for (std::size_t j = 1; j < m; ++j) {
    if (dp[j] < dp[best]) best = j;
  }
  plan.total_cost = dp[best];
  plan.levels[n - 1] = best;
  for (std::size_t i = n - 1; i > 0; --i) {
    plan.levels[i - 1] = parent[i][plan.levels[i]];
  }
  if (CostStats* stats = CostStatsScope::current()) {
    stats->edge_evals += m + (n - 1) * m * m;
    ++stats->plans;
  }
  return plan;
}

OptimalPlan OptimalPlanner::plan_dag_dp(const std::vector<TaskEnvironment>& tasks,
                                        double buffer_s) const {
  return plan_over_cost_tables(build_cost_tables(objective_, tasks, buffer_s));
}

OptimalPlan OptimalPlanner::plan_reference(const std::vector<TaskEnvironment>& tasks,
                                           double buffer_s) const {
  if (tasks.empty()) return {};
  if (tasks.front().size_megabits.empty()) {
    throw std::invalid_argument(
        "OptimalPlanner: empty bitrate ladder (task has no candidate sizes)");
  }
  const double buffer =
      buffer_s > 0.0 ? buffer_s : objective_.config().buffer_threshold_s;
  const std::size_t n = tasks.size();
  const std::size_t m = tasks.front().size_megabits.size();

  std::vector<double> dp(m, kInfinity);
  std::vector<double> next(m, kInfinity);
  std::vector<std::vector<std::size_t>> parent(n, std::vector<std::size_t>(m, 0));

  for (std::size_t j = 0; j < m; ++j) {
    dp[j] = objective_.task_cost(tasks[0], j, std::nullopt, buffer);
  }

  for (std::size_t i = 1; i < n; ++i) {
    if (tasks[i].size_megabits.size() != m) {
      throw std::invalid_argument("OptimalPlanner: ragged task ladder");
    }
    std::fill(next.begin(), next.end(), kInfinity);
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t jp = 0; jp < m; ++jp) {
        const double weight = objective_.task_cost(tasks[i], j, jp, buffer);
        const double candidate = dp[jp] + weight;
        if (candidate < next[j]) {
          next[j] = candidate;
          parent[i][j] = jp;
        }
      }
    }
    dp.swap(next);
  }

  OptimalPlan plan;
  plan.levels.assign(n, 0);
  std::size_t best = 0;
  for (std::size_t j = 1; j < m; ++j) {
    if (dp[j] < dp[best]) best = j;
  }
  plan.total_cost = dp[best];
  plan.levels[n - 1] = best;
  for (std::size_t i = n - 1; i > 0; --i) {
    plan.levels[i - 1] = parent[i][plan.levels[i]];
  }
  if (CostStats* stats = CostStatsScope::current()) ++stats->plans;
  return plan;
}

OptimalPlan OptimalPlanner::plan_dijkstra(const std::vector<TaskEnvironment>& tasks,
                                          double buffer_s) const {
  const auto tables = build_cost_tables(objective_, tasks, buffer_s);
  const std::size_t n = tasks.size();
  const std::size_t m = tables.front().num_levels();
  std::uint64_t edge_evals = 0;

  // Node numbering: 0 = S; 1 + i*m + j = task i at level j; sink = 1 + n*m.
  const std::size_t num_nodes = 2 + n * m;
  const std::size_t source = 0;
  const std::size_t sink = num_nodes - 1;
  const auto node_of = [m](std::size_t i, std::size_t j) { return 1 + i * m + j; };

  // Per-layer offsets make the cached edge weights non-negative without
  // changing the argmin path (every path crosses each layer exactly once,
  // so each offset adds a constant to every path). With the table this
  // pre-pass is pure arithmetic — the uncached formulation re-evaluated the
  // entire O(N*M^2) weight set through the models before relaxation began.
  std::vector<double> layer_offset(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double most_negative = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (i == 0) {
        most_negative = std::min(most_negative, tables[0].edge_cost(j));
        ++edge_evals;
      } else {
        for (std::size_t jp = 0; jp < m; ++jp) {
          most_negative = std::min(most_negative, tables[i].edge_cost(j, jp));
          ++edge_evals;
        }
      }
    }
    layer_offset[i] = -most_negative;
  }

  std::vector<double> dist(num_nodes, kInfinity);
  std::vector<std::size_t> parent(num_nodes, source);
  using QueueEntry = std::pair<double, std::size_t>;  // (distance, node)
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  dist[source] = 0.0;
  queue.push({0.0, source});

  const auto relax = [&](std::size_t from, std::size_t to, double weight) {
    const double candidate = dist[from] + weight;
    if (candidate < dist[to]) {
      dist[to] = candidate;
      parent[to] = from;
      queue.push({candidate, to});
    } else if (candidate == dist[to] && from < parent[to]) {
      // Exact tie: keep the lowest predecessor index. This matches the DP's
      // ascending strict-< scan over jp (and Bellman-Ford's ascending edge
      // order), so all three solvers reconstruct the same plan on ties.
      parent[to] = from;
    }
  };

  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;  // stale entry
    if (u == sink) break;

    if (u == source) {
      for (std::size_t j = 0; j < m; ++j) {
        relax(source, node_of(0, j), tables[0].edge_cost(j) + layer_offset[0]);
        ++edge_evals;
      }
      continue;
    }
    const std::size_t flat = u - 1;
    const std::size_t i = flat / m;
    const std::size_t jp = flat % m;
    if (i + 1 < n) {
      for (std::size_t j = 0; j < m; ++j) {
        relax(u, node_of(i + 1, j),
              tables[i + 1].edge_cost(j, jp) + layer_offset[i + 1]);
        ++edge_evals;
      }
    } else {
      relax(u, sink, 0.0);  // edges from the last layer to D have weight 0
    }
  }

  OptimalPlan plan;
  plan.levels.assign(n, 0);
  double offset_total = 0.0;
  for (double offset : layer_offset) offset_total += offset;
  plan.total_cost = dist[sink] - offset_total;
  std::size_t cursor = parent[sink];
  for (std::size_t i = n; i-- > 0;) {
    plan.levels[i] = (cursor - 1) % m;
    cursor = parent[cursor];
  }
  if (CostStats* stats = CostStatsScope::current()) {
    stats->edge_evals += edge_evals;
    ++stats->plans;
  }
  return plan;
}

PlannedPolicy::PlannedPolicy(OptimalPlan plan, std::string name)
    : plan_(std::move(plan)), name_(std::move(name)) {}

std::size_t PlannedPolicy::choose_level(const player::AbrContext& context) {
  if (context.segment_index < plan_.levels.size()) {
    return plan_.levels[context.segment_index];
  }
  return context.manifest->ladder().lowest_level();
}

}  // namespace eacs::core
