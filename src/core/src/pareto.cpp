#include "eacs/core/pareto.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eacs::core {

ParetoPoint price_plan(const std::vector<TaskEnvironment>& tasks,
                       const std::vector<std::size_t>& levels,
                       const qoe::QoeModel& qoe_model,
                       const power::PowerModel& power_model, double buffer_s) {
  if (tasks.size() != levels.size()) {
    throw std::invalid_argument("price_plan: plan length mismatch");
  }
  ParetoPoint point;
  point.levels = levels;
  double qoe_weighted = 0.0;
  double duration = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& env = tasks[i];
    const double size_megabits = env.size_megabits.at(levels[i]);
    const double bitrate = size_megabits / std::max(1e-9, env.duration_s);

    const double download_s =
        env.bandwidth_mbps > 0.0 ? size_megabits / env.bandwidth_mbps : buffer_s;
    const double rebuffer = std::max(0.0, download_s - buffer_s);

    power::TaskEnergyInput energy_input;
    energy_input.size_mb = size_megabits / 8.0;
    energy_input.bitrate_mbps = bitrate;
    energy_input.signal_dbm = env.signal_dbm;
    energy_input.play_s = env.duration_s;
    energy_input.rebuffer_s = rebuffer;
    point.energy_j += power_model.task_energy(energy_input);

    qoe::SegmentContext qoe_context;
    qoe_context.bitrate_mbps = bitrate;
    qoe_context.vibration = env.vibration;
    if (i > 0) {
      qoe_context.prev_bitrate_mbps =
          tasks[i - 1].size_megabits.at(levels[i - 1]) /
          std::max(1e-9, tasks[i - 1].duration_s);
    }
    qoe_context.rebuffer_s = rebuffer;
    qoe_weighted += qoe_model.segment_qoe(qoe_context) * env.duration_s;
    duration += env.duration_s;
  }
  point.mean_qoe = duration > 0.0 ? qoe_weighted / duration : 0.0;
  return point;
}

ParetoFront compute_pareto_front(const std::vector<TaskEnvironment>& tasks,
                                 const qoe::QoeModel& qoe_model,
                                 const power::PowerModel& power_model,
                                 std::size_t steps, double buffer_s) {
  if (tasks.empty()) throw std::invalid_argument("compute_pareto_front: no tasks");
  if (steps < 2) throw std::invalid_argument("compute_pareto_front: steps < 2");

  // The cached energy/QoE components of the cost tables are alpha-
  // independent (alpha only enters the final weighted sum), so the sweep
  // builds the tables once and re-weights them per sample instead of
  // re-deriving every model term for every alpha. Each re-weighted DP is
  // bit-identical to planning with a fresh Objective at that alpha.
  ObjectiveConfig config;
  config.alpha = 0.0;  // placeholder; reweight() sets the real value
  config.buffer_threshold_s = buffer_s;
  const Objective objective(qoe_model, power_model, config);
  std::vector<TaskCostTable> tables = build_cost_tables(objective, tasks, buffer_s);

  std::vector<ParetoPoint> candidates;
  for (std::size_t k = 0; k < steps; ++k) {
    const double alpha =
        static_cast<double>(k) / static_cast<double>(steps - 1);
    for (TaskCostTable& table : tables) table.reweight(alpha);
    const auto plan = plan_over_cost_tables(tables);
    ParetoPoint point = price_plan(tasks, plan.levels, qoe_model, power_model, buffer_s);
    point.alpha = alpha;
    candidates.push_back(std::move(point));
  }

  // Non-dominated filter: keep points where no other has both less energy
  // and more QoE.
  ParetoFront front;
  for (const auto& candidate : candidates) {
    bool dominated = false;
    for (const auto& other : candidates) {
      if (other.energy_j < candidate.energy_j - 1e-9 &&
        other.mean_qoe > candidate.mean_qoe + 1e-9) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.points.push_back(candidate);
  }
  std::sort(front.points.begin(), front.points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.alpha < b.alpha;
            });

  // Knee: max perpendicular distance to the endpoint chord in the
  // normalised (energy, qoe) plane.
  if (front.points.size() >= 3) {
    const auto& first = front.points.front();
    const auto& last = front.points.back();
    const double energy_span = std::max(1e-9, std::fabs(first.energy_j - last.energy_j));
    const double qoe_span = std::max(1e-9, std::fabs(first.mean_qoe - last.mean_qoe));
    double best_distance = -1.0;
    for (std::size_t i = 0; i < front.points.size(); ++i) {
      const double x = (front.points[i].energy_j - last.energy_j) / energy_span;
      const double y = (front.points[i].mean_qoe - last.mean_qoe) / qoe_span;
      const double x1 = (first.energy_j - last.energy_j) / energy_span;
      const double y1 = (first.mean_qoe - last.mean_qoe) / qoe_span;
      // Distance from (x, y) to the chord through (0,0)-(x1,y1).
      const double chord = std::sqrt(x1 * x1 + y1 * y1);
      const double distance = std::fabs(x * y1 - y * x1) / std::max(1e-12, chord);
      if (distance > best_distance) {
        best_distance = distance;
        front.knee_index = i;
      }
    }
  }
  return front;
}

}  // namespace eacs::core
