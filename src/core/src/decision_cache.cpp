#include "eacs/core/decision_cache.h"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "eacs/core/cost_stats.h"

namespace eacs::core {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t state, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    state ^= (value >> (8 * i)) & 0xFFULL;
    state *= kFnvPrime;
  }
  return state;
}

std::uint64_t fnv1a(std::uint64_t state, double value) noexcept {
  return fnv1a(state, std::bit_cast<std::uint64_t>(value));
}

// Linear bucketing. The key is the bucket index, the representative is the
// bucket midpoint — every raw value in the bucket solves on the same inputs.
// Non-finite values fall back to exact-bit keying (bit patterns of NaN/Inf
// land around 2^63, far outside any realistic bucket index) with the raw
// value as representative, so degenerate inputs can't alias a finite bucket.
struct Bucketed {
  std::int64_t bucket;
  double representative;
};

Bucketed linear_bucket(double value, double width) noexcept {
  if (!std::isfinite(value)) {
    return {static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(value)),
            value};
  }
  const auto bucket = static_cast<std::int64_t>(std::floor(value / width));
  return {bucket, (static_cast<double>(bucket) + 0.5) * width};
}

// Logarithmic (octave) bucketing for bandwidth: relative resolution, so
// 0.5 vs 0.6 Mbps distinguish while 40 vs 48 Mbps coalesce. Non-positive
// estimates collapse into one "no throughput" bucket with representative 0.
Bucketed log_bucket(double value, double buckets_per_octave) noexcept {
  if (!std::isfinite(value)) {
    return {static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(value)),
            value};
  }
  if (value <= 0.0) {
    return {std::numeric_limits<std::int64_t>::min(), 0.0};
  }
  const auto bucket = static_cast<std::int64_t>(
      std::floor(std::log2(value) * buckets_per_octave));
  return {bucket,
          std::exp2((static_cast<double>(bucket) + 0.5) / buckets_per_octave)};
}

// Index-only variants for key_for(): the hit path never needs the
// representative, so it skips the midpoint / exp2 reconstruction. These MUST
// floor exactly like their Bucketed counterparts — key_for() and
// canonicalize() are certified bitwise-equal on the key.
std::int64_t linear_bucket_index(double value, double width) noexcept {
  if (!std::isfinite(value)) {
    return static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(value));
  }
  return static_cast<std::int64_t>(std::floor(value / width));
}

std::int64_t log_bucket_index(double value,
                              double buckets_per_octave) noexcept {
  if (!std::isfinite(value)) {
    return static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(value));
  }
  if (value <= 0.0) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(
      std::floor(std::log2(value) * buckets_per_octave));
}

std::int64_t exact_bits(double value) noexcept {
  return static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(value));
}

void require_positive(double value, const char* name) {
  if (!(value > 0.0) || !std::isfinite(value)) {
    throw std::invalid_argument(std::string("DecisionCacheConfig: ") + name +
                                " must be positive and finite");
  }
}

// Previous-rung bucketing: floor representative so the canonical prev is
// always a real (not interpolated) rung index.
std::int64_t prev_level_bucket_index(std::size_t prev,
                                     std::size_t width) noexcept {
  return static_cast<std::int64_t>(prev / width);
}

std::size_t prev_level_representative(std::size_t prev,
                                      std::size_t width) noexcept {
  return (prev / width) * width;
}

}  // namespace

namespace {

// 64-bit avalanche (the murmur3/splitmix finalizer). Word-at-a-time: the
// hash sits on the per-lookup hot path of the fleet simulator, where a
// byte-wise FNV costs more than the table probe it feeds.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::uint64_t DecisionKey::hash() const noexcept {
  std::uint64_t h = kFnvOffset;
  h = mix64(h ^ ladder_id);
  h = mix64(h ^ alpha_bits);
  h = mix64(h ^ static_cast<std::uint64_t>(buffer));
  h = mix64(h ^ static_cast<std::uint64_t>(bandwidth));
  h = mix64(h ^ static_cast<std::uint64_t>(vibration));
  h = mix64(h ^ static_cast<std::uint64_t>(confidence));
  h = mix64(h ^ static_cast<std::uint64_t>(signal));
  h = mix64(h ^ static_cast<std::uint64_t>(remaining));
  h = mix64(h ^ static_cast<std::uint64_t>(prev_level));
  return h;
}

DecisionCache::DecisionCache(DecisionCacheConfig config)
    : config_(config) {
  if (!config_.exact) {
    require_positive(config_.buffer_bucket_s, "buffer_bucket_s");
    require_positive(config_.bandwidth_buckets_per_octave,
                     "bandwidth_buckets_per_octave");
    require_positive(config_.vibration_bucket, "vibration_bucket");
    require_positive(config_.confidence_bucket, "confidence_bucket");
    require_positive(config_.signal_bucket_dbm, "signal_bucket_dbm");
    if (config_.prev_level_bucket == 0) {
      throw std::invalid_argument(
          "DecisionCacheConfig: prev_level_bucket must be >= 1");
    }
  }
  slots_.resize(config_.capacity);
}

CanonicalDecision DecisionCache::canonicalize(
    const DecisionSnapshot& snapshot) const noexcept {
  CanonicalDecision out;
  out.key.ladder_id = snapshot.ladder_id;
  out.key.alpha_bits = std::bit_cast<std::uint64_t>(snapshot.alpha);
  out.key.remaining = static_cast<std::int64_t>(snapshot.segments_remaining);
  if (snapshot.prev_level) {
    const std::size_t width = config_.exact ? 1 : config_.prev_level_bucket;
    out.key.prev_level = prev_level_bucket_index(*snapshot.prev_level, width);
    out.prev_level = prev_level_representative(*snapshot.prev_level, width);
  } else {
    out.key.prev_level = DecisionKey::kNoPrevLevel;
  }
  if (config_.exact) {
    out.key.buffer = exact_bits(snapshot.buffer_s);
    out.key.bandwidth = exact_bits(snapshot.bandwidth_mbps);
    out.key.vibration = exact_bits(snapshot.vibration);
    out.key.confidence = exact_bits(snapshot.confidence);
    out.key.signal = exact_bits(snapshot.signal_dbm);
    out.buffer_s = snapshot.buffer_s;
    out.bandwidth_mbps = snapshot.bandwidth_mbps;
    out.vibration = snapshot.vibration;
    out.confidence = snapshot.confidence;
    out.signal_dbm = snapshot.signal_dbm;
    return out;
  }
  const Bucketed buffer =
      linear_bucket(snapshot.buffer_s, config_.buffer_bucket_s);
  const Bucketed bandwidth =
      log_bucket(snapshot.bandwidth_mbps, config_.bandwidth_buckets_per_octave);
  const Bucketed vibration =
      linear_bucket(snapshot.vibration, config_.vibration_bucket);
  const Bucketed confidence =
      linear_bucket(snapshot.confidence, config_.confidence_bucket);
  const Bucketed signal =
      linear_bucket(snapshot.signal_dbm, config_.signal_bucket_dbm);
  out.key.buffer = buffer.bucket;
  out.key.bandwidth = bandwidth.bucket;
  out.key.vibration = vibration.bucket;
  out.key.confidence = confidence.bucket;
  out.key.signal = signal.bucket;
  out.buffer_s = buffer.representative;
  out.bandwidth_mbps = bandwidth.representative;
  out.vibration = vibration.representative;
  out.confidence = confidence.representative;
  out.signal_dbm = signal.representative;
  return out;
}

DecisionKey DecisionCache::key_for(
    const DecisionSnapshot& snapshot) const noexcept {
  DecisionKey key;
  key.ladder_id = snapshot.ladder_id;
  key.alpha_bits = std::bit_cast<std::uint64_t>(snapshot.alpha);
  key.remaining = static_cast<std::int64_t>(snapshot.segments_remaining);
  key.prev_level =
      snapshot.prev_level
          ? prev_level_bucket_index(*snapshot.prev_level,
                                    config_.exact ? 1
                                                  : config_.prev_level_bucket)
          : DecisionKey::kNoPrevLevel;
  if (config_.exact) {
    key.buffer = exact_bits(snapshot.buffer_s);
    key.bandwidth = exact_bits(snapshot.bandwidth_mbps);
    key.vibration = exact_bits(snapshot.vibration);
    key.confidence = exact_bits(snapshot.confidence);
    key.signal = exact_bits(snapshot.signal_dbm);
    return key;
  }
  key.buffer = linear_bucket_index(snapshot.buffer_s, config_.buffer_bucket_s);
  key.bandwidth = log_bucket_index(snapshot.bandwidth_mbps,
                                   config_.bandwidth_buckets_per_octave);
  key.vibration =
      linear_bucket_index(snapshot.vibration, config_.vibration_bucket);
  key.confidence =
      linear_bucket_index(snapshot.confidence, config_.confidence_bucket);
  key.signal =
      linear_bucket_index(snapshot.signal_dbm, config_.signal_bucket_dbm);
  return key;
}

std::optional<std::size_t> DecisionCache::find(const DecisionKey& key) noexcept {
  if (!slots_.empty()) {
    const Entry& entry = slots_[key.hash() % slots_.size()];
    if (entry.occupied && entry.key == key) {
      ++stats_.hits;
      if (CostStats* scope = CostStatsScope::current()) ++scope->cache_hits;
      return entry.level;
    }
  }
  ++stats_.misses;
  if (CostStats* scope = CostStatsScope::current()) ++scope->cache_misses;
  return std::nullopt;
}

void DecisionCache::count_external_hit() noexcept {
  ++stats_.hits;
  if (CostStats* scope = CostStatsScope::current()) ++scope->cache_hits;
}

void DecisionCache::insert(const DecisionKey& key, std::size_t level) {
  if (slots_.empty()) return;
  Entry& entry = slots_[key.hash() % slots_.size()];
  if (entry.occupied && !(entry.key == key)) {
    ++stats_.evictions;
    if (CostStats* scope = CostStatsScope::current()) ++scope->cache_evictions;
  }
  if (!entry.occupied) ++entries_;
  entry.key = key;
  entry.level = static_cast<std::uint32_t>(level);
  entry.occupied = true;
}

void DecisionCache::clear() noexcept {
  for (Entry& entry : slots_) entry = Entry{};
  stats_ = DecisionCacheStats{};
  entries_ = 0;
}

DecisionCacheState DecisionCache::export_state() const {
  DecisionCacheState state;
  state.stats = stats_;
  state.entries.reserve(entries_);
  for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
    const Entry& entry = slots_[slot];
    if (entry.occupied) {
      state.entries.push_back({slot, entry.key, entry.level});
    }
  }
  return state;
}

void DecisionCache::restore_state(const DecisionCacheState& state) {
  for (const DecisionCacheState::Entry& entry : state.entries) {
    if (entry.slot >= slots_.size()) {
      throw std::invalid_argument(
          "DecisionCache::restore_state: slot index outside capacity");
    }
  }
  for (Entry& entry : slots_) entry = Entry{};
  entries_ = 0;
  for (const DecisionCacheState::Entry& entry : state.entries) {
    Entry& target = slots_[entry.slot];
    if (target.occupied) {
      throw std::invalid_argument(
          "DecisionCache::restore_state: duplicate slot index");
    }
    target.key = entry.key;
    target.level = entry.level;
    target.occupied = true;
    ++entries_;
  }
  stats_ = state.stats;
}

std::uint64_t hash_task_ladder(
    std::span<const TaskEnvironment> tasks) noexcept {
  std::uint64_t h = kFnvOffset;
  h = fnv1a(h, static_cast<std::uint64_t>(tasks.size()));
  for (const TaskEnvironment& task : tasks) {
    h = fnv1a(h, task.duration_s);
    h = fnv1a(h, static_cast<std::uint64_t>(task.size_megabits.size()));
    for (double size : task.size_megabits) h = fnv1a(h, size);
  }
  return h;
}

}  // namespace eacs::core
