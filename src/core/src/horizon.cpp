#include "eacs/core/horizon.h"

#include <limits>
#include <stdexcept>
#include <vector>

#include "eacs/core/cost_stats.h"
#include "eacs/core/cost_table.h"

namespace eacs::core {

RollingHorizonSelector::RollingHorizonSelector(Objective objective,
                                               HorizonOptions options)
    : objective_(std::move(objective)), options_(std::move(options)) {
  if (options_.horizon == 0) {
    throw std::invalid_argument("RollingHorizonSelector: horizon must be > 0");
  }
}

std::size_t RollingHorizonSelector::choose_level(const player::AbrContext& context) {
  const auto& manifest = *context.manifest;
  const auto& ladder = manifest.ladder();
  if (context.bandwidth->observations() == 0) {
    return ladder.clamp_level(static_cast<long long>(options_.startup_level));
  }

  // Build the lookahead window: per-segment candidate sizes from the
  // manifest; the environment estimates are held constant over the window
  // (the estimators are the best forecast available online).
  const std::size_t remaining = manifest.num_segments() - context.segment_index;
  const std::size_t window = std::min(options_.horizon, remaining);
  std::vector<TaskEnvironment> tasks;
  tasks.reserve(window);
  for (std::size_t k = 0; k < window; ++k) {
    TaskEnvironment env;
    env.index = context.segment_index + k;
    env.duration_s = manifest.segment_duration(env.index);
    env.signal_dbm = context.signal_dbm;
    env.vibration = context.vibration_level;
    env.bandwidth_mbps = context.bandwidth->estimate();
    env.size_megabits.reserve(ladder.size());
    for (std::size_t level = 0; level < ladder.size(); ++level) {
      env.size_megabits.push_back(manifest.segment_size_megabits(env.index, level));
    }
    tasks.push_back(std::move(env));
  }

  // Exact DP over the window with switch coupling; the first task's switch
  // term couples to the previously played segment. Edge weights come from
  // one precomputed cost table per window task (O(window*M) model
  // evaluations instead of O(window*M^2)); the cached costs are bit-identical
  // to the direct task_cost formulation, so decisions are unchanged.
  const std::size_t m = ladder.size();
  const std::vector<TaskCostTable> tables =
      build_cost_tables(objective_, tasks, context.buffer_s);
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  std::vector<double> dp(m, kInfinity);
  std::vector<std::size_t> first_action(m, 0);
  for (std::size_t j = 0; j < m; ++j) {
    dp[j] = context.prev_level.has_value()
                ? tables[0].edge_cost(j, *context.prev_level)
                : tables[0].edge_cost(j);
    first_action[j] = j;
  }
  std::vector<double> next(m, kInfinity);
  std::vector<std::size_t> next_first(m, 0);
  for (std::size_t k = 1; k < tasks.size(); ++k) {
    std::fill(next.begin(), next.end(), kInfinity);
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t jp = 0; jp < m; ++jp) {
        const double candidate = dp[jp] + tables[k].edge_cost(j, jp);
        if (candidate < next[j]) {
          next[j] = candidate;
          next_first[j] = first_action[jp];
        }
      }
    }
    dp.swap(next);
    first_action.swap(next_first);
  }

  std::size_t best = 0;
  for (std::size_t j = 1; j < m; ++j) {
    if (dp[j] < dp[best]) best = j;
  }
  if (CostStats* stats = CostStatsScope::current()) {
    stats->edge_evals += m + (tasks.size() - 1) * m * m;
    ++stats->plans;
  }
  return first_action[best];
}

}  // namespace eacs::core
