#include "eacs/core/horizon.h"

#include <limits>
#include <stdexcept>
#include <vector>

#include "eacs/core/cost_stats.h"
#include "eacs/core/cost_table.h"

namespace eacs::core {

std::size_t plan_horizon_first_action(const Objective& objective,
                                      std::span<const TaskEnvironment> tasks,
                                      double buffer_s,
                                      std::optional<std::size_t> prev_level) {
  if (tasks.empty()) {
    throw std::invalid_argument("plan_horizon_first_action: empty window");
  }
  // Exact DP over the window with switch coupling; the first task's switch
  // term couples to the previously played segment. Edge weights come from
  // one precomputed cost table per window task (O(window*M) model
  // evaluations instead of O(window*M^2)); the cached costs are bit-identical
  // to the direct task_cost formulation, so decisions are unchanged.
  const std::size_t m = tasks.front().size_megabits.size();
  const std::vector<TaskCostTable> tables =
      build_cost_tables(objective, tasks, buffer_s);
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  std::vector<double> dp(m, kInfinity);
  std::vector<std::size_t> first_action(m, 0);
  for (std::size_t j = 0; j < m; ++j) {
    dp[j] = prev_level.has_value() ? tables[0].edge_cost(j, *prev_level)
                                   : tables[0].edge_cost(j);
    first_action[j] = j;
  }
  std::vector<double> next(m, kInfinity);
  std::vector<std::size_t> next_first(m, 0);
  for (std::size_t k = 1; k < tasks.size(); ++k) {
    std::fill(next.begin(), next.end(), kInfinity);
    for (std::size_t j = 0; j < m; ++j) {
      for (std::size_t jp = 0; jp < m; ++jp) {
        const double candidate = dp[jp] + tables[k].edge_cost(j, jp);
        if (candidate < next[j]) {
          next[j] = candidate;
          next_first[j] = first_action[jp];
        }
      }
    }
    dp.swap(next);
    first_action.swap(next_first);
  }

  std::size_t best = 0;
  for (std::size_t j = 1; j < m; ++j) {
    if (dp[j] < dp[best]) best = j;
  }
  if (CostStats* stats = CostStatsScope::current()) {
    stats->edge_evals += m + (tasks.size() - 1) * m * m;
    ++stats->plans;
  }
  return first_action[best];
}

RollingHorizonSelector::RollingHorizonSelector(Objective objective,
                                               HorizonOptions options)
    : objective_(std::move(objective)), options_(std::move(options)) {
  if (options_.horizon == 0) {
    throw std::invalid_argument("RollingHorizonSelector: horizon must be > 0");
  }
}

std::size_t RollingHorizonSelector::choose_level(const player::AbrContext& context) {
  const auto& manifest = *context.manifest;
  const auto& ladder = manifest.ladder();
  if (context.bandwidth->observations() == 0) {
    return ladder.clamp_level(static_cast<long long>(options_.startup_level));
  }

  // Build the lookahead window: per-segment candidate sizes from the
  // manifest; the environment estimates are held constant over the window
  // (the estimators are the best forecast available online).
  const std::size_t remaining = manifest.num_segments() - context.segment_index;
  const std::size_t window = std::min(options_.horizon, remaining);
  std::vector<TaskEnvironment> tasks;
  tasks.reserve(window);
  for (std::size_t k = 0; k < window; ++k) {
    TaskEnvironment env;
    env.index = context.segment_index + k;
    env.duration_s = manifest.segment_duration(env.index);
    env.signal_dbm = context.signal_dbm;
    env.vibration = context.vibration_level;
    env.bandwidth_mbps = context.bandwidth->estimate();
    env.size_megabits.reserve(ladder.size());
    for (std::size_t level = 0; level < ladder.size(); ++level) {
      env.size_megabits.push_back(manifest.segment_size_megabits(env.index, level));
    }
    tasks.push_back(std::move(env));
  }

  if (!options_.cache) {
    return plan_horizon_first_action(objective_, tasks, context.buffer_s,
                                     context.prev_level);
  }

  // Memoized path. The snapshot carries exactly the inputs the DP depends on
  // (the per-segment sizes/durations live in ladder_id); on a miss the DP
  // runs on the canonical representatives, never the raw values, so a later
  // hit on the same key returns bit-identically what this cold solve stored.
  DecisionSnapshot snapshot;
  snapshot.buffer_s = context.buffer_s;
  snapshot.bandwidth_mbps = context.bandwidth->estimate();
  snapshot.vibration = context.vibration_level;
  snapshot.signal_dbm = context.signal_dbm;
  snapshot.segments_remaining = window;
  snapshot.prev_level = context.prev_level;
  snapshot.ladder_id = hash_task_ladder(tasks);
  snapshot.alpha = objective_.config().alpha;
  const CanonicalDecision canonical = options_.cache->canonicalize(snapshot);
  return options_.cache->level_for(canonical, [&](const CanonicalDecision& c) {
    for (TaskEnvironment& env : tasks) {
      env.signal_dbm = c.signal_dbm;
      env.vibration = c.vibration;
      env.bandwidth_mbps = c.bandwidth_mbps;
    }
    return plan_horizon_first_action(objective_, tasks, c.buffer_s,
                                     c.prev_level);
  });
}

}  // namespace eacs::core
