#include "eacs/core/online.h"

#include <algorithm>
#include <cmath>

namespace eacs::core {

OnlineBitrateSelector::OnlineBitrateSelector(Objective objective, Options options)
    : objective_(std::move(objective)), options_(std::move(options)) {}

TaskEnvironment OnlineBitrateSelector::environment_from(
    const player::AbrContext& context) const {
  TaskEnvironment env;
  env.index = context.segment_index;
  env.duration_s = context.manifest->segment_duration(context.segment_index);
  env.signal_dbm = context.signal_dbm;
  env.vibration = context.vibration_level;

  // Degraded-context fallbacks. Clean runs present healthy grades, finite
  // values and zero ages, so none of these branches fire and the environment
  // is exactly the measured context.
  using sensors::ContextHealth;
  if (context.vibration_health == ContextHealth::kLost ||
      !std::isfinite(env.vibration)) {
    // Vibration unknown: plan for the vibrating-commute prior rather than a
    // frozen or garbage estimate.
    env.vibration = options_.fallback_vibration;
  } else if (context.vibration_health == ContextHealth::kDegraded) {
    // Partially trustworthy: blend toward the prior by confidence.
    const double c = std::clamp(context.vibration_confidence, 0.0, 1.0);
    env.vibration = c * env.vibration + (1.0 - c) * options_.fallback_vibration;
  }
  if (!std::isfinite(env.signal_dbm) ||
      context.signal_health == ContextHealth::kLost ||
      context.signal_age_s > options_.max_signal_age_s) {
    // Signal too old to trust: assume the weak-signal floor so the power
    // model errs toward the expensive-radio case.
    env.signal_dbm = options_.stale_signal_floor_dbm;
  }
  env.bandwidth_mbps = context.bandwidth->estimate();
  const std::size_t levels = context.manifest->ladder().size();
  env.size_megabits.reserve(levels);
  for (std::size_t level = 0; level < levels; ++level) {
    env.size_megabits.push_back(
        context.manifest->segment_size_megabits(context.segment_index, level));
  }
  return env;
}

std::size_t OnlineBitrateSelector::smooth(std::size_t reference, std::size_t previous,
                                          const TaskEnvironment& env,
                                          double bandwidth_mbps, double buffer_s) {
  if (reference > previous) {
    // Gradual ramp-up: one ladder level per segment.
    return previous + 1;
  }
  if (reference < previous) {
    // Find the highest level below the previous one (down to the reference)
    // whose download completes before the buffer drains.
    for (std::size_t level = previous; level-- > reference;) {
      if (bandwidth_mbps > 0.0 &&
          env.size_megabits.at(level) / bandwidth_mbps <= buffer_s) {
        return level;
      }
    }
    return reference;
  }
  return previous;
}

void OnlineBitrateSelector::on_download_failure(
    const player::DownloadFailure& failure) {
  (void)failure;
  failure_cooldown_ = kFailureCooldownSegments;
}

std::size_t OnlineBitrateSelector::choose_level(const player::AbrContext& context) {
  const auto& ladder = context.manifest->ladder();
  if (context.bandwidth->observations() == 0) {
    // No throughput history yet: conservative startup rung.
    return ladder.clamp_level(static_cast<long long>(options_.startup_level));
  }

  TaskEnvironment env = environment_from(context);
  // Algorithm 1's decision as a function of the (effective) environment:
  // Eq. 11 reference level, then the smoothing rule. Factored so the cached
  // path below can run it on canonical representatives instead.
  const auto decide = [&](const TaskEnvironment& e, double buffer_s,
                          std::optional<std::size_t> prev_level) {
    const std::size_t reference = objective_.reference_level(e, buffer_s);
    if (options_.smoothing && prev_level.has_value()) {
      return ladder.clamp_level(static_cast<long long>(
          smooth(reference, *prev_level, e, e.bandwidth_mbps, buffer_s)));
    }
    return reference;
  };

  std::size_t chosen;
  if (options_.cache && failure_cooldown_ == 0) {
    // Memoized path: key the effective environment (fallbacks already
    // applied, so the solve is pure in the key) and solve on the canonical
    // representatives — a hit returns bit-identically what the cold solve of
    // the same key stored. Cooldown segments never reach here: their cap
    // depends on transient selector state outside the key.
    DecisionSnapshot snapshot;
    snapshot.buffer_s = context.buffer_s;
    snapshot.bandwidth_mbps = env.bandwidth_mbps;
    snapshot.vibration = env.vibration;
    snapshot.signal_dbm = env.signal_dbm;
    snapshot.segments_remaining = 1;
    snapshot.prev_level = context.prev_level;
    snapshot.ladder_id = hash_task_ladder({&env, 1});
    snapshot.alpha = objective_.config().alpha;
    const CanonicalDecision canonical = options_.cache->canonicalize(snapshot);
    chosen = options_.cache->level_for(
        canonical, [&](const CanonicalDecision& c) {
          env.vibration = c.vibration;
          env.signal_dbm = c.signal_dbm;
          env.bandwidth_mbps = c.bandwidth_mbps;
          return decide(env, c.buffer_s, c.prev_level);
        });
  } else {
    chosen = decide(env, context.buffer_s, context.prev_level);
  }

  // Replan-on-failure: while cooling down after a reported download failure,
  // never ramp up — cap one rung below the previous segment (or at it, when
  // already at the bottom). Fault-free runs never enter this branch.
  if (failure_cooldown_ > 0) {
    --failure_cooldown_;
    const std::size_t floor_level = ladder.lowest_level();
    std::size_t cap = context.prev_level.value_or(floor_level);
    if (cap > floor_level) --cap;
    chosen = std::min(chosen, cap);
  }
  return chosen;
}

}  // namespace eacs::core
