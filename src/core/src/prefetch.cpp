#include "eacs/core/prefetch.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "eacs/net/downloader.h"

namespace eacs::core {

PrefetchScheduler::PrefetchScheduler(const media::VideoManifest& manifest,
                                     std::vector<std::size_t> levels,
                                     const trace::TimeSeries& signal_dbm,
                                     const trace::TimeSeries& throughput_mbps,
                                     const power::PowerModel& power_model,
                                     PrefetchConfig config)
    : manifest_(manifest),
      levels_(std::move(levels)),
      signal_(signal_dbm),
      downloader_(throughput_mbps),
      power_(power_model),
      config_(config) {
  if (levels_.size() != manifest_.num_segments()) {
    throw std::invalid_argument("PrefetchScheduler: one level per segment required");
  }
  if (config_.slot_s <= 0.0 || config_.buffer_cap_s <= 0.0) {
    throw std::invalid_argument("PrefetchScheduler: bad configuration");
  }
}

PrefetchScheduler::Window PrefetchScheduler::window_of(std::size_t segment) const {
  Window window;
  const double d = manifest_.segment_duration_s();
  // Segment i plays at startup + i*D; it must be complete by then.
  window.deadline =
      config_.startup_latency_s + static_cast<double>(segment) * d;
  // Completing it buffers media to (i+1)*D ahead of a play head at
  // (t - startup); the buffer cap forbids completing earlier than:
  window.earliest_start = std::max(
      0.0, config_.startup_latency_s + static_cast<double>(segment + 1) * d -
               config_.buffer_cap_s);
  return window;
}

ScheduledDownload PrefetchScheduler::price_download(std::size_t segment,
                                                    double start_s) const {
  const double size_megabits = manifest_.segment_size_megabits(segment,
                                                               levels_[segment]);
  const auto transfer = downloader_.download(start_s, size_megabits);
  ScheduledDownload download;
  download.segment_index = segment;
  download.start_s = start_s;
  download.end_s = transfer.end_s;
  const double mean_signal =
      transfer.duration_s() > 0.0
          ? signal_.mean_over(transfer.start_s, transfer.end_s)
          : signal_.linear_at(transfer.start_s);
  download.radio_energy_j = power_.download_energy(size_megabits / 8.0, mean_signal);
  download.deadline_s = window_of(segment).deadline;
  download.late = download.end_s > download.deadline_s + 1e-9;
  return download;
}

PrefetchPlan PrefetchScheduler::asap() const {
  PrefetchPlan plan;
  double free_at = 0.0;
  for (std::size_t segment = 0; segment < levels_.size(); ++segment) {
    const Window window = window_of(segment);
    const double start = std::max(free_at, window.earliest_start);
    ScheduledDownload download = price_download(segment, start);
    free_at = download.end_s;
    plan.radio_energy_j += download.radio_energy_j;
    if (download.late) plan.stall_s += download.end_s - download.deadline_s;
    plan.downloads.push_back(std::move(download));
  }
  return plan;
}

PrefetchPlan PrefetchScheduler::optimize() const {
  // DP over "downloader free at slot" states. dp[slot] = min radio energy
  // with all previous segments scheduled and the link free at slot*slot_s.
  const double d = manifest_.segment_duration_s();
  const double horizon = config_.startup_latency_s +
                         static_cast<double>(levels_.size()) * d +
                         config_.buffer_cap_s;
  const auto num_slots = static_cast<std::size_t>(horizon / config_.slot_s) + 2;
  constexpr double kInfinity = std::numeric_limits<double>::infinity();

  // States are bucketed by completion slot but carry the *exact* free time
  // of their best path: rounding completion times onto the grid would push
  // chained downloads later than the real link allows and lose deadline
  // slack ASAP still has.
  struct State {
    double energy = kInfinity;
    double free_at = 0.0;  // exact time the link frees up on the best path
    // Back-pointers: chosen start per segment reached through this state.
    std::vector<double> starts;
  };
  std::vector<State> dp(num_slots);
  dp[0].energy = 0.0;

  const auto bucket_of = [&](double t) {
    return std::min(num_slots - 1,
                    static_cast<std::size_t>(t / config_.slot_s));
  };

  const auto relax = [&](std::vector<State>& next, const State& from,
                         std::size_t segment, double start, bool allow_late) {
    const ScheduledDownload download = price_download(segment, start);
    if (download.late && !allow_late) return false;
    const double total = from.energy + download.radio_energy_j;
    State& slot_state = next[bucket_of(download.end_s)];
    if (total < slot_state.energy ||
        (total == slot_state.energy && download.end_s < slot_state.free_at)) {
      slot_state.energy = total;
      slot_state.free_at = download.end_s;
      slot_state.starts = from.starts;
      slot_state.starts.push_back(start);
    }
    return !download.late;
  };

  for (std::size_t segment = 0; segment < levels_.size(); ++segment) {
    const Window window = window_of(segment);
    std::vector<State> next(num_slots);
    bool any_feasible = false;

    for (std::size_t slot = 0; slot < num_slots; ++slot) {
      if (dp[slot].energy == kInfinity) continue;
      // Candidate starts: the exact earliest point (ASAP is always in the
      // search space), then later slot-grid offsets up to the deadline.
      const double first = std::max(dp[slot].free_at, window.earliest_start);
      for (double start = first; start <= window.deadline + 1e-9;
           start += config_.slot_s) {
        const bool on_time =
            relax(next, dp[slot], segment, start, /*allow_late=*/false);
        if (!on_time) break;  // later starts are only later
        any_feasible = true;
      }
    }

    if (!any_feasible) {
      // Link too slow for the deadline whatever we do: continue ASAP from
      // the cheapest reachable state (accepting the stall).
      std::size_t best_slot = 0;
      for (std::size_t slot = 0; slot < num_slots; ++slot) {
        if (dp[slot].energy < dp[best_slot].energy) best_slot = slot;
      }
      const double start = std::max(dp[best_slot].free_at, window.earliest_start);
      relax(next, dp[best_slot], segment, start, /*allow_late=*/true);
    }
    dp.swap(next);
  }

  // Best terminal state.
  std::size_t best = 0;
  for (std::size_t slot = 0; slot < num_slots; ++slot) {
    if (dp[slot].energy < dp[best].energy) best = slot;
  }
  if (dp[best].energy == kInfinity) return asap();  // defensive

  PrefetchPlan plan;
  for (std::size_t segment = 0; segment < levels_.size(); ++segment) {
    ScheduledDownload download =
        price_download(segment, dp[best].starts[segment]);
    plan.radio_energy_j += download.radio_energy_j;
    if (download.late) plan.stall_s += download.end_s - download.deadline_s;
    plan.downloads.push_back(std::move(download));
  }

  // Guarantee "never worse than ASAP": the bucketed DP is a heuristic over
  // a continuous problem; if quantisation ever costs more than the greedy
  // baseline, return the baseline.
  const PrefetchPlan baseline = asap();
  const bool baseline_better =
      (baseline.stall_s < plan.stall_s - 1e-9) ||
      (baseline.stall_s <= plan.stall_s + 1e-9 &&
       baseline.radio_energy_j < plan.radio_energy_j);
  return baseline_better ? baseline : plan;
}

}  // namespace eacs::core
