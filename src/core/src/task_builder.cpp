#include "eacs/core/task.h"

#include "eacs/sensors/vibration.h"

namespace eacs::core {

std::vector<TaskEnvironment> build_task_environments(
    const media::VideoManifest& manifest, const trace::SessionTraces& session) {
  std::vector<TaskEnvironment> tasks;
  tasks.reserve(manifest.num_segments());

  // Stream the vibration estimator along the playback timeline once.
  sensors::VibrationEstimator vibration;
  std::size_t accel_cursor = 0;
  const auto vibration_at = [&](double t_s) {
    while (accel_cursor < session.accel.size() &&
           session.accel[accel_cursor].t_s <= t_s) {
      vibration.update(session.accel[accel_cursor]);
      ++accel_cursor;
    }
    return vibration.level();
  };

  const std::size_t levels = manifest.ladder().size();
  for (std::size_t i = 0; i < manifest.num_segments(); ++i) {
    TaskEnvironment env;
    env.index = i;
    env.duration_s = manifest.segment_duration(i);
    const double t0 = static_cast<double>(i) * manifest.segment_duration_s();
    const double t1 = t0 + env.duration_s;
    env.signal_dbm = session.signal_dbm.mean_over(t0, t1);
    env.bandwidth_mbps = session.throughput_mbps.mean_over(t0, t1);
    env.vibration = vibration_at(t0);
    env.size_megabits.reserve(levels);
    for (std::size_t level = 0; level < levels; ++level) {
      env.size_megabits.push_back(manifest.segment_size_megabits(i, level));
    }
    tasks.push_back(std::move(env));
  }
  return tasks;
}

}  // namespace eacs::core
