#include "eacs/core/objective.h"

#include <algorithm>
#include <stdexcept>

#include "eacs/core/cost_stats.h"
#include "eacs/core/cost_table.h"

namespace eacs::core {

Objective::Objective(qoe::QoeModel qoe_model, power::PowerModel power_model,
                     ObjectiveConfig config)
    : qoe_(qoe_model), power_(power_model), config_(config) {
  if (config_.alpha < 0.0 || config_.alpha > 1.0) {
    throw std::invalid_argument("Objective: alpha must be in [0, 1]");
  }
  if (config_.buffer_threshold_s <= 0.0) {
    throw std::invalid_argument("Objective: buffer threshold must be > 0");
  }
}

double Objective::expected_rebuffer_s(double size_megabits, double bandwidth_mbps,
                                      double buffer_s) const noexcept {
  if (size_megabits <= 0.0) return 0.0;
  if (bandwidth_mbps <= 0.0) return config_.buffer_threshold_s;  // dead link cap
  const double download_s = size_megabits / bandwidth_mbps;
  return std::max(0.0, download_s - std::max(0.0, buffer_s));
}

double Objective::task_energy(const TaskEnvironment& env, std::size_t level,
                              double buffer_s) const {
  if (CostStats* stats = CostStatsScope::current()) ++stats->power_model_evals;
  const double size_megabits = env.size_megabits.at(level);
  const double rebuffer =
      expected_rebuffer_s(size_megabits, env.bandwidth_mbps, buffer_s);
  power::TaskEnergyInput input;
  input.size_mb = size_megabits / 8.0;
  // During a task, the player renders content of this task's bitrate for the
  // segment's duration (steady state): the paper's Eq. 8; with rebuffering
  // the stall adds paused-screen time on top (Eq. 9).
  input.bitrate_mbps = size_megabits / std::max(1e-9, env.duration_s);
  input.signal_dbm = env.signal_dbm;
  input.play_s = env.duration_s;
  input.rebuffer_s = rebuffer;
  return power_.task_energy(input);
}

double Objective::task_qoe(const TaskEnvironment& env, std::size_t level,
                           std::optional<std::size_t> prev_level,
                           double buffer_s) const {
  if (CostStats* stats = CostStatsScope::current()) ++stats->qoe_model_evals;
  const double size_megabits = env.size_megabits.at(level);
  const double bitrate = size_megabits / std::max(1e-9, env.duration_s);
  qoe::SegmentContext context;
  context.bitrate_mbps = bitrate;
  context.vibration = config_.context_aware ? env.vibration : 0.0;
  if (prev_level.has_value()) {
    context.prev_bitrate_mbps =
        env.size_megabits.at(*prev_level) / std::max(1e-9, env.duration_s);
  }
  context.rebuffer_s = expected_rebuffer_s(size_megabits, env.bandwidth_mbps, buffer_s);
  return qoe_.segment_qoe(context);
}

double Objective::task_cost(const TaskEnvironment& env, std::size_t level,
                            std::optional<std::size_t> prev_level,
                            double buffer_s) const {
  if (CostStats* stats = CostStatsScope::current()) ++stats->edge_evals;
  const std::size_t top = env.size_megabits.size() - 1;
  const double energy = task_energy(env, level, buffer_s);
  const double energy_max = task_energy(env, top, buffer_s);
  const double quality = task_qoe(env, level, prev_level, buffer_s);
  // Normaliser: the top bitrate's QoE *without* switch/rebuffer context, a
  // per-task constant (as in the paper, where Q(i,M) is the QoE of the
  // highest-bitrate encoding of the segment).
  const double quality_max = task_qoe(env, top, std::nullopt, config_.buffer_threshold_s);
  const double e_term = energy_max > 0.0 ? energy / energy_max : 0.0;
  const double q_term = quality_max > 0.0 ? quality / quality_max : 0.0;
  return config_.alpha * e_term - (1.0 - config_.alpha) * q_term;
}

std::size_t Objective::reference_level(const TaskEnvironment& env,
                                       double buffer_s) const {
  // Online hot path: one cost table (O(M) model evaluations) instead of
  // re-deriving the per-task normalisers for every candidate (O(M) costs,
  // each re-evaluating 4 models). Bit-identical argmin: the cached costs
  // are bitwise equal to task_cost and the strict-< scan is unchanged.
  const TaskCostTable table(*this, env, buffer_s);
  std::size_t best = 0;
  double best_cost = table.edge_cost(0);
  for (std::size_t level = 1; level < table.num_levels(); ++level) {
    const double cost = table.edge_cost(level);
    if (cost < best_cost) {
      best_cost = cost;
      best = level;
    }
  }
  if (CostStats* stats = CostStatsScope::current()) {
    stats->edge_evals += table.num_levels();
  }
  return best;
}

}  // namespace eacs::core
