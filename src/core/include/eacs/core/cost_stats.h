#pragma once
// Deterministic instrumentation for the planner hot path.
//
// The planners certify their precomputed-table speedup with *counters*, not
// wall-clock: the number of QoE/power model evaluations and Eq. 11 edge
// evaluations a plan performs is a pure function of (N, M, code path), so it
// is identical on every machine and every run. A CostStatsScope installs a
// collector on the current thread; Objective, TaskCostTable and the planners
// bump it when one is installed and pay only a thread-local null check when
// none is. Each thread of the parallel experiment engine sees its own scope,
// so counting stays race-free and deterministic.

#include <cstdint>

namespace eacs::core {

/// Counters for one instrumented region (all monotone, all deterministic).
struct CostStats {
  std::uint64_t qoe_model_evals = 0;    ///< segment-QoE-equivalent evaluations
  std::uint64_t power_model_evals = 0;  ///< task-energy model evaluations
  std::uint64_t edge_evals = 0;         ///< Eq. 11 edge-weight evaluations
  std::uint64_t tables_built = 0;       ///< TaskCostTable constructions
  std::uint64_t plans = 0;              ///< planner / selector invocations
  std::uint64_t cache_hits = 0;         ///< DecisionCache lookups served
  std::uint64_t cache_misses = 0;       ///< DecisionCache lookups solved cold
  std::uint64_t cache_evictions = 0;    ///< DecisionCache direct-map displacements

  /// Total model evaluations (the O(N*M) vs O(N*M^2) headline number).
  std::uint64_t model_evals() const noexcept {
    return qoe_model_evals + power_model_evals;
  }

  /// Serial fold for region-sharded counting (DESIGN §6): each region
  /// accumulates into its own CostStats under a CostStatsScope, then the
  /// driver merges shard counters in region order.
  void merge(const CostStats& other) noexcept {
    qoe_model_evals += other.qoe_model_evals;
    power_model_evals += other.power_model_evals;
    edge_evals += other.edge_evals;
    tables_built += other.tables_built;
    plans += other.plans;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evictions += other.cache_evictions;
  }

  void reset() noexcept { *this = CostStats{}; }
};

/// RAII hook: while alive, cost evaluations on this thread accumulate into
/// the given CostStats. Scopes nest (the innermost wins) and restore the
/// previous collector on destruction.
class CostStatsScope {
 public:
  explicit CostStatsScope(CostStats& stats) noexcept;
  ~CostStatsScope();

  CostStatsScope(const CostStatsScope&) = delete;
  CostStatsScope& operator=(const CostStatsScope&) = delete;

  /// The collector installed on the calling thread, or nullptr.
  static CostStats* current() noexcept;

 private:
  CostStats* previous_;
};

}  // namespace eacs::core
