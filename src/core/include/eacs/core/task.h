#pragma once
// The "task" abstraction (Section III-A): downloading one video segment is
// one task; a streaming session is a sequence of N tasks. A TaskEnvironment
// snapshots everything the objective needs to price a task's bitrate
// choices: the segment's candidate sizes plus the network/context conditions
// in effect while the task runs.

#include <cstddef>
#include <vector>

#include "eacs/media/manifest.h"
#include "eacs/trace/session.h"

namespace eacs::core {

/// Environment of one task.
struct TaskEnvironment {
  std::size_t index = 0;           ///< segment index
  double duration_s = 0.0;         ///< media duration of the segment
  double signal_dbm = -90.0;       ///< signal strength during the download
  double vibration = 0.0;          ///< vibration level at playback time
  double bandwidth_mbps = 0.0;     ///< available (oracle or estimated) rate
  std::vector<double> size_megabits;  ///< candidate size per ladder level
};

/// Builds oracle task environments for a whole session: per-task mean signal,
/// mean throughput and streamed vibration level, sampled along the nominal
/// playback timeline (task i spans [i*D, (i+1)*D)). Used by the optimal
/// planner, which the paper defines as having perfect future knowledge.
std::vector<TaskEnvironment> build_task_environments(
    const media::VideoManifest& manifest, const trace::SessionTraces& session);

}  // namespace eacs::core
