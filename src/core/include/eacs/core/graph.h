#pragma once
// The Fig. 4 graph, materialised (Section IV-A).
//
// The optimal planner's DP and Dijkstra walk the layered graph implicitly;
// this module builds it explicitly — source S, one layer of M bitrate nodes
// per task, sink D, edge weights equal to the Eq. 11 summand — so it can be
// inspected, exported to Graphviz DOT (the paper's Fig. 4 picture), and
// solved by a third independent algorithm (Bellman-Ford, which tolerates
// the negative weights natively). Tests pin all three solvers to identical
// costs.

#include <cstddef>
#include <string>
#include <vector>

#include "eacs/core/objective.h"
#include "eacs/core/task.h"

namespace eacs::core {

/// One node of the layered graph.
struct GraphNode {
  std::string label;        ///< "S", "D", or "T<i>R<j>"
  std::size_t task = 0;     ///< layer index (unused for S/D)
  std::size_t level = 0;    ///< bitrate index (unused for S/D)
  bool is_terminal = false; ///< S or D
};

/// One weighted directed edge.
struct GraphEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  double weight = 0.0;
};

/// The explicit selection graph.
struct SelectionGraph {
  std::vector<GraphNode> nodes;
  std::vector<GraphEdge> edges;
  std::size_t source = 0;
  std::size_t sink = 0;
  std::size_t num_tasks = 0;
  std::size_t num_levels = 0;

  /// Graphviz DOT rendering (left-to-right layers, weights as edge labels).
  std::string to_dot() const;
};

/// Builds the Fig. 4 graph for the given tasks: O(N*M) nodes, O(N*M^2)
/// edges. Throws std::invalid_argument on empty/ragged tasks.
SelectionGraph build_selection_graph(const Objective& objective,
                                     const std::vector<TaskEnvironment>& tasks,
                                     double buffer_s = 0.0);

/// Shortest-path outcome on the explicit graph.
struct GraphShortestPath {
  std::vector<std::size_t> levels;  ///< bitrate per task along the path
  double total_cost = 0.0;
};

/// Bellman-Ford over the explicit graph (handles negative edge weights;
/// the graph is a DAG so no negative cycles exist). Cross-checks the
/// planner's DP and offset-Dijkstra solutions.
GraphShortestPath bellman_ford_shortest_path(const SelectionGraph& graph);

}  // namespace eacs::core
