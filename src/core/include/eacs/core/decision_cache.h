#pragma once
// Context-quantized decision cache — the planner's fleet-scale memoization
// layer (DESIGN §13).
//
// Planner state across a fleet is massively redundant: a few context classes
// times a few buffer/bandwidth regimes cover almost every decision a
// population of clients ever asks for. A DecisionCache memoizes planner
// decisions keyed on a *canonicalized* snapshot of the planner's inputs:
// (ladder id, quantized buffer bucket, log-bucketed bandwidth estimate,
// vibration + confidence buckets, signal bucket, segments-remaining,
// previous rung, alpha).
//
// The load-bearing rule is canonicalize-then-solve: on a miss the planner is
// evaluated ON the canonicalized representative inputs, never the raw ones.
// Every snapshot that maps to a key therefore produces bit-identically the
// decision a cold solve of that key produces — cache-on vs cache-off (with
// identical quantization) is EXPECT_EQ-certifiable, and eviction can never
// change a decision, only cost a re-solve. Eviction itself is deterministic:
// the table is direct-mapped (slot = hash % capacity), so a colliding insert
// always displaces the same victim regardless of history outside the key
// stream.
//
// Two modes:
//   * exact (default): canonicalization is the identity — keys are the bit
//     patterns of the raw doubles, representatives are the raw values. A hit
//     only ever dedupes bit-identical snapshots, so decisions are unchanged
//     from uncached planning (certified by tests/differential/). This is the
//     rich-engine default.
//   * quantized: inputs are bucketed (linear buckets for buffer / vibration /
//     confidence / signal, logarithmic for bandwidth) and the planner runs on
//     bucket representatives. Decisions may differ from exact planning by a
//     bounded quantization error (EXPERIMENTS.md "Quantization sensitivity");
//     hit rates become fleet-scale. This is the fleet-simulator default.
//
// capacity = 0 is the quantize-only configuration: every lookup misses and
// nothing is stored, i.e. "cache-off on quantized inputs" — the reference
// side of the cache-on/cache-off certification.
//
// Thread safety: none. Shard one cache per deterministic execution unit (one
// per fleet region, one per policy instance in the rich engine) and merge
// counters serially, exactly like every other DESIGN §6 parallel structure.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "eacs/core/task.h"

namespace eacs::core {

/// Cache behaviour. Defaults are the exact-key (identity) mode; the fleet
/// simulator flips `exact` off and keeps the bucket widths, which the
/// EXPERIMENTS.md sensitivity study justifies.
struct DecisionCacheConfig {
  /// Identity canonicalization: keys are raw bit patterns, representatives
  /// are the raw inputs. Hits dedupe identical snapshots only.
  bool exact = true;

  // Quantized-mode bucket widths (used only when !exact; all must be > 0).
  double buffer_bucket_s = 4.0;             ///< linear buffer buckets
  double bandwidth_buckets_per_octave = 2.0;  ///< log2 bandwidth resolution
  double vibration_bucket = 0.75;           ///< linear vibration buckets
  double confidence_bucket = 0.25;          ///< linear confidence buckets
  double signal_bucket_dbm = 8.0;           ///< linear signal buckets
  /// Previous-rung bucket width in rungs (>= 1; 1 = exact). Dense ladders
  /// make neighbouring rungs near-equivalent through the switch-penalty
  /// term, so pairing them (width 2) trades a bounded smoothness error for
  /// a big cut in key cardinality. The representative is the bucket floor
  /// (floor(prev / width) * width), always a valid rung index.
  std::size_t prev_level_bucket = 1;

  /// Direct-mapped slots. 0 = quantize-only: never stores, every lookup is
  /// a miss (the cache-off reference of the certification tests).
  std::size_t capacity = 8192;
};

/// Canonicalized snapshot identity. Field values are bucket indices in
/// quantized mode and raw IEEE-754 bit patterns in exact mode; either way,
/// equal keys imply equal representative inputs and therefore equal
/// decisions.
struct DecisionKey {
  static constexpr std::int64_t kNoPrevLevel = -1;

  std::uint64_t ladder_id = 0;   ///< caller-supplied content/ladder identity
  std::uint64_t alpha_bits = 0;  ///< Eq. 11 alpha, always exact bits
  std::int64_t buffer = 0;
  std::int64_t bandwidth = 0;
  std::int64_t vibration = 0;
  std::int64_t confidence = 0;
  std::int64_t signal = 0;
  std::int64_t remaining = 0;    ///< canonical lookahead (min(horizon, left))
  std::int64_t prev_level = kNoPrevLevel;

  bool operator==(const DecisionKey&) const = default;

  /// 64-bit avalanche mix over the fields, in declaration order.
  std::uint64_t hash() const noexcept;
};

/// Raw planner inputs, before canonicalization. Callers pass the *effective*
/// values the planner would otherwise see (post degraded-context fallbacks)
/// and the canonical lookahead min(horizon, segments left): lookahead is the
/// only way the remaining-segment count reaches a receding-horizon decision.
struct DecisionSnapshot {
  double buffer_s = 0.0;
  double bandwidth_mbps = 0.0;
  double vibration = 0.0;
  double confidence = 1.0;
  double signal_dbm = -90.0;
  std::size_t segments_remaining = 1;
  std::optional<std::size_t> prev_level;
  std::uint64_t ladder_id = 0;
  double alpha = 0.5;
};

/// A canonicalized snapshot: the key plus the representative inputs the
/// planner must be evaluated on. Identical for every snapshot mapping to the
/// same key — the bit-identity recipe. Solvers MUST read every input they
/// use from here (including prev_level), never from the raw snapshot.
struct CanonicalDecision {
  DecisionKey key;
  double buffer_s = 0.0;
  double bandwidth_mbps = 0.0;
  double vibration = 0.0;
  double confidence = 1.0;
  double signal_dbm = -90.0;
  std::optional<std::size_t> prev_level;  ///< bucket-floor representative
};

/// Deterministic cache counters (mirrored into the thread's CostStatsScope
/// when one is installed, so fleet shards can merge them serially).
struct DecisionCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t lookups() const noexcept { return hits + misses; }
  double hit_rate() const noexcept {
    return lookups() > 0 ? static_cast<double>(hits) /
                               static_cast<double>(lookups())
                         : 0.0;
  }
};

/// Serialized contents of a DecisionCache: the occupied slots (with their
/// direct-mapped slot index, so restore reproduces the exact table layout
/// without re-hashing) plus the counters. Exposed for the fleet checkpoint
/// (DESIGN §14); restore_state() on a cache built with the same config makes
/// the resumed shard bit-identical to the uninterrupted one.
struct DecisionCacheState {
  struct Entry {
    std::size_t slot = 0;
    DecisionKey key;
    std::uint32_t level = 0;

    bool operator==(const Entry&) const = default;
  };

  DecisionCacheStats stats;
  std::vector<Entry> entries;
};

/// The memoization table. Throws std::invalid_argument on a quantized
/// configuration with a non-positive or non-finite bucket width.
class DecisionCache {
 public:
  explicit DecisionCache(DecisionCacheConfig config = {});

  const DecisionCacheConfig& config() const noexcept { return config_; }

  /// Projects a raw snapshot onto its bucket key and representative inputs.
  /// Pure in (config, snapshot); idempotent (canonicalizing a representative
  /// reproduces its own key). Non-finite inputs degrade to exact-bit keying
  /// for that field, so NaN/Inf never alias a finite bucket in practice.
  CanonicalDecision canonicalize(const DecisionSnapshot& snapshot) const noexcept;

  /// The key alone — canonicalize() minus the representative reconstruction
  /// (the exp2/midpoint math). Bitwise the same key canonicalize() produces;
  /// hot paths key a lookup with this and only pay for representatives on a
  /// miss.
  DecisionKey key_for(const DecisionSnapshot& snapshot) const noexcept;

  /// Lookup; counts exactly one hit or one miss.
  std::optional<std::size_t> find(const DecisionKey& key) noexcept;

  /// Records a hit served by a caller-side L1 (e.g. the fleet arena's
  /// per-session last-key slot) without probing the table. Layered caches
  /// stay inside the counter invariant: hits + misses == consultations.
  void count_external_hit() noexcept;

  /// Stores a decision. Displacing an occupied slot with a different key
  /// counts one eviction. No-op at capacity 0.
  void insert(const DecisionKey& key, std::size_t level);

  /// The memoized-solve composition: find, else solve(canonical) and insert.
  /// `solve` MUST derive its decision from `canonical`'s representatives
  /// only — that is the whole contract.
  template <typename Solver>
  std::size_t level_for(const CanonicalDecision& canonical, Solver&& solve) {
    if (const auto hit = find(canonical.key)) return *hit;
    const std::size_t level = solve(canonical);
    insert(canonical.key, level);
    return level;
  }

  const DecisionCacheStats& stats() const noexcept { return stats_; }
  std::size_t entries() const noexcept { return entries_; }

  /// Drops all entries and zeroes the counters.
  void clear() noexcept;

  /// Snapshot of the occupied slots and counters, in slot order (checkpoint
  /// side).
  DecisionCacheState export_state() const;

  /// Reinstates a previously exported state, replacing current contents and
  /// counters. Throws std::invalid_argument when an entry's slot index is
  /// outside the configured capacity or two entries name the same slot.
  void restore_state(const DecisionCacheState& state);

 private:
  struct Entry {
    DecisionKey key;
    std::uint32_t level = 0;
    bool occupied = false;
  };

  DecisionCacheConfig config_;
  std::vector<Entry> slots_;
  DecisionCacheStats stats_;
  std::size_t entries_ = 0;
};

/// Content identity for cache keys: FNV-1a over the window's task count and
/// every task's duration and candidate sizes (bit patterns). Two windows
/// hash equal only if the planner would price identical downloads — this is
/// what makes exact-key caching safe under VBR manifests, where segment
/// sizes vary along the session.
std::uint64_t hash_task_ladder(std::span<const TaskEnvironment> tasks) noexcept;

}  // namespace eacs::core
