#pragma once
// The optimal algorithm (Section IV-A, Fig. 4).
//
// Bitrate selection for N tasks with M candidate bitrates maps to a shortest
// path on a layered graph: source S, one layer of M nodes per task, sink D.
// An edge from node (i-1, j') to node (i, j) carries the Eq. 11 summand of
// choosing bitrate j for task i after j' (the switch term reads both
// endpoints). The shortest S->D path is the optimal bitrate sequence.
//
// The raw edge weights can be negative (the -(1-alpha)*Q/Qmax term), which
// plain Dijkstra does not tolerate. Because every S->D path crosses each
// layer exactly once, shifting all edges *entering* a layer by a per-layer
// constant changes every path cost by the same total and preserves the
// argmin — so we offset each layer's edges to be non-negative and run
// Dijkstra, as the paper prescribes. An exact DAG dynamic program is also
// provided; tests assert both return identical plans/costs.
//
// Hot path: both solvers price edges through precomputed TaskCostTables
// (O(N*M) model evaluations per plan); plan_reference keeps the original
// uncached task_cost formulation for certification and benchmarking — the
// cached plans are bit-identical to it by construction.

#include <cstddef>
#include <string>
#include <vector>

#include "eacs/core/cost_table.h"
#include "eacs/core/objective.h"
#include "eacs/core/task.h"
#include "eacs/player/abr_policy.h"

namespace eacs::core {

/// A complete bitrate plan for a session.
struct OptimalPlan {
  std::vector<std::size_t> levels;  ///< ladder level per task
  double total_cost = 0.0;          ///< Eq. 11 objective value of the plan
};

/// Algorithm selector for the planner.
enum class PlannerMethod {
  kDagDp,     ///< exact dynamic program over the layered DAG, O(N*M^2)
  kDijkstra,  ///< per-layer-offset Dijkstra on the Fig. 4 graph
};

/// Computes optimal plans given perfect knowledge of all task environments.
class OptimalPlanner {
 public:
  explicit OptimalPlanner(Objective objective);

  /// Plans the whole session. `buffer_s` is the buffer-occupancy proxy used
  /// in the per-task rebuffer estimate (the paper's B = 30 s threshold by
  /// default, taken from the objective's config when <= 0). Throws
  /// std::invalid_argument on an empty or ragged bitrate ladder.
  OptimalPlan plan(const std::vector<TaskEnvironment>& tasks,
                   PlannerMethod method = PlannerMethod::kDagDp,
                   double buffer_s = 0.0) const;

  /// Uncached reference DP: prices every edge with Objective::task_cost
  /// directly (the pre-TaskCostTable formulation, O(N*M^2) model
  /// evaluations). Kept for the bit-identity certification suite and the
  /// hot-path benchmark; plan(kDagDp) is bitwise equal to this.
  OptimalPlan plan_reference(const std::vector<TaskEnvironment>& tasks,
                             double buffer_s = 0.0) const;

  const Objective& objective() const noexcept { return objective_; }

 private:
  OptimalPlan plan_dag_dp(const std::vector<TaskEnvironment>& tasks,
                          double buffer_s) const;
  OptimalPlan plan_dijkstra(const std::vector<TaskEnvironment>& tasks,
                            double buffer_s) const;

  Objective objective_;
};

/// The kDagDp recurrence over prebuilt cost tables. Lets callers that reuse
/// tables across plans (the Pareto alpha sweep re-weights in place) skip the
/// table build; plan(kDagDp) is exactly build_cost_tables + this.
OptimalPlan plan_over_cost_tables(const std::vector<TaskCostTable>& tables);

/// Replays a precomputed plan through the player simulator ("Optimal" row of
/// the evaluation figures).
class PlannedPolicy final : public player::AbrPolicy {
 public:
  explicit PlannedPolicy(OptimalPlan plan, std::string name = "Optimal");

  std::string name() const override { return name_; }
  std::size_t choose_level(const player::AbrContext& context) override;

 private:
  OptimalPlan plan_;
  std::string name_;
};

}  // namespace eacs::core
