#pragma once
// The online bitrate-selection algorithm (Section IV-B, Algorithm 1) — the
// paper's deployable contribution ("Ours" in the evaluation).
//
// Per segment:
//  1. estimate bandwidth (harmonic mean of past segment throughputs) and the
//     vibration level (trailing-window estimator over accelerometer data);
//  2. compute the reference bitrate: the ladder level minimising the Eq. 11
//     weighted cost under the estimates;
//  3. smooth the decision against the previous segment's bitrate:
//     - reference above previous: step up exactly one level (gradual ramp;
//       a consistently high reference walks the bitrate up to it);
//     - reference below previous: step down to the highest level in
//       [reference, previous) whose download fits in the current buffer
//       (size/bandwidth <= buffer); if none fits, jump to the reference;
//     - reference equals previous: keep it.

#include <memory>
#include <optional>

#include "eacs/core/decision_cache.h"
#include "eacs/core/objective.h"
#include "eacs/player/abr_policy.h"

namespace eacs::core {

/// Tunables for OnlineBitrateSelector.
struct OnlineOptions {
  std::size_t startup_level = 0;  ///< rung used before any throughput sample
  std::string display_name = "Ours";
  /// Algorithm 1's lines 5-10. Disabling jumps straight to the reference
  /// bitrate every segment (the ramp ablation bench) — more switches, larger
  /// switch impairments, occasional rebuffering on sudden upswings.
  bool smoothing = true;

  /// Degraded-context fallbacks (consulted only when the AbrContext health
  /// fields report trouble; clean runs never reach them).
  /// Vibration assumed when the accelerometer stream is kLost or the estimate
  /// is non-finite: a vibrating-commute prior (Table V: 2.46..6.83 m/s^2 on
  /// buses), so an unknown environment plans for the hostile case.
  double fallback_vibration = 4.0;
  /// Oldest signal reading the power model may still plan on. Beyond this age
  /// (or for a non-finite reading) the selector assumes the weak-signal floor
  /// below instead of a stale number that may be wildly optimistic.
  double max_signal_age_s = 30.0;
  double stale_signal_floor_dbm = -110.0;

  /// Optional decision memoization. The snapshot keys the *effective*
  /// environment (post degraded-context fallbacks) so the cached solve is
  /// pure in the key; with the default exact-key config decisions are
  /// bit-identical to uncached selection (certified by tests/differential/).
  /// Post-failure cooldown segments bypass the cache entirely — their cap
  /// depends on transient selector state outside the key. Share one cache
  /// per deterministic execution unit, never across threads.
  std::shared_ptr<DecisionCache> cache;
};

/// Algorithm 1 as a player policy.
///
/// Replan-on-failure: when the player reports a failed/aborted download
/// (fault-injected runs), the selector enters a short cooldown during which
/// it suppresses ramp-ups and caps the choice one rung below the previous
/// segment — the online analogue of replanning around a dead link. The hook
/// is never invoked on fault-free runs, so their decisions are unchanged.
class OnlineBitrateSelector final : public player::AbrPolicy {
 public:
  using Options = OnlineOptions;

  /// Segments of conservative behaviour after a reported failure.
  static constexpr std::size_t kFailureCooldownSegments = 2;

  explicit OnlineBitrateSelector(Objective objective, Options options = {});

  std::string name() const override { return options_.display_name; }
  std::size_t choose_level(const player::AbrContext& context) override;
  void on_download_failure(const player::DownloadFailure& failure) override;
  void reset() override { failure_cooldown_ = 0; }

  const Objective& objective() const noexcept { return objective_; }

  /// Exposed for unit testing: the smoothing rule applied to a reference
  /// level given the previous level and feasibility data.
  static std::size_t smooth(std::size_t reference, std::size_t previous,
                            const TaskEnvironment& env, double bandwidth_mbps,
                            double buffer_s);

 private:
  TaskEnvironment environment_from(const player::AbrContext& context) const;

  Objective objective_;
  Options options_;
  std::size_t failure_cooldown_ = 0;  ///< segments left of post-failure caution
};

}  // namespace eacs::core
