#pragma once
// Energy/QoE Pareto front (extension).
//
// The paper formulates Eq. 11 via the weighted-sum method and evaluates a
// single operating point (alpha = 0.5), citing the adaptive-weighted-sum
// literature for Pareto-front generation. This module materialises the
// front: sweep alpha, solve each weighting exactly with the optimal
// planner, price the resulting plans in physical units (joules, MOS) and
// return the non-dominated set plus the knee point (the alpha past which
// further energy savings start costing disproportionate QoE).

#include <vector>

#include "eacs/core/optimal.h"
#include "eacs/core/task.h"
#include "eacs/power/model.h"
#include "eacs/qoe/model.h"

namespace eacs::core {

/// One operating point on the front.
struct ParetoPoint {
  double alpha = 0.0;
  double energy_j = 0.0;   ///< plan energy in joules
  double mean_qoe = 0.0;   ///< plan mean per-task QoE
  std::vector<std::size_t> levels;  ///< the plan itself
};

/// Result of a front sweep.
struct ParetoFront {
  std::vector<ParetoPoint> points;   ///< non-dominated, ascending alpha
  std::size_t knee_index = 0;        ///< max-curvature point (see knee())

  const ParetoPoint& knee() const { return points.at(knee_index); }
};

/// Sweeps alpha over [0, 1] with `steps` samples, plans each weighting with
/// the optimal planner, prices the plans and filters to the non-dominated
/// set. The knee is the point maximising distance from the segment joining
/// the front's endpoints (a standard knee heuristic).
ParetoFront compute_pareto_front(const std::vector<TaskEnvironment>& tasks,
                                 const qoe::QoeModel& qoe_model,
                                 const power::PowerModel& power_model,
                                 std::size_t steps = 21,
                                 double buffer_s = 30.0);

/// Physical pricing of an arbitrary plan over task environments: total
/// energy (J) and duration-weighted mean QoE, including switch terms.
ParetoPoint price_plan(const std::vector<TaskEnvironment>& tasks,
                       const std::vector<std::size_t>& levels,
                       const qoe::QoeModel& qoe_model,
                       const power::PowerModel& power_model, double buffer_s = 30.0);

}  // namespace eacs::core
