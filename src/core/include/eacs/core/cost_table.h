#pragma once
// Precomputed per-task cost tables — the planner hot path.
//
// Objective::task_cost prices one Fig. 4 edge with ~6 fresh model calls
// (two pow/exp-heavy QoE evaluations, two power evaluations and the
// normaliser lookups). The planners evaluate O(N*M^2) edges per plan, yet
// per task only O(M) quantities actually vary: the per-level energy, the
// original quality, the vibration impairment and the rebuffer estimate.
// A TaskCostTable precomputes those once per TaskEnvironment into flat
// contiguous (SoA) arrays, so an edge weight (j, j') reduces to a handful of
// adds/compares on cached doubles: O(N*M) model evaluations per plan instead
// of O(N*M^2).
//
// Bit-identity contract: the table replays the *exact* floating-point
// operations of Objective::task_cost — same subexpressions, same evaluation
// order, clamps applied per edge — so cached plans are bitwise equal to the
// uncached formulation. tests/property/cost_table_properties_test.cpp
// asserts EXPECT_EQ on doubles for every consumer; do not "simplify" the
// arithmetic here without re-certifying.

#include <cstddef>
#include <span>
#include <vector>

#include "eacs/core/objective.h"
#include "eacs/core/task.h"

namespace eacs::core {

/// Cached Eq. 11 edge-cost evaluator for one task environment.
class TaskCostTable {
 public:
  /// Precomputes all per-level components of task_cost(env, *, *, buffer_s).
  /// Performs M power-model and M+1 QoE-model evaluations; every edge_cost
  /// call afterwards performs none. Throws std::invalid_argument on an
  /// empty ladder.
  TaskCostTable(const Objective& objective, const TaskEnvironment& env,
                double buffer_s);

  std::size_t num_levels() const noexcept { return energy_.size(); }

  /// Edge weight with no switch coupling (first task / reference level):
  /// bitwise equal to Objective::task_cost(env, level, std::nullopt, buffer_s).
  double edge_cost(std::size_t level) const noexcept {
    // Mirrors segment_qoe's subtraction chain: (q0 - vib) - switch(=0) - rebuf.
    double quality = quality_base_[level] - 0.0;
    quality -= rebuffer_impair_[level];
    return weigh(level, quality);
  }

  /// Edge weight with switch coupling: bitwise equal to
  /// Objective::task_cost(env, level, prev_level, buffer_s).
  double edge_cost(std::size_t level, std::size_t prev_level) const noexcept {
    double quality = quality_base_[level] - switch_impair(level, prev_level);
    quality -= rebuffer_impair_[level];
    return weigh(level, quality);
  }

  /// Re-weights the alpha-dependent derived terms in place; the cached
  /// energy/QoE components are alpha-independent, so an alpha sweep (the
  /// Pareto front) builds tables once and re-weights per sample.
  void reweight(double alpha) noexcept;

  // Component accessors (certification tests and introspection).
  double energy(std::size_t level) const { return energy_.at(level); }
  double energy_max() const noexcept { return energy_max_; }
  double quality_base(std::size_t level) const { return quality_base_.at(level); }
  double original_quality(std::size_t level) const {
    return original_quality_.at(level);
  }
  double rebuffer_s(std::size_t level) const { return rebuffer_s_.at(level); }
  double quality_max() const noexcept { return quality_max_; }
  double alpha() const noexcept { return alpha_; }

 private:
  double switch_impair(std::size_t level, std::size_t prev_level) const noexcept;
  double weigh(std::size_t level, double quality) const noexcept;

  // Per-level components (SoA, contiguous).
  std::vector<double> energy_;            ///< task_energy(env, j, buffer_s)
  std::vector<double> e_term_;            ///< energy[j]/energy_max (guarded)
  std::vector<double> e_cost_;            ///< alpha * e_term[j]
  std::vector<double> quality_base_;      ///< q0(r_j) - I(v, r_j)
  std::vector<double> original_quality_;  ///< q0(r_j), feeds the switch term
  std::vector<double> bitrate_mbps_;      ///< r_j, guards the switch term
  std::vector<double> rebuffer_s_;        ///< expected stall at this level
  std::vector<double> rebuffer_impair_;   ///< mu * max(0, rebuffer_s[j])

  // Per-task scalars.
  double energy_max_ = 0.0;    ///< task_energy at the top rung (normaliser)
  double quality_max_ = 0.0;   ///< top-rung QoE normaliser (Q(i,M))
  double alpha_ = 0.5;
  double one_minus_alpha_ = 0.5;
  double switch_penalty_ = 0.0;
  double mos_min_ = 1.0;
  double mos_max_ = 5.0;
};

/// Builds one table per task. Throws std::invalid_argument on empty tasks,
/// an empty ladder, or a ragged ladder (tasks with differing level counts).
/// Takes a span so callers can price a window of a larger task sequence
/// without copying (the rolling-horizon planner and the decision cache both
/// slice prebuilt windows).
std::vector<TaskCostTable> build_cost_tables(
    const Objective& objective, std::span<const TaskEnvironment> tasks,
    double buffer_s);

}  // namespace eacs::core
