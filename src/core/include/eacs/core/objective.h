#pragma once
// The weighted-sum optimisation objective (the paper's Eq. 11).
//
// For task i with bitrate choice j the per-task cost is
//
//     cost(i, j) = alpha * E(i,j)/E(i,M) - (1 - alpha) * Q(i,j)/Q(i,M)
//
// where M indexes the highest ladder bitrate; the normalisers make the two
// units commensurable. alpha = 0 maximises QoE only, alpha = 1 minimises
// energy only; the paper evaluates with alpha = 0.5.

#include <cstddef>
#include <optional>
#include <vector>

#include "eacs/core/task.h"
#include "eacs/power/model.h"
#include "eacs/qoe/model.h"

namespace eacs::core {

/// Objective configuration.
struct ObjectiveConfig {
  double alpha = 0.5;              ///< energy weight in [0, 1]
  double buffer_threshold_s = 30.0;  ///< B: proxy for available drain time
                                     ///< when estimating rebuffering
  bool context_aware = true;       ///< false disables the vibration term in Q
                                   ///< (energy-aware-only ablation)
};

/// Evaluates per-task energy, QoE and weighted cost for candidate bitrates.
class Objective {
 public:
  Objective(qoe::QoeModel qoe_model, power::PowerModel power_model,
            ObjectiveConfig config = {});

  const ObjectiveConfig& config() const noexcept { return config_; }
  const qoe::QoeModel& qoe_model() const noexcept { return qoe_; }
  const power::PowerModel& power_model() const noexcept { return power_; }

  /// Expected stall time for task downloading `size_megabits` at
  /// `bandwidth_mbps` with `buffer_s` of media buffered:
  /// max(0, size/bandwidth - buffer).
  double expected_rebuffer_s(double size_megabits, double bandwidth_mbps,
                             double buffer_s) const noexcept;

  /// Energy of task `env` at ladder level `level` (Eq. 8-10 reconstruction),
  /// including stall energy when the download outlasts `buffer_s`.
  double task_energy(const TaskEnvironment& env, std::size_t level,
                     double buffer_s) const;

  /// QoE of task `env` at `level`; `prev_level` enables the switch term;
  /// stall time (from the same rebuffer estimate as the energy term) is
  /// charged via the rebuffer impairment.
  double task_qoe(const TaskEnvironment& env, std::size_t level,
                  std::optional<std::size_t> prev_level, double buffer_s) const;

  /// Weighted-sum cost (the Eq. 11 summand / the Fig. 4 edge weight).
  double task_cost(const TaskEnvironment& env, std::size_t level,
                   std::optional<std::size_t> prev_level, double buffer_s) const;

  /// argmin over the ladder of task_cost with no switch term — Algorithm 1's
  /// reference-bitrate computation (line 4).
  std::size_t reference_level(const TaskEnvironment& env, double buffer_s) const;

 private:
  qoe::QoeModel qoe_;
  power::PowerModel power_;
  ObjectiveConfig config_;
};

}  // namespace eacs::core
