#pragma once
// Rolling-horizon bitrate selection (extension beyond the paper).
//
// The paper's two algorithms sit at the ends of a spectrum: the online
// algorithm optimises each task myopically (horizon 1, plus smoothing
// heuristics), the optimal algorithm optimises all N tasks with oracle
// knowledge. This selector fills the middle: every segment it solves the
// paper's Eq. 11 objective *exactly* (including the switch coupling) over a
// short lookahead window by dynamic programming, holding the estimated
// bandwidth / vibration / signal constant across the window, and commits
// only the first decision (receding horizon). Unlike the heuristic
// smoothing of Algorithm 1, ramp behaviour emerges from the switch term.

#include <memory>
#include <span>

#include "eacs/core/decision_cache.h"
#include "eacs/core/objective.h"
#include "eacs/player/abr_policy.h"

namespace eacs::core {

/// One rolling-horizon decision as a free function: exact Eq. 11 DP with
/// switch coupling over `tasks` (environment already baked into each task),
/// returning the first action of the optimal window path. This is the solver
/// the DecisionCache memoizes — callers canonicalize inputs, bake them into
/// the window tasks, and call this on the representatives. Bumps edge_evals
/// and plans on the installed CostStatsScope. Throws std::invalid_argument
/// on an empty window.
std::size_t plan_horizon_first_action(const Objective& objective,
                                      std::span<const TaskEnvironment> tasks,
                                      double buffer_s,
                                      std::optional<std::size_t> prev_level);

/// Tunables for RollingHorizonSelector.
struct HorizonOptions {
  std::size_t horizon = 5;        ///< lookahead tasks per decision
  std::size_t startup_level = 0;  ///< rung before any throughput sample
  std::string display_name = "Ours-RH";
  /// Optional decision memoization. With the default exact-key cache config
  /// decisions are bit-identical to uncached planning (certified by
  /// tests/differential/); a quantized config trades bounded decision error
  /// for fleet-scale hit rates. The selector owns no cache — share one per
  /// deterministic execution unit, never across threads.
  std::shared_ptr<DecisionCache> cache;
};

/// Receding-horizon optimiser over the Eq. 11 objective.
class RollingHorizonSelector final : public player::AbrPolicy {
 public:
  RollingHorizonSelector(Objective objective, HorizonOptions options = {});

  std::string name() const override { return options_.display_name; }
  std::size_t choose_level(const player::AbrContext& context) override;

  const Objective& objective() const noexcept { return objective_; }

 private:
  Objective objective_;
  HorizonOptions options_;
};

}  // namespace eacs::core
