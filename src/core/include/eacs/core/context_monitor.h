#pragma once
// ContextMonitor: the app-facing sensing façade.
//
// A real player integration feeds this object raw accelerometer samples,
// completed-download throughputs and telephony signal readings; it exposes
// the context snapshot (vibration level, bandwidth estimate, signal) that
// OnlineBitrateSelector consumes. The player simulator performs the same
// wiring internally; examples use this class to demonstrate the public API.
//
// Sensing is fallible, so the monitor also grades its own inputs: a
// SensorHealthMonitor tracks per-sensor freshness and validity, and the
// snapshot carries health fields (vibration_confidence, signal_age_s,
// ContextHealth grades) that let the selector fall back to a conservative
// policy instead of planning on stale or garbage context (DESIGN.md "Sensor
// failure model & degraded-context operation").

#include "eacs/net/bandwidth_estimator.h"
#include "eacs/sensors/sensor_health.h"
#include "eacs/sensors/vibration.h"

namespace eacs::core {

/// Point-in-time context snapshot.
struct ContextSnapshot {
  double vibration = 0.0;        ///< m/s^2, trailing-window estimate
  double bandwidth_mbps = 0.0;   ///< harmonic-mean estimate; 0 = no data yet
  double signal_dbm = -90.0;     ///< latest signal reading
  bool vibrating_environment = false;  ///< vibration above the configured bar

  // Health of the sensed inputs behind the numbers above.
  sensors::ContextHealth vibration_health = sensors::ContextHealth::kHealthy;
  sensors::ContextHealth signal_health = sensors::ContextHealth::kHealthy;
  double vibration_confidence = 1.0;  ///< [0, 1]; see SensorHealthMonitor
  double signal_age_s = 0.0;          ///< seconds since the signal reading
};

/// ContextMonitor tunables.
struct ContextMonitorConfig {
  sensors::VibrationConfig vibration;
  sensors::SensorHealthConfig health;
  std::size_t bandwidth_window = 20;
  double vibrating_threshold = 2.0;  ///< m/s^2 bar for the boolean flag
};

/// Streaming context aggregator.
class ContextMonitor {
 public:
  using Config = ContextMonitorConfig;

  explicit ContextMonitor(Config config = {});

  /// Feeds one raw accelerometer sample. Non-finite samples are rejected by
  /// the vibration estimator but still graded by the health monitor.
  void update_accel(const sensors::AccelSample& sample);

  /// Records a completed segment download's measured throughput.
  void observe_throughput(double mbps);

  /// Records a telephony signal-strength reading. The untimed overload stamps
  /// it with the internal clock (the latest accelerometer timestamp).
  void observe_signal(double dbm);
  void observe_signal(double t_s, double dbm);

  /// Snapshot at the internal clock (latest accelerometer timestamp).
  ContextSnapshot snapshot() const;

  /// Snapshot at an explicit time: the vibration estimate decays toward the
  /// configured conservative prior if the stream has gone quiet, and the
  /// health fields reflect staleness at `now_s`.
  ContextSnapshot snapshot(double now_s) const;

  const net::BandwidthEstimator& bandwidth_estimator() const noexcept {
    return bandwidth_;
  }

  const sensors::SensorHealthMonitor& health() const noexcept { return health_; }

  void reset();

 private:
  Config config_;
  sensors::VibrationEstimator vibration_;
  sensors::SensorHealthMonitor health_;
  net::HarmonicMeanEstimator bandwidth_;
  double last_signal_dbm_ = -90.0;
  double clock_s_ = 0.0;  ///< latest accel timestamp seen
};

}  // namespace eacs::core
