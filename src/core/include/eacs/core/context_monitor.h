#pragma once
// ContextMonitor: the app-facing sensing façade.
//
// A real player integration feeds this object raw accelerometer samples,
// completed-download throughputs and telephony signal readings; it exposes
// the context snapshot (vibration level, bandwidth estimate, signal) that
// OnlineBitrateSelector consumes. The player simulator performs the same
// wiring internally; examples use this class to demonstrate the public API.

#include "eacs/net/bandwidth_estimator.h"
#include "eacs/sensors/vibration.h"

namespace eacs::core {

/// Point-in-time context snapshot.
struct ContextSnapshot {
  double vibration = 0.0;        ///< m/s^2, trailing-window estimate
  double bandwidth_mbps = 0.0;   ///< harmonic-mean estimate; 0 = no data yet
  double signal_dbm = -90.0;     ///< latest signal reading
  bool vibrating_environment = false;  ///< vibration above the configured bar
};

/// ContextMonitor tunables.
struct ContextMonitorConfig {
  sensors::VibrationConfig vibration;
  std::size_t bandwidth_window = 20;
  double vibrating_threshold = 2.0;  ///< m/s^2 bar for the boolean flag
};

/// Streaming context aggregator.
class ContextMonitor {
 public:
  using Config = ContextMonitorConfig;

  explicit ContextMonitor(Config config = {});

  /// Feeds one raw accelerometer sample.
  void update_accel(const sensors::AccelSample& sample);

  /// Records a completed segment download's measured throughput.
  void observe_throughput(double mbps);

  /// Records a telephony signal-strength reading.
  void observe_signal(double dbm);

  ContextSnapshot snapshot() const;

  const net::BandwidthEstimator& bandwidth_estimator() const noexcept {
    return bandwidth_;
  }

  void reset();

 private:
  Config config_;
  sensors::VibrationEstimator vibration_;
  net::HarmonicMeanEstimator bandwidth_;
  double last_signal_dbm_ = -90.0;
};

}  // namespace eacs::core
