#pragma once
// Signal-aware download scheduling (extension; the paper cites
// prefetch-based energy optimisation [7] as complementary work).
//
// Bitrate selection decides *what* to download; this module decides *when*.
// Radio energy per byte varies with signal strength (Fig. 1(a)), so a
// player that knows (or predicts) the signal trajectory can defer
// downloads through weak-signal valleys and batch them into strong-signal
// windows — bounded by the buffer: every segment must arrive before its
// playback deadline, and no earlier than the buffer cap allows.
//
// Given a fixed bitrate plan, a signal trace and a throughput trace, the
// scheduler solves the download-timing problem by dynamic programming over
// a discrete slot grid and reports the radio energy next to the ASAP
// (download-as-early-as-possible, i.e. the standard player behaviour)
// baseline.

#include <vector>

#include "eacs/media/manifest.h"
#include "eacs/net/downloader.h"
#include "eacs/power/model.h"
#include "eacs/trace/time_series.h"

namespace eacs::core {

/// Scheduler knobs.
struct PrefetchConfig {
  double slot_s = 1.0;           ///< DP time granularity
  double buffer_cap_s = 30.0;    ///< max buffered media (the player's B)
  double startup_latency_s = 2.0;  ///< playback begins this long after t=0
};

/// One scheduled download.
struct ScheduledDownload {
  std::size_t segment_index = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  double radio_energy_j = 0.0;
  double deadline_s = 0.0;   ///< playback time of the segment
  bool late = false;         ///< completion after the deadline (stall)
};

/// A complete schedule.
struct PrefetchPlan {
  std::vector<ScheduledDownload> downloads;
  double radio_energy_j = 0.0;
  double stall_s = 0.0;  ///< total lateness across segments

  bool feasible() const noexcept { return stall_s <= 0.0; }
};

/// Schedules the downloads of a fixed bitrate plan.
class PrefetchScheduler {
 public:
  /// `levels` must have one entry per manifest segment.
  PrefetchScheduler(const media::VideoManifest& manifest,
                    std::vector<std::size_t> levels,
                    const trace::TimeSeries& signal_dbm,
                    const trace::TimeSeries& throughput_mbps,
                    const power::PowerModel& power_model,
                    PrefetchConfig config = {});

  /// ASAP baseline: start each download as early as the buffer cap and the
  /// previous download allow (what the standard player does).
  PrefetchPlan asap() const;

  /// Energy-optimal schedule via DP over start slots. Falls back to ASAP
  /// timing for any segment with no feasible deferred slot.
  PrefetchPlan optimize() const;

 private:
  struct Window {
    double earliest_start = 0.0;  ///< buffer-cap constraint
    double deadline = 0.0;        ///< playback deadline for completion
  };
  Window window_of(std::size_t segment) const;
  ScheduledDownload price_download(std::size_t segment, double start_s) const;

  const media::VideoManifest& manifest_;
  std::vector<std::size_t> levels_;
  const trace::TimeSeries& signal_;
  net::SegmentDownloader downloader_;
  power::PowerModel power_;  // by value: callers may pass a temporary
  PrefetchConfig config_;
};

}  // namespace eacs::core
