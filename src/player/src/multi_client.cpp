#include "eacs/player/multi_client.h"

#include <algorithm>
#include <stdexcept>

#include "eacs/net/bandwidth_estimator.h"
#include "eacs/sensors/vibration.h"

namespace eacs::player {
namespace {

constexpr double kStallEpsilon = 1e-9;

/// Per-client simulation state.
struct ClientState {
  const ClientSetup* setup = nullptr;
  net::HarmonicMeanEstimator bandwidth{20};
  sensors::VibrationEstimator vibration;
  std::size_t accel_cursor = 0;

  std::size_t next_segment = 0;
  double buffer_s = 0.0;
  bool playing = false;
  bool finished_downloading = false;
  double playback_finish_s = 0.0;  ///< last download end + remaining buffer
  std::optional<std::size_t> prev_level;

  // In-flight download.
  bool downloading = false;
  std::size_t level = 0;
  double remaining_megabits = 0.0;
  double download_start_s = 0.0;
  double size_megabits = 0.0;
  double buffer_at_request = 0.0;
  bool startup_at_request = true;
  double stall_s = 0.0;  // stall accumulated while waiting for this segment

  PlaybackResult result;

  double vibration_level_at(double t_s) {
    const auto& accel = setup->context->accel;
    while (accel_cursor < accel.size() && accel[accel_cursor].t_s <= t_s) {
      vibration.update(accel[accel_cursor]);
      ++accel_cursor;
    }
    return vibration.level();
  }
};

}  // namespace

double jain_fairness(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

MultiClientSimulator::MultiClientSimulator(trace::TimeSeries shared_capacity_mbps,
                                           MultiClientConfig config)
    : capacity_(std::move(shared_capacity_mbps)), config_(config) {
  if (capacity_.empty()) {
    throw std::invalid_argument("MultiClientSimulator: empty capacity trace");
  }
  if (config_.step_s <= 0.0) {
    throw std::invalid_argument("MultiClientSimulator: step must be > 0");
  }
}

std::vector<PlaybackResult> MultiClientSimulator::run(
    std::span<const ClientSetup> clients) const {
  std::vector<ClientState> states(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (clients[i].manifest == nullptr || clients[i].policy == nullptr ||
        clients[i].context == nullptr) {
      throw std::invalid_argument("MultiClientSimulator: null client fields");
    }
    states[i].setup = &clients[i];
    clients[i].policy->reset();
  }

  const auto request_next = [&](ClientState& state, double now) {
    const auto& manifest = *state.setup->manifest;
    AbrContext context;
    context.segment_index = state.next_segment;
    context.num_segments = manifest.num_segments();
    context.now_s = now;
    context.buffer_s = state.buffer_s;
    context.startup_phase = !state.playing;
    context.prev_level = state.prev_level;
    context.manifest = &manifest;
    context.bandwidth = &state.bandwidth;
    context.vibration_level = state.vibration_level_at(now);
    context.signal_dbm = state.setup->context->signal_dbm.linear_at(now);

    state.level = manifest.ladder().clamp_level(
        static_cast<long long>(state.setup->policy->choose_level(context)));
    state.size_megabits = manifest.segment_size_megabits(state.next_segment, state.level);
    state.remaining_megabits = state.size_megabits;
    state.download_start_s = now;
    state.buffer_at_request = state.buffer_s;
    state.startup_at_request = context.startup_phase;
    state.stall_s = 0.0;
    state.downloading = true;
  };

  const auto complete_download = [&](ClientState& state, double end_s) {
    const auto& manifest = *state.setup->manifest;
    state.downloading = false;
    state.buffer_s += manifest.segment_duration(state.next_segment);

    TaskRecord task;
    task.segment_index = state.next_segment;
    task.level = state.level;
    task.bitrate_mbps = manifest.ladder().bitrate(state.level);
    task.size_mb = state.size_megabits / 8.0;
    task.duration_s = manifest.segment_duration(state.next_segment);
    task.download_start_s = state.download_start_s;
    task.download_end_s = end_s;
    const double elapsed = std::max(1e-9, end_s - state.download_start_s);
    task.throughput_mbps = state.size_megabits / elapsed;
    task.signal_dbm = state.setup->context->signal_dbm.mean_over(
        state.download_start_s, std::max(end_s, state.download_start_s + 1e-6));
    task.vibration = state.vibration.level();
    task.buffer_before_s = state.buffer_at_request;
    task.rebuffer_s = state.stall_s;
    task.startup = state.startup_at_request;

    if (state.stall_s > kStallEpsilon) {
      state.result.total_rebuffer_s += state.stall_s;
      ++state.result.rebuffer_events;
    }
    if (state.prev_level.has_value() && *state.prev_level != state.level) {
      ++state.result.switch_count;
    }
    state.prev_level = state.level;
    state.bandwidth.observe(task.throughput_mbps);
    state.result.tasks.push_back(task);

    ++state.next_segment;
    if (state.next_segment >= manifest.num_segments()) {
      state.finished_downloading = true;
      // Nothing left to wait for: playback ends once the buffer drains.
      state.playback_finish_s = end_s + state.buffer_s;
    }
    if (!state.playing && state.buffer_s >= config_.player.startup_buffer_s) {
      state.playing = true;
      state.result.startup_delay_s = end_s;
    }
  };

  const double dt = config_.step_s;
  double now = 0.0;
  for (; now < config_.max_session_s; now += dt) {
    // 1. Activate clients: start a download if joined, not finished, not
    //    already downloading, and the buffer is at/below the threshold.
    for (auto& state : states) {
      if (state.finished_downloading || state.downloading) continue;
      if (now < state.setup->join_time_s) continue;
      if (state.playing && state.buffer_s > config_.player.buffer_threshold_s) {
        continue;  // throttled; the buffer drains below
      }
      request_next(state, now);
    }

    // 2. Share the link among active downloads.
    std::size_t active = 0;
    for (const auto& state : states) {
      if (state.downloading) ++active;
    }
    const double capacity = std::max(0.0, capacity_.linear_at(now));
    const double share = active > 0 ? capacity / static_cast<double>(active) : 0.0;

    // 3. Advance downloads (sub-step completion resolved exactly) and
    //    playback.
    for (auto& state : states) {
      double play_time = dt;  // playback advances the full step by default
      if (state.downloading && share > 0.0) {
        const double deliverable = share * dt;
        if (state.remaining_megabits <= deliverable) {
          const double finish = now + state.remaining_megabits / share;
          state.remaining_megabits = 0.0;
          complete_download(state, finish);
        } else {
          state.remaining_megabits -= deliverable;
        }
      }
      // Playback drain & stalls.
      if (state.playing) {
        if (state.buffer_s >= play_time) {
          state.buffer_s -= play_time;
        } else {
          const double stall = play_time - state.buffer_s;
          state.buffer_s = 0.0;
          if (state.downloading) state.stall_s += stall;
        }
      }
    }

    // 4. Termination: every client finished downloading.
    bool all_done = true;
    for (const auto& state : states) {
      if (!state.finished_downloading) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
  }

  std::vector<PlaybackResult> results;
  results.reserve(states.size());
  for (auto& state : states) {
    if (!state.playing) state.result.startup_delay_s = now;
    state.result.session_end_s =
        state.finished_downloading ? state.playback_finish_s : now + state.buffer_s;
    results.push_back(std::move(state.result));
  }
  return results;
}

}  // namespace eacs::player
