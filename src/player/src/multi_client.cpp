#include "eacs/player/multi_client.h"

#include <stdexcept>
#include <utility>

namespace eacs::player {

double jain_fairness(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

MultiClientSimulator::MultiClientSimulator(trace::TimeSeries shared_capacity_mbps,
                                           MultiClientConfig config)
    : capacity_(std::move(shared_capacity_mbps)), config_(config) {
  if (capacity_.empty()) {
    throw std::invalid_argument("MultiClientSimulator: empty capacity trace");
  }
  if (config_.step_s <= 0.0) {
    throw std::invalid_argument("MultiClientSimulator: step must be > 0");
  }
}

std::vector<PlaybackResult> MultiClientSimulator::run(
    std::span<const ClientSetup> clients, SessionObserver* observer) const {
  const SharedLinkModel link(capacity_);
  const SessionEngine engine(
      SessionEngineConfig{config_.player, config_.step_s, config_.max_session_s});
  return engine.run(clients, link, observer);
}

}  // namespace eacs::player
