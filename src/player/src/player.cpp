#include "eacs/player/player.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eacs/util/rng.h"

namespace eacs::player {
namespace {

/// Streams accelerometer samples into a vibration estimator in lockstep with
/// the player's wall clock.
class VibrationClock {
 public:
  VibrationClock(const sensors::AccelTrace& trace, sensors::VibrationConfig config)
      : trace_(trace), estimator_(config) {}

  /// Consumes all samples with timestamp <= t_s and returns the level.
  double advance_to(double t_s) {
    while (cursor_ < trace_.size() && trace_[cursor_].t_s <= t_s) {
      estimator_.update(trace_[cursor_]);
      ++cursor_;
    }
    return estimator_.level();
  }

 private:
  const sensors::AccelTrace& trace_;
  sensors::VibrationEstimator estimator_;
  std::size_t cursor_ = 0;
};

constexpr double kStallEpsilon = 1e-9;

}  // namespace

double PlaybackResult::total_downloaded_mb() const noexcept {
  double total = 0.0;
  for (const auto& task : tasks) total += task.size_mb;
  return total;
}

double PlaybackResult::mean_bitrate_mbps() const noexcept {
  double weighted = 0.0;
  double duration = 0.0;
  for (const auto& task : tasks) {
    weighted += task.bitrate_mbps * task.duration_s;
    duration += task.duration_s;
  }
  return duration > 0.0 ? weighted / duration : 0.0;
}

PlayerSimulator::PlayerSimulator(media::VideoManifest manifest, PlayerConfig config)
    : manifest_(std::move(manifest)), config_(config) {
  if (config_.buffer_threshold_s <= 0.0 || config_.startup_buffer_s <= 0.0) {
    throw std::invalid_argument("PlayerSimulator: buffer parameters must be > 0");
  }
  if (config_.startup_buffer_s > config_.buffer_threshold_s) {
    throw std::invalid_argument(
        "PlayerSimulator: startup buffer cannot exceed the buffer threshold");
  }
}

PlaybackResult PlayerSimulator::run(AbrPolicy& policy,
                                    const trace::SessionTraces& session) const {
  policy.reset();
  const net::SegmentDownloader downloader(session.throughput_mbps);
  net::HarmonicMeanEstimator bandwidth(config_.bandwidth_window);
  VibrationClock vibration(session.accel, config_.vibration);

  PlaybackResult result;
  result.tasks.reserve(manifest_.num_segments());

  double now = 0.0;
  double buffer = 0.0;   // seconds of media buffered ahead of the play head
  bool playing = false;
  std::optional<std::size_t> prev_level;

  for (std::size_t i = 0; i < manifest_.num_segments(); ++i) {
    // Buffer throttle: above the threshold the player idles; playback keeps
    // draining the buffer during the idle period.
    if (playing && buffer > config_.buffer_threshold_s) {
      const double wait = buffer - config_.buffer_threshold_s;
      now += wait;
      buffer = config_.buffer_threshold_s;
    }

    const double vibration_level = vibration.advance_to(now);

    AbrContext context;
    context.segment_index = i;
    context.num_segments = manifest_.num_segments();
    context.now_s = now;
    context.buffer_s = buffer;
    context.startup_phase = !playing;
    context.prev_level = prev_level;
    context.manifest = &manifest_;
    context.bandwidth = &bandwidth;
    context.vibration_level = vibration_level;
    context.signal_dbm = session.signal_dbm.linear_at(now);

    const std::size_t level =
        manifest_.ladder().clamp_level(static_cast<long long>(policy.choose_level(context)));

    const double size_megabits = manifest_.segment_size_megabits(i, level);
    const auto download = downloader.download(now, size_megabits);
    const double download_time = download.duration_s();

    // Playback during the download.
    double stall = 0.0;
    if (playing) {
      if (buffer >= download_time) {
        buffer -= download_time;
      } else {
        stall = download_time - buffer;
        buffer = 0.0;
      }
    }
    now = download.end_s;
    buffer += manifest_.segment_duration(i);

    TaskRecord task;
    task.segment_index = i;
    task.level = level;
    task.bitrate_mbps = manifest_.ladder().bitrate(level);
    task.size_mb = size_megabits / 8.0;
    task.duration_s = manifest_.segment_duration(i);
    task.download_start_s = download.start_s;
    task.download_end_s = download.end_s;
    task.throughput_mbps = download.mean_throughput_mbps;
    task.signal_dbm = download_time > 0.0
                          ? session.signal_dbm.mean_over(download.start_s, download.end_s)
                          : session.signal_dbm.linear_at(download.start_s);
    task.vibration = vibration_level;
    task.buffer_before_s = context.buffer_s;
    task.rebuffer_s = stall;
    task.startup = context.startup_phase;

    if (stall > kStallEpsilon) {
      result.total_rebuffer_s += stall;
      ++result.rebuffer_events;
    }
    if (prev_level.has_value() && *prev_level != level) ++result.switch_count;
    prev_level = level;

    bandwidth.observe(download.mean_throughput_mbps);
    result.tasks.push_back(task);

    // Startup transition: playback begins once enough media is buffered.
    if (!playing && buffer >= config_.startup_buffer_s) {
      playing = true;
      result.startup_delay_s = now;
    }
  }

  // Short video that never reached the startup buffer: playback begins when
  // everything is downloaded.
  if (!playing) result.startup_delay_s = now;

  // The remaining buffer plays out after the last download.
  result.session_end_s = now + buffer;
  return result;
}

double retry_backoff_s(const ResilienceConfig& config, std::uint64_t fault_seed,
                       std::size_t segment_index, std::size_t attempt) {
  const double base = std::min(
      config.backoff_base_s *
          std::pow(config.backoff_factor, static_cast<double>(attempt)),
      config.backoff_max_s);
  // Deterministic jitter: a pure function of (seed, segment, attempt), so
  // identical (config, seed) reproduce identical schedules bit-for-bit.
  eacs::Rng rng(fault_seed ^
                (0xB0FF'B0FFULL *
                 (static_cast<std::uint64_t>(segment_index) * 131 + attempt + 1)));
  return base * (1.0 + config.backoff_jitter * rng.uniform());
}

PlaybackResult PlayerSimulator::run(AbrPolicy& policy,
                                    const trace::SessionTraces& session,
                                    const net::FaultInjector& faults) const {
  // A disabled spec is a strict no-op pass-through: delegate to the plain
  // loop so results stay bit-identical to the fault-free overload.
  if (!faults.active()) return run(policy, session);

  policy.reset();
  const ResilienceConfig& res = config_.resilience;
  const net::SegmentDownloader& downloader = faults.downloader();
  net::HarmonicMeanEstimator bandwidth(config_.bandwidth_window);
  VibrationClock vibration(session.accel, config_.vibration);
  const std::size_t lowest = manifest_.ladder().lowest_level();

  PlaybackResult result;
  result.tasks.reserve(manifest_.num_segments());

  double now = 0.0;
  double buffer = 0.0;   // seconds of media buffered ahead of the play head
  bool playing = false;
  std::optional<std::size_t> prev_level;

  for (std::size_t i = 0; i < manifest_.num_segments(); ++i) {
    if (playing && buffer > config_.buffer_threshold_s) {
      const double wait = buffer - config_.buffer_threshold_s;
      now += wait;
      buffer = config_.buffer_threshold_s;
    }

    const double vibration_level = vibration.advance_to(now);

    AbrContext context;
    context.segment_index = i;
    context.num_segments = manifest_.num_segments();
    context.now_s = now;
    context.buffer_s = buffer;
    context.startup_phase = !playing;
    context.prev_level = prev_level;
    context.manifest = &manifest_;
    context.bandwidth = &bandwidth;
    context.vibration_level = vibration_level;
    context.signal_dbm = session.signal_dbm.linear_at(now);

    const std::size_t requested =
        manifest_.ladder().clamp_level(static_cast<long long>(policy.choose_level(context)));

    TaskRecord task;
    task.segment_index = i;
    task.duration_s = manifest_.segment_duration(i);
    task.vibration = vibration_level;
    task.buffer_before_s = context.buffer_s;
    task.startup = context.startup_phase;

    // --- Per-segment resilience state machine ---------------------------
    double stall_total = 0.0;
    const auto drain = [&](double dt) {
      // Playback during `dt` of wall time (no-op before startup).
      if (!playing || dt <= 0.0) return;
      if (buffer >= dt) {
        buffer -= dt;
      } else {
        stall_total += dt - buffer;
        buffer = 0.0;
      }
    };

    double wasted_megabits = 0.0;
    double wasted_signal_weight = 0.0;  // sum of (megabits * mean signal)
    double wasted_time = 0.0;
    double backoff_total = 0.0;
    bool abandoned = false;
    std::size_t attempt = 0;
    std::size_t level = requested;
    net::DownloadResult success;

    // Abort the in-flight attempt at `abort_at`, having moved `moved`
    // megabits: account the waste, feed the estimator the (near-zero)
    // observed throughput, and advance the clock.
    const auto account_abort = [&](double abort_at, double moved) {
      const double elapsed = abort_at - now;
      wasted_megabits += moved;
      if (moved > 0.0) {
        wasted_signal_weight += moved * session.signal_dbm.mean_over(now, abort_at);
      }
      wasted_time += elapsed;
      bandwidth.observe(elapsed > 0.0 ? moved / elapsed : 0.0);
      drain(elapsed);
      now = abort_at;
    };

    for (;;) {
      // Rung for this attempt: the policy's choice first, then one rung down
      // per retry, then the lowest rung while the link keeps failing.
      if (attempt == 0) {
        level = requested;
      } else if (attempt >= res.degrade_after) {
        level = lowest;
      } else {
        level = requested > attempt ? std::max(lowest, requested - attempt) : lowest;
      }
      const double size_megabits = manifest_.segment_size_megabits(i, level);

      if (attempt >= res.max_retries) {
        // Rescue fetch: lowest-rung request held open until it completes
        // (no per-request faults; outages still slow it via the effective
        // trace). Guarantees bounded retries and session termination.
        success = downloader.download(now, size_megabits);
        break;
      }

      const auto outcome = faults.attempt(i, attempt, now, size_megabits);
      const double deadline = now + res.attempt_deadline_s;
      const double resolves_at =
          outcome.failed ? outcome.fail_at_s : outcome.result.end_s;

      if (resolves_at > deadline) {
        // Timeout: an outage, a stuck transfer, or a failure that would
        // manifest past the deadline. Abort at the deadline.
        const double moved =
            outcome.stalled
                ? std::min(size_megabits,
                           outcome.result.mean_throughput_mbps * res.attempt_deadline_s)
                : std::min(size_megabits, faults.megabits_over(now, deadline));
        policy.on_download_failure({i, attempt, deadline, faults.in_outage(deadline)});
        account_abort(deadline, moved);
      } else if (outcome.failed) {
        policy.on_download_failure(
            {i, attempt, outcome.fail_at_s, faults.in_outage(outcome.fail_at_s)});
        account_abort(outcome.fail_at_s, size_megabits * outcome.fail_fraction);
      } else if (res.abandon_enabled && !abandoned && playing && level > lowest &&
                 buffer < res.abandon_min_buffer_s &&
                 outcome.result.duration_s() > res.abandon_factor * buffer &&
                 now + res.abandon_probe_s < outcome.result.end_s) {
        // The transfer outpaces the buffer drain: probe briefly, abandon,
        // and immediately re-request one rung lower (no backoff).
        const double probe_end = now + res.abandon_probe_s;
        const double moved =
            std::min(size_megabits, faults.megabits_over(now, probe_end));
        account_abort(probe_end, moved);
        abandoned = true;
        ++attempt;
        continue;
      } else {
        success = outcome.result;
        break;
      }

      const double wait = retry_backoff_s(res, faults.spec().seed, i, attempt);
      drain(wait);
      now += wait;
      backoff_total += wait;
      ++attempt;
    }
    // --------------------------------------------------------------------

    const double download_time = success.duration_s();
    drain(download_time);
    now = success.end_s;
    buffer += manifest_.segment_duration(i);

    task.level = level;
    task.bitrate_mbps = manifest_.ladder().bitrate(level);
    task.size_mb = success.size_megabits / 8.0;
    task.download_start_s = success.start_s;
    task.download_end_s = success.end_s;
    task.throughput_mbps = success.mean_throughput_mbps;
    task.signal_dbm = download_time > 0.0
                          ? session.signal_dbm.mean_over(success.start_s, success.end_s)
                          : session.signal_dbm.linear_at(success.start_s);
    task.rebuffer_s = stall_total;
    task.retries = attempt;
    task.abandoned = abandoned;
    task.wasted_mb = wasted_megabits / 8.0;
    task.wasted_download_s = wasted_time;
    task.wasted_signal_dbm =
        wasted_megabits > 0.0 ? wasted_signal_weight / wasted_megabits : -90.0;
    task.backoff_s = backoff_total;

    if (stall_total > kStallEpsilon) {
      result.total_rebuffer_s += stall_total;
      ++result.rebuffer_events;
    }
    if (prev_level.has_value() && *prev_level != level) ++result.switch_count;
    prev_level = level;

    bandwidth.observe(success.mean_throughput_mbps);
    result.total_retries += attempt;
    if (abandoned) ++result.abandoned_segments;
    result.total_wasted_mb += task.wasted_mb;
    result.total_backoff_s += backoff_total;
    result.tasks.push_back(task);

    if (!playing && buffer >= config_.startup_buffer_s) {
      playing = true;
      result.startup_delay_s = now;
    }
  }

  if (!playing) result.startup_delay_s = now;
  result.session_end_s = now + buffer;
  return result;
}

}  // namespace eacs::player
