#include "eacs/player/player.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "eacs/player/session_engine.h"
#include "eacs/util/rng.h"

namespace eacs::player {

double PlaybackResult::total_downloaded_mb() const noexcept {
  double total = 0.0;
  for (const auto& task : tasks) total += task.size_mb;
  return total;
}

double PlaybackResult::mean_bitrate_mbps() const noexcept {
  double weighted = 0.0;
  double duration = 0.0;
  for (const auto& task : tasks) {
    weighted += task.bitrate_mbps * task.duration_s;
    duration += task.duration_s;
  }
  return duration > 0.0 ? weighted / duration : 0.0;
}

PlayerSimulator::PlayerSimulator(media::VideoManifest manifest, PlayerConfig config)
    : manifest_(std::move(manifest)), config_(config) {
  if (config_.buffer_threshold_s <= 0.0 || config_.startup_buffer_s <= 0.0) {
    throw std::invalid_argument("PlayerSimulator: buffer parameters must be > 0");
  }
  if (config_.startup_buffer_s > config_.buffer_threshold_s) {
    throw std::invalid_argument(
        "PlayerSimulator: startup buffer cannot exceed the buffer threshold");
  }
}

PlaybackResult PlayerSimulator::run(AbrPolicy& policy,
                                    const trace::SessionTraces& session,
                                    SessionObserver* observer) const {
  const SoloLinkModel link(session.throughput_mbps);
  const SessionClient client{&manifest_, &policy, &session, 0.0};
  const SessionEngine engine(SessionEngineConfig{config_, 0.05, 7200.0});
  auto results = engine.run(std::span<const SessionClient>(&client, 1), link,
                            observer);
  return std::move(results.front());
}

double retry_backoff_s(const ResilienceConfig& config, std::uint64_t fault_seed,
                       std::size_t segment_index, std::size_t attempt) {
  const double base = std::min(
      config.backoff_base_s *
          std::pow(config.backoff_factor, static_cast<double>(attempt)),
      config.backoff_max_s);
  // Deterministic jitter: a pure function of (seed, segment, attempt), so
  // identical (config, seed) reproduce identical schedules bit-for-bit.
  eacs::Rng rng(fault_seed ^
                (0xB0FF'B0FFULL *
                 (static_cast<std::uint64_t>(segment_index) * 131 + attempt + 1)));
  return base * (1.0 + config.backoff_jitter * rng.uniform());
}

PlaybackResult PlayerSimulator::run(AbrPolicy& policy,
                                    const trace::SessionTraces& session,
                                    const net::FaultInjector& faults,
                                    SessionObserver* observer) const {
  // A disabled spec is a strict no-op pass-through: delegate to the plain
  // solo link so results stay bit-identical to the fault-free overload.
  if (!faults.active()) return run(policy, session, observer);

  const FaultLinkModel link(faults);
  const SessionClient client{&manifest_, &policy, &session, 0.0};
  const SessionEngine engine(SessionEngineConfig{config_, 0.05, 7200.0});
  auto results = engine.run(std::span<const SessionClient>(&client, 1), link,
                            observer);
  return std::move(results.front());
}

PlaybackResult PlayerSimulator::run(AbrPolicy& policy,
                                    const trace::SessionTraces& session,
                                    const sensors::SensorFaultInjector& sensor_faults,
                                    SessionObserver* observer) const {
  const SoloLinkModel link(session.throughput_mbps);
  SessionClient client{&manifest_, &policy, &session, 0.0};
  client.sensor_faults = &sensor_faults;
  const SessionEngine engine(SessionEngineConfig{config_, 0.05, 7200.0});
  auto results = engine.run(std::span<const SessionClient>(&client, 1), link,
                            observer);
  return std::move(results.front());
}

PlaybackResult PlayerSimulator::run(AbrPolicy& policy,
                                    const trace::SessionTraces& session,
                                    std::span<const net::SegmentSource> sources,
                                    SessionObserver* observer) const {
  const CdnLinkModel link(sources);
  // A single trivial source is a strict no-op pass-through: delegate to the
  // plain solo link so results stay bit-identical to the fault-free overload.
  if (!link.unreliable()) return run(policy, session, observer);

  const SessionClient client{&manifest_, &policy, &session, 0.0};
  const SessionEngine engine(SessionEngineConfig{config_, 0.05, 7200.0});
  auto results = engine.run(std::span<const SessionClient>(&client, 1), link,
                            observer);
  return std::move(results.front());
}

PlaybackResult PlayerSimulator::run(AbrPolicy& policy,
                                    const trace::SessionTraces& session,
                                    const net::FaultInjector& faults,
                                    const sensors::SensorFaultInjector& sensor_faults,
                                    SessionObserver* observer) const {
  if (!faults.active()) return run(policy, session, sensor_faults, observer);

  const FaultLinkModel link(faults);
  SessionClient client{&manifest_, &policy, &session, 0.0};
  client.sensor_faults = &sensor_faults;
  const SessionEngine engine(SessionEngineConfig{config_, 0.05, 7200.0});
  auto results = engine.run(std::span<const SessionClient>(&client, 1), link,
                            observer);
  return std::move(results.front());
}

}  // namespace eacs::player
