#include "eacs/player/player.h"

#include <algorithm>
#include <stdexcept>

namespace eacs::player {
namespace {

/// Streams accelerometer samples into a vibration estimator in lockstep with
/// the player's wall clock.
class VibrationClock {
 public:
  VibrationClock(const sensors::AccelTrace& trace, sensors::VibrationConfig config)
      : trace_(trace), estimator_(config) {}

  /// Consumes all samples with timestamp <= t_s and returns the level.
  double advance_to(double t_s) {
    while (cursor_ < trace_.size() && trace_[cursor_].t_s <= t_s) {
      estimator_.update(trace_[cursor_]);
      ++cursor_;
    }
    return estimator_.level();
  }

 private:
  const sensors::AccelTrace& trace_;
  sensors::VibrationEstimator estimator_;
  std::size_t cursor_ = 0;
};

constexpr double kStallEpsilon = 1e-9;

}  // namespace

double PlaybackResult::total_downloaded_mb() const noexcept {
  double total = 0.0;
  for (const auto& task : tasks) total += task.size_mb;
  return total;
}

double PlaybackResult::mean_bitrate_mbps() const noexcept {
  double weighted = 0.0;
  double duration = 0.0;
  for (const auto& task : tasks) {
    weighted += task.bitrate_mbps * task.duration_s;
    duration += task.duration_s;
  }
  return duration > 0.0 ? weighted / duration : 0.0;
}

PlayerSimulator::PlayerSimulator(media::VideoManifest manifest, PlayerConfig config)
    : manifest_(std::move(manifest)), config_(config) {
  if (config_.buffer_threshold_s <= 0.0 || config_.startup_buffer_s <= 0.0) {
    throw std::invalid_argument("PlayerSimulator: buffer parameters must be > 0");
  }
  if (config_.startup_buffer_s > config_.buffer_threshold_s) {
    throw std::invalid_argument(
        "PlayerSimulator: startup buffer cannot exceed the buffer threshold");
  }
}

PlaybackResult PlayerSimulator::run(AbrPolicy& policy,
                                    const trace::SessionTraces& session) const {
  policy.reset();
  const net::SegmentDownloader downloader(session.throughput_mbps);
  net::HarmonicMeanEstimator bandwidth(config_.bandwidth_window);
  VibrationClock vibration(session.accel, config_.vibration);

  PlaybackResult result;
  result.tasks.reserve(manifest_.num_segments());

  double now = 0.0;
  double buffer = 0.0;   // seconds of media buffered ahead of the play head
  bool playing = false;
  std::optional<std::size_t> prev_level;

  for (std::size_t i = 0; i < manifest_.num_segments(); ++i) {
    // Buffer throttle: above the threshold the player idles; playback keeps
    // draining the buffer during the idle period.
    if (playing && buffer > config_.buffer_threshold_s) {
      const double wait = buffer - config_.buffer_threshold_s;
      now += wait;
      buffer = config_.buffer_threshold_s;
    }

    const double vibration_level = vibration.advance_to(now);

    AbrContext context;
    context.segment_index = i;
    context.num_segments = manifest_.num_segments();
    context.now_s = now;
    context.buffer_s = buffer;
    context.startup_phase = !playing;
    context.prev_level = prev_level;
    context.manifest = &manifest_;
    context.bandwidth = &bandwidth;
    context.vibration_level = vibration_level;
    context.signal_dbm = session.signal_dbm.linear_at(now);

    const std::size_t level =
        manifest_.ladder().clamp_level(static_cast<long long>(policy.choose_level(context)));

    const double size_megabits = manifest_.segment_size_megabits(i, level);
    const auto download = downloader.download(now, size_megabits);
    const double download_time = download.duration_s();

    // Playback during the download.
    double stall = 0.0;
    if (playing) {
      if (buffer >= download_time) {
        buffer -= download_time;
      } else {
        stall = download_time - buffer;
        buffer = 0.0;
      }
    }
    now = download.end_s;
    buffer += manifest_.segment_duration(i);

    TaskRecord task;
    task.segment_index = i;
    task.level = level;
    task.bitrate_mbps = manifest_.ladder().bitrate(level);
    task.size_mb = size_megabits / 8.0;
    task.duration_s = manifest_.segment_duration(i);
    task.download_start_s = download.start_s;
    task.download_end_s = download.end_s;
    task.throughput_mbps = download.mean_throughput_mbps;
    task.signal_dbm = download_time > 0.0
                          ? session.signal_dbm.mean_over(download.start_s, download.end_s)
                          : session.signal_dbm.linear_at(download.start_s);
    task.vibration = vibration_level;
    task.buffer_before_s = context.buffer_s;
    task.rebuffer_s = stall;
    task.startup = context.startup_phase;

    if (stall > kStallEpsilon) {
      result.total_rebuffer_s += stall;
      ++result.rebuffer_events;
    }
    if (prev_level.has_value() && *prev_level != level) ++result.switch_count;
    prev_level = level;

    bandwidth.observe(download.mean_throughput_mbps);
    result.tasks.push_back(task);

    // Startup transition: playback begins once enough media is buffered.
    if (!playing && buffer >= config_.startup_buffer_s) {
      playing = true;
      result.startup_delay_s = now;
    }
  }

  // Short video that never reached the startup buffer: playback begins when
  // everything is downloaded.
  if (!playing) result.startup_delay_s = now;

  // The remaining buffer plays out after the last download.
  result.session_end_s = now + buffer;
  return result;
}

}  // namespace eacs::player
