#include "eacs/player/session_engine.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <optional>
#include <ostream>
#include <queue>
#include <stdexcept>
#include <utility>

namespace eacs::player {
namespace {

constexpr double kStallEpsilon = 1e-9;

/// The single buffer-drain / stall implementation in src/player: plays `dt`
/// seconds of wall time out of `buffer_s` and returns the stall incurred
/// (0 before startup). Every link mode routes its playback through here.
double drain_buffer(bool playing, double& buffer_s, double dt) {
  if (!playing || dt <= 0.0) return 0.0;
  if (buffer_s >= dt) {
    buffer_s -= dt;
    return 0.0;
  }
  const double stall = dt - buffer_s;
  buffer_s = 0.0;
  return stall;
}

void emit_event(SessionObserver* observer, SessionEventType type, double t_s,
                std::size_t client, std::size_t segment = kNoIndex,
                std::size_t attempt = kNoIndex, std::size_t level = kNoIndex,
                double buffer_s = 0.0, double value = 0.0,
                std::size_t source = kNoIndex) {
  if (observer == nullptr) return;
  SessionEvent event;
  event.type = type;
  event.t_s = t_s;
  event.client = client;
  event.segment = segment;
  event.attempt = attempt;
  event.level = level;
  event.source = source;
  event.buffer_s = buffer_s;
  event.value = value;
  observer->on_event(event);
}

/// Emits kFaultTransition events as the engine clock crosses outage
/// boundaries. Pure observer plumbing: touches no simulation state.
class OutageTransitionEmitter {
 public:
  OutageTransitionEmitter(const std::vector<net::OutageWindow>* schedule,
                          SessionObserver* observer, std::size_t client)
      : schedule_(schedule), observer_(observer), client_(client) {}

  /// Reports every boundary up to `to` not yet reported.
  void advance_to(double to) {
    if (schedule_ == nullptr || observer_ == nullptr) return;
    while (index_ < schedule_->size()) {
      const auto& window = (*schedule_)[index_];
      if (!inside_) {
        if (window.start_s > to) break;
        emit_event(observer_, SessionEventType::kFaultTransition, window.start_s,
                   client_, kNoIndex, kNoIndex, kNoIndex, 0.0, 1.0);
        inside_ = true;
      } else {
        if (window.end_s > to) break;
        emit_event(observer_, SessionEventType::kFaultTransition, window.end_s,
                   client_, kNoIndex, kNoIndex, kNoIndex, 0.0, 0.0);
        inside_ = false;
        ++index_;
      }
    }
  }

 private:
  const std::vector<net::OutageWindow>* schedule_;
  SessionObserver* observer_;
  std::size_t client_;
  std::size_t index_ = 0;
  bool inside_ = false;
};

long long signed_index(std::size_t value) {
  return value == kNoIndex ? -1 : static_cast<long long>(value);
}

/// The context the *policy* perceives on sensor-fault runs: the injector's
/// corrupted accel stream feeds a VibrationEstimator and a
/// SensorHealthMonitor, and its delivered signal readings replace the clean
/// trace lookup. Instantiated only when a client has an active
/// SensorFaultInjector — clean runs never construct one, which is what keeps
/// them bit-identical.
class PerceivedContext {
 public:
  PerceivedContext(const sensors::SensorFaultInjector& faults,
                   const PlayerConfig& config)
      : faults_(&faults),
        estimator_(config.vibration),
        health_(config.sensor_health) {}

  /// Consumes every delivered sample/reading up to `t_s`.
  void advance_to(double t_s) {
    const auto& accel = faults_->accel();
    while (accel_cursor_ < accel.size() && accel[accel_cursor_].t_s <= t_s) {
      estimator_.update(accel[accel_cursor_]);
      health_.observe_accel(accel[accel_cursor_]);
      ++accel_cursor_;
    }
    const auto& signal = faults_->signal();
    while (signal_cursor_ < signal.size() && signal[signal_cursor_].t_s <= t_s) {
      health_.observe_signal(signal[signal_cursor_].t_s,
                             signal[signal_cursor_].dbm);
      ++signal_cursor_;
    }
  }

  /// Perceived vibration at `t_s` (decays to the conservative prior while
  /// the corrupted stream is quiet). Always finite.
  double vibration_at(double t_s) const noexcept {
    return estimator_.level_at(t_s);
  }

  /// Overwrites the context's sensed fields with the perceived view.
  void fill(AbrContext& context, double t_s) const noexcept {
    context.vibration_level = vibration_at(t_s);
    context.signal_dbm = health_.last_signal_dbm();
    context.vibration_health = health_.accel_health(t_s);
    context.signal_health = health_.signal_health(t_s);
    context.vibration_confidence = health_.vibration_confidence(t_s);
    context.signal_age_s = health_.signal_age_s(t_s);
  }

 private:
  const sensors::SensorFaultInjector* faults_;
  sensors::VibrationEstimator estimator_;
  sensors::SensorHealthMonitor health_;
  std::size_t accel_cursor_ = 0;
  std::size_t signal_cursor_ = 0;
};

std::string format_double(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

/// The per-session adaptation runtime every mode shares — bandwidth
/// estimator, vibration clock, optional perceived-context rewire and the
/// optional stateful signal cursor. One construction path (this factory)
/// serves the solo analytic run, the stepped multi-client loop and the
/// cellular fleet path, which used to carry three divergent inline setups.
struct SessionRuntime {
  net::HarmonicMeanEstimator bandwidth;
  VibrationClock vibration;
  std::optional<PerceivedContext> perceived;  ///< active sensor faults only
  /// Stateful signal lookup (engaged unless reference_mode). Bit-identical
  /// to the cursorless linear_at.
  std::optional<trace::TimeSeriesCursor> signal_cursor;

  SessionRuntime(const SessionClient& client, const PlayerConfig& config,
                 bool reference_mode)
      : bandwidth(config.bandwidth_window),
        vibration(client.context->accel, config.vibration) {
    if (client.sensor_faults != nullptr && client.sensor_faults->active()) {
      perceived.emplace(*client.sensor_faults, config);
    }
    if (!reference_mode) signal_cursor.emplace(client.context->signal_dbm);
  }

  /// Signal strength at `t_s` through the cursor when engaged.
  double signal_at(const SessionClient& client, double t_s) {
    return signal_cursor.has_value()
               ? signal_cursor->linear_at(t_s)
               : client.context->signal_dbm.linear_at(t_s);
  }

  /// Decision-time sensing: advances the vibration clock (and the perceived
  /// streams when sensor faults are active) to `now` and fills the sensed
  /// fields of `context`. Returns the *true* vibration level;
  /// context.vibration_level afterwards holds what the policy perceives.
  double sense(AbrContext& context, const SessionClient& client, double now) {
    const double true_vibration = vibration.advance_to(now);
    context.vibration_level = true_vibration;
    context.signal_dbm = signal_at(client, now);
    if (perceived.has_value()) {
      perceived->advance_to(now);
      perceived->fill(context, now);
    }
    return true_vibration;
  }
};

}  // namespace

const char* to_string(SessionEventType type) noexcept {
  switch (type) {
    case SessionEventType::kSessionStart: return "session_start";
    case SessionEventType::kClientJoin: return "client_join";
    case SessionEventType::kThrottleWait: return "throttle_wait";
    case SessionEventType::kRequestIssued: return "request_issued";
    case SessionEventType::kDownloadProgress: return "download_progress";
    case SessionEventType::kDownloadComplete: return "download_complete";
    case SessionEventType::kAttemptDeadline: return "attempt_deadline";
    case SessionEventType::kAttemptFailure: return "attempt_failure";
    case SessionEventType::kAttemptAbandoned: return "attempt_abandoned";
    case SessionEventType::kBackoffExpiry: return "backoff_expiry";
    case SessionEventType::kBufferDrain: return "buffer_drain";
    case SessionEventType::kStall: return "stall";
    case SessionEventType::kStartup: return "startup";
    case SessionEventType::kFaultTransition: return "fault_transition";
    case SessionEventType::kSourceFailover: return "source_failover";
    case SessionEventType::kHedgeIssued: return "hedge_issued";
    case SessionEventType::kHedgeComplete: return "hedge_complete";
    case SessionEventType::kBreakerTransition: return "breaker_transition";
    case SessionEventType::kCellHandoff: return "cell_handoff";
    case SessionEventType::kSessionEnd: return "session_end";
  }
  return "unknown";
}

// --- SessionTimeline --------------------------------------------------------

void SessionTimeline::on_event(const SessionEvent& event) {
  events_.push_back(event);
}

std::size_t SessionTimeline::count(SessionEventType type) const noexcept {
  std::size_t total = 0;
  for (const auto& event : events_) {
    if (event.type == type) ++total;
  }
  return total;
}

void SessionTimeline::write_csv(std::ostream& out) const {
  out << "t_s,client,event,segment,attempt,level,source,buffer_s,value\n";
  for (const auto& event : events_) {
    out << format_double(event.t_s) << ',' << signed_index(event.client) << ','
        << to_string(event.type) << ',' << signed_index(event.segment) << ','
        << signed_index(event.attempt) << ',' << signed_index(event.level) << ','
        << signed_index(event.source) << ',' << format_double(event.buffer_s)
        << ',' << format_double(event.value) << '\n';
  }
}

void SessionTimeline::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SessionTimeline: cannot open " + path);
  write_csv(out);
  if (!out.good()) throw std::runtime_error("SessionTimeline: failed writing " + path);
}

void SessionTimeline::write_json(std::ostream& out) const {
  out << "{\"events\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const auto& event = events_[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "  {\"t_s\": " << format_double(event.t_s)
        << ", \"client\": " << signed_index(event.client) << ", \"event\": \""
        << to_string(event.type) << "\", \"segment\": "
        << signed_index(event.segment) << ", \"attempt\": "
        << signed_index(event.attempt) << ", \"level\": "
        << signed_index(event.level) << ", \"source\": "
        << signed_index(event.source) << ", \"buffer_s\": "
        << format_double(event.buffer_s) << ", \"value\": "
        << format_double(event.value) << "}";
  }
  out << (events_.empty() ? "" : "\n") << "]}\n";
}

void SessionTimeline::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SessionTimeline: cannot open " + path);
  write_json(out);
  if (!out.good()) throw std::runtime_error("SessionTimeline: failed writing " + path);
}

// --- LinkModel hierarchy ----------------------------------------------------

net::AttemptOutcome LinkModel::attempt(std::size_t, std::size_t, double,
                                       double) const {
  throw std::logic_error("LinkModel: attempt() unsupported on this link");
}

net::DownloadResult LinkModel::rescue(double, double) const {
  throw std::logic_error("LinkModel: rescue() unsupported on this link");
}

double LinkModel::megabits_over(double, double) const {
  throw std::logic_error("LinkModel: megabits_over() unsupported on this link");
}

double LinkModel::capacity_at(double) const {
  throw std::logic_error("LinkModel: capacity_at() unsupported on this link");
}

net::AttemptOutcome SoloLinkModel::attempt(std::size_t, std::size_t,
                                           double start_s,
                                           double size_megabits) const {
  net::AttemptOutcome outcome;
  outcome.result = downloader_.download(start_s, size_megabits);
  return outcome;
}

net::DownloadResult SoloLinkModel::rescue(double start_s,
                                          double size_megabits) const {
  return downloader_.download(start_s, size_megabits);
}

net::AttemptOutcome FaultLinkModel::attempt(std::size_t segment,
                                            std::size_t attempt, double start_s,
                                            double size_megabits) const {
  return faults_->attempt(segment, attempt, start_s, size_megabits);
}

net::DownloadResult FaultLinkModel::rescue(double start_s,
                                           double size_megabits) const {
  return faults_->downloader().download(start_s, size_megabits);
}

double FaultLinkModel::megabits_over(double t0, double t1) const {
  return faults_->megabits_over(t0, t1);
}

bool FaultLinkModel::in_outage(double t_s) const noexcept {
  return faults_->in_outage(t_s);
}

std::uint64_t FaultLinkModel::fault_seed() const noexcept {
  return faults_->spec().seed;
}

const std::vector<net::OutageWindow>* FaultLinkModel::outage_schedule()
    const noexcept {
  return &faults_->outage_schedule();
}

CdnLinkModel::CdnLinkModel(std::span<const net::SegmentSource> sources)
    : sources_(sources) {
  if (sources_.empty()) {
    throw std::invalid_argument("CdnLinkModel: need at least one source");
  }
}

bool CdnLinkModel::unreliable() const noexcept {
  // A single trivial source cannot perturb anything: take the fast path.
  return sources_.size() > 1 || !sources_[0].trivial();
}

net::AttemptOutcome CdnLinkModel::attempt(std::size_t segment,
                                          std::size_t attempt, double start_s,
                                          double size_megabits) const {
  // Only reached on the fast path (single trivial source): a plain download
  // against the source's (bitwise-original) trace.
  net::AttemptOutcome outcome;
  outcome.result =
      sources_[0].attempt(segment, attempt, start_s, size_megabits).result;
  return outcome;
}

net::DownloadResult CdnLinkModel::rescue(double start_s,
                                         double size_megabits) const {
  return sources_[0].rescue(start_s, size_megabits);
}

double CdnLinkModel::megabits_over(double t0, double t1) const {
  return sources_[0].megabits_over(t0, t1);
}

bool CdnLinkModel::in_outage(double t_s) const noexcept {
  return sources_[0].in_outage(t_s);
}

std::uint64_t CdnLinkModel::fault_seed() const noexcept {
  return sources_[0].config().faults.seed;
}

const std::vector<net::OutageWindow>* CdnLinkModel::outage_schedule()
    const noexcept {
  return &sources_[0].outage_schedule();
}

SharedLinkModel::SharedLinkModel(const trace::TimeSeries& capacity_mbps)
    : capacity_(&capacity_mbps) {
  if (capacity_->empty()) {
    throw std::invalid_argument("SharedLinkModel: empty capacity trace");
  }
}

double SharedLinkModel::capacity_at(double t_s) const {
  return capacity_->linear_at(t_s);
}

CellularLinkModel::CellularLinkModel(
    std::span<const trace::TimeSeries* const> cells)
    : cells_(cells.begin(), cells.end()) {
  if (cells_.empty()) {
    throw std::invalid_argument("CellularLinkModel: need at least one cell");
  }
  for (const auto* cell : cells_) {
    if (cell == nullptr || cell->empty()) {
      throw std::invalid_argument(
          "CellularLinkModel: null or empty cell capacity trace");
    }
  }
}

double CellularLinkModel::capacity_at(double t_s) const {
  return cells_.front()->linear_at(t_s);
}

// --- SessionEngine ----------------------------------------------------------

SessionEngine::SessionEngine(SessionEngineConfig config) : config_(config) {
  if (config_.player.buffer_threshold_s <= 0.0 ||
      config_.player.startup_buffer_s <= 0.0) {
    throw std::invalid_argument("SessionEngine: buffer parameters must be > 0");
  }
  if (config_.player.startup_buffer_s > config_.player.buffer_threshold_s) {
    throw std::invalid_argument(
        "SessionEngine: startup buffer cannot exceed the buffer threshold");
  }
  if (config_.step_s <= 0.0) {
    throw std::invalid_argument("SessionEngine: step must be > 0");
  }
}

std::vector<PlaybackResult> SessionEngine::run(
    std::span<const SessionClient> clients, const LinkModel& link,
    SessionObserver* observer) const {
  for (const auto& client : clients) {
    if (client.manifest == nullptr || client.policy == nullptr ||
        client.context == nullptr) {
      throw std::invalid_argument("SessionEngine: null client fields");
    }
  }
  if (link.stepped()) {
    const std::size_t num_cells = std::max<std::size_t>(1, link.cells().size());
    for (const auto& client : clients) {
      if (client.home_cell >= num_cells) {
        throw std::invalid_argument("SessionEngine: home_cell out of range");
      }
      double prev_hop_s = -std::numeric_limits<double>::infinity();
      for (const auto& hop : client.route) {
        if (hop.cell >= num_cells) {
          throw std::invalid_argument("SessionEngine: route cell out of range");
        }
        if (hop.t_s < prev_hop_s) {
          throw std::invalid_argument("SessionEngine: route not sorted by time");
        }
        prev_hop_s = hop.t_s;
      }
    }
    return run_stepped(clients, link, observer);
  }
  if (clients.size() != 1) {
    throw std::invalid_argument(
        "SessionEngine: analytic links take exactly one client");
  }
  std::vector<PlaybackResult> results;
  results.push_back(run_analytic(clients[0], link, observer));
  return results;
}

// Analytic links: segments resolve sequentially in closed form. With a
// reliable link every attempt completes (the fault-free player semantics);
// an unreliable link engages the per-segment resilience state machine
// (deadlines, bounded retries with backoff, degradation, abandonment and the
// terminal rescue fetch).
PlaybackResult SessionEngine::run_analytic(const SessionClient& client,
                                           const LinkModel& link,
                                           SessionObserver* observer) const {
  AbrPolicy& policy = *client.policy;
  const media::VideoManifest& manifest = *client.manifest;
  const trace::SessionTraces& session = *client.context;

  policy.reset();
  const PlayerConfig& config = config_.player;
  const ResilienceConfig& res = config.resilience;
  const bool unreliable = link.unreliable();
  // Inner-loop fast paths. `fast` devirtualizes the reliable download: on a
  // certifiably trivial link every attempt() is a plain download() on that
  // downloader, so the per-segment virtual dispatch is skipped. The signal
  // cursor turns the per-segment signal lookups (which move almost
  // monotonically with the session clock) from full binary searches into
  // amortised O(1) walks. Both are bit-identical to the reference path —
  // tests/differential/ asserts it per scenario; reference_mode forces the
  // original code for that comparison.
  const net::SegmentDownloader* fast =
      (config_.reference_mode || unreliable) ? nullptr : link.fast_downloader();
  // Estimators, vibration clock, signal cursor and (when sensor faults are
  // attached AND active) the perceived-context rewire, all built by the one
  // construction path every mode shares.
  SessionRuntime runtime(client, config, config_.reference_mode);
  const std::size_t lowest = manifest.ladder().lowest_level();

  PlaybackResult result;
  result.tasks.reserve(manifest.num_segments());

  double now = 0.0;
  double buffer = 0.0;  // seconds of media buffered ahead of the play head
  bool playing = false;
  std::optional<std::size_t> prev_level;

  OutageTransitionEmitter outages(unreliable ? link.outage_schedule() : nullptr,
                                  observer, 0);

  // Multi-source CDN runs: per-run failover state (breakers + EWMA scores)
  // lives in the selector; constructed only when the machine is engaged so
  // every other path stays untouched.
  const std::span<const net::SegmentSource> cdn_sources = link.sources();
  const bool cdn = unreliable && !cdn_sources.empty();
  std::optional<net::SourceSelector> selector;
  std::vector<net::BreakerState> breaker_seen;
  std::size_t active_source = 0;
  if (cdn) {
    selector.emplace(cdn_sources, res.source_selector);
    breaker_seen.assign(cdn_sources.size(), net::BreakerState::kClosed);
  }

  emit_event(observer, SessionEventType::kSessionStart, 0.0, kNoIndex);
  emit_event(observer, SessionEventType::kClientJoin, 0.0, 0);

  for (std::size_t i = 0; i < manifest.num_segments(); ++i) {
    // Buffer throttle: above the threshold the player idles; playback keeps
    // draining the buffer during the idle period.
    if (playing && buffer > config.buffer_threshold_s) {
      const double wait = buffer - config.buffer_threshold_s;
      outages.advance_to(now + wait);
      now += wait;
      buffer = config.buffer_threshold_s;
      emit_event(observer, SessionEventType::kThrottleWait, now, 0, i, kNoIndex,
                 kNoIndex, buffer, wait);
    }

    AbrContext context;
    context.segment_index = i;
    context.num_segments = manifest.num_segments();
    context.now_s = now;
    context.buffer_s = buffer;
    context.startup_phase = !playing;
    context.prev_level = prev_level;
    context.manifest = &manifest;
    context.bandwidth = &runtime.bandwidth;
    const double vibration_level = runtime.sense(context, client, now);

    const std::size_t requested = manifest.ladder().clamp_level(
        static_cast<long long>(policy.choose_level(context)));

    TaskRecord task;
    task.segment_index = i;
    task.duration_s = manifest.segment_duration(i);
    task.vibration = vibration_level;
    task.perceived_vibration = context.vibration_level;
    task.buffer_before_s = context.buffer_s;
    task.startup = context.startup_phase;

    // Playback during wall time spent on this segment (downloads, backoffs,
    // aborted attempts) runs through the engine's single drain path.
    double stall_total = 0.0;
    const auto drain = [&](double dt) {
      const bool was_playing = playing;
      const double stall = drain_buffer(playing, buffer, dt);
      stall_total += stall;
      if (observer != nullptr && was_playing && dt > 0.0) {
        emit_event(observer, SessionEventType::kBufferDrain, now, 0, i, kNoIndex,
                   kNoIndex, buffer, dt);
        if (stall > 0.0) {
          emit_event(observer, SessionEventType::kStall, now, 0, i, kNoIndex,
                     kNoIndex, buffer, stall);
        }
      }
    };

    double wasted_megabits = 0.0;
    double wasted_signal_weight = 0.0;  // sum of (megabits * mean signal)
    double wasted_time = 0.0;
    double backoff_total = 0.0;
    bool abandoned = false;
    std::size_t attempt = 0;
    std::size_t level = requested;
    std::size_t serving = 0;        // CDN: source of the winning attempt
    std::size_t segment_hedges = 0; // CDN: hedged duplicates this segment
    net::DownloadResult success;

    if (!unreliable) {
      const double size_megabits = manifest.segment_size_megabits(i, requested);
      emit_event(observer, SessionEventType::kRequestIssued, now, 0, i, 0,
                 requested, buffer, size_megabits);
      success = fast != nullptr ? fast->download(now, size_megabits)
                                : link.attempt(i, 0, now, size_megabits).result;
    } else if (cdn) {
      // --- Multi-source CDN failover machine ----------------------------
      // The single-source machine below generalised to N sources: the
      // selector picks the healthiest source per attempt (circuit breakers
      // + EWMA throughput scores), every abort feeds the breakers, and an
      // attempt the primary cannot resolve by the hedge point is duplicated
      // on the best backup — the first successful finisher wins and the
      // loser's bytes are priced as wasted download energy.
      net::SourceSelector& sel = *selector;
      constexpr double kNever = std::numeric_limits<double>::infinity();

      // Emits kBreakerTransition for every breaker whose state changed
      // since last reported.
      const auto note_breakers = [&](double t) {
        for (std::size_t s = 0; s < cdn_sources.size(); ++s) {
          const net::BreakerState st = sel.breaker(s).state();
          if (st != breaker_seen[s]) {
            breaker_seen[s] = st;
            ++result.breaker_transitions;
            emit_event(observer, SessionEventType::kBreakerTransition, t, 0, i,
                       attempt, level, buffer, static_cast<double>(st), s);
          }
        }
      };
      // Advances the wall clock over an aborted round (every leg dead).
      const auto advance_abort = [&](double abort_at, double moved) {
        const double elapsed = abort_at - now;
        runtime.bandwidth.observe(elapsed > 0.0 ? moved / elapsed : 0.0);
        drain(elapsed);
        now = abort_at;
      };
      const auto add_waste = [&](double megabits, double from, double until) {
        wasted_megabits += megabits;
        if (megabits > 0.0) {
          wasted_signal_weight +=
              megabits * session.signal_dbm.mean_over(from, until);
        }
        wasted_time += until - from;
      };
      // Megabits a leg moved from its start up to `until`.
      const auto moved_by = [&](const net::SourceAttemptOutcome& leg,
                                const net::SegmentSource& src, double from,
                                double until, double size) {
        if (until <= from) return 0.0;
        if (leg.failed && leg.fail_at_s <= until) return size * leg.fail_fraction;
        if (leg.kind == net::CdnAttemptClass::kSlow) {
          return std::min(size, leg.result.mean_throughput_mbps * (until - from));
        }
        return std::min(size, src.megabits_over(from, until));
      };

      for (;;) {
        // Rung for this attempt (same ladder walk as the single-source
        // machine): the policy's choice first, then one rung down per retry,
        // then the lowest rung while delivery keeps failing.
        if (attempt == 0) {
          level = requested;
        } else if (attempt >= res.degrade_after) {
          level = lowest;
        } else {
          level = requested > attempt ? std::max(lowest, requested - attempt) : lowest;
        }
        const double size_megabits = manifest.segment_size_megabits(i, level);

        if (attempt >= res.max_retries) {
          // Rescue fetch from the healthiest source: held open until it
          // completes; guarantees bounded retries and session termination.
          serving = sel.pick_primary(now);
          note_breakers(now);
          emit_event(observer, SessionEventType::kRequestIssued, now, 0, i,
                     attempt, level, buffer, size_megabits, serving);
          success = cdn_sources[serving].rescue(now, size_megabits);
          break;
        }

        const std::size_t primary = sel.pick_primary(now);
        note_breakers(now);
        if (primary != active_source) {
          ++result.total_failovers;
          emit_event(observer, SessionEventType::kSourceFailover, now, 0, i,
                     attempt, level, buffer,
                     static_cast<double>(active_source), primary);
          active_source = primary;
        }
        emit_event(observer, SessionEventType::kRequestIssued, now, 0, i,
                   attempt, level, buffer, size_megabits, primary);

        const auto p =
            cdn_sources[primary].attempt(i, attempt, now, size_megabits);
        const double deadline = now + res.attempt_deadline_s;
        const double hedge_at = now + res.hedge_fraction * res.attempt_deadline_s;
        const double p_success_at = p.failed ? kNever : p.result.end_s;

        // Hedge: the primary is neither done nor terminally failed by the
        // hedge point and a healthy backup exists.
        bool hedged = false;
        std::size_t backup = 0;
        net::SourceAttemptOutcome h;
        if (res.hedge_enabled && cdn_sources.size() > 1 &&
            hedge_at < deadline && p_success_at > hedge_at &&
            !(p.failed && p.fail_at_s <= hedge_at)) {
          const auto pick = sel.pick_backup(hedge_at, primary);
          note_breakers(hedge_at);
          if (pick.has_value()) {
            backup = *pick;
            h = cdn_sources[backup].attempt(i, attempt, hedge_at, size_megabits);
            hedged = true;
            ++segment_hedges;
            ++result.total_hedges;
            emit_event(observer, SessionEventType::kHedgeIssued, hedge_at, 0,
                       i, attempt, level, buffer, size_megabits, backup);
          }
        }
        const double h_success_at = hedged && !h.failed ? h.result.end_s : kNever;

        // Winner: earliest successful completion within the deadline; an
        // exact tie goes to the primary.
        const bool p_wins =
            p_success_at <= deadline && p_success_at <= h_success_at;
        const bool h_wins = !p_wins && h_success_at <= deadline;

        if (p_wins || h_wins) {
          // Abandonment is considered only for an unhedged primary win —
          // identical semantics to the single-source machine.
          if (p_wins && !hedged && res.abandon_enabled && !abandoned &&
              playing && level > lowest && buffer < res.abandon_min_buffer_s &&
              p.result.duration_s() > res.abandon_factor * buffer &&
              now + res.abandon_probe_s < p.result.end_s) {
            const double probe_end = now + res.abandon_probe_s;
            const double moved = std::min(
                size_megabits, cdn_sources[primary].megabits_over(now, probe_end));
            outages.advance_to(probe_end);
            emit_event(observer, SessionEventType::kAttemptAbandoned, probe_end,
                       0, i, attempt, level, buffer, moved, primary);
            add_waste(moved, now, probe_end);
            advance_abort(probe_end, moved);
            abandoned = true;
            ++attempt;
            continue;
          }

          const double win_end = p_wins ? p_success_at : h_success_at;
          const std::size_t win_src = p_wins ? primary : backup;
          if (hedged) {
            // The losing leg is cancelled at the winner's completion; its
            // bytes are waste. A leg feeds its breaker when it actually
            // *failed*, or when it could not have met the attempt deadline
            // anyway (a timeout regardless of cancellation) — cancelling a
            // leg that was merely slower than the winner is not a server
            // fault.
            if (p_wins) {
              const double moved = moved_by(h, cdn_sources[backup], hedge_at,
                                            win_end, size_megabits);
              add_waste(moved, hedge_at, win_end);
              if (h.failed && h.fail_at_s <= win_end) {
                sel.record(backup, false, 0.0, h.fail_at_s);
              } else if (h_success_at > deadline) {
                sel.record(backup, false, 0.0, win_end);
              }
            } else {
              const double moved = moved_by(p, cdn_sources[primary], now,
                                            win_end, size_megabits);
              add_waste(moved, now, win_end);
              if (p.failed && p.fail_at_s <= win_end) {
                sel.record(primary, false, 0.0, p.fail_at_s);
              } else if (p_success_at > deadline) {
                sel.record(primary, false, 0.0, win_end);
              }
            }
            emit_event(observer, SessionEventType::kHedgeComplete, win_end, 0,
                       i, attempt, level, buffer, p_wins ? 0.0 : 1.0, win_src);
          }
          const net::DownloadResult& win = p_wins ? p.result : h.result;
          sel.record(win_src, true, win.mean_throughput_mbps, win_end);
          note_breakers(win_end);
          success = win;
          serving = win_src;
          break;
        }

        // No leg delivered by the deadline. Every leg terminally dead before
        // it: abort at the later death (a failure); otherwise the deadline
        // fires (a timeout).
        bool fail_abort = false;
        double abort_at = deadline;
        if (!hedged) {
          if (p.failed && p.fail_at_s <= deadline) {
            fail_abort = true;
            abort_at = p.fail_at_s;
          }
        } else if (p.failed && p.fail_at_s <= deadline && h.failed &&
                   h.fail_at_s <= deadline) {
          fail_abort = true;
          abort_at = std::max(p.fail_at_s, h.fail_at_s);
        }

        const auto leg_abort = [&](const net::SourceAttemptOutcome& leg,
                                   const net::SegmentSource& src,
                                   std::size_t src_index, double from) {
          const double until =
              leg.failed ? std::min(abort_at, leg.fail_at_s) : abort_at;
          const double moved = moved_by(leg, src, from, until, size_megabits);
          add_waste(moved, from, until);
          sel.record(src_index, false, 0.0, until);
          return moved;
        };
        double moved_total = leg_abort(p, cdn_sources[primary], primary, now);
        if (hedged) {
          moved_total += leg_abort(h, cdn_sources[backup], backup, hedge_at);
        }
        outages.advance_to(abort_at);
        emit_event(observer,
                   fail_abort ? SessionEventType::kAttemptFailure
                              : SessionEventType::kAttemptDeadline,
                   abort_at, 0, i, attempt, level, buffer, moved_total, primary);
        policy.on_download_failure(
            {i, attempt, abort_at, cdn_sources[primary].in_outage(abort_at)});
        note_breakers(abort_at);
        advance_abort(abort_at, moved_total);

        const double wait = retry_backoff_s(res, link.fault_seed(), i, attempt);
        outages.advance_to(now + wait);
        drain(wait);
        now += wait;
        backoff_total += wait;
        emit_event(observer, SessionEventType::kBackoffExpiry, now, 0, i,
                   attempt, level, buffer, wait);
        ++attempt;
      }
      // ------------------------------------------------------------------
    } else {
      // --- Per-segment resilience state machine -------------------------
      // Abort the in-flight attempt at `abort_at`, having moved `moved`
      // megabits: account the waste, feed the estimator the (near-zero)
      // observed throughput, and advance the clock.
      const auto account_abort = [&](double abort_at, double moved) {
        const double elapsed = abort_at - now;
        wasted_megabits += moved;
        if (moved > 0.0) {
          wasted_signal_weight += moved * session.signal_dbm.mean_over(now, abort_at);
        }
        wasted_time += elapsed;
        runtime.bandwidth.observe(elapsed > 0.0 ? moved / elapsed : 0.0);
        drain(elapsed);
        now = abort_at;
      };

      for (;;) {
        // Rung for this attempt: the policy's choice first, then one rung
        // down per retry, then the lowest rung while the link keeps failing.
        if (attempt == 0) {
          level = requested;
        } else if (attempt >= res.degrade_after) {
          level = lowest;
        } else {
          level = requested > attempt ? std::max(lowest, requested - attempt) : lowest;
        }
        const double size_megabits = manifest.segment_size_megabits(i, level);
        emit_event(observer, SessionEventType::kRequestIssued, now, 0, i,
                   attempt, level, buffer, size_megabits);

        if (attempt >= res.max_retries) {
          // Rescue fetch: lowest-rung request held open until it completes
          // (no per-request faults; outages still slow it via the effective
          // trace). Guarantees bounded retries and session termination.
          success = link.rescue(now, size_megabits);
          break;
        }

        const auto outcome = link.attempt(i, attempt, now, size_megabits);
        const double deadline = now + res.attempt_deadline_s;
        const double resolves_at =
            outcome.failed ? outcome.fail_at_s : outcome.result.end_s;

        if (resolves_at > deadline) {
          // Timeout: an outage, a stuck transfer, or a failure that would
          // manifest past the deadline. Abort at the deadline.
          const double moved =
              outcome.stalled
                  ? std::min(size_megabits,
                             outcome.result.mean_throughput_mbps * res.attempt_deadline_s)
                  : std::min(size_megabits, link.megabits_over(now, deadline));
          outages.advance_to(deadline);
          emit_event(observer, SessionEventType::kAttemptDeadline, deadline, 0,
                     i, attempt, level, buffer, moved);
          policy.on_download_failure({i, attempt, deadline, link.in_outage(deadline)});
          account_abort(deadline, moved);
        } else if (outcome.failed) {
          outages.advance_to(outcome.fail_at_s);
          emit_event(observer, SessionEventType::kAttemptFailure,
                     outcome.fail_at_s, 0, i, attempt, level, buffer,
                     size_megabits * outcome.fail_fraction);
          policy.on_download_failure(
              {i, attempt, outcome.fail_at_s, link.in_outage(outcome.fail_at_s)});
          account_abort(outcome.fail_at_s, size_megabits * outcome.fail_fraction);
        } else if (res.abandon_enabled && !abandoned && playing && level > lowest &&
                   buffer < res.abandon_min_buffer_s &&
                   outcome.result.duration_s() > res.abandon_factor * buffer &&
                   now + res.abandon_probe_s < outcome.result.end_s) {
          // The transfer outpaces the buffer drain: probe briefly, abandon,
          // and immediately re-request one rung lower (no backoff).
          const double probe_end = now + res.abandon_probe_s;
          const double moved =
              std::min(size_megabits, link.megabits_over(now, probe_end));
          outages.advance_to(probe_end);
          emit_event(observer, SessionEventType::kAttemptAbandoned, probe_end,
                     0, i, attempt, level, buffer, moved);
          account_abort(probe_end, moved);
          abandoned = true;
          ++attempt;
          continue;
        } else {
          success = outcome.result;
          break;
        }

        const double wait = retry_backoff_s(res, link.fault_seed(), i, attempt);
        outages.advance_to(now + wait);
        drain(wait);
        now += wait;
        backoff_total += wait;
        emit_event(observer, SessionEventType::kBackoffExpiry, now, 0, i,
                   attempt, level, buffer, wait);
        ++attempt;
      }
      // ------------------------------------------------------------------
    }

    // Wall time this segment's winning transfer occupied. On non-CDN paths
    // success.start_s == now bit-for-bit, so this equals duration_s(); a
    // hedge winner starts at the hedge point, after `now`.
    const double download_time = success.end_s - now;
    outages.advance_to(success.end_s);
    drain(download_time);
    now = success.end_s;
    buffer += manifest.segment_duration(i);

    task.level = level;
    task.bitrate_mbps = manifest.ladder().bitrate(level);
    task.size_mb = success.size_megabits / 8.0;
    task.download_start_s = success.start_s;
    task.download_end_s = success.end_s;
    task.throughput_mbps = success.mean_throughput_mbps;
    task.signal_dbm =
        download_time > 0.0
            ? session.signal_dbm.mean_over(success.start_s, success.end_s)
            : runtime.signal_at(client, success.start_s);
    task.rebuffer_s = stall_total;
    task.retries = attempt;
    task.abandoned = abandoned;
    task.wasted_mb = wasted_megabits / 8.0;
    task.wasted_download_s = wasted_time;
    task.wasted_signal_dbm =
        wasted_megabits > 0.0 ? wasted_signal_weight / wasted_megabits : -90.0;
    task.backoff_s = backoff_total;
    task.source = serving;
    task.hedges = segment_hedges;

    if (stall_total > kStallEpsilon) {
      result.total_rebuffer_s += stall_total;
      ++result.rebuffer_events;
    }
    if (prev_level.has_value() && *prev_level != level) ++result.switch_count;
    prev_level = level;

    runtime.bandwidth.observe(success.mean_throughput_mbps);
    result.total_retries += attempt;
    if (abandoned) ++result.abandoned_segments;
    result.total_wasted_mb += task.wasted_mb;
    result.total_backoff_s += backoff_total;
    result.tasks.push_back(task);

    emit_event(observer, SessionEventType::kDownloadComplete, now, 0, i,
               attempt, level, buffer, success.mean_throughput_mbps);

    // Startup transition: playback begins once enough media is buffered.
    if (!playing && buffer >= config.startup_buffer_s) {
      playing = true;
      result.startup_delay_s = now;
      emit_event(observer, SessionEventType::kStartup, now, 0, i, kNoIndex,
                 kNoIndex, buffer);
    }
  }

  // Short video that never reached the startup buffer: playback begins when
  // everything is downloaded.
  if (!playing) result.startup_delay_s = now;

  // The remaining buffer plays out after the last download.
  result.session_end_s = now + buffer;
  outages.advance_to(result.session_end_s);
  emit_event(observer, SessionEventType::kSessionEnd, result.session_end_s,
             kNoIndex);
  return result;
}

namespace {

/// Per-client state for the stepped (shared-link / cellular) modes.
struct SteppedClientState {
  const SessionClient* setup = nullptr;
  SessionRuntime runtime;  ///< the shared construction path (see above)
  double perceived_at_request = 0.0;
  std::size_t cell = 0;  ///< current serving cell (cellular runs)

  std::size_t next_segment = 0;
  double buffer_s = 0.0;
  bool playing = false;
  bool joined = false;
  bool finished_downloading = false;
  double playback_finish_s = 0.0;  ///< last download end + remaining buffer
  std::optional<std::size_t> prev_level;

  // In-flight download.
  bool downloading = false;
  std::size_t level = 0;
  double remaining_megabits = 0.0;
  double download_start_s = 0.0;
  double size_megabits = 0.0;
  double buffer_at_request = 0.0;
  bool startup_at_request = true;
  double stall_s = 0.0;  // stall accumulated while waiting for this segment

  PlaybackResult result;

  SteppedClientState(const SessionClient& client, const PlayerConfig& config,
                     bool reference_mode)
      : setup(&client),
        runtime(client, config, reference_mode),
        cell(client.home_cell) {}
};

/// Consults the policy and opens the next download. Shared verbatim between
/// the reference loop and the cellular path, so the two can only diverge in
/// loop structure — which is exactly what the differential harness certifies.
void stepped_request_next(SteppedClientState& state, std::size_t index,
                          double now, SessionObserver* observer) {
  const auto& manifest = *state.setup->manifest;
  AbrContext context;
  context.segment_index = state.next_segment;
  context.num_segments = manifest.num_segments();
  context.now_s = now;
  context.buffer_s = state.buffer_s;
  context.startup_phase = !state.playing;
  context.prev_level = state.prev_level;
  context.manifest = &manifest;
  context.bandwidth = &state.runtime.bandwidth;
  state.runtime.sense(context, *state.setup, now);
  state.perceived_at_request = context.vibration_level;

  state.level = manifest.ladder().clamp_level(
      static_cast<long long>(state.setup->policy->choose_level(context)));
  state.size_megabits =
      manifest.segment_size_megabits(state.next_segment, state.level);
  state.remaining_megabits = state.size_megabits;
  state.download_start_s = now;
  state.buffer_at_request = state.buffer_s;
  state.startup_at_request = context.startup_phase;
  state.stall_s = 0.0;
  state.downloading = true;
  emit_event(observer, SessionEventType::kRequestIssued, now, index,
             state.next_segment, 0, state.level, state.buffer_s,
             state.size_megabits);
}

/// Books a finished download: task record, totals, startup transition.
/// Shared between the reference loop and the cellular path.
void stepped_complete_download(SteppedClientState& state, std::size_t index,
                               double end_s, const PlayerConfig& player_config,
                               SessionObserver* observer) {
  const auto& manifest = *state.setup->manifest;
  state.downloading = false;
  state.buffer_s += manifest.segment_duration(state.next_segment);

  TaskRecord task;
  task.segment_index = state.next_segment;
  task.level = state.level;
  task.bitrate_mbps = manifest.ladder().bitrate(state.level);
  task.size_mb = state.size_megabits / 8.0;
  task.duration_s = manifest.segment_duration(state.next_segment);
  task.download_start_s = state.download_start_s;
  task.download_end_s = end_s;
  const double elapsed = std::max(1e-9, end_s - state.download_start_s);
  task.throughput_mbps = state.size_megabits / elapsed;
  task.signal_dbm = state.setup->context->signal_dbm.mean_over(
      state.download_start_s, std::max(end_s, state.download_start_s + 1e-6));
  task.vibration = state.runtime.vibration.level();
  task.perceived_vibration = state.runtime.perceived.has_value()
                                 ? state.perceived_at_request
                                 : task.vibration;
  task.buffer_before_s = state.buffer_at_request;
  task.rebuffer_s = state.stall_s;
  task.startup = state.startup_at_request;

  if (state.stall_s > kStallEpsilon) {
    state.result.total_rebuffer_s += state.stall_s;
    ++state.result.rebuffer_events;
  }
  if (state.prev_level.has_value() && *state.prev_level != state.level) {
    ++state.result.switch_count;
  }
  state.prev_level = state.level;
  state.runtime.bandwidth.observe(task.throughput_mbps);
  state.result.tasks.push_back(task);
  emit_event(observer, SessionEventType::kDownloadComplete, end_s, index,
             state.next_segment, 0, state.level, state.buffer_s,
             task.throughput_mbps);

  ++state.next_segment;
  if (state.next_segment >= manifest.num_segments()) {
    state.finished_downloading = true;
    // Nothing left to wait for: playback ends once the buffer drains.
    state.playback_finish_s = end_s + state.buffer_s;
  }
  if (!state.playing && state.buffer_s >= player_config.startup_buffer_s) {
    state.playing = true;
    state.result.startup_delay_s = end_s;
    emit_event(observer, SessionEventType::kStartup, end_s, index,
               task.segment_index, kNoIndex, kNoIndex, state.buffer_s);
  }
}

}  // namespace

// Stepped links: completion times depend on who else is downloading, so the
// engine integrates on a fixed grid (sub-step completions resolved exactly)
// and splits capacity equally among the in-flight clients. Links that expose
// per-cell capacity traces run the cellular event-heap path; single-cell
// reference_mode (and custom stepped links without cells()) keep the
// pre-refactor loop, which the differential harness certifies the cellular
// path against bit-for-bit.
std::vector<PlaybackResult> SessionEngine::run_stepped(
    std::span<const SessionClient> clients, const LinkModel& link,
    SessionObserver* observer) const {
  const auto cell_traces = link.cells();
  if (cell_traces.empty() ||
      (config_.reference_mode && cell_traces.size() == 1)) {
    return run_stepped_reference(clients, link, observer);
  }
  return run_cells(clients, cell_traces, link, observer);
}

// The pre-refactor single-bottleneck loop, preserved as the certification
// reference for the cellular path (and the fallback for custom stepped links
// that expose no cells()).
std::vector<PlaybackResult> SessionEngine::run_stepped_reference(
    std::span<const SessionClient> clients, const LinkModel& link,
    SessionObserver* observer) const {
  const PlayerConfig& player_config = config_.player;
  std::vector<SteppedClientState> states;
  states.reserve(clients.size());
  for (const auto& client : clients) {
    states.emplace_back(client, player_config, config_.reference_mode);
    client.policy->reset();
  }

  // Capacity lookups happen once per step; when the link exposes its trace,
  // a cursor walks it instead of binary-searching every step. The query time
  // is strictly monotone here, so the walk is O(1) amortised.
  const trace::TimeSeries* capacity_series =
      config_.reference_mode ? nullptr : link.capacity_series();
  std::optional<trace::TimeSeriesCursor> capacity_cursor;
  if (capacity_series != nullptr) capacity_cursor.emplace(*capacity_series);

  emit_event(observer, SessionEventType::kSessionStart, 0.0, kNoIndex);

  const double dt = config_.step_s;
  double now = 0.0;
  for (; now < config_.max_session_s; now += dt) {
    // 1. Activate clients: start a download if joined, not finished, not
    //    already downloading, and the buffer is at/below the threshold.
    for (std::size_t c = 0; c < states.size(); ++c) {
      auto& state = states[c];
      if (state.finished_downloading || state.downloading) continue;
      if (now < state.setup->join_time_s) continue;
      if (!state.joined) {
        state.joined = true;
        emit_event(observer, SessionEventType::kClientJoin, now, c);
      }
      if (state.playing && state.buffer_s > player_config.buffer_threshold_s) {
        continue;  // throttled; the buffer drains below
      }
      stepped_request_next(state, c, now, observer);
    }

    // 2. Share the link among active downloads.
    std::size_t active = 0;
    for (const auto& state : states) {
      if (state.downloading) ++active;
    }
    const double capacity =
        std::max(0.0, capacity_cursor.has_value() ? capacity_cursor->linear_at(now)
                                                  : link.capacity_at(now));
    const double share = active > 0 ? capacity / static_cast<double>(active) : 0.0;

    // 3. Advance downloads (sub-step completion resolved exactly) and
    //    playback.
    for (std::size_t c = 0; c < states.size(); ++c) {
      auto& state = states[c];
      const double play_time = dt;  // playback advances the full step
      if (state.downloading && share > 0.0) {
        const double deliverable = share * dt;
        if (state.remaining_megabits <= deliverable) {
          const double finish = now + state.remaining_megabits / share;
          state.remaining_megabits = 0.0;
          stepped_complete_download(state, c, finish, player_config, observer);
        } else {
          state.remaining_megabits -= deliverable;
          emit_event(observer, SessionEventType::kDownloadProgress, now, c,
                     state.next_segment, 0, state.level, state.buffer_s,
                     deliverable);
        }
      }
      // Playback drain & stalls (the engine's single drain path). Stall time
      // is attributed to a segment only while one is actually in flight.
      const double stall = drain_buffer(state.playing, state.buffer_s, play_time);
      if (stall > 0.0) {
        if (state.downloading) state.stall_s += stall;
        emit_event(observer, SessionEventType::kStall, now, c,
                   state.next_segment, kNoIndex, kNoIndex, state.buffer_s, stall);
      }
    }

    // 4. Termination: every client finished downloading.
    bool all_done = true;
    for (const auto& state : states) {
      if (!state.finished_downloading) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
  }

  std::vector<PlaybackResult> results;
  results.reserve(states.size());
  for (auto& state : states) {
    if (!state.playing) state.result.startup_delay_s = now;
    state.result.session_end_s =
        state.finished_downloading ? state.playback_finish_s : now + state.buffer_s;
    results.push_back(std::move(state.result));
  }
  emit_event(observer, SessionEventType::kSessionEnd, now, kNoIndex);
  return results;
}

namespace {

/// Per-cell runtime for the cellular path.
struct CellRuntime {
  const trace::TimeSeries* capacity = nullptr;
  std::optional<trace::TimeSeriesCursor> cursor;
  std::vector<std::size_t> members;  ///< client indices, ascending
  bool scheduled = false;            ///< has a pending entry in the heap
  double exit_s = 0.0;               ///< clock when the cell stopped stepping
};

/// One scheduled handoff, flattened from the clients' routes.
struct PendingHop {
  double t_s = 0.0;
  std::size_t client = 0;
  std::size_t cell = 0;
};

}  // namespace

// The cellular path. Each base station is a processor-shared bottleneck that
// advances its members with the same per-step phases as the reference loop;
// a global binary heap keyed (step, cell) orders the work, so a cell whose
// members all finished (or that has no members) is simply never scheduled —
// the live set, not the fleet size, is what costs. All cells share one step
// grid whose clock accumulates by repeated `+ dt` exactly like the serial
// loop, which is what makes the single-cell configuration bit-identical to
// run_stepped_reference (certified in tests/differential/).
//
// Handoffs are applied at step edges, before any cell processes the step, in
// client index order; an in-flight download carries its remaining megabits
// into the new cell and simply competes for the new bottleneck from the next
// step on. A handoff into a dormant cell wakes it at the current step.
std::vector<PlaybackResult> SessionEngine::run_cells(
    std::span<const SessionClient> clients,
    std::span<const trace::TimeSeries* const> cell_traces, const LinkModel& link,
    SessionObserver* observer) const {
  (void)link;
  const PlayerConfig& player_config = config_.player;
  const double dt = config_.step_s;

  std::vector<SteppedClientState> states;
  states.reserve(clients.size());
  for (const auto& client : clients) {
    states.emplace_back(client, player_config, config_.reference_mode);
    client.policy->reset();
  }

  std::vector<CellRuntime> cells(cell_traces.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i].capacity = cell_traces[i];
    if (!config_.reference_mode) cells[i].cursor.emplace(*cell_traces[i]);
  }
  for (std::size_t c = 0; c < states.size(); ++c) {
    cells[states[c].cell].members.push_back(c);  // ascending: c is increasing
  }

  // Flatten the routes into one hop list ordered by time; a stable sort
  // keeps each client's route order at equal timestamps.
  std::vector<PendingHop> hops;
  for (std::size_t c = 0; c < states.size(); ++c) {
    for (const CellHop& hop : clients[c].route) {
      hops.push_back({hop.t_s, c, hop.cell});
    }
  }
  std::stable_sort(hops.begin(), hops.end(),
                   [](const PendingHop& a, const PendingHop& b) {
                     return a.t_s < b.t_s;
                   });
  std::size_t next_hop = 0;

  // Global (step, cell) min-heap; ties resolve by cell index, members within
  // a cell by client index — the same deterministic ordering contract the
  // serial loop provides.
  using StepEntry = std::pair<std::uint64_t, std::size_t>;
  std::priority_queue<StepEntry, std::vector<StepEntry>, std::greater<StepEntry>>
      queue;
  const auto schedule = [&](std::size_t cell, std::uint64_t step) {
    if (!cells[cell].scheduled) {
      cells[cell].scheduled = true;
      queue.push({step, cell});
    }
  };

  // Shared step grid: grid[k] accumulates by repeated `+ dt`, so a cell's
  // clock at step k is bit-identical to the serial loop's `now` after k
  // iterations — whatever order cells are processed in.
  std::vector<double> grid{0.0};
  const auto grid_time = [&](std::uint64_t step) {
    while (grid.size() <= step) grid.push_back(grid.back() + dt);
    return grid[static_cast<std::size_t>(step)];
  };

  emit_event(observer, SessionEventType::kSessionStart, 0.0, kNoIndex);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!cells[i].members.empty()) schedule(i, 0);
  }

  double global_exit_s = 0.0;
  constexpr std::uint64_t kNoStep = ~std::uint64_t{0};
  std::uint64_t hops_checked_step = kNoStep;
  std::vector<PendingHop> due;  // reused per step edge

  while (!queue.empty()) {
    const auto [step, cell_index] = queue.top();
    queue.pop();
    CellRuntime& cell = cells[cell_index];
    cell.scheduled = false;
    const double now = grid_time(step);

    // Apply handoffs once per step edge, before any cell processes it.
    // Several hops landing on the same edge apply in client index order. A
    // hop can wake a dormant lower-indexed cell at this very step, so
    // re-enter the heap afterwards to restore (step, cell) processing order.
    if (step != hops_checked_step) {
      hops_checked_step = step;
      bool moved = false;
      if (now < config_.max_session_s) {
        due.clear();
        while (next_hop < hops.size() && hops[next_hop].t_s <= now) {
          due.push_back(hops[next_hop++]);
        }
        std::stable_sort(due.begin(), due.end(),
                         [](const PendingHop& a, const PendingHop& b) {
                           return a.client < b.client;
                         });
        for (const PendingHop& hop : due) {
          auto& state = states[hop.client];
          const std::size_t from = state.cell;
          if (from == hop.cell) continue;  // self-handoff: no-op
          auto& old_members = cells[from].members;
          old_members.erase(
              std::find(old_members.begin(), old_members.end(), hop.client));
          auto& new_members = cells[hop.cell].members;
          new_members.insert(std::upper_bound(new_members.begin(),
                                              new_members.end(), hop.client),
                             hop.client);
          state.cell = hop.cell;
          ++state.result.cell_handoffs;
          emit_event(observer, SessionEventType::kCellHandoff, now, hop.client,
                     state.downloading ? state.next_segment : kNoIndex,
                     kNoIndex, kNoIndex, state.buffer_s,
                     static_cast<double>(from), hop.cell);
          // Wake the destination for this step if it still has work to do.
          if (!state.finished_downloading) schedule(hop.cell, step);
          moved = true;
        }
      }
      if (moved) {
        // Membership changed: re-enter the heap so the smallest (step, cell)
        // — possibly a freshly woken cell — processes first.
        schedule(cell_index, step);
        continue;
      }
    }

    // Hard stop: mirror the serial loop's `now < max_session_s` guard, which
    // exits with the clock already advanced past the last executed step.
    if (now >= config_.max_session_s) {
      cell.exit_s = now;
      global_exit_s = std::max(global_exit_s, now);
      continue;
    }

    // 1. Activate members: start a download if joined, not finished, not
    //    already downloading, and the buffer is at/below the threshold.
    for (const std::size_t c : cell.members) {
      auto& state = states[c];
      if (state.finished_downloading || state.downloading) continue;
      if (now < state.setup->join_time_s) continue;
      if (!state.joined) {
        state.joined = true;
        emit_event(observer, SessionEventType::kClientJoin, now, c);
      }
      if (state.playing && state.buffer_s > player_config.buffer_threshold_s) {
        continue;  // throttled; the buffer drains below
      }
      stepped_request_next(state, c, now, observer);
    }

    // 2. Share this cell's capacity among its active downloads.
    std::size_t active = 0;
    for (const std::size_t c : cell.members) {
      if (states[c].downloading) ++active;
    }
    const double capacity =
        std::max(0.0, cell.cursor.has_value() ? cell.cursor->linear_at(now)
                                              : cell.capacity->linear_at(now));
    const double share = active > 0 ? capacity / static_cast<double>(active) : 0.0;

    // 3. Advance downloads (sub-step completion resolved exactly) and
    //    playback.
    for (const std::size_t c : cell.members) {
      auto& state = states[c];
      const double play_time = dt;  // playback advances the full step
      if (state.downloading && share > 0.0) {
        const double deliverable = share * dt;
        if (state.remaining_megabits <= deliverable) {
          const double finish = now + state.remaining_megabits / share;
          state.remaining_megabits = 0.0;
          stepped_complete_download(state, c, finish, player_config, observer);
        } else {
          state.remaining_megabits -= deliverable;
          emit_event(observer, SessionEventType::kDownloadProgress, now, c,
                     state.next_segment, 0, state.level, state.buffer_s,
                     deliverable);
        }
      }
      // Playback drain & stalls (the engine's single drain path). Stall time
      // is attributed to a segment only while one is actually in flight.
      const double stall = drain_buffer(state.playing, state.buffer_s, play_time);
      if (stall > 0.0) {
        if (state.downloading) state.stall_s += stall;
        emit_event(observer, SessionEventType::kStall, now, c,
                   state.next_segment, kNoIndex, kNoIndex, state.buffer_s, stall);
      }
    }

    // 4. Cell termination: every member finished downloading (vacuously true
    //    for an emptied cell) parks the cell; otherwise step again.
    bool all_done = true;
    for (const std::size_t c : cell.members) {
      if (!states[c].finished_downloading) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      cell.exit_s = now;
      global_exit_s = std::max(global_exit_s, now);
    } else {
      schedule(cell_index, step + 1);
    }
  }

  std::vector<PlaybackResult> results;
  results.reserve(states.size());
  for (auto& state : states) {
    // Unfinished clients (hard stop) end at their own cell's exit clock.
    const double end_now = cells[state.cell].exit_s;
    if (!state.playing) state.result.startup_delay_s = end_now;
    state.result.session_end_s = state.finished_downloading
                                     ? state.playback_finish_s
                                     : end_now + state.buffer_s;
    results.push_back(std::move(state.result));
  }
  emit_event(observer, SessionEventType::kSessionEnd, global_exit_s, kNoIndex);
  return results;
}

}  // namespace eacs::player
