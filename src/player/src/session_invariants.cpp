#include "eacs/player/session_invariants.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace eacs::player {

namespace {

std::string describe(const SessionEvent& event) {
  char buffer[160];
  std::snprintf(buffer, sizeof buffer,
                " [event %s t=%.6f client=%lld segment=%lld level=%lld "
                "buffer=%.6f value=%.6f]",
                to_string(event.type), event.t_s,
                event.client == kNoIndex ? -1LL
                                         : static_cast<long long>(event.client),
                event.segment == kNoIndex
                    ? -1LL
                    : static_cast<long long>(event.segment),
                event.level == kNoIndex ? -1LL
                                        : static_cast<long long>(event.level),
                event.buffer_s, event.value);
  return buffer;
}

/// Events whose timestamps follow the per-client wall clock. Drain/stall
/// events are back-stamped to the span they cover (e.g. a kBufferDrain over a
/// download is emitted at the span's start after the completion event), and
/// stepped completions resolve sub-step, so only these types are required to
/// be monotone.
bool is_clock_event(SessionEventType type) noexcept {
  switch (type) {
    case SessionEventType::kThrottleWait:
    case SessionEventType::kRequestIssued:
    case SessionEventType::kDownloadComplete:
    case SessionEventType::kBackoffExpiry:
    case SessionEventType::kStartup:
      return true;
    default:
      return false;
  }
}

}  // namespace

SessionInvariantChecker::SessionInvariantChecker(SessionInvariantConfig config)
    : config_(config) {}

SessionInvariantChecker::SessionInvariantChecker(const PlayerConfig& player,
                                                 std::size_t num_levels,
                                                 double max_segment_s)
    : config_{player.buffer_threshold_s, max_segment_s, num_levels, true, 1e-6} {}

void SessionInvariantChecker::report(const SessionEvent& event,
                                     const std::string& what) {
  violations_.push_back(what + describe(event));
  if (config_.throw_on_violation) {
    throw std::logic_error("SessionInvariantChecker: " + violations_.back());
  }
}

SessionInvariantChecker::ClientState& SessionInvariantChecker::state_for(
    std::size_t client) {
  if (client >= clients_.size()) clients_.resize(client + 1);
  return clients_[client];
}

void SessionInvariantChecker::on_event(const SessionEvent& event) {
  ++events_seen_;

  if (!std::isfinite(event.t_s) || !std::isfinite(event.buffer_s) ||
      !std::isfinite(event.value)) {
    report(event, "non-finite event field");
    return;
  }
  if (event.t_s < 0.0) report(event, "negative timestamp");

  const double cap =
      config_.buffer_threshold_s + config_.max_segment_s + config_.buffer_epsilon;
  if (event.buffer_s < -config_.buffer_epsilon || event.buffer_s > cap) {
    report(event, "buffer outside [0, threshold + max segment]");
  }
  if (config_.num_levels > 0 && event.level != kNoIndex &&
      event.level >= config_.num_levels) {
    report(event, "level outside the ladder");
  }

  switch (event.type) {
    case SessionEventType::kSessionStart:
      if (session_started_) report(event, "duplicate session_start");
      session_started_ = true;
      return;
    case SessionEventType::kSessionEnd:
      if (!session_started_) report(event, "session_end before session_start");
      if (session_ended_) report(event, "duplicate session_end");
      session_ended_ = true;
      return;
    default:
      break;
  }

  if (!session_started_) report(event, "event before session_start");
  if (session_ended_) report(event, "event after session_end");
  if (event.client == kNoIndex) {
    report(event, "client event without a client index");
    return;
  }

  ClientState& client = state_for(event.client);
  if (is_clock_event(event.type)) {
    if (client.clock_seen && event.t_s < client.clock_s - 1e-9) {
      report(event, "client clock moved backwards");
    }
    client.clock_s = std::max(client.clock_s, event.t_s);
    client.clock_seen = true;
  }

  switch (event.type) {
    case SessionEventType::kStartup:
      if (client.started) report(event, "duplicate startup for client");
      client.started = true;
      break;
    case SessionEventType::kBufferDrain:
    case SessionEventType::kStall:
      if (!client.started) report(event, "drain/stall before startup");
      if (event.type == SessionEventType::kStall &&
          event.buffer_s > config_.buffer_epsilon) {
        report(event, "stall with a non-empty buffer");
      }
      break;
    case SessionEventType::kThrottleWait:
      if (event.value < 0.0) report(event, "negative throttle wait");
      break;
    case SessionEventType::kBackoffExpiry:
      if (event.value < 0.0) report(event, "negative backoff wait");
      break;
    default:
      break;
  }
}

void SessionInvariantChecker::reset() {
  clients_.clear();
  violations_.clear();
  events_seen_ = 0;
  session_started_ = false;
  session_ended_ = false;
}

std::vector<std::string> SessionInvariantChecker::check_result(
    const PlaybackResult& result, std::size_t num_levels) {
  std::vector<std::string> violations;
  const auto check = [&](bool condition, const std::string& what,
                         std::size_t segment) {
    if (condition) return;
    violations.push_back(what + " (segment " + std::to_string(segment) + ")");
  };

  const auto finite = [](double v) { return std::isfinite(v); };
  if (!finite(result.startup_delay_s) || !finite(result.total_rebuffer_s) ||
      !finite(result.session_end_s) || !finite(result.total_wasted_mb) ||
      !finite(result.total_backoff_s)) {
    violations.push_back("non-finite session totals");
  }
  if (result.startup_delay_s < 0.0 || result.total_rebuffer_s < 0.0 ||
      result.total_wasted_mb < 0.0 || result.total_backoff_s < 0.0) {
    violations.push_back("negative session totals");
  }
  if (result.session_end_s < result.startup_delay_s) {
    violations.push_back("session ended before startup");
  }

  double prev_start = 0.0;
  for (const auto& task : result.tasks) {
    const std::size_t i = task.segment_index;
    check(finite(task.bitrate_mbps) && finite(task.size_mb) &&
              finite(task.duration_s) && finite(task.download_start_s) &&
              finite(task.download_end_s) && finite(task.throughput_mbps) &&
              finite(task.signal_dbm) && finite(task.vibration) &&
              finite(task.perceived_vibration) && finite(task.buffer_before_s) &&
              finite(task.rebuffer_s) && finite(task.wasted_mb) &&
              finite(task.wasted_download_s) && finite(task.wasted_signal_dbm) &&
              finite(task.backoff_s),
          "non-finite task field", i);
    check(num_levels == 0 || task.level < num_levels, "level outside the ladder",
          i);
    check(task.download_end_s >= task.download_start_s,
          "download ends before it starts", i);
    check(task.download_start_s >= prev_start - 1e-9,
          "downloads out of order", i);
    check(task.size_mb >= 0.0 && task.duration_s > 0.0 && task.rebuffer_s >= 0.0 &&
              task.wasted_mb >= 0.0 && task.wasted_download_s >= 0.0 &&
              task.backoff_s >= 0.0 && task.buffer_before_s >= 0.0,
          "negative task accounting", i);
    prev_start = task.download_start_s;
  }
  return violations;
}

}  // namespace eacs::player
