#pragma once
// The unified playback session engine.
//
// One event-driven core replaces the three playback loops the repo used to
// carry (fault-free PlayerSimulator::run, the fault-injected resilience
// overload, and MultiClientSimulator's stepped shared-link loop). The engine
// owns the single implementation of buffer drain / stall accounting, startup
// transitions, the buffer-threshold throttle and the per-segment resilience
// state machine; what varies between scenarios is factored into a LinkModel:
//
//  * SoloLinkModel    — trace-driven dedicated link; every attempt completes
//                       (the fault-free player semantics);
//  * FaultLinkModel   — wraps net::FaultInjector; attempts can fail, stall or
//                       time out, engaging ResilienceConfig's state machine
//                       (deadlines, bounded retries, backoff, degradation,
//                       abandonment, rescue fetch);
//  * CdnLinkModel     — multi-source CDN delivery: N SegmentSources with
//                       per-source server faults; the engine adds circuit
//                       breakers, health-scored failover and hedged requests
//                       (first successful finisher wins, the loser's bytes
//                       are priced as wasted energy);
//  * SharedLinkModel  — processor-sharing bottleneck: concurrent downloads
//                       split the capacity equally; integrated on a fixed
//                       step grid with sub-step completions resolved exactly.
//  * CellularLinkModel — many processor-shared bottlenecks (one per base
//                       station); clients attach per-cell and follow handoff
//                       routes, and the engine advances cells through a
//                       global (step, cell) event heap so finished or empty
//                       cells cost nothing. One cell == SharedLinkModel.
//
// Every state transition is surfaced to SessionObserver hooks as a typed
// SessionEvent; SessionTimeline is the bundled observer that records the full
// per-event log and serialises it as CSV or JSON (used by
// `trace_explorer --timeline` and the event-ordering tests).
//
// Determinism: the engine adds no randomness of its own — all draws live in
// net::FaultInjector / retry_backoff_s and are pure functions of their seeds,
// so engine runs inherit the repo-wide bit-reproducibility contract
// (DESIGN.md §6). Observers are strictly read-only: attaching one can never
// perturb a result.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "eacs/net/downloader.h"
#include "eacs/net/fault_injector.h"
#include "eacs/net/segment_source.h"
#include "eacs/player/abr_policy.h"
#include "eacs/player/player.h"
#include "eacs/sensors/sensor_faults.h"
#include "eacs/sensors/vibration.h"
#include "eacs/trace/session.h"
#include "eacs/trace/time_series.h"

namespace eacs::player {

/// Sentinel for SessionEvent fields that do not apply to an event.
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/// Everything the engine can report. Analytic links (solo, fault) emit
/// request/complete/failure/drain events with exact timestamps; the stepped
/// shared link additionally emits per-step kDownloadProgress and timestamps
/// intra-step events at the step boundary.
enum class SessionEventType {
  kSessionStart,      ///< engine run begins (client = kNoIndex)
  kClientJoin,        ///< client becomes eligible to download
  kThrottleWait,      ///< buffer above threshold; value = idle seconds
  kRequestIssued,     ///< policy consulted, download starts; level is set
  kDownloadProgress,  ///< stepped links: value = megabits moved this step
  kDownloadComplete,  ///< segment landed; value = measured throughput (Mbps)
  kAttemptDeadline,   ///< attempt aborted at the deadline (fault links only)
  kAttemptFailure,    ///< attempt died mid-flight (fault links only)
  kAttemptAbandoned,  ///< mid-download abandonment (fault links only)
  kBackoffExpiry,     ///< retry backoff elapsed; value = waited seconds
  kBufferDrain,       ///< playback drained the buffer; value = seconds played
  kStall,             ///< buffer hit empty; value = stall seconds
  kStartup,           ///< playback began for this client
  kFaultTransition,   ///< outage boundary crossed; value = 1 enter, 0 leave
  kSourceFailover,    ///< CDN links: primary source switched; source = new
                      ///< primary, value = the previous source index
  kHedgeIssued,       ///< CDN links: duplicate fetch sent; source = backup
  kHedgeComplete,     ///< CDN links: hedged race resolved; source = winner,
                      ///< value = 0 primary won, 1 the hedge won
  kBreakerTransition, ///< CDN links: breaker changed state; source = which,
                      ///< value = new state (0 closed, 1 open, 2 half-open)
  kCellHandoff,       ///< cellular links: client moved cells at a step edge;
                      ///< source = new cell, value = the previous cell index
  kSessionEnd,        ///< engine run finished (client = kNoIndex)
};

/// Stable lower-case identifier (used in timeline CSV/JSON and tests).
const char* to_string(SessionEventType type) noexcept;

/// One engine event. Fields that do not apply hold kNoIndex / 0.0.
struct SessionEvent {
  SessionEventType type = SessionEventType::kSessionStart;
  double t_s = 0.0;                 ///< wall-clock time of the event
  std::size_t client = kNoIndex;    ///< client index within the run
  std::size_t segment = kNoIndex;   ///< segment the event concerns
  std::size_t attempt = kNoIndex;   ///< attempt number (fault links)
  std::size_t level = kNoIndex;     ///< ladder level in play
  std::size_t source = kNoIndex;    ///< CDN source index (CDN links only)
  double buffer_s = 0.0;            ///< client buffer after the event
  double value = 0.0;               ///< type-specific payload (see enum docs)
};

/// Read-only hook invoked on every engine event, in emission order.
/// Observers must not mutate engine inputs; attaching one never changes a
/// PlaybackResult.
class SessionObserver {
 public:
  virtual ~SessionObserver() = default;
  virtual void on_event(const SessionEvent& event) = 0;
};

/// Bundled observer: records the complete event log and serialises it.
class SessionTimeline final : public SessionObserver {
 public:
  void on_event(const SessionEvent& event) override;

  const std::vector<SessionEvent>& events() const noexcept { return events_; }
  std::size_t count(SessionEventType type) const noexcept;
  void clear() { events_.clear(); }

  /// CSV: header + one row per event (t_s,client,event,segment,attempt,
  /// level,source,buffer_s,value); kNoIndex prints as -1, doubles as %.17g.
  void write_csv(std::ostream& out) const;
  void write_csv(const std::string& path) const;

  /// JSON: {"events": [{...}, ...]} with the same fields as the CSV.
  void write_json(std::ostream& out) const;
  void write_json(const std::string& path) const;

 private:
  std::vector<SessionEvent> events_;
};

/// Streams accelerometer samples into a vibration estimator in lockstep with
/// the engine clock — the one vibration-seeding helper shared by every link
/// mode (previously duplicated between player.cpp and multi_client.cpp).
class VibrationClock {
 public:
  /// `trace` is unowned and must outlive the clock.
  VibrationClock(const sensors::AccelTrace& trace, sensors::VibrationConfig config)
      : trace_(&trace), estimator_(config) {}

  /// Consumes all samples with timestamp <= t_s and returns the level.
  double advance_to(double t_s) {
    while (cursor_ < trace_->size() && (*trace_)[cursor_].t_s <= t_s) {
      estimator_.update((*trace_)[cursor_]);
      ++cursor_;
    }
    return estimator_.level();
  }

  /// Current level without consuming further samples.
  double level() const noexcept { return estimator_.level(); }

 private:
  const sensors::AccelTrace* trace_;
  sensors::VibrationEstimator estimator_;
  std::size_t cursor_ = 0;
};

/// How the engine reaches the network. Two resolution modes:
///
///  * analytic (stepped() == false): the link resolves one attempt in closed
///    form via attempt()/rescue(); unreliable() decides whether the engine
///    engages the resilience state machine around those attempts;
///  * stepped (stepped() == true): completion times depend on who else is
///    downloading, so the engine integrates on SessionEngineConfig::step_s
///    steps and queries capacity_at() each step.
///
/// Methods that do not belong to the model's mode throw std::logic_error.
class LinkModel {
 public:
  virtual ~LinkModel() = default;

  virtual bool stepped() const noexcept { return false; }
  virtual bool unreliable() const noexcept { return false; }

  // --- analytic links -----------------------------------------------------
  /// Outcome of attempt `attempt` of `segment` started at `start_s`.
  virtual net::AttemptOutcome attempt(std::size_t segment, std::size_t attempt,
                                      double start_s, double size_megabits) const;
  /// Rescue fetch: a held-open transfer that always completes.
  virtual net::DownloadResult rescue(double start_s, double size_megabits) const;
  /// Megabits the link moves over [t0, t1] (waste accounting for aborts).
  virtual double megabits_over(double t0, double t1) const;
  /// True if `t_s` is inside a link outage.
  virtual bool in_outage(double /*t_s*/) const noexcept { return false; }
  /// Seed for the deterministic retry-backoff jitter.
  virtual std::uint64_t fault_seed() const noexcept { return 0; }
  /// Sorted outage schedule for kFaultTransition events (may be null).
  virtual const std::vector<net::OutageWindow>* outage_schedule() const noexcept {
    return nullptr;
  }
  /// CDN links only: the session's segment sources. Non-empty together with
  /// unreliable() engages the engine's multi-source failover machine
  /// (per-source breakers, health-scored selection, hedged requests)
  /// instead of the single-source resilience machine.
  virtual std::span<const net::SegmentSource> sources() const noexcept {
    return {};
  }

  /// Devirtualization hook for the reliable analytic path. Non-null only when
  /// every attempt() on this link reduces to a plain
  /// `downloader->download(start, size)` — i.e. the model is certifiably
  /// trivial (solo link; fault link with an inactive injector; single
  /// trivial CDN source). The engine then calls the downloader directly per
  /// segment instead of dispatching through attempt(), which is
  /// bit-identical by construction (the virtual path wraps the same call).
  /// Unreliable/stepped links return null and take the full machinery.
  virtual const net::SegmentDownloader* fast_downloader() const noexcept {
    return nullptr;
  }

  // --- stepped links ------------------------------------------------------
  /// Instantaneous shared capacity at `t_s` (Mbps).
  virtual double capacity_at(double t_s) const;

  /// Stepped links: the underlying capacity trace when capacity_at() is a
  /// plain TimeSeries::linear_at over it, letting the engine keep a stateful
  /// trace cursor across steps instead of re-binary-searching per step.
  /// Null (the default) falls back to per-step capacity_at() calls.
  virtual const trace::TimeSeries* capacity_series() const noexcept {
    return nullptr;
  }

  /// Stepped links: the per-cell capacity traces of a cellular network, one
  /// processor-shared bottleneck per base station. Non-empty engages the
  /// engine's multi-cell path (clients attach at SessionClient::home_cell and
  /// follow their handoff route); SharedLinkModel reports its single
  /// bottleneck here, which is how the classic multi-client run becomes a
  /// one-cell configuration of that path. Empty (the default) keeps the
  /// legacy single-bottleneck stepping over capacity_at().
  virtual std::span<const trace::TimeSeries* const> cells() const noexcept {
    return {};
  }
};

/// Dedicated trace-driven link: every attempt completes, nothing times out.
class SoloLinkModel final : public LinkModel {
 public:
  /// The trace is unowned — it must be non-empty (SegmentDownloader
  /// validates) and outlive the model, like SharedLinkModel's capacity
  /// trace. Sweeps build one model per (session, policy) run, so sharing the
  /// session's trace instead of copying it is what makes those runs
  /// allocation-free on the link side.
  explicit SoloLinkModel(const trace::TimeSeries& throughput_mbps)
      : downloader_(net::borrow_trace(throughput_mbps)) {}

  net::AttemptOutcome attempt(std::size_t segment, std::size_t attempt,
                              double start_s, double size_megabits) const override;
  net::DownloadResult rescue(double start_s, double size_megabits) const override;
  const net::SegmentDownloader* fast_downloader() const noexcept override {
    return &downloader_;
  }

  const net::SegmentDownloader& downloader() const noexcept { return downloader_; }

 private:
  net::SegmentDownloader downloader_;
};

/// Fault-injected link: wraps a net::FaultInjector (unowned, must outlive the
/// model). unreliable() mirrors injector.active(), so a disabled spec behaves
/// exactly like a solo link over the same trace.
class FaultLinkModel final : public LinkModel {
 public:
  explicit FaultLinkModel(const net::FaultInjector& faults) : faults_(&faults) {}

  bool unreliable() const noexcept override { return faults_->active(); }
  net::AttemptOutcome attempt(std::size_t segment, std::size_t attempt,
                              double start_s, double size_megabits) const override;
  net::DownloadResult rescue(double start_s, double size_megabits) const override;
  double megabits_over(double t0, double t1) const override;
  bool in_outage(double t_s) const noexcept override;
  std::uint64_t fault_seed() const noexcept override;
  const std::vector<net::OutageWindow>* outage_schedule() const noexcept override;
  /// Inactive injector: attempt() is exactly downloader().download(...).
  const net::SegmentDownloader* fast_downloader() const noexcept override {
    return faults_->active() ? nullptr : &faults_->downloader();
  }

 private:
  const net::FaultInjector* faults_;
};

/// Multi-source CDN delivery: N SegmentSources (unowned, must outlive the
/// model), one per manifest BaseURL. unreliable() is false only for a single
/// *trivial* source (default CdnFaultSpec, scale 1, RTT 0) — the engine then
/// takes the plain fast path over that source's downloader, which is the
/// certified no-op the sim studies' baselines rely on. Otherwise the engine
/// runs the CDN failover machine: per-source circuit breakers, health-scored
/// source selection and hedged requests (ResilienceConfig's CDN knobs).
/// The analytic LinkModel methods delegate to source 0 (the origin), which
/// also provides the fault seed for backoff jitter and the outage schedule
/// surfaced as kFaultTransition events.
class CdnLinkModel final : public LinkModel {
 public:
  /// Throws std::invalid_argument on an empty source list.
  explicit CdnLinkModel(std::span<const net::SegmentSource> sources);

  bool unreliable() const noexcept override;
  net::AttemptOutcome attempt(std::size_t segment, std::size_t attempt,
                              double start_s, double size_megabits) const override;
  net::DownloadResult rescue(double start_s, double size_megabits) const override;
  double megabits_over(double t0, double t1) const override;
  bool in_outage(double t_s) const noexcept override;
  std::uint64_t fault_seed() const noexcept override;
  const std::vector<net::OutageWindow>* outage_schedule() const noexcept override;
  std::span<const net::SegmentSource> sources() const noexcept override {
    return sources_;
  }
  /// Single trivial source: attempt() is its downloader's download() (no
  /// fault gates, scale 1, RTT 0 — the certified no-op configuration).
  const net::SegmentDownloader* fast_downloader() const noexcept override {
    return unreliable() ? nullptr : &sources_[0].downloader();
  }

 private:
  std::span<const net::SegmentSource> sources_;
};

/// Processor-sharing bottleneck: the engine divides capacity_at(t) equally
/// among clients with an in-flight download. The capacity trace is unowned
/// and must outlive the model.
class SharedLinkModel final : public LinkModel {
 public:
  /// Throws std::invalid_argument on an empty capacity trace.
  explicit SharedLinkModel(const trace::TimeSeries& capacity_mbps);

  bool stepped() const noexcept override { return true; }
  double capacity_at(double t_s) const override;
  const trace::TimeSeries* capacity_series() const noexcept override {
    return capacity_;
  }
  std::span<const trace::TimeSeries* const> cells() const noexcept override {
    return {&capacity_, 1};
  }

 private:
  const trace::TimeSeries* capacity_;
};

/// Multi-cell cellular network: one processor-shared capacity trace per base
/// station. Clients attach to SessionClient::home_cell, follow their
/// SessionClient::route between cells (handoffs applied at step edges, an
/// in-flight download carries its remaining bytes to the new cell), and each
/// cell splits its own capacity equally among its downloading members. The
/// traces are unowned and must outlive the model. With a single cell this is
/// exactly SharedLinkModel.
class CellularLinkModel final : public LinkModel {
 public:
  /// Throws std::invalid_argument on an empty cell list or any null/empty
  /// capacity trace.
  explicit CellularLinkModel(std::span<const trace::TimeSeries* const> cells);

  bool stepped() const noexcept override { return true; }
  /// Cell 0's capacity (the LinkModel single-bottleneck view).
  double capacity_at(double t_s) const override;
  const trace::TimeSeries* capacity_series() const noexcept override {
    return cells_.front();
  }
  std::span<const trace::TimeSeries* const> cells() const noexcept override {
    return cells_;
  }

 private:
  std::vector<const trace::TimeSeries*> cells_;
};

/// One scheduled cell change on a client's route through a cellular network.
struct CellHop {
  double t_s = 0.0;       ///< earliest time the handoff can happen
  std::size_t cell = 0;   ///< destination cell index
};

/// One participating client. `context` supplies signal/accel traces (and, on
/// analytic links, nothing else — the LinkModel owns throughput).
struct SessionClient {
  const media::VideoManifest* manifest = nullptr;  ///< stream to play
  AbrPolicy* policy = nullptr;                     ///< adaptation algorithm
  const trace::SessionTraces* context = nullptr;   ///< signal/accel context
  double join_time_s = 0.0;  ///< stepped links only: when the client starts

  /// Optional sensor-fault injector (unowned, must outlive the run). When
  /// attached and active, the policy perceives the injector's corrupted
  /// accel/signal streams (graded by a SensorHealthMonitor) while the
  /// physical session — link, true signal, true vibration — is untouched;
  /// TaskRecord::vibration keeps the true estimate, perceived_vibration what
  /// the policy saw. Null or inactive: strict no-op, bit-identical results.
  const sensors::SensorFaultInjector* sensor_faults = nullptr;

  // --- cellular links only (LinkModel::cells().size() > 1) ----------------
  /// Cell the client attaches to before its first handoff.
  std::size_t home_cell = 0;
  /// Scheduled handoffs, sorted by t_s (unowned storage, must outlive the
  /// run). Each hop is applied at the first step edge at or after its t_s,
  /// in client index order when several land on the same edge; an in-flight
  /// download carries its remaining megabits to the new cell. Hops to the
  /// current cell are no-ops. Empty: the client never leaves home_cell.
  std::span<const CellHop> route = {};
};

/// Engine knobs. `player` applies to every client; the step/stop values are
/// consulted only for stepped links.
struct SessionEngineConfig {
  PlayerConfig player;
  double step_s = 0.05;           ///< stepped-link integration step
  double max_session_s = 7200.0;  ///< stepped-link hard stop (defensive)
  /// Disables the devirtualized download path and the stateful trace
  /// cursors, forcing the original virtual-dispatch / binary-search-per-
  /// lookup code. Results are bit-identical either way — this switch exists
  /// so tests/differential/ can prove it on every scenario.
  bool reference_mode = false;
};

/// The unified session engine. Stateless across runs: one instance can be
/// reused for any number of runs, links and observers.
class SessionEngine {
 public:
  /// Throws std::invalid_argument on non-positive buffer/step parameters or
  /// startup buffer above the threshold (same contract as PlayerSimulator).
  explicit SessionEngine(SessionEngineConfig config);

  const SessionEngineConfig& config() const noexcept { return config_; }

  /// Runs every client to completion against `link`; result[i] corresponds
  /// to clients[i]. Analytic links require exactly one client (join_time_s
  /// ignored); stepped links accept any number. Policies are reset() first.
  /// Throws std::invalid_argument on null client fields.
  std::vector<PlaybackResult> run(std::span<const SessionClient> clients,
                                  const LinkModel& link,
                                  SessionObserver* observer = nullptr) const;

 private:
  PlaybackResult run_analytic(const SessionClient& client, const LinkModel& link,
                              SessionObserver* observer) const;
  std::vector<PlaybackResult> run_stepped(std::span<const SessionClient> clients,
                                          const LinkModel& link,
                                          SessionObserver* observer) const;
  /// The pre-refactor single-bottleneck stepping loop, kept verbatim so the
  /// differential harness can certify the cellular path against it (and as
  /// the fallback for custom stepped links that expose no cells()).
  std::vector<PlaybackResult> run_stepped_reference(
      std::span<const SessionClient> clients, const LinkModel& link,
      SessionObserver* observer) const;
  /// The cellular path: per-cell stepping driven by a global (step, cell)
  /// event heap, with handoffs applied at step edges. Single cell is
  /// bit-identical to run_stepped_reference.
  std::vector<PlaybackResult> run_cells(std::span<const SessionClient> clients,
                                        std::span<const trace::TimeSeries* const> cells,
                                        const LinkModel& link,
                                        SessionObserver* observer) const;

  SessionEngineConfig config_;
};

}  // namespace eacs::player
