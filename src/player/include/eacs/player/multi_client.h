#pragma once
// Multi-client streaming over a shared bottleneck (extension).
//
// FESTIVE's original setting — several players competing for one link — is
// where fairness and stability of ABR algorithms show. This simulator runs
// K players against a shared capacity trace: at any instant the clients
// with an in-flight download share the capacity equally (TCP-fair
// processor sharing); each client keeps its own buffer, policy, estimators
// and context traces. The outcome is one standard PlaybackResult per
// client, so every existing metric applies, plus Jain's fairness index
// over the clients' mean bitrates.
//
// Integration is discrete-time (default 50 ms steps) with sub-step download
// completions resolved exactly; per-task timings are accurate to the step.
//
// The simulator is a thin configuration of the unified player::SessionEngine
// running a SharedLinkModel (session_engine.h); pass a SessionObserver to
// receive the per-event log of a run.

#include <cstddef>
#include <span>
#include <vector>

#include "eacs/media/manifest.h"
#include "eacs/player/abr_policy.h"
#include "eacs/player/player.h"
#include "eacs/player/session_engine.h"
#include "eacs/trace/session.h"
#include "eacs/trace/time_series.h"

namespace eacs::player {

/// Multi-client simulation knobs.
struct MultiClientConfig {
  double step_s = 0.05;        ///< integration step
  PlayerConfig player;         ///< per-client buffer configuration
  double max_session_s = 7200.0;  ///< hard stop (defensive)
};

/// One participating client. Alias of the engine's client descriptor: the
/// `context` supplies signal/accel traces (throughput ignored; the shared
/// link rules) and `join_time_s` staggers the client's start.
using ClientSetup = SessionClient;

/// Simulates K clients over one bottleneck.
class MultiClientSimulator {
 public:
  /// `shared_capacity_mbps` is the bottleneck rate over time.
  MultiClientSimulator(trace::TimeSeries shared_capacity_mbps,
                       MultiClientConfig config = {});

  const MultiClientConfig& config() const noexcept { return config_; }

  /// Runs all clients to completion; result[i] corresponds to clients[i].
  /// Throws std::invalid_argument on null manifest/policy pointers.
  std::vector<PlaybackResult> run(std::span<const ClientSetup> clients,
                                  SessionObserver* observer = nullptr) const;

 private:
  trace::TimeSeries capacity_;
  MultiClientConfig config_;
};

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair.
double jain_fairness(std::span<const double> xs);

}  // namespace eacs::player
