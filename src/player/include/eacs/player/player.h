#pragma once
// Trace-driven DASH player simulator.
//
// Replays one streaming session: segments are requested sequentially, each
// download runs against the session's throughput trace, playback drains the
// buffer in wall-clock time, stalls (rebuffering) occur when the buffer
// empties mid-download, and downloading pauses whenever the buffer reaches
// the paper's 30 s threshold. The ABR policy under test is consulted before
// every segment request with the estimator state a real client would have.

#include <cstddef>
#include <vector>

#include "eacs/media/manifest.h"
#include "eacs/net/bandwidth_estimator.h"
#include "eacs/net/downloader.h"
#include "eacs/player/abr_policy.h"
#include "eacs/sensors/vibration.h"
#include "eacs/trace/session.h"

namespace eacs::player {

/// Player buffer configuration (paper: B = 30 s threshold).
struct PlayerConfig {
  double buffer_threshold_s = 30.0;  ///< pause downloading above this level
  double startup_buffer_s = 4.0;     ///< playback begins once buffered
  std::size_t bandwidth_window = 20; ///< harmonic-mean estimator depth
  sensors::VibrationConfig vibration;  ///< vibration estimator settings
};

/// Per-segment ("task") record of a completed run. This is the unit the
/// energy/QoE accounting in eacs::sim consumes.
struct TaskRecord {
  std::size_t segment_index = 0;
  std::size_t level = 0;
  double bitrate_mbps = 0.0;
  double size_mb = 0.0;
  double duration_s = 0.0;          ///< media duration of the segment
  double download_start_s = 0.0;
  double download_end_s = 0.0;
  double throughput_mbps = 0.0;     ///< measured size/time for this download
  double signal_dbm = -90.0;        ///< mean signal during the download
  double vibration = 0.0;           ///< vibration estimate at decision time
  double buffer_before_s = 0.0;     ///< buffer level when the request was made
  double rebuffer_s = 0.0;          ///< stall time waiting for this segment
  bool startup = false;             ///< downloaded before playback began
};

/// Whole-session outcome.
struct PlaybackResult {
  std::vector<TaskRecord> tasks;
  double startup_delay_s = 0.0;
  double total_rebuffer_s = 0.0;    ///< post-startup stalls only
  std::size_t rebuffer_events = 0;
  std::size_t switch_count = 0;     ///< level changes between consecutive tasks
  double session_end_s = 0.0;       ///< wall clock when playback finished

  /// Total downloaded data in MB.
  double total_downloaded_mb() const noexcept;
  /// Mean selected bitrate weighted by segment duration.
  double mean_bitrate_mbps() const noexcept;
};

/// The simulator. One instance per (manifest, config); `run` is const and can
/// be reused across policies and sessions.
class PlayerSimulator {
 public:
  PlayerSimulator(media::VideoManifest manifest, PlayerConfig config = {});

  const media::VideoManifest& manifest() const noexcept { return manifest_; }
  const PlayerConfig& config() const noexcept { return config_; }

  /// Replays the session with the given policy. The policy is reset() first.
  PlaybackResult run(AbrPolicy& policy, const trace::SessionTraces& session) const;

 private:
  media::VideoManifest manifest_;
  PlayerConfig config_;
};

}  // namespace eacs::player
