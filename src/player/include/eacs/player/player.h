#pragma once
// Trace-driven DASH player simulator.
//
// Replays one streaming session: segments are requested sequentially, each
// download runs against the session's throughput trace, playback drains the
// buffer in wall-clock time, stalls (rebuffering) occur when the buffer
// empties mid-download, and downloading pauses whenever the buffer reaches
// the paper's 30 s threshold. The ABR policy under test is consulted before
// every segment request with the estimator state a real client would have.
//
// A second run() overload replays the session through a net::FaultInjector.
// On that path the player runs a resilience state machine per segment:
// per-attempt deadlines, bounded retries with exponential backoff and
// deterministic jitter, mid-download abandonment when a transfer outpaces
// the buffer drain, and degradation to the lowest rung while the link is
// failing. Aborted attempts are accounted as wasted bytes / wasted wall
// time, which eacs::sim prices as wasted download energy.
//
// A further overload replays the session against N CDN sources (one per
// manifest BaseURL): per-source server faults, deterministic circuit
// breakers, health-scored failover and hedged requests — the multi-source
// delivery machinery of segment_source.h driven by the engine's CDN state
// machine.
//
// All overloads are thin configurations of the unified player::SessionEngine
// (session_engine.h): the fault-free path runs a SoloLinkModel, the
// fault-injected path a FaultLinkModel, the multi-source path a
// CdnLinkModel. Pass a SessionObserver (e.g. SessionTimeline) to receive the
// structured per-event log of a run.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "eacs/media/manifest.h"
#include "eacs/net/bandwidth_estimator.h"
#include "eacs/net/downloader.h"
#include "eacs/net/fault_injector.h"
#include "eacs/net/segment_source.h"
#include "eacs/player/abr_policy.h"
#include "eacs/sensors/sensor_faults.h"
#include "eacs/sensors/sensor_health.h"
#include "eacs/sensors/vibration.h"
#include "eacs/trace/session.h"

namespace eacs::player {

class SessionObserver;  // session_engine.h

/// Retry / abandonment behaviour for fault-injected runs. Only consulted by
/// the run() overload taking a FaultInjector — the fault-free path never
/// times out, retries or abandons, so these defaults cannot perturb it.
struct ResilienceConfig {
  /// Aborted attempts allowed per segment before the rescue fetch. The
  /// rescue fetch (attempt max_retries) drops to the lowest rung and keeps
  /// the connection open until the transfer completes, so a session always
  /// terminates with bounded retries.
  std::size_t max_retries = 4;

  /// An attempt whose completion (or failure) would land later than this is
  /// aborted at the deadline — the timeout that turns outages and stuck
  /// transfers into observable failures.
  double attempt_deadline_s = 15.0;

  // Exponential backoff between retries: wait
  //   min(backoff_base_s * backoff_factor^attempt, backoff_max_s)
  // scaled by a deterministic jitter in [1, 1 + backoff_jitter).
  double backoff_base_s = 0.25;
  double backoff_factor = 2.0;
  double backoff_max_s = 4.0;
  double backoff_jitter = 0.25;

  /// Retries at or beyond this count request the lowest rung (graceful
  /// degradation while the link is failing); earlier retries step one rung
  /// down per attempt.
  std::size_t degrade_after = 2;

  /// Mid-download abandonment: if (while playing) a healthy transfer is
  /// projected to outlast `abandon_factor * buffer`, probe for
  /// `abandon_probe_s`, abort, and re-request one rung lower. At most once
  /// per segment.
  bool abandon_enabled = true;
  double abandon_factor = 2.0;
  double abandon_probe_s = 1.0;
  double abandon_min_buffer_s = 4.0;  ///< never abandon with this much buffer

  // --- Multi-source CDN delivery (consulted only on CdnLinkModel runs with
  // more than one source or a non-trivial source; see segment_source.h) ----

  /// Hedged requests: when the primary source has neither completed nor
  /// terminally failed by `hedge_fraction * attempt_deadline_s` into an
  /// attempt, duplicate the fetch to the best backup source. The first
  /// successful finisher wins; the loser's bytes are priced as wasted
  /// download energy through the existing accounting.
  bool hedge_enabled = true;
  double hedge_fraction = 0.5;

  /// Source scoring (EWMA throughput) and the per-source circuit breaker.
  net::SourceSelectorConfig source_selector;
};

/// Player buffer configuration (paper: B = 30 s threshold).
struct PlayerConfig {
  double buffer_threshold_s = 30.0;  ///< pause downloading above this level
  double startup_buffer_s = 4.0;     ///< playback begins once buffered
  std::size_t bandwidth_window = 20; ///< harmonic-mean estimator depth
  sensors::VibrationConfig vibration;  ///< vibration estimator settings
  sensors::SensorHealthConfig sensor_health;  ///< sensor-fault runs only
  ResilienceConfig resilience;       ///< fault-injected runs only
};

/// Deterministic backoff before retry `attempt` of `segment_index` (seconds).
/// Exposed for the property tests: monotone non-decreasing in `attempt` up to
/// the jittered cap, and a pure function of its arguments.
double retry_backoff_s(const ResilienceConfig& config, std::uint64_t fault_seed,
                       std::size_t segment_index, std::size_t attempt);

/// Per-segment ("task") record of a completed run. This is the unit the
/// energy/QoE accounting in eacs::sim consumes.
struct TaskRecord {
  std::size_t segment_index = 0;
  std::size_t level = 0;
  double bitrate_mbps = 0.0;
  double size_mb = 0.0;
  double duration_s = 0.0;          ///< media duration of the segment
  double download_start_s = 0.0;    ///< start of the successful attempt
  double download_end_s = 0.0;
  double throughput_mbps = 0.0;     ///< measured size/time for this download
  double signal_dbm = -90.0;        ///< mean signal during the download
  double vibration = 0.0;           ///< vibration estimate at decision time
  /// Vibration estimate the *policy* saw at decision time. Equal to
  /// `vibration` except on sensor-fault runs, where the policy plans on the
  /// corrupted stream while `vibration` keeps the true estimate that the
  /// energy/QoE accounting prices.
  double perceived_vibration = 0.0;
  double buffer_before_s = 0.0;     ///< buffer level when the request was made
  double rebuffer_s = 0.0;          ///< stall time waiting for this segment
  bool startup = false;             ///< downloaded before playback began

  // Resilience accounting (all zero on fault-free runs).
  std::size_t retries = 0;          ///< aborted attempts before success
  bool abandoned = false;           ///< a mid-download abandonment occurred
  double wasted_mb = 0.0;           ///< bytes moved by aborted attempts
  double wasted_download_s = 0.0;   ///< connection time spent in aborted
                                    ///< attempts (hedge legs overlap wall time)
  double wasted_signal_dbm = -90.0; ///< byte-weighted mean signal over waste
  double backoff_s = 0.0;           ///< wall time spent backing off

  // Multi-source CDN accounting (zero outside CdnLinkModel runs).
  std::size_t source = 0;           ///< source that served the winning attempt
  std::size_t hedges = 0;           ///< hedged duplicates issued for this segment
};

/// Whole-session outcome.
struct PlaybackResult {
  std::vector<TaskRecord> tasks;
  double startup_delay_s = 0.0;
  double total_rebuffer_s = 0.0;    ///< post-startup stalls only
  std::size_t rebuffer_events = 0;
  std::size_t switch_count = 0;     ///< level changes between consecutive tasks
  double session_end_s = 0.0;       ///< wall clock when playback finished

  // Resilience totals (all zero on fault-free runs).
  std::size_t total_retries = 0;
  std::size_t abandoned_segments = 0;
  double total_wasted_mb = 0.0;
  double total_backoff_s = 0.0;

  // Multi-source CDN totals (zero outside CdnLinkModel runs).
  std::size_t total_hedges = 0;        ///< hedged duplicates issued
  std::size_t total_failovers = 0;     ///< primary-source switches
  std::size_t breaker_transitions = 0; ///< circuit-breaker state changes

  /// Cellular runs only: cell changes this client made (zero elsewhere).
  std::size_t cell_handoffs = 0;

  /// Total downloaded data in MB (successful attempts only; wasted bytes are
  /// tracked in total_wasted_mb).
  double total_downloaded_mb() const noexcept;
  /// Mean selected bitrate weighted by segment duration.
  double mean_bitrate_mbps() const noexcept;
};

/// The simulator. One instance per (manifest, config); `run` is const and can
/// be reused across policies and sessions.
class PlayerSimulator {
 public:
  PlayerSimulator(media::VideoManifest manifest, PlayerConfig config = {});

  const media::VideoManifest& manifest() const noexcept { return manifest_; }
  const PlayerConfig& config() const noexcept { return config_; }

  /// Replays the session with the given policy. The policy is reset() first.
  /// An optional observer receives the engine's per-event log (read-only:
  /// attaching one never changes the result).
  PlaybackResult run(AbrPolicy& policy, const trace::SessionTraces& session,
                     SessionObserver* observer = nullptr) const;

  /// Replays the session through a fault injector, engaging the resilience
  /// state machine. An inactive injector (FaultSpec{}) is a strict no-op:
  /// the result is bit-identical to the fault-free overload.
  PlaybackResult run(AbrPolicy& policy, const trace::SessionTraces& session,
                     const net::FaultInjector& faults,
                     SessionObserver* observer = nullptr) const;

  /// Replays the session with corrupted *sensing*: the policy perceives the
  /// sensor-fault injector's accel/signal streams while the link and the true
  /// context (which the energy/QoE accounting prices) are untouched. An
  /// inactive injector is a strict no-op.
  PlaybackResult run(AbrPolicy& policy, const trace::SessionTraces& session,
                     const sensors::SensorFaultInjector& sensor_faults,
                     SessionObserver* observer = nullptr) const;

  /// Link faults and sensor faults together.
  PlaybackResult run(AbrPolicy& policy, const trace::SessionTraces& session,
                     const net::FaultInjector& faults,
                     const sensors::SensorFaultInjector& sensor_faults,
                     SessionObserver* observer = nullptr) const;

  /// Replays the session against N CDN sources (manifest BaseURLs) with
  /// per-source server faults, circuit breakers, failover and hedged
  /// requests (ResilienceConfig's CDN knobs). A single *trivial* source —
  /// default CdnFaultSpec, capacity scale 1, RTT 0 — is a strict no-op:
  /// the result is bit-identical to the fault-free overload. Sources are
  /// unowned and must outlive the call; throws std::invalid_argument when
  /// `sources` is empty.
  PlaybackResult run(AbrPolicy& policy, const trace::SessionTraces& session,
                     std::span<const net::SegmentSource> sources,
                     SessionObserver* observer = nullptr) const;

 private:
  media::VideoManifest manifest_;
  PlayerConfig config_;
};

}  // namespace eacs::player
