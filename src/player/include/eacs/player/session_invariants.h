#pragma once
// SessionInvariantChecker: a read-only SessionObserver that asserts the
// physical invariants every engine run must satisfy, event by event:
//
//  * every numeric field of every event is finite;
//  * the buffer stays within [0, buffer_threshold + max segment duration]
//    (one segment can land while the buffer sits at the threshold);
//  * per-client wall clocks are monotone non-decreasing over the engine's
//    *clock* events (throttle, request, completion, backoff expiry, startup —
//    drain/stall events are legitimately back-stamped to the span they cover);
//  * ladder levels on events are within the manifest ladder;
//  * exactly one kSessionStart (first) and kSessionEnd (last), at most one
//    kStartup per client, and no drain/stall before that client's startup;
//  * a stall only happens on an empty buffer.
//
// Like every observer it is strictly read-only: attaching one can never
// perturb a PlaybackResult (the engine hands out const events), so the whole
// test suite can run with the checker on without disturbing bit-identical
// metrics. Violations are recorded (and optionally thrown) with a formatted
// description of the offending event.
//
// check_result() applies the complementary task-level invariants to a
// finished PlaybackResult (finite metrics, levels in the ladder, ordered
// download windows, non-negative accounting).

#include <cstddef>
#include <string>
#include <vector>

#include "eacs/player/player.h"
#include "eacs/player/session_engine.h"

namespace eacs::player {

/// Checker knobs.
struct SessionInvariantConfig {
  double buffer_threshold_s = 30.0;  ///< engine buffer threshold
  double max_segment_s = 10.0;       ///< longest segment the manifest can hold
  std::size_t num_levels = 0;        ///< ladder size; 0 = skip level checks
  bool throw_on_violation = true;    ///< throw std::logic_error on first hit
  double buffer_epsilon = 1e-6;      ///< slack on buffer bounds comparisons
};

/// Event-stream invariant assertions (see file comment).
class SessionInvariantChecker final : public SessionObserver {
 public:
  explicit SessionInvariantChecker(SessionInvariantConfig config = {});

  /// Convenience: thresholds from an engine/player config plus ladder size.
  SessionInvariantChecker(const PlayerConfig& player, std::size_t num_levels,
                          double max_segment_s = 10.0);

  void on_event(const SessionEvent& event) override;

  /// True if no invariant has been violated so far.
  bool ok() const noexcept { return violations_.empty(); }
  const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  std::size_t events_seen() const noexcept { return events_seen_; }

  /// Clears state for reuse across runs.
  void reset();

  /// Task-level invariants on a finished result. Returns human-readable
  /// violation descriptions; empty = clean. `num_levels` 0 skips level checks.
  static std::vector<std::string> check_result(const PlaybackResult& result,
                                               std::size_t num_levels = 0);

 private:
  struct ClientState {
    double clock_s = 0.0;
    bool clock_seen = false;
    bool started = false;
  };

  void report(const SessionEvent& event, const std::string& what);
  ClientState& state_for(std::size_t client);

  SessionInvariantConfig config_;
  std::vector<ClientState> clients_;
  std::vector<std::string> violations_;
  std::size_t events_seen_ = 0;
  bool session_started_ = false;
  bool session_ended_ = false;
};

}  // namespace eacs::player
