#pragma once
// The ABR policy interface: the single extension point every bitrate
// adaptation algorithm (YouTube-fixed, FESTIVE, BBA, BOLA, the paper's online
// algorithm, precomputed optimal plans) implements.

#include <cstddef>
#include <optional>
#include <string>

#include "eacs/media/manifest.h"
#include "eacs/net/bandwidth_estimator.h"
#include "eacs/sensors/sensor_health.h"

namespace eacs::player {

/// Everything a policy may observe when choosing the next segment's level.
struct AbrContext {
  std::size_t segment_index = 0;   ///< segment about to be requested
  std::size_t num_segments = 0;    ///< total segments in the stream
  double now_s = 0.0;              ///< wall-clock time of the decision
  double buffer_s = 0.0;           ///< buffered media ahead of the play head
  bool startup_phase = true;       ///< playback has not begun yet
  std::optional<std::size_t> prev_level;  ///< level of the previous segment

  const media::VideoManifest* manifest = nullptr;   ///< never null during run
  const net::BandwidthEstimator* bandwidth = nullptr;  ///< primed estimator

  double vibration_level = 0.0;    ///< current estimated vibration (m/s^2)
  double signal_dbm = -90.0;       ///< current signal-strength reading

  // Health of the sensed context feeding the two fields above. The defaults
  // say "fully trustworthy", which is exactly what clean (non-fault-injected)
  // runs provide — policies that ignore these fields behave as before.
  sensors::ContextHealth vibration_health = sensors::ContextHealth::kHealthy;
  sensors::ContextHealth signal_health = sensors::ContextHealth::kHealthy;
  double vibration_confidence = 1.0;  ///< [0, 1] trust in vibration_level
  double signal_age_s = 0.0;          ///< seconds since signal_dbm was read
};

/// Details of one failed or aborted download attempt. Only produced on
/// fault-injected runs (PlayerSimulator::run with a net::FaultInjector);
/// the fault-free player never fails a download.
struct DownloadFailure {
  std::size_t segment_index = 0;
  std::size_t attempt = 0;      ///< 0-based attempt number that failed
  double now_s = 0.0;           ///< wall clock when the failure manifested
  bool during_outage = false;   ///< the link was inside an outage window
};

/// Bitrate-adaptation policy.
class AbrPolicy {
 public:
  virtual ~AbrPolicy() = default;

  /// Human-readable algorithm name (used in result tables).
  virtual std::string name() const = 0;

  /// Picks the ladder level for the segment described by `context`.
  /// Must return a valid level for the manifest's ladder.
  virtual std::size_t choose_level(const AbrContext& context) = 0;

  /// Notification that a download attempt failed or was aborted (fault-
  /// injected runs only). Policies may use this to replan — e.g. suppress
  /// ramp-ups for a few segments. Default: ignore.
  virtual void on_download_failure(const DownloadFailure& failure) {
    (void)failure;
  }

  /// Clears any internal state before a fresh run.
  virtual void reset() {}
};

}  // namespace eacs::player
