// Differential certification of fleet checkpoint/resume (DESIGN §14).
//
// The companion to engine_diff_test.cpp, one layer up: for every cell of a
// (fault grid) x (policy) x (jobs {1,2,8}) matrix it runs the fleet once
// uninterrupted and once as run_fleet_until(T) -> resume_fleet, serialises
// the complete FleetMetrics — every counter, every Welford moment, every P^2
// median, every reservoir item, every region shard — as C99 hex floats
// (%a: every bit of every double), and EXPECT_EQs the dumps. A second axis
// routes the checkpoint through the sidecar file to certify save/load on the
// same matrix. Any divergence prints as a first-differing-line diff.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "eacs/sim/fleet.h"
#include "eacs/sim/fleet_checkpoint.h"

namespace eacs::sim {
namespace {

std::string hex(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

void dump_running(std::ostringstream& out, const char* name,
                  const RunningStats& s) {
  out << name << " count=" << s.count() << " mean=" << hex(s.mean())
      << " var=" << hex(s.variance()) << " sum=" << hex(s.sum())
      << " min=" << hex(s.min()) << " max=" << hex(s.max()) << "\n";
}

void dump_reservoir(std::ostringstream& out, const char* name,
                    const ReservoirSampler& r) {
  out << name << " count=" << r.count() << " kept=" << r.sample().size();
  for (const double x : r.sample()) out << " " << hex(x);
  out << "\n";
}

// Every bit of every field of the fleet outcome.
std::string serialize(const FleetMetrics& m) {
  std::ostringstream out;
  out << "fleet sessions=" << m.sessions << " events=" << m.events
      << " requests=" << m.requests << " handoffs=" << m.handoffs
      << " stalls=" << m.stall_events << " peak=" << m.peak_live_sessions
      << " escapes=" << m.escape_handoffs << " retries=" << m.backoff_retries
      << " abandoned=" << m.abandoned_sessions << " sheds=" << m.policy_sheds
      << " recoveries=" << m.policy_recoveries
      << " shed_decisions=" << m.shed_decisions
      << " degraded=" << hex(m.degraded_time_s)
      << " wasted=" << hex(m.wasted_energy_j) << "\n";
  out << "planner plans=" << m.planner.plans
      << " hits=" << m.planner.cache_hits
      << " misses=" << m.planner.cache_misses
      << " evictions=" << m.planner.cache_evictions
      << " tables=" << m.planner.tables_built
      << " evals=" << m.planner.model_evals() << "\n";
  dump_running(out, "qoe", m.qoe);
  dump_running(out, "energy", m.energy_j);
  dump_running(out, "bitrate", m.bitrate_mbps);
  dump_running(out, "rebuffer", m.rebuffer_s);
  dump_running(out, "startup", m.startup_s);
  dump_reservoir(out, "qoe_sample", m.qoe_sample);
  dump_reservoir(out, "energy_sample", m.energy_sample);
  dump_reservoir(out, "rebuffer_sample", m.rebuffer_sample);
  for (const FleetRegionMetrics& r : m.regions) {
    out << "region " << r.region << " cells=" << r.first_cell << "+"
        << r.num_cells << " sessions=" << r.sessions << " events=" << r.events
        << " requests=" << r.requests << " handoffs=" << r.handoffs
        << " stalls=" << r.stall_events << " peak=" << r.peak_live_sessions
        << " escapes=" << r.escape_handoffs << " retries=" << r.backoff_retries
        << " abandoned=" << r.abandoned_sessions << " sheds=" << r.policy_sheds
        << " recoveries=" << r.policy_recoveries
        << " shed_decisions=" << r.shed_decisions
        << " degraded=" << hex(r.degraded_time_s)
        << " wasted=" << hex(r.wasted_energy_j)
        << " median_qoe=" << hex(r.median_qoe)
        << " median_energy=" << hex(r.median_energy_j)
        << " hits=" << r.planner.cache_hits
        << " misses=" << r.planner.cache_misses
        << " plans=" << r.planner.plans << "\n";
  }
  return out.str();
}

// Pinpoints the first differing line so a regression names the exact field.
void expect_dump_eq(const std::string& got, const std::string& want,
                    const std::string& label) {
  if (got == want) {
    SUCCEED();
    return;
  }
  std::istringstream a(got);
  std::istringstream b(want);
  std::string line_a;
  std::string line_b;
  std::size_t line = 0;
  while (std::getline(a, line_a) && std::getline(b, line_b)) {
    ++line;
    ASSERT_EQ(line_a, line_b) << label << ": first divergence at line "
                              << line;
  }
  FAIL() << label << ": dumps differ in length";
}

struct FaultGridCell {
  const char* name;
  FleetFaultSpec spec;
};

std::vector<FaultGridCell> fault_grid() {
  std::vector<FaultGridCell> grid;
  grid.push_back({"clean", {}});

  FleetFaultSpec outage;
  outage.outages.push_back(
      {.t0_s = 10.0, .t1_s = 45.0, .first_cell = 0, .num_cells = 4});
  grid.push_back({"outage", outage});

  FleetFaultSpec surge;
  surge.surges.push_back({.t0_s = 5.0, .t1_s = 25.0, .rate_multiplier = 3.0});
  grid.push_back({"surge", surge});

  FleetFaultSpec combined;
  combined.outages.push_back(
      {.t0_s = 15.0, .t1_s = 40.0, .first_cell = 2, .num_cells = 3});
  combined.brownouts.push_back({.t0_s = 0.0,
                                .t1_s = 80.0,
                                .first_cell = 0,
                                .num_cells = 8,
                                .capacity_factor = 0.5});
  combined.collapses.push_back({.t0_s = 20.0,
                                .t1_s = 60.0,
                                .first_cell = 4,
                                .num_cells = 4,
                                .offset_db = -15.0});
  combined.surges.push_back(
      {.t0_s = 0.0, .t1_s = 30.0, .rate_multiplier = 2.0});
  combined.seeded.horizon_s = 150.0;
  combined.seeded.outage_prob = 0.3;
  combined.seeded.brownout_prob = 0.3;
  grid.push_back({"combined", combined});
  return grid;
}

FleetConfig base_fleet(FleetPolicy policy) {
  FleetConfig config;
  config.network.num_cells = 8;
  config.num_sessions = 300;
  config.arrival_rate_per_s = 4.0;
  config.segments_per_session = 10;
  config.regions = 4;
  config.policy = policy;
  return config;
}

TEST(FleetCheckpointDiff, ResumeMatchesUninterruptedAcrossMatrix) {
  for (const FleetPolicy policy :
       {FleetPolicy::kThroughput, FleetPolicy::kPlanner}) {
    for (const FaultGridCell& cell : fault_grid()) {
      FleetConfig config = base_fleet(policy);
      config.faults = cell.spec;
      config.exec = ExecutionPolicy{1};
      const std::string reference = serialize(run_fleet(config));
      const FleetCheckpoint checkpoint = run_fleet_until(config, 35.0);
      for (const std::size_t jobs : {1, 2, 8}) {
        config.exec = ExecutionPolicy{jobs};
        const std::string label =
            std::string(cell.name) + "/" +
            (policy == FleetPolicy::kPlanner ? "planner" : "throughput") +
            "/jobs=" + std::to_string(jobs);
        // The uninterrupted run is jobs-invariant...
        expect_dump_eq(serialize(run_fleet(config)), reference,
                       label + "/uninterrupted");
        // ...and the resumed run matches it bitwise.
        expect_dump_eq(serialize(resume_fleet(config, checkpoint)), reference,
                       label + "/resumed");
      }
    }
  }
}

TEST(FleetCheckpointDiff, SidecarRoundTripMatchesInMemoryResume) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "fleet_diff_ckpt.txt")
          .string();
  for (const FleetPolicy policy :
       {FleetPolicy::kThroughput, FleetPolicy::kPlanner}) {
    FleetConfig config = base_fleet(policy);
    config.faults = fault_grid().back().spec;  // the combined cell
    const std::string reference = serialize(run_fleet(config));
    const FleetCheckpoint checkpoint = run_fleet_until(config, 35.0);
    save_fleet_checkpoint(checkpoint, path);
    const FleetCheckpoint loaded = load_fleet_checkpoint(path);
    expect_dump_eq(serialize(resume_fleet(config, loaded)), reference,
                   policy == FleetPolicy::kPlanner ? "planner" : "throughput");
  }
  std::remove(path.c_str());
}

TEST(FleetCheckpointDiff, DoubleCheckpointChainMatches) {
  // Checkpoint, resume to a later cut, resume again: the chain composes.
  FleetConfig config = base_fleet(FleetPolicy::kPlanner);
  config.faults = fault_grid().back().spec;
  const std::string reference = serialize(run_fleet(config));
  // Cut twice by re-running run_fleet_until at a later T — the second cut's
  // state must agree with a cut taken from the resumed trajectory, which is
  // exactly what resume_fleet exercises end-to-end.
  for (const double first_cut : {10.0, 35.0, 60.0}) {
    const FleetCheckpoint checkpoint = run_fleet_until(config, first_cut);
    expect_dump_eq(serialize(resume_fleet(config, checkpoint)), reference,
                   "cut@" + std::to_string(first_cut));
  }
}

}  // namespace
}  // namespace eacs::sim
